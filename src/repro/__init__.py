"""repro — a full reproduction of dcSR (CoNEXT 2021).

dcSR: Practical Video Quality Enhancement Using Data-Centric Super
Resolution (Baek, Dasari, Das, Ryoo).

Subpackages
-----------
``repro.nn``
    Numpy neural-network framework (TensorFlow stand-in).
``repro.video``
    Video substrate: frames, color, synthetic content, quality metrics,
    segmentation, and a from-scratch H.264-like block codec.
``repro.features``
    Variational autoencoder used for I-frame feature extraction.
``repro.clustering``
    K-means, global K-means, silhouette, and constrained K selection.
``repro.sr``
    EDSR super-resolution models, training, and configuration search.
``repro.core``
    The dcSR system: server pipeline, client decoder integration, model
    caching, baselines (NAS / NEMO), and streaming accounting.
``repro.devices``
    Analytic device models (Jetson Xavier NX, laptop, desktop): latency,
    memory, and power.
``repro.bench``
    Experiment harness and canonical workloads.
``repro.obs``
    Unified observability core: injectable clocks, span tracing, metrics,
    and the JSON / Prometheus exporters behind ``--trace-out`` /
    ``--metrics-out``.
"""

__version__ = "1.0.0"
