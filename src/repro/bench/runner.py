"""Experiment output helpers: aligned tables and series printers.

Benchmarks print the same rows/series the paper's tables and figures
report, so a run of ``pytest benchmarks/ --benchmark-only -s`` regenerates
the evaluation section in text form.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["format_table", "print_table", "print_series", "save_results",
           "cdf_points"]


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence],
) -> str:
    """Render an aligned text table.

    An empty ``title`` omits the ``== title ==`` banner, so callers that
    carry their own heading (the telemetry summaries) can still render
    their rows through the one shared table formatter.
    """
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {title} =="] if title else []
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence]) -> None:
    print("\n" + format_table(title, headers, rows) + "\n")


def print_series(title: str, xs: Sequence, ys_by_name: dict[str, Sequence]) -> None:
    """Print a figure's line series as a table with X as the first column."""
    headers = ["x"] + list(ys_by_name)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[i] for series in ys_by_name.values()])
    print_table(title, headers, rows)


def cdf_points(values: Sequence[float], n_points: int = 11) -> list[tuple[float, float]]:
    """(value, cumulative fraction) pairs at evenly spaced quantiles.

    Degenerate inputs are well-defined instead of crashing: an empty
    ``values`` yields ``[]``, and ``n_points=1`` yields the single
    ``(max, 1.0)`` point (no zero-division on the quantile spacing).
    """
    if n_points < 1:
        raise ValueError(f"n_points must be >= 1, got {n_points}")
    ordered = sorted(values)
    if not ordered:
        return []
    if n_points == 1:
        return [(ordered[-1], 1.0)]
    out = []
    for i in range(n_points):
        frac = i / (n_points - 1)
        idx = min(int(frac * (len(ordered) - 1)), len(ordered) - 1)
        out.append((ordered[idx], frac))
    return out


def save_results(name: str, payload: dict, directory: str | Path = "bench_results",
                 trace=None) -> Path:
    """Persist one experiment's numbers as JSON for EXPERIMENTS.md.

    ``trace`` (a :class:`~repro.obs.Span`, :class:`~repro.obs.Tracer`, or
    :class:`~repro.obs.Observability` session) embeds the run's span tree
    under a ``"trace"`` key, so the result file carries its own timing
    provenance — per-stage wall time, clock domains, attempt counts —
    next to the numbers it explains.
    """
    if trace is not None:
        from ..obs.export import _root_of, span_to_dict
        root = _root_of(trace)
        payload = dict(payload)
        payload["trace"] = root if isinstance(root, dict) else span_to_dict(root)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=_json_default)
    return path


def load_results(name: str,
                 directory: str | Path = "bench_results") -> dict | None:
    """Read back a previously saved result file, or ``None`` if absent.

    Lets a benchmark *extend* another benchmark's JSON (several sections,
    one file) instead of clobbering it with the last writer's payload.
    """
    path = Path(directory) / f"{name}.json"
    if not path.exists():
        return None
    with open(path) as handle:
        return json.load(handle)


def _json_default(obj):
    import numpy as np
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj)}")
