"""Experiment output helpers: aligned tables and series printers.

Benchmarks print the same rows/series the paper's tables and figures
report, so a run of ``pytest benchmarks/ --benchmark-only -s`` regenerates
the evaluation section in text form.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["format_table", "print_table", "print_series", "save_results",
           "cdf_points"]


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence],
) -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence]) -> None:
    print("\n" + format_table(title, headers, rows) + "\n")


def print_series(title: str, xs: Sequence, ys_by_name: dict[str, Sequence]) -> None:
    """Print a figure's line series as a table with X as the first column."""
    headers = ["x"] + list(ys_by_name)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[i] for series in ys_by_name.values()])
    print_table(title, headers, rows)


def cdf_points(values: Sequence[float], n_points: int = 11) -> list[tuple[float, float]]:
    """(value, cumulative fraction) pairs at evenly spaced quantiles."""
    ordered = sorted(values)
    if not ordered:
        return []
    out = []
    for i in range(n_points):
        frac = i / (n_points - 1)
        idx = min(int(frac * (len(ordered) - 1)), len(ordered) - 1)
        out.append((ordered[idx], frac))
    return out


def save_results(name: str, payload: dict, directory: str | Path = "bench_results") -> Path:
    """Persist one experiment's numbers as JSON for EXPERIMENTS.md."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=_json_default)
    return path


def _json_default(obj):
    import numpy as np
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj)}")
