"""Canonical benchmark workloads.

The paper evaluates on six ~12-minute YouTube videos from different genres.
The offline stand-in is six synthetic videos, one per genre preset, with
recurring scenes (DESIGN.md documents the substitution).  Quality
experiments run at a scaled-down frame size — the pipeline is identical,
only the pixel count is smaller so numpy training finishes in minutes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..core import ServerConfig
from ..features import VaeTrainConfig
from ..sr import EdsrConfig, SrTrainConfig
from ..video import VideoClip, make_video
from ..video.codec import CodecConfig

__all__ = ["CORPUS_GENRES", "CorpusSpec", "corpus_spec", "make_corpus",
           "quality_server_config", "quality_big_train_config"]

#: One video per genre, mirroring the paper's "6 representative videos from
#: different genres".
CORPUS_GENRES = ("news", "sports", "documentary", "music", "gaming",
                 "animation")


@dataclass(frozen=True)
class CorpusSpec:
    """Size/duration of the benchmark corpus.

    ``fast`` halves durations and training for quick smoke runs
    (set the ``REPRO_BENCH_FAST`` environment variable).
    """

    size: tuple[int, int] = (48, 64)
    duration_seconds: float = 10.0
    fps: float = 10.0
    n_distinct_scenes: int = 3
    crf: int = 51
    #: Bound on segment length (frames): long shots are split so every
    #: couple of seconds starts with a fresh I frame, as real encoders do
    #: for seek latency — and as dcSR needs for its enhancement anchors.
    max_segment_frames: int = 20
    sr_epochs: int = 25
    sr_steps: int = 12
    vae_epochs: int = 12
    fast: bool = False


def corpus_spec() -> CorpusSpec:
    """The active corpus spec (env-controlled fast mode)."""
    if os.environ.get("REPRO_BENCH_FAST"):
        return CorpusSpec(duration_seconds=6.0, sr_epochs=12, sr_steps=8,
                          vae_epochs=6, fast=True)
    return CorpusSpec()


def make_corpus(spec: CorpusSpec | None = None) -> list[VideoClip]:
    """The six-genre corpus, deterministic across runs."""
    spec = spec or corpus_spec()
    return [
        make_video(name=f"video-{i + 1}-{genre}", genre=genre, seed=100 + i,
                   size=spec.size, duration_seconds=spec.duration_seconds,
                   fps=spec.fps, n_distinct_scenes=spec.n_distinct_scenes)
        for i, genre in enumerate(CORPUS_GENRES)
    ]


def quality_server_config(spec: CorpusSpec | None = None) -> ServerConfig:
    """The dcSR server settings used by the quality benchmarks."""
    spec = spec or corpus_spec()
    return ServerConfig(
        codec=CodecConfig(crf=spec.crf),
        max_segment_len=spec.max_segment_frames,
        vae_train=VaeTrainConfig(epochs=spec.vae_epochs, batch_size=4),
        sr_train=SrTrainConfig(epochs=spec.sr_epochs,
                               steps_per_epoch=spec.sr_steps,
                               batch_size=8, patch_size=16,
                               learning_rate=5e-3,
                               lr_decay_epochs=max(5, spec.sr_epochs // 3)),
        micro_config=EdsrConfig(n_resblocks=2, n_filters=8),
        seed=0,
    )


def quality_big_train_config(spec: CorpusSpec | None = None) -> SrTrainConfig:
    """Training settings for the NAS/NEMO big model (same step budget)."""
    spec = spec or corpus_spec()
    return SrTrainConfig(epochs=spec.sr_epochs, steps_per_epoch=spec.sr_steps,
                         batch_size=8, patch_size=16, learning_rate=5e-3,
                         lr_decay_epochs=max(5, spec.sr_epochs // 3), seed=1)
