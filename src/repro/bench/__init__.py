"""Benchmark harness: canonical workloads and result printers."""

from .runner import (
    cdf_points,
    format_table,
    load_results,
    print_series,
    print_table,
    save_results,
)
from .workloads import (
    CORPUS_GENRES,
    CorpusSpec,
    corpus_spec,
    make_corpus,
    quality_big_train_config,
    quality_server_config,
)

__all__ = [
    "format_table",
    "print_table",
    "print_series",
    "cdf_points",
    "save_results",
    "load_results",
    "CORPUS_GENRES",
    "CorpusSpec",
    "corpus_spec",
    "make_corpus",
    "quality_server_config",
    "quality_big_train_config",
]
