"""I-frame feature extraction (Section 3.1.1): a convolutional VAE whose
encoder mean is the clustering feature."""

from .trainer import (
    VaeHistory,
    VaeTrainConfig,
    extract_features,
    frames_to_batch,
    train_vae,
)
from .vae import ConvVAE

__all__ = [
    "ConvVAE",
    "VaeTrainConfig",
    "VaeHistory",
    "train_vae",
    "frames_to_batch",
    "extract_features",
]
