"""Convolutional variational autoencoder for I-frame feature extraction.

Section 3.1.1 of the paper: the VAE learns a regularized latent space from
I-frame thumbnails; only the *encoder* is used afterwards — its mean vector
is the feature fed to K-means.  The loss is Eq. (1):
``c * ||x - x_hat||^2 + KL[N(mu, sigma), N(0, 1)]``.

The reparameterisation trick's backward pass is orchestrated here by hand on
top of the layer framework: ``z = mu + exp(0.5 * logvar) * eps`` routes the
decoder's input gradient into both encoder heads.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .. import nn

__all__ = ["ConvVAE"]


class ConvVAE:
    """VAE over ``(N, 3, S, S)`` image tensors with ``S = input_size``.

    The encoder downsamples by 8 with three strided convolutions; a dense
    head produces ``[mu | logvar]``.  The decoder mirrors it with nearest
    upsampling + convolution stages and a sigmoid output.
    """

    def __init__(self, latent_dim: int = 8, input_size: int = 32,
                 base_channels: int = 8, seed: int = 0):
        if input_size % 8 != 0:
            raise ValueError("input_size must be divisible by 8")
        rng = np.random.default_rng(seed)
        self.latent_dim = int(latent_dim)
        self.input_size = int(input_size)
        c = int(base_channels)
        spatial = input_size // 8
        self._bottleneck = (4 * c, spatial, spatial)
        flat = 4 * c * spatial * spatial

        self.encoder = nn.Sequential(
            nn.Conv2d(3, c, 3, stride=2, padding=1, rng=rng, name="enc.conv1"),
            nn.ReLU(),
            nn.Conv2d(c, 2 * c, 3, stride=2, padding=1, rng=rng, name="enc.conv2"),
            nn.ReLU(),
            nn.Conv2d(2 * c, 4 * c, 3, stride=2, padding=1, rng=rng,
                      name="enc.conv3"),
            nn.ReLU(),
            nn.Flatten(),
            nn.Dense(flat, 2 * latent_dim, rng=rng, name="enc.head"),
        )
        self.decoder = nn.Sequential(
            nn.Dense(latent_dim, flat, rng=rng, name="dec.head", init="he"),
            nn.ReLU(),
            nn.Reshape(self._bottleneck),
            nn.NearestUpsample(2),
            nn.Conv2d(4 * c, 2 * c, 3, rng=rng, name="dec.conv1"),
            nn.ReLU(),
            nn.NearestUpsample(2),
            nn.Conv2d(2 * c, c, 3, rng=rng, name="dec.conv2"),
            nn.ReLU(),
            nn.NearestUpsample(2),
            nn.Conv2d(c, 3, 3, rng=rng, name="dec.conv3"),
            nn.Sigmoid(),
        )
        self._cache: dict | None = None

    # ------------------------------------------------------------------

    def parameters(self) -> Iterator[nn.Parameter]:
        yield from self.encoder.parameters()
        yield from self.decoder.parameters()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------

    def encode(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(mu, logvar)`` for a batch (no sampling)."""
        self._check_input(x)
        head = self.encoder.forward(x)
        mu = head[:, :self.latent_dim]
        logvar = np.clip(head[:, self.latent_dim:], -10.0, 10.0)
        return mu, logvar

    def embed(self, x: np.ndarray) -> np.ndarray:
        """Deterministic features: the posterior mean (what dcSR clusters)."""
        mu, _ = self.encode(x)
        return mu

    def decode(self, z: np.ndarray) -> np.ndarray:
        return self.decoder.forward(z)

    def forward(
        self, x: np.ndarray, rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample the posterior and reconstruct; returns ``(x_hat, mu, logvar)``.

        Caches intermediates for :meth:`backward`.
        """
        mu, logvar = self.encode(x)
        eps = rng.normal(size=mu.shape).astype(np.float32)
        std = np.exp(0.5 * logvar).astype(np.float32)
        z = mu + std * eps
        x_hat = self.decoder.forward(z)
        self._cache = {"eps": eps, "std": std}
        return x_hat, mu, logvar

    def backward(
        self, grad_x_hat: np.ndarray, grad_mu: np.ndarray,
        grad_logvar: np.ndarray,
    ) -> None:
        """Backpropagate the VAE loss.

        ``grad_x_hat`` flows through the decoder; its gradient with respect
        to ``z`` is combined with the direct KL gradients on ``mu`` and
        ``logvar`` and routed through the reparameterisation into the
        encoder head.
        """
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad_z = self.decoder.backward(grad_x_hat)
        eps, std = self._cache["eps"], self._cache["std"]
        g_mu = grad_z + grad_mu
        # d z / d logvar = 0.5 * std * eps
        g_logvar = grad_z * (0.5 * std * eps) + grad_logvar
        head_grad = np.concatenate([g_mu, g_logvar], axis=1).astype(np.float32)
        self.encoder.backward(head_grad)
        self._cache = None

    # ------------------------------------------------------------------

    def _check_input(self, x: np.ndarray) -> None:
        expected = (3, self.input_size, self.input_size)
        if x.ndim != 4 or x.shape[1:] != expected:
            raise ValueError(
                f"expected input of shape (N, {expected[0]}, {expected[1]}, "
                f"{expected[2]}), got {x.shape}"
            )
