"""VAE training loop and I-frame feature extraction helpers."""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..video.sampling import resize
from .vae import ConvVAE

__all__ = ["VaeTrainConfig", "VaeHistory", "train_vae", "frames_to_batch",
           "extract_features"]


@dataclass(frozen=True)
class VaeTrainConfig:
    """Hyper-parameters for :func:`train_vae`."""

    epochs: int = 40
    batch_size: int = 16
    learning_rate: float = 2e-3
    # Eq. (1) weights the reconstruction term with a constant ``c``; a high
    # effective c (equivalently, a small KL weight) keeps the latents
    # discriminative — with the summed KL at full weight the tiny thumbnail
    # posteriors collapse toward the prior and all I frames embed alike.
    recon_weight: float = 1.0
    kl_weight: float = 0.05
    grad_clip: float = 10.0
    seed: int = 0

    def __post_init__(self):
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")


@dataclass
class VaeHistory:
    """Per-epoch training diagnostics."""

    total: list[float] = field(default_factory=list)
    reconstruction: list[float] = field(default_factory=list)
    kl: list[float] = field(default_factory=list)


def frames_to_batch(frames: np.ndarray, size: int) -> np.ndarray:
    """Resize RGB frames ``(N, H, W, 3)`` to ``(N, 3, size, size)`` NCHW."""
    if frames.ndim != 4 or frames.shape[-1] != 3:
        raise ValueError(f"expected (N, H, W, 3) frames, got {frames.shape}")
    thumbs = np.stack([resize(f, (size, size)) for f in frames])
    return np.ascontiguousarray(thumbs.transpose(0, 3, 1, 2)).astype(np.float32)


def train_vae(
    vae: ConvVAE, images: np.ndarray, config: VaeTrainConfig | None = None,
    obs=None,
) -> VaeHistory:
    """Train ``vae`` on ``(N, 3, S, S)`` images with Adam.

    Returns the loss history; training is deterministic given
    ``config.seed``.  ``obs`` (an optional
    :class:`~repro.obs.Observability`) wraps the run in a ``train_vae``
    span and feeds per-epoch wall seconds into the
    ``dcsr_vae_epoch_seconds`` histogram; timing never affects the
    trained parameters.
    """
    config = config or VaeTrainConfig()
    if images.ndim != 4:
        raise ValueError(f"expected (N, 3, S, S) images, got {images.shape}")
    n = images.shape[0]
    if n < 1:
        raise ValueError("need at least one training image")

    rng = np.random.default_rng(config.seed)
    optimizer = nn.Adam(vae.parameters(), lr=config.learning_rate)
    history = VaeHistory()
    epoch_hist = (obs.metrics.histogram(
        "dcsr_vae_epoch_seconds", "Wall seconds per VAE training epoch")
        if obs is not None else None)

    with (obs.tracer.span("train_vae", epochs=config.epochs)
          if obs is not None else nullcontext()):
        for _ in range(config.epochs):
            e0 = obs.clock.now() if obs is not None else 0.0
            order = rng.permutation(n)
            epoch_total, epoch_recon, epoch_kl, batches = 0.0, 0.0, 0.0, 0
            for start in range(0, n, config.batch_size):
                batch = images[order[start:start + config.batch_size]]
                optimizer.zero_grad()
                x_hat, mu, logvar = vae.forward(batch, rng)
                total, grad_x_hat, grad_mu, grad_logvar = nn.vae_loss(
                    batch, x_hat, mu, logvar,
                    recon_weight=config.recon_weight,
                    kl_weight=config.kl_weight)
                recon = total - config.kl_weight * nn.kl_standard_normal(mu, logvar)[0]
                vae.backward(grad_x_hat, grad_mu, grad_logvar)
                nn.clip_grad_norm(vae.parameters(), config.grad_clip)
                optimizer.step()
                epoch_total += total
                epoch_recon += recon
                epoch_kl += total - recon
                batches += 1
            history.total.append(epoch_total / batches)
            history.reconstruction.append(epoch_recon / batches)
            history.kl.append(epoch_kl / batches)
            if epoch_hist is not None:
                epoch_hist.observe(obs.clock.now() - e0)
    return history


def extract_features(
    vae: ConvVAE, frames: np.ndarray, chunk_size: int | None = None,
) -> np.ndarray:
    """Embed RGB frames ``(N, H, W, 3)`` into ``(N, latent_dim)`` features.

    ``chunk_size`` embeds the frames in batches of that many.  Each frame's
    embedding is an independent row of the underlying GEMMs, so chunked and
    whole-batch extraction are bit-identical — which is what lets the
    parallel server build fan chunks out across workers.
    """
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    batch = frames_to_batch(frames, vae.input_size)
    if chunk_size is None or chunk_size >= batch.shape[0]:
        return vae.embed(batch)
    return np.concatenate(
        [vae.embed(batch[start:start + chunk_size])
         for start in range(0, batch.shape[0], chunk_size)], axis=0)
