"""Super-resolution: EDSR models, training, configurations, and the
minimum-working-model search."""

from .bicubic import BicubicSR
from .configs import (
    DCSR_CONFIGS,
    MICRO_TIERS,
    QUALITY_BIG_CONFIG,
    QUALITY_MICRO_GRID,
    RESOLUTIONS,
    TABLE1_FILTERS,
    TABLE1_RESBLOCKS,
    TIER_NAMES,
    Resolution,
    big_model_config,
    dcsr_config,
    micro_tier_config,
)
from .edsr import EDSR, EdsrConfig
from .engine import (ENGINE_KERNELS, EngineStats, InferenceEngine,
                     SkipGateConfig, TileReuseCache, TileReuseConfig,
                     receptive_field_radius)
from .quantize import (QUANT_PRECISIONS, CalibrationResult, ReuseCalibration,
                       calibrate_quantized, calibrate_reuse)
from .min_model import (
    MinModelSearch,
    config_grid,
    find_minimum_working_model,
    model_size_table,
)
from .patches import frames_to_nchw, sample_patch_pairs
from .trainer import (
    SrHistory,
    SrTrainConfig,
    evaluate_sr,
    train_sr,
    training_flops_estimate,
)

__all__ = [
    "EDSR",
    "EdsrConfig",
    "InferenceEngine",
    "EngineStats",
    "SkipGateConfig",
    "TileReuseConfig",
    "TileReuseCache",
    "ENGINE_KERNELS",
    "QUANT_PRECISIONS",
    "CalibrationResult",
    "calibrate_quantized",
    "ReuseCalibration",
    "calibrate_reuse",
    "receptive_field_radius",
    "BicubicSR",
    "DCSR_CONFIGS",
    "MICRO_TIERS",
    "TIER_NAMES",
    "micro_tier_config",
    "dcsr_config",
    "big_model_config",
    "Resolution",
    "RESOLUTIONS",
    "TABLE1_FILTERS",
    "TABLE1_RESBLOCKS",
    "QUALITY_BIG_CONFIG",
    "QUALITY_MICRO_GRID",
    "SrTrainConfig",
    "SrHistory",
    "train_sr",
    "evaluate_sr",
    "training_flops_estimate",
    "sample_patch_pairs",
    "frames_to_nchw",
    "MinModelSearch",
    "config_grid",
    "find_minimum_working_model",
    "model_size_table",
]
