"""Build-time quantization calibration for micro models.

The compiler co-design line of work overfits *kernels* to content the way
dcSR overfits models; the practical slice of that idea here is a
calibration pass the server runs after training each cluster model: for
every reduced precision it measures, on the cluster's own calibration
I-frames, exactly how much quality quantization costs relative to the
fp32 forward — ``delta_db = PSNR(fp32 out, reference) - PSNR(quantized
out, reference)`` — and how many bytes the quantized checkpoint ships.
The results land in the manifest
(:class:`~repro.core.manifest.QuantizationRecord`), so a client (or an
operator) can pick a precision against a stated quality budget instead
of a hoped-for one.

Scales never leave the server: int8 per-output-channel weight scales and
fp16 rounding both derive deterministically from the fp32 weights
(``Conv2d.packed(precision)``), so the checkpoint a client downloads is
sufficient to reconstruct bit-identical quantized kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..video.quality import psnr
from .edsr import EDSR
from .engine import InferenceEngine, TileReuseConfig

__all__ = ["QUANT_PRECISIONS", "CalibrationResult", "calibrate_quantized",
           "ReuseCalibration", "calibrate_reuse"]

#: The reduced precisions the calibration pass measures by default.
QUANT_PRECISIONS = ("fp16", "int8")

# PSNRs are clamped here before differencing so a perfect reconstruction
# (infinite PSNR) still yields a finite, JSON-serializable delta.
_PSNR_CLAMP_DB = 99.0


@dataclass(frozen=True)
class CalibrationResult:
    """One (model, precision) calibration measurement."""

    precision: str
    size_bytes: int
    delta_db: float
    psnr_fp32: float
    psnr_quant: float


def _clamped_psnr(a: np.ndarray, b: np.ndarray) -> float:
    return float(min(psnr(a, b), _PSNR_CLAMP_DB))


def calibrate_quantized(
    model: EDSR, lq_frames: np.ndarray, hr_frames: np.ndarray,
    precisions: tuple[str, ...] = QUANT_PRECISIONS, max_frames: int = 4,
) -> dict[str, CalibrationResult]:
    """Measure the per-precision PSNR delta and checkpoint size of ``model``.

    ``lq_frames`` / ``hr_frames`` are ``(N, H, W, 3)`` float frames — the
    decoded low-quality inputs and pristine references of the cluster the
    model was trained on (at most ``max_frames`` are used; calibration
    needs representative content, not the whole cluster).  Returns
    ``{precision: CalibrationResult}``.
    """
    lq = np.asarray(lq_frames, dtype=np.float32)[:max_frames]
    hr = np.asarray(hr_frames, dtype=np.float32)[:max_frames]
    if lq.ndim != 4 or hr.ndim != 4:
        raise ValueError("calibration frames must be (N, H, W, 3) batches")
    if len(lq) == 0:
        raise ValueError("calibration needs at least one frame")

    ref_out = InferenceEngine(model).enhance_batch(lq)
    psnr_fp32 = _clamped_psnr(ref_out, hr)

    results: dict[str, CalibrationResult] = {}
    for precision in precisions:
        engine = InferenceEngine(model, precision=precision)
        quant_out = engine.enhance_batch(lq)
        psnr_quant = _clamped_psnr(quant_out, hr)
        results[precision] = CalibrationResult(
            precision=precision,
            size_bytes=nn.quantized_size_bytes(model, precision),
            delta_db=psnr_fp32 - psnr_quant,
            psnr_fp32=psnr_fp32,
            psnr_quant=psnr_quant,
        )
    return results


@dataclass(frozen=True)
class ReuseCalibration:
    """One (model, reuse tolerance) calibration measurement.

    Mirrors :class:`CalibrationResult` for the temporal reuse gate: the
    tolerance a session plays with carries a *measured* PSNR budget, not a
    hoped-for one.  ``reuse_rate`` is the fraction of (frame, tile) pairs
    emitted from the cache on the calibration sequence; at tolerance 0 the
    delta is exactly 0.0 by construction (exact reuse is bitwise).
    """

    tolerance: float
    reuse_rate: float
    delta_db: float
    psnr_exact: float
    psnr_reuse: float


def calibrate_reuse(
    model: EDSR, lq_frames: np.ndarray, hr_frames: np.ndarray,
    tolerance: float, tile: int | None = None, max_frames: int = 8,
) -> ReuseCalibration:
    """Measure the PSNR cost and hit rate of tolerance-mode reuse.

    ``lq_frames`` must be a temporally ordered ``(N, H, W, 3)`` sequence —
    reuse is a cross-frame gate, so calibration needs consecutive frames,
    unlike the per-frame quantization pass.  The frames run through one
    engine with the reuse cache enabled (and once without), and the delta
    is ``PSNR(no-reuse out, reference) - PSNR(reuse out, reference)``.
    """
    lq = np.asarray(lq_frames, dtype=np.float32)[:max_frames]
    hr = np.asarray(hr_frames, dtype=np.float32)[:max_frames]
    if lq.ndim != 4 or hr.ndim != 4:
        raise ValueError("calibration frames must be (N, H, W, 3) batches")
    if len(lq) < 2:
        raise ValueError("reuse calibration needs at least two consecutive "
                         "frames")

    exact_out = InferenceEngine(model, tile=tile).enhance_batch(lq)
    psnr_exact = _clamped_psnr(exact_out, hr)

    engine = InferenceEngine(model, tile=tile,
                             reuse=TileReuseConfig(tolerance=tolerance))
    reuse_out = engine.enhance_batch(lq)
    stats = engine.stats
    total = stats.tile_count + stats.skipped_tiles + stats.reused_tiles
    psnr_reuse = _clamped_psnr(reuse_out, hr)
    return ReuseCalibration(
        tolerance=float(tolerance),
        reuse_rate=stats.reused_tiles / max(total, 1),
        delta_db=psnr_exact - psnr_reuse,
        psnr_exact=psnr_exact,
        psnr_reuse=psnr_reuse,
    )
