"""Patch sampling for SR training.

SR models train on small aligned LR/HR patch pairs rather than whole
frames; dcSR's micro models train this way on each cluster's I frames only.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sample_patch_pairs", "frames_to_nchw"]


def frames_to_nchw(frames: np.ndarray) -> np.ndarray:
    """Convert ``(N, H, W, 3)`` RGB frames to NCHW float32."""
    if frames.ndim != 4 or frames.shape[-1] != 3:
        raise ValueError(f"expected (N, H, W, 3) frames, got {frames.shape}")
    return np.ascontiguousarray(frames.transpose(0, 3, 1, 2)).astype(np.float32)


def sample_patch_pairs(
    lr_frames: np.ndarray, hr_frames: np.ndarray, patch_size: int,
    n_patches: int, rng: np.random.Generator, scale: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample aligned random patch pairs.

    Parameters
    ----------
    lr_frames:
        ``(N, h, w, 3)`` degraded frames (the network input).
    hr_frames:
        ``(N, h*scale, w*scale, 3)`` ground-truth frames.
    patch_size:
        LR patch side; the HR patch is ``patch_size * scale``.

    Returns ``(lr_patches, hr_patches)`` in NCHW layout.
    """
    if lr_frames.ndim != 4 or hr_frames.ndim != 4:
        raise ValueError("frames must be (N, H, W, 3) arrays")
    n, h, w = lr_frames.shape[:3]
    if hr_frames.shape[0] != n:
        raise ValueError(
            f"LR and HR frame counts differ: {n} vs {hr_frames.shape[0]}")
    if hr_frames.shape[1] != h * scale or hr_frames.shape[2] != w * scale:
        raise ValueError(
            f"HR frames {hr_frames.shape[1:3]} are not {scale}x the LR "
            f"frames {(h, w)}")
    if patch_size > h or patch_size > w:
        raise ValueError(f"patch size {patch_size} exceeds frame size {(h, w)}")
    if n_patches < 1:
        raise ValueError("n_patches must be >= 1")

    lr_out = np.empty((n_patches, 3, patch_size, patch_size), dtype=np.float32)
    hp = patch_size * scale
    hr_out = np.empty((n_patches, 3, hp, hp), dtype=np.float32)
    frame_idx = rng.integers(0, n, size=n_patches)
    ys = rng.integers(0, h - patch_size + 1, size=n_patches)
    xs = rng.integers(0, w - patch_size + 1, size=n_patches)
    for i, (f, y, x) in enumerate(zip(frame_idx, ys, xs)):
        lr_out[i] = lr_frames[f, y:y + patch_size, x:x + patch_size].transpose(2, 0, 1)
        hy, hx = y * scale, x * scale
        hr_out[i] = hr_frames[f, hy:hy + hp, hx:hx + hp].transpose(2, 0, 1)
    return lr_out, hr_out
