"""Minimum-working-model search (Appendix A.1).

Walks a configuration grid in ascending model size, training each candidate
on the video's I frames, and returns the first configuration whose SR
quality is within a tolerance of the big model's — that configuration
bounds K via Eq. (3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .configs import TABLE1_FILTERS, TABLE1_RESBLOCKS
from .edsr import EDSR, EdsrConfig
from .trainer import SrTrainConfig, evaluate_sr, train_sr

__all__ = ["config_grid", "model_size_table", "MinModelSearch",
           "find_minimum_working_model"]


def config_grid(
    filters: tuple[int, ...] = TABLE1_FILTERS,
    resblocks: tuple[int, ...] = TABLE1_RESBLOCKS,
    scale: int = 1,
) -> list[EdsrConfig]:
    """All (n_filters, n_resblocks) combinations, ascending by model size."""
    configs = [
        EdsrConfig(n_resblocks=rb, n_filters=f, scale=scale)
        for f in filters for rb in resblocks
    ]
    return sorted(configs, key=lambda c: EDSR(c).size_bytes())


def model_size_table(
    filters: tuple[int, ...] = TABLE1_FILTERS,
    resblocks: tuple[int, ...] = TABLE1_RESBLOCKS,
    scale: int = 1,
) -> dict[tuple[int, int], float]:
    """Table 1: ``(n_filters, n_resblocks) -> size in MB``."""
    return {
        (f, rb): EDSR(EdsrConfig(n_resblocks=rb, n_filters=f,
                                 scale=scale)).size_mb()
        for f in filters for rb in resblocks
    }


@dataclass
class MinModelSearch:
    """Result of the minimum-working-model search."""

    config: EdsrConfig
    psnr: float
    target_psnr: float
    evaluated: list[tuple[EdsrConfig, float]] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return EDSR(self.config).size_bytes()


def find_minimum_working_model(
    lr_frames: np.ndarray, hr_frames: np.ndarray, big_psnr: float,
    grid: list[EdsrConfig], tolerance_db: float = 1.0,
    train_config: SrTrainConfig | None = None, seed: int = 0,
) -> MinModelSearch:
    """Find the smallest configuration within ``tolerance_db`` of the big
    model's PSNR on the same frames.

    ``grid`` must be sorted ascending by size (see :func:`config_grid`).
    Falls back to the best-scoring candidate if none reaches the target
    (the paper then deploys K = 1).
    """
    if not grid:
        raise ValueError("configuration grid is empty")
    target = big_psnr - tolerance_db
    evaluated: list[tuple[EdsrConfig, float]] = []
    best: tuple[EdsrConfig, float] | None = None
    for config in grid:
        model = EDSR(config, seed=seed)
        train_sr(model, lr_frames, hr_frames, train_config)
        score = evaluate_sr(model, lr_frames, hr_frames)["psnr"]
        evaluated.append((config, score))
        if best is None or score > best[1]:
            best = (config, score)
        if score >= target:
            return MinModelSearch(config=config, psnr=score,
                                  target_psnr=target, evaluated=evaluated)
    return MinModelSearch(config=best[0], psnr=best[1], target_psnr=target,
                          evaluated=evaluated)
