"""Tiled client-side inference engine for micro EDSR models.

This is the fast path behind real-time playback (the paper's >30 FPS
client claim): the training framework's per-layer NCHW forward is replaced
by a single NHWC sweep over the network using the tap-decomposed GEMM
kernel (:func:`repro.nn.functional.conv2d_shift_nhwc`) with the bias /
ReLU / residual epilogues fused into each convolution.  Three properties
make it fast on CPU:

- **NHWC end to end** — an ``(H, W, 3)`` RGB frame enters as a zero-copy
  ``(1, H, W, 3)`` view; there are no layout transposes anywhere in the
  forward, and every per-row GEMM runs over contiguous channel vectors.
- **No im2col materialization** — each 3x3 conv is nine ``(W, Cin) @
  (Cin, Cout)`` GEMMs on shifted views of the padded input, so the
  activation is read from cache-resident rows instead of a 9x-inflated
  patch matrix.
- **Zero retention** — nothing is cached for a backward pass; peak memory
  is a handful of activation-sized buffers (and with tiling, a handful of
  *tile*-sized buffers).

Weights are pre-packed per conv layer (``Conv2d.packed``), built once at
model load and invalidated automatically when a weight updates, so a
model that fine-tunes between segments never infers with stale taps.

Tiling splits the frame into a grid of tiles, each expanded by a halo of
:func:`receptive_field_radius` input pixels.  Because the halo covers the
receptive field of every retained output pixel, cropping the halo after
inference reproduces whole-frame output exactly (up to float32
reassociation, well below the guaranteed 1e-5); frame borders keep the
reference zero-padding because there the tile edge *is* the frame edge.
Tiles bound peak working-set memory and are independent, so they can fan
out across a thread pool (the GEMMs release the GIL).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .. import nn
from ..nn import functional as F
from .edsr import _PIXEL_SHIFT, EDSR, EdsrConfig

__all__ = ["InferenceEngine", "EngineStats", "receptive_field_radius"]


def receptive_field_radius(config: EdsrConfig) -> int:
    """Halo (in input pixels) covering one output pixel's receptive field.

    Each convolution at spatial resolution ``f`` times the input adds
    ``(k // 2) / f`` input pixels of dependence: the head, the two convs of
    every residual block, and the body tail conv all run at ``f = 1``; the
    upsampler's convs run at ``f = 2^i`` (3x3 kernels); the tail output
    conv runs at ``f = scale``.  The sum is rounded up — a conservative
    halo only costs overlap compute, never correctness.
    """
    k = config.kernel_size
    radius = float((k // 2) * (2 + 2 * config.n_resblocks))
    scale = config.scale
    if scale > 1:
        if scale & (scale - 1) == 0:            # chain of x2 stages
            radius += sum(1.0 / 2 ** i for i in range(int(math.log2(scale))))
        elif scale == 3:
            radius += 1.0
        else:
            raise ValueError(f"unsupported upsampling scale {scale}")
    radius += (k // 2) / scale
    return int(math.ceil(radius - 1e-9))


@dataclass
class EngineStats:
    """Counters from the most recent :meth:`InferenceEngine.enhance` call."""

    tile_count: int = 0
    frames: int = 0
    flops: float = 0.0

    def per_frame(self) -> "EngineStats":
        """One frame's share of a batched call's counters.

        Cross-session batching (:class:`repro.serve.BatchingInferenceEngine`)
        runs N sessions' frames through one call and attributes the stats
        back per session: FLOPs split evenly, while the tile count stays
        whole — every frame passes through the full tile grid.
        """
        return EngineStats(tile_count=self.tile_count, frames=1,
                           flops=self.flops / max(1, self.frames))


class InferenceEngine:
    """Zero-retention NHWC executor for one :class:`EDSR` model.

    Parameters
    ----------
    model:
        The EDSR instance to run.  Its structure is validated once here;
        packed weights are always read through the model's conv layers, so
        weight updates between calls are picked up automatically.
    tile:
        Tile edge in input pixels, or ``None`` for whole-frame execution.
        Tiles are expanded by :attr:`halo` pixels of overlap on interior
        edges; output is equivalent to whole-frame inference.
    threads:
        Worker threads tiles fan out across (1 = run in the caller).
        Results are written to disjoint output regions, so any thread
        count produces identical frames.
    obs:
        Optional :class:`~repro.obs.Observability`; every call then
        accumulates its tile / frame / FLOP counts into the
        ``dcsr_sr_tiles_total`` / ``dcsr_sr_frames_total`` /
        ``dcsr_sr_flops_total`` counters (per-call numbers stay in
        :attr:`stats`).
    """

    def __init__(self, model: EDSR, tile: int | None = None,
                 threads: int = 1, obs=None):
        if tile is not None and tile < 1:
            raise ValueError("tile must be >= 1 pixel")
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.model = model
        self.tile = tile
        self.threads = int(threads)
        self.obs = obs
        self.halo = receptive_field_radius(model.config)
        self.scale = model.config.scale
        self.stats = EngineStats()
        self._plan = self._build_plan(model)

    def _count_stats(self) -> None:
        if self.obs is None:
            return
        metrics = self.obs.metrics
        metrics.counter("dcsr_sr_tiles_total",
                        "SR tiles executed").inc(self.stats.tile_count)
        metrics.counter("dcsr_sr_frames_total",
                        "Frames enhanced by the engine").inc(self.stats.frames)
        metrics.counter("dcsr_sr_flops_total",
                        "Forward FLOPs executed").inc(self.stats.flops)

    # ------------------------------------------------------------- planning

    @staticmethod
    def _build_plan(model: EDSR) -> list[tuple]:
        """Flatten the EDSR graph into fused NHWC ops.

        Validates the structure the executor assumes (head conv, global
        skip over residual blocks + tail conv, upsampler, output conv) so
        a mismatched model fails loudly at engine construction, not with
        silently wrong frames.
        """
        def conv_of(layer, where):
            if not isinstance(layer, nn.Conv2d):
                raise TypeError(f"expected Conv2d at {where}, got "
                                f"{type(layer).__name__}")
            if layer.stride != 1:
                raise ValueError(f"engine supports stride 1 only ({where})")
            return layer

        plan: list[tuple] = [("conv", conv_of(model.head, "head"))]
        body = model.body.inner.layers
        for i, block in enumerate(body[:-1]):
            if not isinstance(block, nn.ResidualBlock):
                raise TypeError(f"expected ResidualBlock in body[{i}]")
            conv1, relu, conv2, scale = block.body.layers
            if not isinstance(relu, nn.ReLU) or not isinstance(scale, nn.Scale):
                raise TypeError(f"unexpected residual block layout in body[{i}]")
            plan.append(("resblock",
                         conv_of(conv1, f"body[{i}].conv1"),
                         conv_of(conv2, f"body[{i}].conv2"),
                         scale.value))
        plan.append(("conv_skip", conv_of(body[-1], "body.tailconv")))
        upsampler, out_conv = model.tail.layers
        for layer in upsampler.body.layers:
            if isinstance(layer, nn.PixelShuffle):
                plan.append(("shuffle", layer.scale))
            else:
                plan.append(("conv", conv_of(layer, "tail.upsampler")))
        plan.append(("conv", conv_of(out_conv, "tail.out")))
        return plan

    def flops_per_pixel(self) -> float:
        """Forward FLOPs per *input* pixel (multiply-add = 2 FLOPs)."""
        total = 0.0
        res = 1.0
        for op in self._plan:
            convs = [c for c in op[1:] if isinstance(c, nn.Conv2d)]
            if op[0] == "shuffle":
                res *= op[1]
            for conv in convs:
                cout, cin, kh, kw = conv.weight.shape
                total += 2.0 * cin * kh * kw * cout * res * res
        return total

    # ------------------------------------------------------------ execution

    def _forward(self, x: np.ndarray) -> np.ndarray:
        """Run the fused plan on one NHWC tensor (a frame batch or a tile)."""
        conv = F.conv2d_shift_nhwc
        x = conv(x - _PIXEL_SHIFT, self._plan[0][1].packed())   # head
        skip = x                                                # global skip
        for op in self._plan[1:]:
            kind = op[0]
            if kind == "resblock":
                t = conv(x, op[1].packed(), relu=True)
                x = conv(t, op[2].packed(), residual=x, res_scale=op[3])
            elif kind == "conv_skip":
                x = conv(x, op[1].packed(), residual=skip)
            elif kind == "conv":
                x = conv(x, op[1].packed())
            else:                       # shuffle
                x = F.pixel_shuffle_nhwc(x, op[1])
        x += _PIXEL_SHIFT
        return x

    def infer_nhwc(self, x: np.ndarray) -> np.ndarray:
        """Enhance an ``(N, H, W, C)`` float32 batch; returns NHWC scaled by
        ``config.scale``, tiled/threaded per the engine configuration."""
        n, h, w, _ = x.shape
        s = self.scale
        tile = self.tile
        if tile is None or (tile >= h and tile >= w):
            self.stats = EngineStats(tile_count=1, frames=n,
                                     flops=self.flops_per_pixel() * n * h * w)
            self._count_stats()
            return self._forward(x)

        spans = []
        for y0 in range(0, h, tile):
            for x0 in range(0, w, tile):
                spans.append((y0, min(y0 + tile, h), x0, min(x0 + tile, w)))
        out = np.empty((n, h * s, w * s, self.model.config.in_channels),
                       dtype=np.float32)
        halo = self.halo

        def run_tile(span):
            y0, y1, x0, x1 = span
            ey0, ex0 = max(0, y0 - halo), max(0, x0 - halo)
            ey1, ex1 = min(h, y1 + halo), min(w, x1 + halo)
            result = self._forward(x[:, ey0:ey1, ex0:ex1, :])
            out[:, y0 * s:y1 * s, x0 * s:x1 * s, :] = result[
                :, (y0 - ey0) * s:(y1 - ey0) * s,
                (x0 - ex0) * s:(x1 - ex0) * s, :]

        if self.threads > 1 and len(spans) > 1:
            from concurrent.futures import ThreadPoolExecutor
            for op in self._plan:       # pre-pack outside the worker race
                for layer in op[1:]:
                    if isinstance(layer, nn.Conv2d):
                        layer.packed()
            with ThreadPoolExecutor(max_workers=self.threads) as pool:
                list(pool.map(run_tile, spans))
        else:
            for span in spans:
                run_tile(span)
        self.stats = EngineStats(tile_count=len(spans), frames=n,
                                 flops=self.flops_per_pixel() * n * h * w)
        self._count_stats()
        return out

    def enhance(self, rgb: np.ndarray) -> np.ndarray:
        """Fast-path counterpart of :meth:`EDSR.enhance` — same contract,
        ``(H, W, 3)`` float RGB in and out."""
        if rgb.ndim != 3 or rgb.shape[2] != 3:
            raise ValueError(f"expected (H, W, 3) RGB frame, got {rgb.shape}")
        x = np.asarray(rgb, dtype=np.float32)[None]
        out = self.infer_nhwc(x)[0]
        return np.clip(out, 0.0, 1.0, out=out)

    def enhance_batch(self, frames: np.ndarray) -> np.ndarray:
        """Fast-path counterpart of :meth:`EDSR.enhance_batch`."""
        if frames.ndim != 4 or frames.shape[3] != 3:
            raise ValueError(f"expected (N, H, W, 3) frames, got {frames.shape}")
        out = self.infer_nhwc(np.asarray(frames, dtype=np.float32))
        return np.clip(out, 0.0, 1.0, out=out)
