"""Tiled client-side inference engine for micro EDSR models.

This is the fast path behind real-time playback (the paper's >30 FPS
client claim): the training framework's per-layer NCHW forward is replaced
by a single NHWC sweep over the network using the tap-decomposed GEMM
kernel (:func:`repro.nn.functional.conv2d_shift_nhwc`) with the bias /
ReLU / residual epilogues fused into each convolution.  Three properties
make it fast on CPU:

- **NHWC end to end** — an ``(H, W, 3)`` RGB frame enters as a zero-copy
  ``(1, H, W, 3)`` view; there are no layout transposes anywhere in the
  forward, and every per-row GEMM runs over contiguous channel vectors.
- **No im2col materialization** — each 3x3 conv is nine ``(W, Cin) @
  (Cin, Cout)`` GEMMs on shifted views of the padded input, so the
  activation is read from cache-resident rows instead of a 9x-inflated
  patch matrix.
- **Zero retention** — nothing is cached for a backward pass; peak memory
  is a handful of activation-sized buffers (and with tiling, a handful of
  *tile*-sized buffers).

Weights are pre-packed per conv layer (``Conv2d.packed``), built once at
model load and invalidated automatically when a weight updates, so a
model that fine-tunes between segments never infers with stale taps.

Tiling splits the frame into a grid of tiles, each expanded by a halo of
:func:`receptive_field_radius` input pixels.  Because the halo covers the
receptive field of every retained output pixel, cropping the halo after
inference reproduces whole-frame output exactly (up to float32
reassociation, well below the guaranteed 1e-5); frame borders keep the
reference zero-padding because there the tile edge *is* the frame edge.
Tiles bound peak working-set memory and are independent, so they can fan
out across a thread pool (the GEMMs release the GIL).
"""

from __future__ import annotations

import math
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .. import nn
from ..nn import functional as F
from ..video.sampling import upscale
from .edsr import _PIXEL_SHIFT, EDSR, EdsrConfig

__all__ = ["InferenceEngine", "EngineStats", "SkipGateConfig",
           "TileReuseConfig", "TileReuseCache", "ENGINE_KERNELS",
           "receptive_field_radius"]

#: Conv kernels the engine can route the fused plan through: the
#: tap-decomposed shift kernel (default) or the cache-blocked im2col GEMM.
ENGINE_KERNELS = ("shift", "blocked")


def receptive_field_radius(config: EdsrConfig) -> int:
    """Halo (in input pixels) covering one output pixel's receptive field.

    Each convolution at spatial resolution ``f`` times the input adds
    ``(k // 2) / f`` input pixels of dependence: the head, the two convs of
    every residual block, and the body tail conv all run at ``f = 1``; the
    upsampler's convs run at ``f = 2^i`` (3x3 kernels); the tail output
    conv runs at ``f = scale``.  The sum is rounded up — a conservative
    halo only costs overlap compute, never correctness.
    """
    k = config.kernel_size
    radius = float((k // 2) * (2 + 2 * config.n_resblocks))
    scale = config.scale
    if scale > 1:
        if scale & (scale - 1) == 0:            # chain of x2 stages
            radius += sum(1.0 / 2 ** i for i in range(int(math.log2(scale))))
        elif scale == 3:
            radius += 1.0
        else:
            raise ValueError(f"unsupported upsampling scale {scale}")
    radius += (k // 2) / scale
    return int(math.ceil(radius - 1e-9))


@dataclass(frozen=True)
class SkipGateConfig:
    """Content gate that routes low-detail tiles around the network.

    Before running a tile through the model, the engine measures the
    variance of the tile's channel-mean ("luma") interior per frame; tiles
    whose variance falls below ``var_threshold`` carry too little texture
    for SR to improve and are upscaled bicubically (scale 1: passed
    through) instead.  ``var_threshold`` is in squared [0, 1] intensity
    units: flat synthetic backgrounds sit below 1e-5 while natural texture
    measures 1e-3 and up, so the 2e-4 default skips only genuinely flat
    content.  Skipped work is visible as :attr:`EngineStats.skipped_tiles`
    and the ``dcsr_sr_skipped_tiles_total`` counter.
    """

    var_threshold: float = 2e-4

    def __post_init__(self):
        if self.var_threshold < 0.0:
            raise ValueError("var_threshold must be >= 0")


@dataclass(frozen=True)
class TileReuseConfig:
    """Temporal reuse gate: emit the previous frame's SR output for tiles
    whose decoded LR content did not change.

    ``tolerance`` is the max-abs-diff (in [0, 1] intensity units) under
    which a tile still counts as "the same content".  At the default
    ``0.0`` the engine reuses only on *bitwise-identical* LR content, which
    makes the enhanced output bitwise-identical to running without reuse;
    a small positive tolerance (e.g. ``2/255``) also reuses across sensor /
    codec noise on near-static content and carries a calibrated PSNR
    budget (see :func:`repro.sr.calibrate_reuse`), mirroring how quantized
    precisions carry theirs.

    ``max_tiles`` bounds the cache (LRU eviction); it is the number of
    resident tile entries, each holding one halo-expanded LR region and
    its SR output.  The budget is mandatory — an unbounded cache in a
    long-lived player session is a memory leak, and a tier-1 guard rejects
    unbounded construction in non-test code.
    """

    tolerance: float = 0.0
    max_tiles: int = 256

    def __post_init__(self):
        if self.tolerance < 0.0:
            raise ValueError("tolerance must be >= 0")
        if self.max_tiles is None or int(self.max_tiles) < 1:
            raise ValueError("max_tiles must be a positive tile budget "
                             "(the reuse cache is always bounded)")


@dataclass
class _ReuseEntry:
    """One cached tile: interior fingerprint, halo-expanded LR region, and
    the SR output emitted for it."""

    fingerprint: int
    region: np.ndarray
    output: np.ndarray


def _tile_fingerprint(interior: np.ndarray) -> int:
    """Cheap rolling hash (crc32) over a tile's interior bytes — the
    quick-reject for exact-mode cache lookups."""
    return zlib.crc32(np.ascontiguousarray(interior))


class TileReuseCache:
    """Bounded per-engine LRU cache of tile LR content and SR output.

    Keys are tile spans ``(y0, y1, x0, x1)`` in input coordinates, so the
    grid of one frame size maps to stable slots.  ``max_tiles`` is
    mandatory; insertion past the budget evicts the least recently used
    entry, and :attr:`peak_resident` records the high-water mark (never
    above the budget).  Thread-safe: tile workers of one engine call may
    look up and store concurrently.
    """

    def __init__(self, max_tiles: int):
        if max_tiles is None:
            raise ValueError("TileReuseCache requires a tile budget "
                             "(max_tiles); unbounded caches are not allowed")
        max_tiles = int(max_tiles)
        if max_tiles < 1:
            raise ValueError("max_tiles must be >= 1")
        self.max_tiles = max_tiles
        self.peak_resident = 0
        self._entries: OrderedDict[tuple, _ReuseEntry] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> _ReuseEntry | None:
        """The entry under ``key`` (refreshed as most recently used)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: tuple, entry: _ReuseEntry) -> None:
        """Insert/replace ``key``, evicting LRU entries past the budget."""
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_tiles:
                self._entries.popitem(last=False)
            self.peak_resident = max(self.peak_resident, len(self._entries))

    def reset(self) -> None:
        """Drop every entry (segment/GOP boundary, seek, concealment)."""
        with self._lock:
            self._entries.clear()


@dataclass
class EngineStats:
    """Counters from the most recent :meth:`InferenceEngine.enhance` call.

    ``tile_count`` counts (frame, tile) pairs that ran through the model —
    a whole-frame batch of N frames counts N, an N-frame call over a
    T-tile grid counts up to ``N * T``.  ``skipped_tiles`` counts the
    (frame, tile) pairs the variance gate routed to bicubic instead, and
    ``reused_tiles`` the pairs emitted from the temporal reuse cache, so
    the three-way gate invariant
    ``tile_count + skipped_tiles + reused_tiles == N * T`` always holds.
    """

    tile_count: int = 0
    frames: int = 0
    flops: float = 0.0
    skipped_tiles: int = 0
    reused_tiles: int = 0

    def per_frame(self, index: int = 0) -> "EngineStats":
        """Frame ``index``'s share of a batched call's counters.

        Cross-session batching (:class:`repro.serve.BatchingInferenceEngine`)
        runs N sessions' frames through one call and attributes the stats
        back per session.  Shares are sum-consistent: summing
        ``per_frame(i)`` over ``i in range(frames)`` reproduces the
        aggregate exactly — FLOPs split evenly, integer counters split
        evenly with the remainder attributed to the lowest frame indices.
        """
        f = max(1, self.frames)

        def split(count: int) -> int:
            return count // f + (1 if index < count % f else 0)

        return EngineStats(tile_count=split(self.tile_count), frames=1,
                           flops=self.flops / f,
                           skipped_tiles=split(self.skipped_tiles),
                           reused_tiles=split(self.reused_tiles))


class InferenceEngine:
    """Zero-retention NHWC executor for one :class:`EDSR` model.

    Parameters
    ----------
    model:
        The EDSR instance to run.  Its structure is validated once here;
        packed weights are always read through the model's conv layers, so
        weight updates between calls are picked up automatically.
    tile:
        Tile edge in input pixels, or ``None`` for whole-frame execution.
        Tiles are expanded by :attr:`halo` pixels of overlap on interior
        edges; output is equivalent to whole-frame inference.
    threads:
        Worker threads tiles fan out across (1 = run in the caller).
        Results are written to disjoint output regions, so any thread
        count produces identical frames.
    obs:
        Optional :class:`~repro.obs.Observability`; every call then
        accumulates its tile / frame / FLOP counts into the
        ``dcsr_sr_tiles_total`` / ``dcsr_sr_frames_total`` /
        ``dcsr_sr_flops_total`` / ``dcsr_sr_skipped_tiles_total``
        counters (per-call numbers stay in :attr:`stats`).
    precision:
        ``"fp32"`` (default, bitwise-identical to the original engine),
        ``"fp16"`` or ``"int8"`` — routes every conv through the
        reduced-precision GEMM kernels
        (:func:`repro.nn.functional.conv2d_shift_nhwc_quant`) with packed
        operands cached per precision on each layer.
    skip_gate:
        ``None`` (default — off, the execution path is unchanged) or a
        :class:`SkipGateConfig` / plain variance threshold routing
        low-detail tiles to bicubic upscaling.
    reuse:
        ``None`` (default — off) or a :class:`TileReuseConfig` / ``True``
        (exact mode) / plain float tolerance enabling the temporal tile
        reuse cache.  The three gates share one dispatch path per tile:
        ``reuse`` (emit cached SR output for unchanged content) →
        ``skip`` (bicubic for low-detail) → the (possibly quantized) conv
        stack.  Exact mode is bitwise-identical to running without reuse.
    kernel:
        ``"shift"`` (default, the tap-decomposed kernel — bitwise-identical
        to previous engines) or ``"blocked"`` — the cache-blocked im2col
        GEMM (:func:`repro.nn.functional.conv2d_im2col_nhwc`).
    """

    def __init__(self, model: EDSR, tile: int | None = None,
                 threads: int = 1, obs=None, precision: str = "fp32",
                 skip_gate: SkipGateConfig | float | None = None,
                 reuse: TileReuseConfig | float | bool | None = None,
                 kernel: str = "shift"):
        if tile is not None and tile < 1:
            raise ValueError("tile must be >= 1 pixel")
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if precision not in F.PRECISIONS:
            raise ValueError(f"unknown precision {precision!r}; "
                             f"expected one of {F.PRECISIONS}")
        if kernel not in ENGINE_KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; "
                             f"expected one of {ENGINE_KERNELS}")
        if isinstance(skip_gate, (int, float)) and not isinstance(skip_gate, bool):
            skip_gate = SkipGateConfig(var_threshold=float(skip_gate))
        if skip_gate is not None and not isinstance(skip_gate, SkipGateConfig):
            raise TypeError("skip_gate must be a SkipGateConfig, a float "
                            "threshold, or None")
        if reuse is True:
            reuse = TileReuseConfig()
        elif reuse is False:
            reuse = None
        elif isinstance(reuse, (int, float)) and not isinstance(reuse, bool):
            reuse = TileReuseConfig(tolerance=float(reuse))
        if reuse is not None and not isinstance(reuse, TileReuseConfig):
            raise TypeError("reuse must be a TileReuseConfig, a float "
                            "tolerance, a bool, or None")
        self.model = model
        self.tile = tile
        self.threads = int(threads)
        self.obs = obs
        self.precision = precision
        self.skip_gate = skip_gate
        self.reuse = reuse
        self.kernel = kernel
        self.reuse_cache = (TileReuseCache(reuse.max_tiles)
                            if reuse is not None else None)
        self.halo = receptive_field_radius(model.config)
        self.scale = model.config.scale
        self.stats = EngineStats()
        self._plan = self._build_plan(model)

    def reset_reuse(self) -> None:
        """Invalidate the temporal reuse cache.

        Call at segment/GOP boundaries, seeks, and after concealment — any
        point where "same tile content as the previous frame" stops
        implying "same enhanced output is correct".  A no-op when reuse is
        off.
        """
        if self.reuse_cache is not None:
            self.reuse_cache.reset()

    def _count_stats(self) -> None:
        if self.obs is None:
            return
        metrics = self.obs.metrics
        metrics.counter("dcsr_sr_tiles_total",
                        "SR tiles executed").inc(self.stats.tile_count)
        metrics.counter("dcsr_sr_frames_total",
                        "Frames enhanced by the engine").inc(self.stats.frames)
        metrics.counter("dcsr_sr_flops_total",
                        "Forward FLOPs executed").inc(self.stats.flops)
        if self.stats.skipped_tiles:
            metrics.counter("dcsr_sr_skipped_tiles_total",
                            "SR tiles routed to bicubic by the skip gate"
                            ).inc(self.stats.skipped_tiles)
        if self.stats.reused_tiles:
            metrics.counter("dcsr_sr_reused_tiles_total",
                            "SR tiles emitted from the temporal reuse cache"
                            ).inc(self.stats.reused_tiles)

    # ------------------------------------------------------------- planning

    @staticmethod
    def _build_plan(model: EDSR) -> list[tuple]:
        """Flatten the EDSR graph into fused NHWC ops.

        Validates the structure the executor assumes (head conv, global
        skip over residual blocks + tail conv, upsampler, output conv) so
        a mismatched model fails loudly at engine construction, not with
        silently wrong frames.
        """
        def conv_of(layer, where):
            if not isinstance(layer, nn.Conv2d):
                raise TypeError(f"expected Conv2d at {where}, got "
                                f"{type(layer).__name__}")
            if layer.stride != 1:
                raise ValueError(f"engine supports stride 1 only ({where})")
            return layer

        plan: list[tuple] = [("conv", conv_of(model.head, "head"))]
        body = model.body.inner.layers
        for i, block in enumerate(body[:-1]):
            if not isinstance(block, nn.ResidualBlock):
                raise TypeError(f"expected ResidualBlock in body[{i}]")
            conv1, relu, conv2, scale = block.body.layers
            if not isinstance(relu, nn.ReLU) or not isinstance(scale, nn.Scale):
                raise TypeError(f"unexpected residual block layout in body[{i}]")
            plan.append(("resblock",
                         conv_of(conv1, f"body[{i}].conv1"),
                         conv_of(conv2, f"body[{i}].conv2"),
                         scale.value))
        plan.append(("conv_skip", conv_of(body[-1], "body.tailconv")))
        upsampler, out_conv = model.tail.layers
        for layer in upsampler.body.layers:
            if isinstance(layer, nn.PixelShuffle):
                plan.append(("shuffle", layer.scale))
            else:
                plan.append(("conv", conv_of(layer, "tail.upsampler")))
        plan.append(("conv", conv_of(out_conv, "tail.out")))
        return plan

    def flops_per_pixel(self) -> float:
        """Forward FLOPs per *input* pixel (multiply-add = 2 FLOPs)."""
        total = 0.0
        res = 1.0
        for op in self._plan:
            convs = [c for c in op[1:] if isinstance(c, nn.Conv2d)]
            if op[0] == "shuffle":
                res *= op[1]
            for conv in convs:
                cout, cin, kh, kw = conv.weight.shape
                total += 2.0 * cin * kh * kw * cout * res * res
        return total

    # ------------------------------------------------------------ execution

    def _forward(self, x: np.ndarray) -> np.ndarray:
        """Run the fused plan on one NHWC tensor (a frame batch or a tile)."""
        p = self.precision
        if self.kernel == "blocked":
            conv = F.conv2d_im2col_nhwc if p == "fp32" \
                else F.conv2d_im2col_nhwc_quant
        else:
            conv = F.conv2d_shift_nhwc if p == "fp32" \
                else F.conv2d_shift_nhwc_quant
        x = conv(x - _PIXEL_SHIFT, self._plan[0][1].packed(p))  # head
        skip = x                                                # global skip
        for op in self._plan[1:]:
            kind = op[0]
            if kind == "resblock":
                t = conv(x, op[1].packed(p), relu=True)
                x = conv(t, op[2].packed(p), residual=x, res_scale=op[3])
            elif kind == "conv_skip":
                x = conv(x, op[1].packed(p), residual=skip)
            elif kind == "conv":
                x = conv(x, op[1].packed(p))
            else:                       # shuffle
                x = F.pixel_shuffle_nhwc(x, op[1])
        x += _PIXEL_SHIFT
        return x

    def _tile_spans(self, h: int, w: int) -> list[tuple[int, int, int, int]]:
        tile = self.tile
        if tile is None or (tile >= h and tile >= w):
            return [(0, h, 0, w)]
        return [(y0, min(y0 + tile, h), x0, min(x0 + tile, w))
                for y0 in range(0, h, tile) for x0 in range(0, w, tile)]

    def infer_nhwc(self, x: np.ndarray) -> np.ndarray:
        """Enhance an ``(N, H, W, C)`` float32 batch; returns NHWC scaled by
        ``config.scale``, tiled/threaded/gated per the engine configuration."""
        n, h, w, _ = x.shape
        s = self.scale
        fpp = self.flops_per_pixel()
        if self.skip_gate is not None or self.reuse is not None:
            return self._infer_tiles(x)
        if self.tile is None or (self.tile >= h and self.tile >= w):
            # Whole-frame: every frame is one (frame, tile) execution.
            self.stats = EngineStats(tile_count=n, frames=n,
                                     flops=fpp * n * h * w)
            self._count_stats()
            return self._forward(x)

        spans = self._tile_spans(h, w)
        out = np.empty((n, h * s, w * s, self.model.config.in_channels),
                       dtype=np.float32)
        halo = self.halo

        def expand(span):
            y0, y1, x0, x1 = span
            return (max(0, y0 - halo), min(h, y1 + halo),
                    max(0, x0 - halo), min(w, x1 + halo))

        def run_tile(span):
            y0, y1, x0, x1 = span
            ey0, ey1, ex0, ex1 = expand(span)
            result = self._forward(x[:, ey0:ey1, ex0:ex1, :])
            out[:, y0 * s:y1 * s, x0 * s:x1 * s, :] = result[
                :, (y0 - ey0) * s:(y1 - ey0) * s,
                (x0 - ex0) * s:(x1 - ex0) * s, :]

        if self.threads > 1 and len(spans) > 1:
            from concurrent.futures import ThreadPoolExecutor
            for op in self._plan:       # pre-pack outside the worker race
                for layer in op[1:]:
                    if isinstance(layer, nn.Conv2d):
                        layer.packed(self.precision)
            with ThreadPoolExecutor(max_workers=self.threads) as pool:
                list(pool.map(run_tile, spans))
        else:
            for span in spans:
                run_tile(span)
        # FLOPs over the pixels actually convolved: each tile computes its
        # halo-expanded extent, so overlap compute is counted, not the
        # nominal h*w (which silently under-counted before).
        expanded_pixels = sum((ey1 - ey0) * (ex1 - ex0)
                              for ey0, ey1, ex0, ex1 in map(expand, spans))
        self.stats = EngineStats(tile_count=n * len(spans), frames=n,
                                 flops=fpp * n * expanded_pixels)
        self._count_stats()
        return out

    def _infer_tiles(self, x: np.ndarray) -> np.ndarray:
        """Tiled execution with the gates deciding, per (frame, tile) pair,
        between the reuse cache, bicubic upscaling, and the conv stack.

        The three gates share this one dispatch path: temporal reuse runs
        first (a tile whose halo-expanded LR content matches the previous
        anchor emits the anchor's SR output), the variance skip gate next
        (bicubic for low-detail tiles), and whatever survives runs through
        the (possibly quantized) GEMM kernels in one stacked forward.

        Exact-mode reuse (tolerance 0) is bitwise-identical to running
        without reuse: content is compared over the *halo-expanded* region
        — everything the tile's output depends on — and the batched GEMMs
        compute each frame's slice independently, so removing reused
        frames from the batch does not change the surviving frames' bits.
        Within a batch, frame ``i`` compares against the most recent
        anchor (the last frame that produced fresh output), so tolerance
        mode measures drift against real content, not an accumulating
        chain of approximations.
        """
        n, h, w, _ = x.shape
        s = self.scale
        fpp = self.flops_per_pixel()
        halo = self.halo
        gate = self.skip_gate
        cache = self.reuse_cache
        tolerance = self.reuse.tolerance if self.reuse is not None else 0.0
        spans = self._tile_spans(h, w)
        out = np.empty((n, h * s, w * s, self.model.config.in_channels),
                       dtype=np.float32)
        ran = [0] * len(spans)
        hits = [0] * len(spans)
        flops = [0.0] * len(spans)

        def matches(a: np.ndarray, b: np.ndarray) -> bool:
            if a.shape != b.shape:
                return False
            if tolerance == 0.0:
                return bool(np.array_equal(a, b))
            return bool(np.max(np.abs(a - b)) <= tolerance)

        def run_tile(item):
            idx, (y0, y1, x0, x1) = item
            ey0, ex0 = max(0, y0 - halo), max(0, x0 - halo)
            ey1, ex1 = min(h, y1 + halo), min(w, x1 + halo)
            region = x[:, ey0:ey1, ex0:ex1, :]
            interior = x[:, y0:y1, x0:x1, :]
            oy = slice(y0 * s, y1 * s)
            ox = slice(x0 * s, x1 * s)
            ry = slice((y0 - ey0) * s, (y1 - ey0) * s)
            rx = slice((x0 - ex0) * s, (x1 - ex0) * s)

            # Gate 1: temporal reuse.  Each frame compares against the
            # current anchor — the cache entry from the previous call, then
            # the last in-batch frame that produced fresh output.
            fresh = np.ones(n, dtype=bool)
            anchor_of = np.full(n, -1, dtype=np.int64)   # -2 = cache entry
            entry = None
            if cache is not None:
                key = (y0, y1, x0, x1)
                entry = cache.get(key)
                anchor_region = entry.region if entry is not None else None
                anchor_idx = -2
                for fi in range(n):
                    if anchor_region is None:
                        anchor_region, anchor_idx = region[fi], fi
                        continue
                    hit = False
                    if anchor_idx == -2 and tolerance == 0.0:
                        # crc32 interior fingerprint quick-rejects before
                        # the full halo-region compare confirms.
                        hit = (entry.fingerprint
                               == _tile_fingerprint(interior[fi])
                               and matches(region[fi], anchor_region))
                    else:
                        hit = matches(region[fi], anchor_region)
                    if hit:
                        fresh[fi] = False
                        anchor_of[fi] = anchor_idx
                    else:
                        anchor_region, anchor_idx = region[fi], fi

            # Gate 2: the variance skip gate, on fresh frames only.
            run = fresh
            skip = np.zeros(n, dtype=bool)
            if gate is not None:
                # Variance of the channel-mean tile interior, per frame.
                variance = interior.mean(axis=3).var(axis=(1, 2))
                skip = fresh & (variance < gate.var_threshold)
                run = fresh & ~skip

            # Gate 3: the conv stack on whatever survived, in one batch.
            n_run = int(run.sum())
            ran[idx] = n_run
            hits[idx] = n - n_run - int(skip.sum())
            if n_run:
                result = self._forward(region[run])
                out[run, oy, ox, :] = result[:, ry, rx, :]
                flops[idx] = fpp * n_run * (ey1 - ey0) * (ex1 - ex0)
            for fi in np.nonzero(skip)[0]:
                if s == 1:
                    out[fi, oy, ox, :] = interior[fi]
                else:
                    out[fi, oy, ox, :] = upscale(interior[fi], s)
            if cache is None:
                return
            for fi in np.nonzero(~fresh)[0]:
                src = anchor_of[fi]
                out[fi, oy, ox, :] = (entry.output if src == -2
                                      else out[src, oy, ox, :])
            if anchor_idx != -2:
                cache.put(key, _ReuseEntry(
                    fingerprint=_tile_fingerprint(interior[anchor_idx]),
                    region=region[anchor_idx].copy(),
                    output=out[anchor_idx, oy, ox, :].copy()))

        items = list(enumerate(spans))
        if self.threads > 1 and len(spans) > 1:
            from concurrent.futures import ThreadPoolExecutor
            for op in self._plan:
                for layer in op[1:]:
                    if isinstance(layer, nn.Conv2d):
                        layer.packed(self.precision)
            with ThreadPoolExecutor(max_workers=self.threads) as pool:
                list(pool.map(run_tile, items))
        else:
            for item in items:
                run_tile(item)
        executed, reused = sum(ran), sum(hits)
        self.stats = EngineStats(
            tile_count=executed, frames=n, flops=sum(flops),
            skipped_tiles=n * len(spans) - executed - reused,
            reused_tiles=reused)
        self._count_stats()
        return out

    def enhance(self, rgb: np.ndarray) -> np.ndarray:
        """Fast-path counterpart of :meth:`EDSR.enhance` — same contract,
        ``(H, W, 3)`` float RGB in and out."""
        if rgb.ndim != 3 or rgb.shape[2] != 3:
            raise ValueError(f"expected (H, W, 3) RGB frame, got {rgb.shape}")
        x = np.asarray(rgb, dtype=np.float32)[None]
        out = self.infer_nhwc(x)[0]
        return np.clip(out, 0.0, 1.0, out=out)

    def enhance_batch(self, frames: np.ndarray) -> np.ndarray:
        """Fast-path counterpart of :meth:`EDSR.enhance_batch`."""
        if frames.ndim != 4 or frames.shape[3] != 3:
            raise ValueError(f"expected (N, H, W, 3) frames, got {frames.shape}")
        out = self.infer_nhwc(np.asarray(frames, dtype=np.float32))
        return np.clip(out, 0.0, 1.0, out=out)
