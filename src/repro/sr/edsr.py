"""EDSR super-resolution network (Lim et al., CVPRW 2017).

The architecture dcSR uses for every SR model (Section 3.1.3): a conv head,
a stack of batch-norm-free residual blocks with a global skip, and a
sub-pixel upsampler tail.  ``scale = 1`` omits the upsampler and turns the
network into the same-resolution quality-enhancement model the paper's
CRF-51 evaluation uses (the degradation there is compression, not
downscaling); ``scale > 1`` is classic resolution SR.

Model complexity is fully determined by ``n_resblocks`` and ``n_filters`` —
the two knobs of Table 1 and the dcSR-1/2/3 configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .. import nn

__all__ = ["EdsrConfig", "EDSR"]

# EDSR normalises inputs around the dataset mean; for [0, 1] content a 0.5
# shift keeps activations centred.
_PIXEL_SHIFT = 0.5


@dataclass(frozen=True)
class EdsrConfig:
    """EDSR hyper-parameters.

    ``n_resblocks`` and ``n_filters`` control capacity (Table 1);
    ``res_scale`` stabilises very deep stacks (the original paper uses 0.1
    for its largest models).
    """

    n_resblocks: int = 4
    n_filters: int = 16
    scale: int = 1
    res_scale: float = 1.0
    kernel_size: int = 3
    in_channels: int = 3

    def __post_init__(self):
        if self.n_resblocks < 1 or self.n_filters < 1:
            raise ValueError("n_resblocks and n_filters must be >= 1")
        if self.scale < 1:
            raise ValueError("scale must be >= 1")
        if self.kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd")

    @property
    def label(self) -> str:
        return (f"edsr-rb{self.n_resblocks}-f{self.n_filters}"
                f"-x{self.scale}")


class EDSR(nn.Layer):
    """The EDSR network as a composable :class:`~repro.nn.layers.Layer`."""

    def __init__(self, config: EdsrConfig | None = None, seed: int = 0):
        self.config = config or EdsrConfig()
        cfg = self.config
        rng = np.random.default_rng(seed)

        self.head = nn.Conv2d(cfg.in_channels, cfg.n_filters, cfg.kernel_size,
                              rng=rng, name="head")
        body_layers: list[nn.Layer] = [
            nn.ResidualBlock(cfg.n_filters, cfg.kernel_size,
                             res_scale=cfg.res_scale, rng=rng,
                             name=f"body.rb{i}")
            for i in range(cfg.n_resblocks)
        ]
        body_layers.append(nn.Conv2d(cfg.n_filters, cfg.n_filters,
                                     cfg.kernel_size, rng=rng,
                                     name="body.tailconv"))
        self.body = nn.GlobalSkip(nn.Sequential(*body_layers))
        self.tail = nn.Sequential(
            nn.Upsampler(cfg.n_filters, cfg.scale, rng=rng, name="tail.up"),
            nn.Conv2d(cfg.n_filters, cfg.in_channels, cfg.kernel_size,
                      rng=rng, name="tail.out"),
        )
        self._engine = None

    # ----------------------------------------------------------- Layer API

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        x = x - _PIXEL_SHIFT
        x = self.head.forward(x, training=training)
        x = self.body.forward(x, training=training)
        x = self.tail.forward(x, training=training)
        return x + _PIXEL_SHIFT

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.tail.backward(grad_out)
        grad = self.body.backward(grad)
        return self.head.backward(grad)

    def parameters(self) -> Iterator[nn.Parameter]:
        yield from self.head.parameters()
        yield from self.body.parameters()
        yield from self.tail.parameters()

    # ------------------------------------------------------------- helpers

    @property
    def scale(self) -> int:
        return self.config.scale

    def size_bytes(self) -> int:
        """Download size (what the client fetches alongside the video)."""
        return nn.model_size_bytes(self)

    def size_mb(self) -> float:
        return nn.model_size_mb(self)

    def use_fast_path(self, tile: int | None = None, threads: int = 1,
                      precision: str = "fp32", skip_gate=None):
        """Route :meth:`enhance` / :meth:`enhance_batch` through the tiled
        NHWC :class:`~repro.sr.engine.InferenceEngine`; returns the engine.

        ``precision`` and ``skip_gate`` select the quantized kernels and
        the low-detail tile gate (see :class:`~repro.sr.engine.SkipGateConfig`);
        the defaults keep the engine bitwise-identical to the fp32 path.
        The engine reads packed weights through the conv layers, so
        training after attaching it stays safe — the next enhance repacks.
        """
        from .engine import InferenceEngine

        self._engine = InferenceEngine(self, tile=tile, threads=threads,
                                       precision=precision,
                                       skip_gate=skip_gate)
        return self._engine

    def clear_fast_path(self) -> None:
        """Detach the fast path; ``enhance`` reverts to the reference forward."""
        self._engine = None

    def enhance(self, rgb: np.ndarray) -> np.ndarray:
        """Enhance one ``(H, W, 3)`` RGB float frame; returns the same layout
        (scaled spatially by ``config.scale``)."""
        if self._engine is not None:
            return self._engine.enhance(rgb)
        if rgb.ndim != 3 or rgb.shape[2] != 3:
            raise ValueError(f"expected (H, W, 3) RGB frame, got {rgb.shape}")
        # asarray: only converts when the frame is not float32 already; the
        # transposed view needs no copy (the conv pads into a fresh array).
        batch = np.asarray(rgb, dtype=np.float32).transpose(2, 0, 1)[None]
        out = self.forward(batch, training=False)
        out = np.clip(out[0].transpose(1, 2, 0), 0.0, 1.0)
        return out.astype(np.float32, copy=False)

    def enhance_batch(self, frames: np.ndarray) -> np.ndarray:
        """Enhance ``(N, H, W, 3)`` frames at once."""
        if self._engine is not None:
            return self._engine.enhance_batch(frames)
        if frames.ndim != 4 or frames.shape[3] != 3:
            raise ValueError(f"expected (N, H, W, 3) frames, got {frames.shape}")
        batch = np.ascontiguousarray(frames.transpose(0, 3, 1, 2),
                                     dtype=np.float32)
        out = self.forward(batch, training=False)
        out = np.clip(out.transpose(0, 2, 3, 1), 0.0, 1.0)
        return out.astype(np.float32, copy=False)
