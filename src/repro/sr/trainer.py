"""SR training loop (the overfit-on-video regime).

Per-video SR deliberately overfits: training and test data are the same
frames (Appendix A.1 of the paper), so training loss directly measures how
well the model will enhance the video.  Figure 11 reproduces the loss-vs-
training-set-size behaviour with this trainer.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..video.quality import psnr, ssim
from .edsr import EDSR
from .patches import sample_patch_pairs

__all__ = ["SrTrainConfig", "SrHistory", "train_sr", "evaluate_sr",
           "training_flops_estimate"]


@dataclass(frozen=True)
class SrTrainConfig:
    """Hyper-parameters for :func:`train_sr`."""

    epochs: int = 40
    steps_per_epoch: int = 20
    batch_size: int = 8
    patch_size: int = 24
    learning_rate: float = 5e-3
    loss: str = "l1"
    lr_decay_epochs: int = 15
    lr_decay_gamma: float = 0.5
    grad_clip: float = 5.0
    seed: int = 0

    def __post_init__(self):
        if self.loss not in ("l1", "mse"):
            raise ValueError(f"loss must be 'l1' or 'mse', got {self.loss!r}")
        if min(self.epochs, self.steps_per_epoch, self.batch_size,
               self.patch_size) < 1:
            raise ValueError("all loop parameters must be >= 1")


@dataclass
class SrHistory:
    """Per-epoch mean training loss plus the step count."""

    losses: list[float] = field(default_factory=list)
    n_steps: int = 0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train_sr(
    model: EDSR, lr_frames: np.ndarray, hr_frames: np.ndarray,
    config: SrTrainConfig | None = None, obs=None,
) -> SrHistory:
    """Train ``model`` to map ``lr_frames`` to ``hr_frames``.

    Frames are ``(N, H, W, 3)`` RGB floats; HR frames are ``model.scale``
    times larger spatially.  Deterministic given ``config.seed`` and the
    model's initial parameters — including across process boundaries, which
    is what lets the parallel server build train clusters in pool workers
    bit-identically to the serial build, and what makes a training run
    memoizable by its inputs in :class:`~repro.core.persist.TrainingCache`.
    Frame *order* matters: the patch sampler draws frames by index.

    ``obs`` (an optional :class:`~repro.obs.Observability`) wraps the run
    in a ``train_sr`` span and feeds per-epoch wall seconds into the
    ``dcsr_sr_epoch_seconds`` histogram.  Pool workers pass ``None`` (the
    session does not cross process boundaries); timing never affects the
    trained parameters.
    """
    config = config or SrTrainConfig()
    loss_fn = nn.l1_loss if config.loss == "l1" else nn.mse_loss
    rng = np.random.default_rng(config.seed)
    optimizer = nn.Adam(model.parameters(), lr=config.learning_rate)
    schedule = nn.StepLR(optimizer, config.lr_decay_epochs,
                         config.lr_decay_gamma)
    patch = min(config.patch_size, lr_frames.shape[1], lr_frames.shape[2])
    epoch_hist = (obs.metrics.histogram(
        "dcsr_sr_epoch_seconds", "Wall seconds per SR training epoch")
        if obs is not None else None)

    history = SrHistory()
    with (obs.tracer.span("train_sr", epochs=config.epochs)
          if obs is not None else nullcontext()):
        for _ in range(config.epochs):
            e0 = obs.clock.now() if obs is not None else 0.0
            epoch_loss = 0.0
            for _ in range(config.steps_per_epoch):
                lr_b, hr_b = sample_patch_pairs(
                    lr_frames, hr_frames, patch, config.batch_size, rng,
                    scale=model.scale)
                optimizer.zero_grad()
                pred = model.forward(lr_b)
                loss, grad = loss_fn(pred, hr_b)
                model.backward(grad)
                nn.clip_grad_norm(model.parameters(), config.grad_clip)
                optimizer.step()
                epoch_loss += loss
                history.n_steps += 1
            history.losses.append(epoch_loss / config.steps_per_epoch)
            schedule.step()
            if epoch_hist is not None:
                epoch_hist.observe(obs.clock.now() - e0)
    return history


def evaluate_sr(
    model: EDSR, lr_frames: np.ndarray, hr_frames: np.ndarray,
) -> dict[str, float]:
    """Full-frame evaluation: mean PSNR/SSIM of enhanced vs ground truth."""
    enhanced = model.enhance_batch(lr_frames)
    psnrs = [psnr(e, h) for e, h in zip(enhanced, hr_frames)]
    ssims = [ssim(e, h) for e, h in zip(enhanced, hr_frames)]
    return {"psnr": float(np.mean(psnrs)), "ssim": float(np.mean(ssims))}


def training_flops_estimate(
    model: EDSR, config: SrTrainConfig,
) -> float:
    """Approximate training FLOPs: forward+backward ~ 3x forward cost.

    Used for the training-cost comparison (the paper reports ~3x cheaper
    micro-model training) and aggregated per build into
    :attr:`~repro.core.parallel.BuildTelemetry.train_flops` (clusters
    served from the training cache cost zero).
    """
    from ..devices.flops import model_forward_flops
    per_sample = model_forward_flops(model, config.patch_size,
                                     config.patch_size)
    steps = config.epochs * config.steps_per_epoch
    return 3.0 * per_sample * config.batch_size * steps
