"""Canonical model configurations.

- ``DCSR_CONFIGS`` — the three dcSR deployments of Section 4: dcSR-1/2/3
  use 4 / 12 / 16 ResBlocks with 16 convolution filters each.
- ``big_model_config`` — the NAS/NEMO-style single big model; its size
  grows with the target resolution (Figure 1(b)).
- ``TABLE1_FILTERS`` / ``TABLE1_RESBLOCKS`` — the configuration grid of
  Table 1.
- ``RESOLUTIONS`` — the display resolutions of the FPS experiments,
  with the paper's SR scale factors.
"""

from __future__ import annotations

from dataclasses import dataclass

from .edsr import EdsrConfig

__all__ = [
    "DCSR_CONFIGS",
    "dcsr_config",
    "big_model_config",
    "TABLE1_FILTERS",
    "TABLE1_RESBLOCKS",
    "Resolution",
    "RESOLUTIONS",
    "QUALITY_BIG_CONFIG",
    "QUALITY_MICRO_GRID",
    "MICRO_TIERS",
    "TIER_NAMES",
    "micro_tier_config",
]

#: dcSR-1/2/3 (Section 4): ResBlock counts 4/12/16 with 16 filters.
DCSR_CONFIGS: dict[str, EdsrConfig] = {
    "dcSR-1": EdsrConfig(n_resblocks=4, n_filters=16),
    "dcSR-2": EdsrConfig(n_resblocks=12, n_filters=16),
    "dcSR-3": EdsrConfig(n_resblocks=16, n_filters=16),
}


def dcsr_config(level: int, scale: int = 1) -> EdsrConfig:
    """dcSR configuration by complexity level (1-3)."""
    base = DCSR_CONFIGS.get(f"dcSR-{level}")
    if base is None:
        raise ValueError(f"dcSR level must be 1-3, got {level}")
    return EdsrConfig(n_resblocks=base.n_resblocks, n_filters=base.n_filters,
                      scale=scale)


#: dcSR-1/2/3-style micro-model *tiers* at reproduction scale.  The paper
#: ships one deployment per complexity level; the joint ABR x SR controller
#: instead lets a client pick the tier per segment against its power budget,
#: so the server trains (and the manifest records) every tier per cluster.
#: Filters/blocks grow monotonically, so size, FLOPs, and — on a trained
#: corpus — quality uplift order the same way.
MICRO_TIERS: dict[str, EdsrConfig] = {
    "dcSR-1": EdsrConfig(n_resblocks=1, n_filters=6),
    "dcSR-2": EdsrConfig(n_resblocks=2, n_filters=8),
    "dcSR-3": EdsrConfig(n_resblocks=4, n_filters=12),
}

#: Tier names in ascending capacity order (the knapsack walk order).
TIER_NAMES: tuple[str, ...] = tuple(MICRO_TIERS)


def micro_tier_config(tier: str, scale: int = 1) -> EdsrConfig:
    """The :class:`EdsrConfig` of one named micro tier."""
    base = MICRO_TIERS.get(tier)
    if base is None:
        raise ValueError(
            f"unknown micro tier {tier!r}; choose from {TIER_NAMES}")
    return EdsrConfig(n_resblocks=base.n_resblocks, n_filters=base.n_filters,
                      scale=scale)


@dataclass(frozen=True)
class Resolution:
    """A display resolution with the SR scale the paper's systems use."""

    name: str
    width: int
    height: int
    sr_scale: int
    fps: float = 30.0

    @property
    def pixels(self) -> int:
        return self.width * self.height

    @property
    def sr_input_pixels(self) -> int:
        """Pixels the SR body processes (the pre-upsampling resolution)."""
        return (self.width // self.sr_scale) * (self.height // self.sr_scale)


RESOLUTIONS: dict[str, Resolution] = {
    "720p": Resolution("720p", 1280, 720, sr_scale=2),
    "1080p": Resolution("1080p", 1920, 1080, sr_scale=2),
    "4k": Resolution("4k", 3840, 2160, sr_scale=4),
}


def big_model_config(resolution: str) -> EdsrConfig:
    """The NAS-like big model for a resolution.

    NAS trains deeper/wider models for higher target resolutions; the sizes
    follow Figure 1(b)'s growth from a few MB at 720p to ~15+ MB at 4K.
    """
    res = RESOLUTIONS.get(resolution.lower())
    if res is None:
        raise ValueError(
            f"unknown resolution {resolution!r}; choose from {sorted(RESOLUTIONS)}")
    bodies = {
        "720p": (16, 48),
        "1080p": (32, 48),
        "4k": (32, 64),
    }
    n_rb, n_f = bodies[res.name]
    return EdsrConfig(n_resblocks=n_rb, n_filters=n_f, scale=res.sr_scale,
                      res_scale=0.1)


#: Table 1 axes (the appendix configuration grid).
TABLE1_FILTERS = (4, 8, 12, 16, 20)
TABLE1_RESBLOCKS = (4, 8, 16, 32, 64)

#: Scaled-down model pair for the quality experiments, which run actual
#: numpy training on small frames (see DESIGN.md section 5): the big model
#: is what NAS/NEMO would train per video; the micro grid is what the
#: minimum-working-model search walks (ascending size).
QUALITY_BIG_CONFIG = EdsrConfig(n_resblocks=6, n_filters=16)
QUALITY_MICRO_GRID = (
    EdsrConfig(n_resblocks=1, n_filters=6),
    EdsrConfig(n_resblocks=2, n_filters=8),
    EdsrConfig(n_resblocks=2, n_filters=12),
    EdsrConfig(n_resblocks=4, n_filters=12),
    EdsrConfig(n_resblocks=4, n_filters=16),
    EdsrConfig(n_resblocks=6, n_filters=16),
)
