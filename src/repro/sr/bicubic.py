"""Bicubic upscaling baseline (the non-neural comparison point)."""

from __future__ import annotations

import numpy as np

from ..video.sampling import upscale

__all__ = ["BicubicSR"]


class BicubicSR:
    """Baseline enhancer with the same interface as :class:`~repro.sr.EDSR`.

    With ``scale = 1`` it is the identity — i.e. the paper's "LOW" curve
    (watch the decoded low-quality video unmodified).
    """

    def __init__(self, scale: int = 1):
        if scale < 1:
            raise ValueError("scale must be >= 1")
        self._scale = int(scale)

    @property
    def scale(self) -> int:
        return self._scale

    def size_bytes(self) -> int:
        """Nothing to download."""
        return 0

    def enhance(self, rgb: np.ndarray) -> np.ndarray:
        if rgb.ndim != 3 or rgb.shape[2] != 3:
            raise ValueError(f"expected (H, W, 3) RGB frame, got {rgb.shape}")
        if self._scale == 1:
            return np.asarray(rgb, dtype=np.float32)
        return upscale(rgb, self._scale)

    def enhance_batch(self, frames: np.ndarray) -> np.ndarray:
        if frames.ndim != 4 or frames.shape[3] != 3:
            raise ValueError(f"expected (N, H, W, 3) frames, got {frames.shape}")
        return np.stack([self.enhance(f) for f in frames])
