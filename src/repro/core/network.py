"""Simulated download path for the streaming client.

The paper assumes a well-behaved CDN; a deployable client does not get
one.  :class:`SimulatedNetwork` models the transfer a
:class:`~repro.core.client.DcsrClient` session performs — per-request
latency, bandwidth-proportional transfer time, and injected failures — so
fault-tolerance paths (retry, concealment, model fallback) are exercised
deterministically.  All "time" here is *simulated* seconds returned to the
caller, never slept, so failure-heavy sessions stay fast to test.

Failures come from two sources, checked in order:

1. an explicit ``failure_schedule`` (one boolean per download attempt,
   in call order) for exact-scenario tests;
2. a seeded RNG firing with probability ``fail_rate`` once the schedule
   is exhausted.

:class:`RetryPolicy` bounds how hard the client tries: a retry budget per
download plus exponential backoff (also simulated seconds, so retries cost
stall time in the playback clock, not wall time).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from ..obs import Observability, SimulatedClock

__all__ = [
    "NetworkConfig",
    "DownloadError",
    "DownloadStats",
    "SimulatedNetwork",
    "RetryPolicy",
    "download_with_retry",
]


class DownloadError(ConnectionError):
    """A download failed (injected or terminal after retries).

    ``seconds`` is the simulated time burnt on the failed attempt(s);
    ``attempts`` how many were made.  Both are filled by
    :func:`download_with_retry` so the playback clock can charge failed
    downloads to stall time.
    """

    def __init__(self, message: str, seconds: float = 0.0, attempts: int = 1):
        super().__init__(message)
        self.seconds = float(seconds)
        self.attempts = int(attempts)


@dataclass(frozen=True)
class NetworkConfig:
    """Shape of the simulated link.

    ``bandwidth_bps = None`` makes transfers instantaneous (latency only);
    ``fail_rate`` is the per-attempt probability of an injected failure.
    """

    fail_rate: float = 0.0
    bandwidth_bps: float | None = None
    latency_s: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.fail_rate <= 1.0:
            raise ValueError(f"fail_rate must be in [0, 1], got {self.fail_rate}")
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive (or None)")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")


@dataclass
class DownloadStats:
    """Attempt-level accounting across one network's lifetime."""

    attempts: int = 0
    failures: int = 0
    bytes_delivered: int = 0


class SimulatedNetwork:
    """Failure- and latency-injecting stand-in for the CDN link.

    Every simulated second the link charges advances :attr:`clock`, a
    dedicated :class:`~repro.obs.SimulatedClock` — the network's time
    domain is explicit, so callers recording those seconds into a trace
    tag them as simulated rather than mixing them into wall time.

    ``obs`` (usually bound by the :class:`~repro.core.client.DcsrClient`
    that owns the session) routes attempt/failure/byte accounting into
    the shared metrics registry; :attr:`stats` keeps the in-object
    counters regardless.
    """

    def __init__(self, config: NetworkConfig | None = None,
                 failure_schedule: Sequence[bool] | None = None,
                 obs: Observability | None = None,
                 session: str | None = None):
        self.config = config or NetworkConfig()
        self._schedule = list(failure_schedule or [])
        self._schedule_pos = 0
        self._rng = random.Random(self.config.seed)
        self.stats = DownloadStats()
        self.clock = SimulatedClock()
        self.obs = obs
        #: Optional session tag added to every metric this network emits —
        #: fleet runs (:mod:`repro.serve`) share one registry across many
        #: concurrent sessions and need per-session attribution.
        self.session = session

    def _count(self, name: str, value: float, help: str, **labels) -> None:
        if self.obs is not None:
            if self.session is not None:
                labels = {"session": self.session, **labels}
            self.obs.metrics.counter(name, help).inc(value, **labels)

    def _next_attempt_fails(self) -> bool:
        if self._schedule_pos < len(self._schedule):
            fails = self._schedule[self._schedule_pos]
            self._schedule_pos += 1
            return bool(fails)
        if self.config.fail_rate <= 0.0:
            return False
        return self._rng.random() < self.config.fail_rate

    def download(self, kind: str, key: int | str, n_bytes: int) -> float:
        """Attempt one download; return simulated seconds or raise.

        ``kind`` is ``"segment"`` or ``"model"`` (free-form — it only
        labels the error), ``key`` the segment index or model label.
        """
        self.stats.attempts += 1
        self._count("dcsr_download_attempts_total", 1,
                    "Download attempts by payload kind", kind=kind)
        if self._next_attempt_fails():
            self.stats.failures += 1
            self.clock.advance(self.config.latency_s)
            self._count("dcsr_download_failures_total", 1,
                        "Injected download failures by payload kind",
                        kind=kind)
            raise DownloadError(
                f"injected failure downloading {kind} {key}",
                seconds=self.config.latency_s)
        seconds = self.config.latency_s + self._transfer_seconds(n_bytes)
        self.clock.advance(seconds)
        self.stats.bytes_delivered += int(n_bytes)
        self._count("dcsr_download_bytes_total", int(n_bytes),
                    "Bytes delivered by payload kind", kind=kind)
        return seconds

    def _transfer_seconds(self, n_bytes: int) -> float:
        """Simulated transfer time of one successful payload (no latency).

        The dedicated-link model charges the configured bandwidth in full;
        :class:`repro.serve.SharedNetworkPool` overrides this to charge a
        fair share of one pool shared by every concurrent session.
        """
        if self.config.bandwidth_bps is None:
            return 0.0
        return 8.0 * n_bytes / self.config.bandwidth_bps


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and exponential backoff for one download.

    ``retries`` is the number of *additional* attempts after the first;
    backoff before retry ``i`` (0-based) is
    ``min(backoff_s * backoff_factor**i, max_backoff_s)`` simulated
    seconds.
    """

    retries: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff seconds must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def delay(self, retry_index: int) -> float:
        """Simulated backoff before the ``retry_index``-th retry."""
        return min(self.backoff_s * self.backoff_factor ** retry_index,
                   self.max_backoff_s)


def download_with_retry(
    network: SimulatedNetwork, retry: RetryPolicy | None,
    kind: str, key: int | str, n_bytes: int,
) -> tuple[float, int]:
    """Download under a retry budget.

    Returns ``(simulated_seconds, attempts)`` including backoff and the
    time burnt on failed attempts.  Raises :class:`DownloadError` (with
    ``seconds``/``attempts`` filled) once the budget is exhausted.
    """
    retry = retry or RetryPolicy(retries=0)
    elapsed = 0.0
    attempts = 0
    while True:
        attempts += 1
        try:
            elapsed += network.download(kind, key, n_bytes)
            return elapsed, attempts
        except DownloadError as exc:
            elapsed += exc.seconds
            if attempts > retry.retries:
                raise DownloadError(
                    f"{kind} {key}: giving up after {attempts} attempts",
                    seconds=elapsed, attempts=attempts) from exc
            backoff = retry.delay(attempts - 1)
            network.clock.advance(backoff)
            network._count("dcsr_download_retries_total", 1,
                           "Retries issued after failed attempts", kind=kind)
            network._count("dcsr_backoff_seconds_total", backoff,
                           "Simulated seconds spent in retry backoff",
                           kind=kind)
            elapsed += backoff
