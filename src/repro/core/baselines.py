"""Baselines: NAS, NEMO, and LOW (Section 4).

- **NAS** (Yeo et al., OSDI'18): one big model trained on *all* frames of
  the video, downloaded up front, applied to *every* decoded frame.
- **NEMO** (Yeo et al., MobiCom'20): the same big model, applied only to
  key frames (here: the I frames, per the paper's simplification for fair
  comparison), with the enhancement propagating through the GOP.
- **LOW**: the decoded low-quality video, unmodified.

All three reuse the same encoded video as dcSR, so quality/bandwidth
comparisons isolate the SR strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sr import EDSR, EdsrConfig, SrTrainConfig, train_sr
from ..video import yuv420_to_rgb
from ..video.codec import Decoder
from ..video.quality import psnr, ssim
from .client import PlaybackResult, enhance_yuv_frame
from .server import DcsrPackage

__all__ = ["BigModelBaseline", "train_big_model", "play_nas", "play_nemo",
           "play_nemo_adaptive", "play_low"]


@dataclass
class BigModelBaseline:
    """The shared artifact of NAS and NEMO: one model for the whole video."""

    model: EDSR

    @property
    def size_bytes(self) -> int:
        return self.model.size_bytes()


def train_big_model(
    package: DcsrPackage, hr_frames: np.ndarray,
    config: EdsrConfig, train_config: SrTrainConfig | None = None,
    seed: int = 0,
) -> BigModelBaseline:
    """Train the NAS/NEMO big model on *all* frames of the video.

    ``package.decoded_low`` supplies the degraded inputs; ``hr_frames`` the
    originals.
    """
    lq = np.stack([yuv420_to_rgb(f) for f in package.decoded_low.frames])
    model = EDSR(config, seed=seed)
    train_sr(model, lq, hr_frames, train_config)
    return BigModelBaseline(model=model)


def _score(result: PlaybackResult, reference: np.ndarray | None) -> None:
    if reference is None:
        return
    for display, rgb in enumerate(result.frames):
        result.psnr_per_frame.append(psnr(rgb, reference[display]))
        result.ssim_per_frame.append(ssim(rgb, reference[display]))


def play_nas(
    package: DcsrPackage, baseline: BigModelBaseline,
    reference_frames: np.ndarray | None = None,
) -> PlaybackResult:
    """NAS playback: download the big model once, SR every decoded frame."""
    result = PlaybackResult()
    result.video_bytes = package.encoded.total_bytes
    result.model_bytes = baseline.size_bytes
    result.model_downloads = [0]

    decoded = Decoder().decode_video(package.encoded)
    for ftype, frame in zip(decoded.frame_types, decoded.frames):
        rgb = yuv420_to_rgb(frame)
        result.frames.append(baseline.model.enhance(rgb))
        result.frame_types.append(ftype)
        result.sr_inferences += 1
    _score(result, reference_frames)
    return result


def play_nemo(
    package: DcsrPackage, baseline: BigModelBaseline,
    reference_frames: np.ndarray | None = None,
) -> PlaybackResult:
    """NEMO playback: big model applied to I frames only, via the DPB hook."""
    result = PlaybackResult()
    result.video_bytes = package.encoded.total_bytes
    result.model_bytes = baseline.size_bytes
    result.model_downloads = [0]

    def hook(frame, display):
        result.sr_inferences += 1
        return enhance_yuv_frame(baseline.model, frame)

    decoded = Decoder(i_frame_hook=hook).decode_video(package.encoded)
    for ftype, frame in zip(decoded.frame_types, decoded.frames):
        result.frames.append(yuv420_to_rgb(frame))
        result.frame_types.append(ftype)
    _score(result, reference_frames)
    return result


def play_nemo_adaptive(
    package: DcsrPackage, baseline: BigModelBaseline,
    reference_frames: np.ndarray, budget_per_segment: int = 2,
) -> PlaybackResult:
    """NEMO with real anchor selection (Yeo et al.'s actual method).

    Greedily picks up to ``budget_per_segment`` I/P anchors per segment to
    maximise propagated quality, then plays with those anchors enhanced.
    Needs the reference frames (anchor selection is a server-side step in
    NEMO, where the original video is available).
    """
    from .anchor_selection import select_anchors

    plan = select_anchors(package.encoded, baseline.model, reference_frames,
                          budget_per_segment=budget_per_segment)
    result = PlaybackResult()
    result.video_bytes = package.encoded.total_bytes
    result.model_bytes = baseline.size_bytes
    result.model_downloads = [0]

    def hook(frame, display, ftype):
        if display in plan.anchors:
            result.sr_inferences += 1
            return enhance_yuv_frame(baseline.model, frame)
        return None

    decoded = Decoder(anchor_hook=hook).decode_video(package.encoded)
    for ftype, frame in zip(decoded.frame_types, decoded.frames):
        result.frames.append(yuv420_to_rgb(frame))
        result.frame_types.append(ftype)
    _score(result, reference_frames)
    return result


def play_low(
    package: DcsrPackage, reference_frames: np.ndarray | None = None,
) -> PlaybackResult:
    """LOW playback: the decoded CRF-degraded video, no enhancement."""
    result = PlaybackResult()
    result.video_bytes = package.encoded.total_bytes
    decoded = Decoder().decode_video(package.encoded)
    for ftype, frame in zip(decoded.frame_types, decoded.frames):
        result.frames.append(yuv420_to_rgb(frame))
        result.frame_types.append(ftype)
    _score(result, reference_frames)
    return result
