"""On-disk layout for dcSR packages.

A CDN origin would store exactly this: the manifest as JSON, each segment's
bitstream as a raw file, and each micro model as an ``.npz`` checkpoint.
``save_package`` / ``load_package`` round-trip everything a *client* needs
(server-side artifacts — VAE, features, the pristine decode — are not
shipped and are not persisted).

Layout::

    <root>/
      manifest.json
      segments/segment-0000.bin ...
      models/model-00.npz ...
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..sr import EDSR, EdsrConfig, SrTrainConfig
from ..video.codec import (CodecConfig, EncodedFrameInfo, EncodedSegment,
                           EncodedVideo)
from ..video.segment import Segment
from .manifest import (ModelTierRecord, QuantizationRecord, SegmentRecord,
                       VideoManifest)

__all__ = ["StoredPackage", "TrainingCache", "save_package", "load_package"]

_FORMAT_VERSION = 1


@dataclass
class StoredPackage:
    """The client-facing subset of a package, loaded from disk.

    Duck-type compatible with :class:`~repro.core.server.DcsrPackage` for
    :class:`~repro.core.client.DcsrClient`.
    """

    manifest: VideoManifest
    encoded: EncodedVideo
    models: dict[int, EDSR]
    segments: list[Segment] = field(default_factory=list)
    #: tier name -> label -> model, for packages built with tier training.
    tier_models: dict[str, dict[int, EDSR]] = field(default_factory=dict)

    @property
    def n_models(self) -> int:
        return len(self.models)


def save_package(package, root: str | Path) -> Path:
    """Persist a package's client-facing artifacts under ``root``."""
    root = Path(root)
    (root / "segments").mkdir(parents=True, exist_ok=True)
    (root / "models").mkdir(parents=True, exist_ok=True)

    manifest = package.manifest
    meta = {
        "format_version": _FORMAT_VERSION,
        "video_name": manifest.video_name,
        "width": manifest.width,
        "height": manifest.height,
        "fps": manifest.fps,
        "crf": manifest.crf,
        "enhance_in_loop": manifest.enhance_in_loop,
        "codec": {
            "crf": package.encoded.config.crf,
            "n_b_frames": package.encoded.config.n_b_frames,
            "search_range": package.encoded.config.search_range,
            "extra_i_interval": package.encoded.config.extra_i_interval,
        },
        "segments": [
            {"index": s.index, "start": s.start, "n_frames": s.n_frames,
             "model_label": s.model_label}
            for s in manifest.segments
        ],
        # Per-frame accounting (display, type, coded bits) so loaded
        # packages keep i_frame_displays / bits_by_type — and so the
        # fleet's trace-mode SR-demand model can count I frames.
        "frame_info": {
            str(s.index): [[f.display, f.ftype, f.n_bits] for f in s.frames]
            for s in package.encoded.segments
        },
        "model_sizes": {str(k): v for k, v in manifest.model_sizes.items()},
        "quantization": {
            str(label): {
                precision: {"size_bytes": record.size_bytes,
                            "delta_db": record.delta_db}
                for precision, record in records.items()
            }
            for label, records in manifest.quantization.items()
        },
        "model_configs": {
            str(label): {
                "n_resblocks": model.config.n_resblocks,
                "n_filters": model.config.n_filters,
                "scale": model.config.scale,
                "res_scale": model.config.res_scale,
                "kernel_size": model.config.kernel_size,
            }
            for label, model in package.models.items()
        },
    }
    # Tier table + tier checkpoints are additive optional keys: packages
    # built without tiers keep the exact v1 layout.
    tier_models = getattr(package, "tier_models", {})
    if manifest.tiers:
        meta["tiers"] = {
            str(label): {
                tier: {
                    precision: {"size_bytes": r.size_bytes,
                                "delta_db": r.delta_db,
                                "n_resblocks": r.n_resblocks,
                                "n_filters": r.n_filters,
                                "gain_db": r.gain_db}
                    for precision, r in records.items()
                }
                for tier, records in by_tier.items()
            }
            for label, by_tier in manifest.tiers.items()
        }
    if tier_models:
        meta["tier_model_configs"] = {
            tier: {
                str(label): {
                    "n_resblocks": model.config.n_resblocks,
                    "n_filters": model.config.n_filters,
                    "scale": model.config.scale,
                    "res_scale": model.config.res_scale,
                    "kernel_size": model.config.kernel_size,
                }
                for label, model in models.items()
            }
            for tier, models in tier_models.items()
        }
    with open(root / "manifest.json", "w") as handle:
        json.dump(meta, handle, indent=2)

    for segment in package.encoded.segments:
        path = root / "segments" / f"segment-{segment.index:04d}.bin"
        path.write_bytes(segment.payload)

    from .. import nn
    for label, model in package.models.items():
        nn.save_model(model, root / "models" / f"model-{label:02d}.npz")
    for tier, models in tier_models.items():
        for label, model in models.items():
            nn.save_model(model,
                          root / "models" / f"model-{label:02d}-{tier}.npz")
    return root


class TrainingCache:
    """Content-addressed store of trained micro-model checkpoints.

    The key hashes everything a cluster's training run depends on: the
    exact (LQ, HQ) I-frame pairs (so any re-encode — a CRF change, a codec
    tweak — or any cluster membership change produces a different key), the
    :class:`~repro.sr.EdsrConfig`, the :class:`~repro.sr.SrTrainConfig`,
    and the model-init seed.  Frame *order* is part of the key because the
    patch sampler consumes frames by index.  A rebuild whose clusters are
    unchanged therefore skips training entirely; a stale key can never be
    served.

    Entries are plain ``.npz`` checkpoints named by their key, written
    atomically (temp file + rename) so concurrent builders can share one
    cache directory.
    """

    KEY_VERSION = 1

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    @classmethod
    def key(
        cls, lq_frames: np.ndarray, hr_frames: np.ndarray,
        model_config: EdsrConfig, train_config: SrTrainConfig, seed: int,
    ) -> str:
        """The sha256 content address of one cluster training run."""
        digest = hashlib.sha256(f"dcsr-train-cache-v{cls.KEY_VERSION}".encode())
        for frames in (lq_frames, hr_frames):
            arr = np.ascontiguousarray(np.asarray(frames, dtype=np.float32))
            digest.update(repr(arr.shape).encode())
            digest.update(arr.tobytes())
        digest.update(repr(sorted(asdict(model_config).items())).encode())
        digest.update(repr(sorted(asdict(train_config).items())).encode())
        digest.update(str(int(seed)).encode())
        return digest.hexdigest()

    def path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    @property
    def n_entries(self) -> int:
        return sum(1 for _ in self.root.glob("*.npz"))

    def get(self, key: str, config: EdsrConfig) -> EDSR | None:
        """The cached model for ``key``, or ``None`` on a miss."""
        path = self.path(key)
        if not path.exists():
            return None
        from .. import nn
        model = EDSR(config)
        nn.load_model(model, path)
        return model

    def put(self, key: str, model: EDSR) -> Path:
        """Store ``model`` under ``key`` (atomic; last writer wins)."""
        from .. import nn
        path = self.path(key)
        tmp = path.with_name(f".tmp-{os.getpid()}-{key}.npz")
        nn.save_model(model, tmp)
        tmp.replace(path)
        return path


def load_package(root: str | Path) -> StoredPackage:
    """Load a package previously written by :func:`save_package`."""
    root = Path(root)
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no manifest at {manifest_path}")
    with open(manifest_path) as handle:
        meta = json.load(handle)
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported package format {meta.get('format_version')!r}")

    manifest = VideoManifest(
        video_name=meta["video_name"], width=meta["width"],
        height=meta["height"], fps=meta["fps"], crf=meta["crf"],
        segments=[SegmentRecord(**s) for s in meta["segments"]],
        model_sizes={int(k): v for k, v in meta["model_sizes"].items()},
        quantization={
            int(label): {
                precision: QuantizationRecord(precision=precision, **entry)
                for precision, entry in records.items()
            }
            for label, records in meta.get("quantization", {}).items()
        },
        tiers={
            int(label): {
                tier: {
                    precision: ModelTierRecord(precision=precision, tier=tier,
                                               **entry)
                    for precision, entry in records.items()
                }
                for tier, records in by_tier.items()
            }
            for label, by_tier in meta.get("tiers", {}).items()
        },
        enhance_in_loop=bool(meta.get("enhance_in_loop", True)),
    )

    codec = CodecConfig(
        crf=meta["codec"]["crf"], n_b_frames=meta["codec"]["n_b_frames"],
        search_range=meta["codec"]["search_range"],
        extra_i_interval=meta["codec"]["extra_i_interval"],
    )
    encoded = EncodedVideo(width=meta["width"], height=meta["height"],
                           fps=meta["fps"], config=codec)
    frame_info = meta.get("frame_info", {})  # absent in older packages
    segments = []
    for record in manifest.segments:
        payload = (root / "segments"
                   / f"segment-{record.index:04d}.bin").read_bytes()
        frames = [EncodedFrameInfo(display=d, ftype=t, n_bits=b)
                  for d, t, b in frame_info.get(str(record.index), [])]
        encoded.segments.append(EncodedSegment(
            index=record.index, start=record.start,
            n_frames=record.n_frames, payload=payload, frames=frames))
        segments.append(Segment(index=record.index, start=record.start,
                                end=record.end))

    from .. import nn
    models: dict[int, EDSR] = {}
    for label_str, cfg in meta["model_configs"].items():
        label = int(label_str)
        model = EDSR(EdsrConfig(**cfg))
        nn.load_model(model, root / "models" / f"model-{label:02d}.npz")
        models[label] = model

    tier_models: dict[str, dict[int, EDSR]] = {}
    for tier, configs in meta.get("tier_model_configs", {}).items():
        by_label: dict[int, EDSR] = {}
        for label_str, cfg in configs.items():
            label = int(label_str)
            model = EDSR(EdsrConfig(**cfg))
            nn.load_model(model,
                          root / "models" / f"model-{label:02d}-{tier}.npz")
            by_label[label] = model
        tier_models[tier] = by_label

    return StoredPackage(manifest=manifest, encoded=encoded, models=models,
                         segments=segments, tier_models=tier_models)
