"""Micro-model caching (Section 3.2.2, Algorithm 1, Figure 7).

The client keeps every downloaded micro model; when a later segment maps to
a model label already in the cache, no download happens.  An optional LRU
capacity bound extends the paper's unbounded cache to memory-constrained
clients (failure-injection tests exercise it).

:class:`ModelCache` is the single-owner cache one playback session holds.
Store and counter mutations are guarded by a lock, so its accounting stays
exact even when a session's prefetch producer and main thread touch it
concurrently — but it deliberately has no cross-request coordination:
two threads missing on the same label both fetch (last write wins).  The
fleet-scale cache with single-flight fetches and refcount pinning is
:class:`repro.serve.SharedModelCache`, which shares the
:class:`CacheStats` shape and the ``acquire``/``release`` protocol below.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

__all__ = ["CacheStats", "ModelCache", "simulate_caching"]

M = TypeVar("M")


@dataclass
class CacheStats:
    """Download/hit counters for one playback session."""

    downloads: int = 0
    hits: int = 0
    evictions: int = 0
    failed_fetches: int = 0
    downloaded_labels: list[int] = field(default_factory=list)

    @property
    def requests(self) -> int:
        return self.downloads + self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class ModelCache(Generic[M]):
    """Label-keyed model cache with optional LRU bound.

    Parameters
    ----------
    fetch:
        ``label -> model``; invoked on a miss (the DOWNLOAD of Algorithm 1).
    capacity:
        Maximum cached models; ``None`` reproduces the paper's unbounded
        cache.
    """

    def __init__(self, fetch: Callable[[int], M], capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self._fetch = fetch
        self._capacity = capacity
        self._store: OrderedDict[int, M] = OrderedDict()
        # Guards the store and every CacheStats mutation.  The fetch itself
        # runs outside the lock (it may take simulated network time), so
        # unrelated labels never serialize on each other; the cost is that
        # concurrent misses on the *same* label may both fetch.
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __contains__(self, label: int) -> bool:
        with self._lock:
            return label in self._store

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def get(self, label: int) -> M:
        """Algorithm 1 body: fetch on miss, then return the cached model."""
        with self._lock:
            if label in self._store:
                self.stats.hits += 1
                self._store.move_to_end(label)
                return self._store[label]
        try:
            model = self._fetch(label)
        except Exception:
            # A failed fetch never counts as a download and never caches;
            # the caller may retry (or fall back) on the next request.
            # The increment happens under the lock: the bare ``+= 1`` is a
            # read-modify-write that loses updates under thread contention.
            with self._lock:
                self.stats.failed_fetches += 1
            raise
        with self._lock:
            self.stats.downloads += 1
            self.stats.downloaded_labels.append(label)
            self._store[label] = model
            if self._capacity is not None and len(self._store) > self._capacity:
                self._store.popitem(last=False)
                self.stats.evictions += 1
        return model

    def acquire(self, label: int) -> M:
        """Protocol-compatible alias of :meth:`get`.

        The streaming client brackets each segment's model use with
        ``acquire``/``release`` so a refcounting cache
        (:class:`repro.serve.SharedModelCache`) can pin the entry against
        eviction mid-SR; the single-owner cache has no refcounts, so
        acquire is just a get.
        """
        return self.get(label)

    def release(self, label: int) -> None:
        """No-op counterpart of :meth:`acquire` (no refcounts here)."""

    def clear(self) -> None:
        with self._lock:
            self._store.clear()


def simulate_caching(
    label_sequence: list[int], capacity: int | None = None,
) -> tuple[list[bool], CacheStats]:
    """Dry-run Algorithm 1 over a label sequence.

    Returns ``(download_flags, stats)`` where ``download_flags[i]`` says
    whether playing segment ``i`` triggered a model download — the
    walk-through of Figure 7 (labels ``0112223`` download at segments
    0, 1, 3, 6).
    """
    cache: ModelCache[int] = ModelCache(fetch=lambda label: label,
                                        capacity=capacity)
    flags = []
    for label in label_sequence:
        before = cache.stats.downloads
        cache.get(label)
        flags.append(cache.stats.downloads > before)
    return flags, cache.stats
