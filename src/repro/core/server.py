"""Server-side dcSR (Section 3.1, Figure 2).

``build_package`` runs the full pipeline on one video:

1. shot-based variable-length split (or fixed-length when configured);
2. encode at the target CRF; decode the low-quality reference the client
   will actually see (the SR training input);
3. VAE feature extraction over the segments' I frames;
4. constrained global-K-means clustering (Eq. 2-3);
5. one micro EDSR model trained per cluster on that cluster's I frames.

The result, a :class:`DcsrPackage`, is what a CDN would host: the encoded
segments, the manifest, and the micro models.

The independent stages — per-segment encode/decode, per-chunk VAE feature
extraction, per-cluster training — fan out over a
:class:`~repro.core.parallel.ParallelConfig`-selected worker pool, and
per-cluster training runs are memoized in an optional content-addressed
:class:`~repro.core.persist.TrainingCache`.  Serial and parallel builds
are bit-identical for the same seed (see ``docs/performance.md`` for the
determinism contract); the serial backend is the exact sequential code
path.
"""

from __future__ import annotations

from concurrent.futures import Executor
from dataclasses import dataclass, field

import numpy as np

from ..obs import MonotonicClock, Observability

from ..clustering import KSelection, max_k_for_budget, select_k
from ..features import (
    ConvVAE,
    VaeTrainConfig,
    extract_features,
    frames_to_batch,
    train_vae,
)
from ..sr import (
    EDSR,
    EdsrConfig,
    InferenceEngine,
    QUALITY_BIG_CONFIG,
    QUANT_PRECISIONS,
    SrTrainConfig,
    calibrate_quantized,
    micro_tier_config,
    train_sr,
    training_flops_estimate,
)
from ..video.quality import psnr
from ..video import VideoClip, detect_segments, fixed_length_segments, yuv420_to_rgb
from ..video.codec import (
    CodecConfig,
    DecodedVideo,
    Decoder,
    EncodedSegment,
    EncodedVideo,
    Encoder,
)
from ..video.segment import Segment
from .manifest import (ModelTierRecord, QuantizationRecord, SegmentRecord,
                       VideoManifest)
from .parallel import (
    BuildTelemetry,
    ClusterTrainingError,
    ParallelConfig,
    make_executor,
    stage_timer,
)
from .persist import TrainingCache

__all__ = ["ServerConfig", "DcsrPackage", "build_package", "prepare_video"]


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of the server pipeline.

    ``micro_config`` is the per-cluster model architecture (found by the
    minimum-working-model search of Appendix A.1; the default is a sensible
    minimum for the synthetic corpus).  ``big_config`` only enters the K
    budget (Eq. 3) — it is the single model NAS/NEMO would ship.

    ``parallel`` fans the independent stages out over a worker pool (the
    default is the serial code path); ``train_cache_dir`` enables the
    content-addressed training cache so rebuilding a video with unchanged
    clusters skips training.
    """

    codec: CodecConfig = field(default_factory=lambda: CodecConfig(crf=45))
    segment_threshold: float = 0.08
    min_segment_len: int = 2
    max_segment_len: int | None = None
    fixed_segment_len: int | None = None  # use fixed-length split instead
    vae_latent_dim: int = 8
    vae_input_size: int = 32
    vae_train: VaeTrainConfig = field(
        default_factory=lambda: VaeTrainConfig(epochs=30, batch_size=8))
    micro_config: EdsrConfig = field(
        default_factory=lambda: EdsrConfig(n_resblocks=2, n_filters=8))
    big_config: EdsrConfig = QUALITY_BIG_CONFIG
    sr_train: SrTrainConfig = field(default_factory=SrTrainConfig)
    k_override: int | None = None
    #: Validate per video whether writing enhanced I frames back into the
    #: DPB (in-loop propagation) beats display-only enhancement, and record
    #: the winner in the manifest.  Costs two simulated playbacks.
    validate_in_loop: bool = True
    #: Reduced precisions to calibrate after training: for each micro model
    #: the build measures the PSNR delta vs fp32 on the cluster's own
    #: I-frames and records it (plus the quantized checkpoint size) in the
    #: manifest.  Empty tuple skips the calibration stage entirely.
    quantize_precisions: tuple[str, ...] = QUANT_PRECISIONS
    #: Named micro-model *tiers* (:data:`repro.sr.MICRO_TIERS`) to train
    #: per cluster in addition to ``micro_config``.  For every tier the
    #: build calibrates the fp32 PSNR uplift over the plain decode and the
    #: per-precision size/delta, and records a
    #: :class:`~repro.core.manifest.ModelTierRecord` table in the manifest
    #: — the input to the joint ABR x SR controller.  Empty tuple (the
    #: default) skips tier training entirely.
    model_tiers: tuple[str, ...] = ()
    seed: int = 0
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    train_cache_dir: str | None = None


@dataclass
class DcsrPackage:
    """Everything the server publishes for one video."""

    manifest: VideoManifest
    encoded: EncodedVideo
    models: dict[int, EDSR]
    features: np.ndarray              # (n_segments, latent_dim)
    selection: KSelection
    vae: ConvVAE
    segments: list[Segment]
    decoded_low: DecodedVideo         # the client-visible LQ reference
    telemetry: BuildTelemetry | None = None
    #: tier name -> label -> model, for packages built with
    #: :attr:`ServerConfig.model_tiers` (empty otherwise).
    tier_models: dict[str, dict[int, EDSR]] = field(default_factory=dict)

    @property
    def n_models(self) -> int:
        return len(self.models)


# ----------------------------------------------------------------------
# Pool worker tasks.  Module-level so they pickle by reference for the
# process backend; each receives everything it needs (no shared state) and
# performs exactly the operations of the serial path, so results are
# bit-identical at any worker count.

def _encode_segment_task(args) -> EncodedSegment:
    codec, frames, segment = args
    return Encoder(codec).encode_segment(frames, segment)


def _decode_segment_task(args):
    segment, width, height = args
    return segment.index, Decoder().decode_segment(segment, width, height)


def _embed_chunk_task(args) -> np.ndarray:
    blob, latent_dim, input_size, frames = args
    from .. import nn
    vae = ConvVAE(latent_dim=latent_dim, input_size=input_size)
    nn.deserialize_from_bytes(vae, blob)
    return extract_features(vae, frames)


def _train_cluster_task(args):
    label, model_config, seed, lq, hr, train_config = args
    from .. import nn
    model = EDSR(model_config, seed=seed)
    # An Observability session holds locks and cannot cross the process
    # boundary; workers time against a local clock and the parent records
    # the measured seconds into its own trace.
    clock = MonotonicClock()
    t0 = clock.now()
    train_sr(model, lq, hr, train_config)
    return label, nn.serialize_to_bytes(model), clock.now() - t0


def _run_pool(executor: Executor, fn, tasks, labels, wrap=None):
    """Submit ``tasks`` and collect results in submission order.

    A worker exception aborts the build: pending tasks are cancelled and
    the failure re-raised — wrapped via ``wrap(label, exc)`` when given
    (training attaches the cluster id this way), raw otherwise — so a bad
    task is attributable instead of hanging the build.
    """
    futures = [executor.submit(fn, task) for task in tasks]
    results = []
    try:
        for label, future in zip(labels, futures):
            try:
                results.append(future.result())
            except Exception as exc:
                if wrap is None or isinstance(exc, ClusterTrainingError):
                    raise
                raise wrap(label, exc) from exc
    except BaseException:
        executor.shutdown(wait=True, cancel_futures=True)
        raise
    return results


# ----------------------------------------------------------------------
# Pipeline stages.

def prepare_video(
    clip: VideoClip, config: ServerConfig,
    telemetry: BuildTelemetry | None = None,
) -> tuple[list[Segment], EncodedVideo, DecodedVideo]:
    """Steps 1-2: split and encode the video, then decode the LQ version."""
    with stage_timer(telemetry, "split"):
        if config.fixed_segment_len is not None:
            segments = fixed_length_segments(clip.n_frames,
                                             config.fixed_segment_len)
        else:
            segments = detect_segments(
                clip.frames, threshold=config.segment_threshold,
                min_length=config.min_segment_len,
                max_length=config.max_segment_len)
    with stage_timer(telemetry, "encode"):
        executor = make_executor(config.parallel)
        if executor is None:
            encoded = Encoder(config.codec).encode(clip.frames, segments,
                                                   fps=clip.fps)
            decoded = Decoder().decode_video(encoded)
        else:
            with executor:
                encoded = _encode_parallel(clip, segments, config, executor)
                decoded = _decode_parallel(encoded, executor)
    return segments, encoded, decoded


def _encode_parallel(
    clip: VideoClip, segments: list[Segment], config: ServerConfig,
    executor: Executor,
) -> EncodedVideo:
    ordered = sorted(segments, key=lambda s: s.start)
    tasks = [(config.codec, clip.frames[seg.start:seg.end], seg)
             for seg in ordered]
    coded = _run_pool(executor, _encode_segment_task, tasks,
                      [seg.index for seg in ordered])
    video = EncodedVideo(width=clip.width, height=clip.height, fps=clip.fps,
                         config=config.codec)
    video.segments.extend(coded)
    return video


def _decode_parallel(encoded: EncodedVideo, executor: Executor) -> DecodedVideo:
    tasks = [(seg, encoded.width, encoded.height) for seg in encoded.segments]
    decoded_segments = _run_pool(executor, _decode_segment_task, tasks,
                                 [seg.index for seg in encoded.segments])
    by_display = {}
    for _index, frames in decoded_segments:
        for item in frames:
            by_display[item.display] = item
    result = DecodedVideo(width=encoded.width, height=encoded.height,
                          fps=encoded.fps)
    for display in sorted(by_display):
        item = by_display[display]
        result.frames.append(item.frame)
        result.frame_types.append(item.ftype)
        result.frame_bits.append(item.n_bits)
    return result


def _extract_features_parallel(
    vae: ConvVAE, frames: np.ndarray, config: ParallelConfig,
    executor: Executor,
) -> np.ndarray:
    from .. import nn
    blob = nn.serialize_to_bytes(vae)
    chunk = config.chunk_size
    starts = list(range(0, len(frames), chunk))
    tasks = [(blob, vae.latent_dim, vae.input_size, frames[s:s + chunk])
             for s in starts]
    parts = _run_pool(executor, _embed_chunk_task, tasks, starts)
    return np.concatenate(parts, axis=0)


def _train_models(
    config: ServerConfig, labels: np.ndarray,
    lq_i: np.ndarray, hr_i: np.ndarray, telemetry: BuildTelemetry,
    model_config: EdsrConfig | None = None, seed_base: int | None = None,
    tier: str | None = None,
) -> dict[int, EDSR]:
    """Stage 5: one micro model per cluster, cache-aware and pool-aware.

    ``model_config`` / ``seed_base`` override the architecture and the
    seed origin (tier training passes the tier's preset and a
    tier-specific seed base so tier weights never alias the base micro
    models); ``tier`` tags the per-cluster spans.
    """
    model_config = model_config if model_config is not None \
        else config.micro_config
    seed_base = seed_base if seed_base is not None else config.seed
    cache = (TrainingCache(config.train_cache_dir)
             if config.train_cache_dir is not None else None)
    obs = telemetry.obs
    span_extra = {} if tier is None else {"tier": tier}
    models: dict[int, EDSR] = {}
    pending = []  # (label, seed, lq_member, hr_member, cache_key)
    for label in sorted(set(int(l) for l in labels)):
        member = labels == label
        lq_m, hr_m = lq_i[member], hr_i[member]
        seed = seed_base + label
        key = None
        if cache is not None:
            key = cache.key(lq_m, hr_m, model_config, config.sr_train,
                            seed)
            cached = cache.get(key, model_config)
            if cached is not None:
                models[label] = cached
                telemetry.cache_hits += 1
                obs.metrics.counter(
                    "dcsr_train_cache_hits_total",
                    "Clusters served from the training cache").inc()
                continue
            telemetry.cache_misses += 1
            obs.metrics.counter(
                "dcsr_train_cache_misses_total",
                "Clusters trained because the cache had no entry").inc()
        pending.append((label, seed, lq_m, hr_m, key))

    executor = make_executor(config.parallel)
    if executor is None:
        for label, seed, lq_m, hr_m, key in pending:
            model = EDSR(model_config, seed=seed)
            # Unstaged child of the open "train" stage span, so the train
            # stage keeps its full duration while each cluster stays
            # attributable in the tree.
            with obs.tracer.span("train_cluster", cluster=label,
                                 **span_extra) as sp:
                train_sr(model, lq_m, hr_m, config.sr_train, obs=obs)
            if tier is None:
                telemetry.train_seconds_per_cluster[label] = sp.elapsed
            models[label] = model
            if cache is not None:
                cache.put(key, model)
    else:
        from .. import nn
        seeds = {label: seed for label, seed, _l, _h, _key in pending}
        tasks = [(label, model_config, seed, lq_m, hr_m,
                  config.sr_train)
                 for label, seed, lq_m, hr_m, _key in pending]
        with executor:
            results = _run_pool(
                executor, _train_cluster_task, tasks,
                [label for label, *_rest in pending],
                wrap=lambda label, exc: ClusterTrainingError(label, str(exc)))
        keys = {label: key for label, _s, _l, _h, key in pending}
        for label, blob, seconds in results:
            model = EDSR(model_config, seed=seeds[int(label)])
            nn.deserialize_from_bytes(model, blob)
            if tier is None:
                telemetry.train_seconds_per_cluster[int(label)] = seconds
            obs.tracer.record("train_cluster", seconds, cluster=int(label),
                              worker="process", **span_extra)
            models[int(label)] = model
            if cache is not None:
                cache.put(keys[int(label)], model)

    telemetry.train_flops += (
        training_flops_estimate(EDSR(model_config), config.sr_train)
        * len(pending))
    return models


def build_package(clip: VideoClip, config: ServerConfig | None = None,
                  obs: Observability | None = None) -> DcsrPackage:
    """Run the full server pipeline on ``clip``.

    ``obs`` (an optional :class:`~repro.obs.Observability`) is the session
    every stage records its spans and metrics into (``cli prepare
    --trace-out/--metrics-out`` passes one); by default the build's
    :class:`~repro.core.parallel.BuildTelemetry` owns a fresh session.
    The whole pipeline runs inside one ``build`` span, so the exported
    tree carries the stages as its children.
    """
    config = config or ServerConfig()
    telemetry = BuildTelemetry(backend=config.parallel.effective_backend(),
                               workers=config.parallel.resolve_workers(),
                               obs=obs or Observability(root_name="server"))
    with telemetry.obs.tracer.span("build", video=clip.name):
        return _build_package(clip, config, telemetry)


def _build_package(clip: VideoClip, config: ServerConfig,
                   telemetry: BuildTelemetry) -> DcsrPackage:
    segments, encoded, decoded = prepare_video(clip, config, telemetry)

    # I-frame training pairs: the decoded LQ I frame (network input) and the
    # pristine original (ground truth).
    i_indices = [seg.start for seg in segments]
    lq_i = np.stack([yuv420_to_rgb(decoded.frames[i]) for i in i_indices])
    hr_i = np.stack([clip.frames[i] for i in i_indices])

    # Feature extraction: VAE trained on this video's I frames (HR side —
    # the server has it), encoder mean as the feature.  Training is one
    # sequential model; the per-I-frame embedding fans out in chunks.
    with stage_timer(telemetry, "embed"):
        vae = ConvVAE(latent_dim=config.vae_latent_dim,
                      input_size=config.vae_input_size, seed=config.seed)
        thumbs = frames_to_batch(hr_i, config.vae_input_size)
        train_vae(vae, thumbs, config.vae_train, obs=telemetry.obs)
        # Chunk boundaries are fixed by ``chunk_size`` — never by worker
        # count — because BLAS kernels differ by matrix shape, so only
        # identical per-call batches embed bit-identically.
        executor = make_executor(config.parallel)
        if executor is None:
            features = extract_features(vae, hr_i,
                                        chunk_size=config.parallel.chunk_size)
        else:
            with executor:
                features = _extract_features_parallel(
                    vae, hr_i, config.parallel, executor)

    # Constrained K selection (Eq. 2-3).
    with stage_timer(telemetry, "cluster"):
        big_size = EDSR(config.big_config).size_bytes()
        min_size = EDSR(config.micro_config).size_bytes()
        k_budget = max_k_for_budget(big_size, min_size)
        if config.k_override is not None:
            from ..clustering import global_kmeans
            k = min(config.k_override, len(segments))
            result = global_kmeans(features, k)
            selection = KSelection(k=k, scores={}, k_max=k_budget,
                                   result=result)
        else:
            selection = select_k(features, k_budget)
        labels = selection.result.labels

    # One micro model per cluster, trained on the cluster's I frames only.
    with stage_timer(telemetry, "train"):
        models = _train_models(config, labels, lq_i, hr_i, telemetry)

    # Quantization calibration: measure, per model and precision, the PSNR
    # cost of the reduced-precision kernels on the cluster's own I-frames
    # and the quantized checkpoint's download size.
    quantization: dict[int, dict[str, QuantizationRecord]] = {}
    if config.quantize_precisions:
        with stage_timer(telemetry, "quantize"):
            quantization = _calibrate_models(config, labels, models,
                                             lq_i, hr_i, telemetry)

    # Tier training + calibration: one extra model per (tier, cluster),
    # with the fp32 uplift over the plain decode and the per-precision
    # size/delta recorded for the joint controller.  Tier configs resolve
    # eagerly so a bad tier name fails before any training happens.
    tier_models: dict[str, dict[int, EDSR]] = {}
    tiers: dict[int, dict[str, dict[str, ModelTierRecord]]] = {}
    if config.model_tiers:
        tier_configs = {t: micro_tier_config(t) for t in config.model_tiers}
        with stage_timer(telemetry, "tiers"):
            for offset, (tier, tier_config) in enumerate(tier_configs.items()):
                # Tier seed bases are spaced far beyond any plausible label
                # count so tier weights never alias the base micro models.
                tier_models[tier] = _train_models(
                    config, labels, lq_i, hr_i, telemetry,
                    model_config=tier_config,
                    seed_base=config.seed + 1000 * (offset + 1), tier=tier)
            tiers = _calibrate_tiers(config, labels, tier_models,
                                     tier_configs, lq_i, hr_i, telemetry)

    manifest = VideoManifest(
        video_name=clip.name, width=clip.width, height=clip.height,
        fps=clip.fps, crf=config.codec.crf,
        segments=[
            SegmentRecord(index=seg.index, start=seg.start,
                          n_frames=seg.n_frames,
                          model_label=int(labels[i]))
            for i, seg in enumerate(segments)
        ],
        model_sizes={label: model.size_bytes()
                     for label, model in models.items()},
        quantization=quantization,
        tiers=tiers,
    )
    package = DcsrPackage(manifest=manifest, encoded=encoded, models=models,
                          features=features, selection=selection, vae=vae,
                          segments=segments, decoded_low=decoded,
                          telemetry=telemetry, tier_models=tier_models)
    if config.validate_in_loop:
        with stage_timer(telemetry, "validate"):
            package.manifest.enhance_in_loop = _validate_in_loop(package, clip)
    return package


def _calibrate_models(
    config: ServerConfig, labels: np.ndarray, models: dict[int, EDSR],
    lq_i: np.ndarray, hr_i: np.ndarray, telemetry: BuildTelemetry,
) -> dict[int, dict[str, QuantizationRecord]]:
    """Per-model quantization calibration on each cluster's own I-frames."""
    obs = telemetry.obs
    quantization: dict[int, dict[str, QuantizationRecord]] = {}
    for label, model in sorted(models.items()):
        member = labels == label
        with obs.tracer.span("calibrate_cluster", cluster=label):
            results = calibrate_quantized(
                model, lq_i[member], hr_i[member],
                precisions=config.quantize_precisions)
        quantization[label] = {
            precision: QuantizationRecord(precision=precision,
                                          size_bytes=r.size_bytes,
                                          delta_db=r.delta_db)
            for precision, r in results.items()
        }
        for precision, r in results.items():
            obs.metrics.histogram(
                "dcsr_quant_delta_db",
                "Calibrated PSNR delta of quantized micro models (dB)",
                buckets=(0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0),
            ).observe(max(0.0, r.delta_db))
    return quantization


#: PSNR clamp matching ``repro.sr.quantize`` so a perfect reconstruction
#: still yields a finite, JSON-serializable gain.
_TIER_PSNR_CLAMP_DB = 99.0

#: Calibration frame cap matching ``calibrate_quantized``'s default.
_TIER_CALIB_FRAMES = 4


def _calibrate_tiers(
    config: ServerConfig, labels: np.ndarray,
    tier_models: dict[str, dict[int, EDSR]],
    tier_configs: dict[str, EdsrConfig],
    lq_i: np.ndarray, hr_i: np.ndarray, telemetry: BuildTelemetry,
) -> dict[int, dict[str, dict[str, ModelTierRecord]]]:
    """Per-(tier, cluster) calibration on the cluster's own I-frames.

    ``gain_db`` is the fp32 tier model's PSNR uplift over the plain decode;
    the per-precision ``size_bytes``/``delta_db`` come from the same
    :func:`~repro.sr.quantize.calibrate_quantized` pass the base models use.
    """
    obs = telemetry.obs
    tiers: dict[int, dict[str, dict[str, ModelTierRecord]]] = {}
    for tier, models in sorted(tier_models.items()):
        tier_config = tier_configs[tier]
        for label, model in sorted(models.items()):
            member = labels == label
            lq_m = lq_i[member][:_TIER_CALIB_FRAMES]
            hr_m = hr_i[member][:_TIER_CALIB_FRAMES]
            with obs.tracer.span("calibrate_tier", cluster=label, tier=tier):
                base_db = min(psnr(lq_m, hr_m), _TIER_PSNR_CLAMP_DB)
                out = InferenceEngine(model).enhance_batch(lq_m)
                gain_db = min(psnr(out, hr_m), _TIER_PSNR_CLAMP_DB) - base_db
                quant = (calibrate_quantized(
                             model, lq_i[member], hr_i[member],
                             precisions=config.quantize_precisions)
                         if config.quantize_precisions else {})
            records = {"fp32": ModelTierRecord(
                precision="fp32", size_bytes=model.size_bytes(),
                delta_db=0.0, tier=tier,
                n_resblocks=tier_config.n_resblocks,
                n_filters=tier_config.n_filters, gain_db=gain_db)}
            for precision, r in quant.items():
                records[precision] = ModelTierRecord(
                    precision=precision, size_bytes=r.size_bytes,
                    delta_db=r.delta_db, tier=tier,
                    n_resblocks=tier_config.n_resblocks,
                    n_filters=tier_config.n_filters, gain_db=gain_db)
            tiers.setdefault(label, {})[tier] = records
            obs.metrics.histogram(
                "dcsr_tier_gain_db",
                "Calibrated fp32 PSNR uplift of tier models (dB)",
                buckets=(0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0),
            ).observe(max(0.0, gain_db))
    return tiers


def _validate_in_loop(package: DcsrPackage, clip: VideoClip) -> bool:
    """Server-side quality validation of in-loop enhancement.

    Simulates both client modes against the pristine original and keeps
    in-loop propagation only when it wins: on high-motion content the
    motion-compensated enhancement delta can land in the wrong place and
    drag P/B frames below the plain decode (cf. NEMO's per-anchor quality
    validation).  Display-only enhancement is the drift-free floor — it can
    only improve the I frames it touches.
    """
    from .client import DcsrClient

    scores = {}
    for in_loop in (True, False):
        package.manifest.enhance_in_loop = in_loop
        result = DcsrClient(package).play(clip.frames)
        scores[in_loop] = result.mean_psnr
    return scores[True] >= scores[False]
