"""Server-side dcSR (Section 3.1, Figure 2).

``build_package`` runs the full pipeline on one video:

1. shot-based variable-length split (or fixed-length when configured);
2. encode at the target CRF; decode the low-quality reference the client
   will actually see (the SR training input);
3. VAE feature extraction over the segments' I frames;
4. constrained global-K-means clustering (Eq. 2-3);
5. one micro EDSR model trained per cluster on that cluster's I frames.

The result, a :class:`DcsrPackage`, is what a CDN would host: the encoded
segments, the manifest, and the micro models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..clustering import KSelection, max_k_for_budget, select_k
from ..features import ConvVAE, VaeTrainConfig, extract_features, train_vae
from ..sr import (
    EDSR,
    EdsrConfig,
    QUALITY_BIG_CONFIG,
    SrTrainConfig,
    train_sr,
)
from ..video import VideoClip, detect_segments, fixed_length_segments, yuv420_to_rgb
from ..video.codec import CodecConfig, DecodedVideo, Decoder, EncodedVideo, Encoder
from ..video.segment import Segment
from .manifest import SegmentRecord, VideoManifest

__all__ = ["ServerConfig", "DcsrPackage", "build_package", "prepare_video"]


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of the server pipeline.

    ``micro_config`` is the per-cluster model architecture (found by the
    minimum-working-model search of Appendix A.1; the default is a sensible
    minimum for the synthetic corpus).  ``big_config`` only enters the K
    budget (Eq. 3) — it is the single model NAS/NEMO would ship.
    """

    codec: CodecConfig = field(default_factory=lambda: CodecConfig(crf=45))
    segment_threshold: float = 0.08
    min_segment_len: int = 2
    max_segment_len: int | None = None
    fixed_segment_len: int | None = None  # use fixed-length split instead
    vae_latent_dim: int = 8
    vae_input_size: int = 32
    vae_train: VaeTrainConfig = field(
        default_factory=lambda: VaeTrainConfig(epochs=30, batch_size=8))
    micro_config: EdsrConfig = field(
        default_factory=lambda: EdsrConfig(n_resblocks=2, n_filters=8))
    big_config: EdsrConfig = QUALITY_BIG_CONFIG
    sr_train: SrTrainConfig = field(default_factory=SrTrainConfig)
    k_override: int | None = None
    #: Validate per video whether writing enhanced I frames back into the
    #: DPB (in-loop propagation) beats display-only enhancement, and record
    #: the winner in the manifest.  Costs two simulated playbacks.
    validate_in_loop: bool = True
    seed: int = 0


@dataclass
class DcsrPackage:
    """Everything the server publishes for one video."""

    manifest: VideoManifest
    encoded: EncodedVideo
    models: dict[int, EDSR]
    features: np.ndarray              # (n_segments, latent_dim)
    selection: KSelection
    vae: ConvVAE
    segments: list[Segment]
    decoded_low: DecodedVideo         # the client-visible LQ reference

    @property
    def n_models(self) -> int:
        return len(self.models)


def prepare_video(
    clip: VideoClip, config: ServerConfig,
) -> tuple[list[Segment], EncodedVideo, DecodedVideo]:
    """Steps 1-2: split and encode the video, then decode the LQ version."""
    if config.fixed_segment_len is not None:
        segments = fixed_length_segments(clip.n_frames, config.fixed_segment_len)
    else:
        segments = detect_segments(
            clip.frames, threshold=config.segment_threshold,
            min_length=config.min_segment_len,
            max_length=config.max_segment_len)
    encoded = Encoder(config.codec).encode(clip.frames, segments, fps=clip.fps)
    decoded = Decoder().decode_video(encoded)
    return segments, encoded, decoded


def build_package(clip: VideoClip, config: ServerConfig | None = None) -> DcsrPackage:
    """Run the full server pipeline on ``clip``."""
    config = config or ServerConfig()
    segments, encoded, decoded = prepare_video(clip, config)

    # I-frame training pairs: the decoded LQ I frame (network input) and the
    # pristine original (ground truth).
    i_indices = [seg.start for seg in segments]
    lq_i = np.stack([yuv420_to_rgb(decoded.frames[i]) for i in i_indices])
    hr_i = np.stack([clip.frames[i] for i in i_indices])

    # Feature extraction: VAE trained on this video's I frames (HR side —
    # the server has it), encoder mean as the feature.
    vae = ConvVAE(latent_dim=config.vae_latent_dim,
                  input_size=config.vae_input_size, seed=config.seed)
    from ..features import frames_to_batch
    thumbs = frames_to_batch(hr_i, config.vae_input_size)
    train_vae(vae, thumbs, config.vae_train)
    features = extract_features(vae, hr_i)

    # Constrained K selection (Eq. 2-3).
    big_size = EDSR(config.big_config).size_bytes()
    min_size = EDSR(config.micro_config).size_bytes()
    k_budget = max_k_for_budget(big_size, min_size)
    if config.k_override is not None:
        from ..clustering import global_kmeans
        k = min(config.k_override, len(segments))
        result = global_kmeans(features, k)
        selection = KSelection(k=k, scores={}, k_max=k_budget, result=result)
    else:
        selection = select_k(features, k_budget)
    labels = selection.result.labels

    # One micro model per cluster, trained on the cluster's I frames only.
    models: dict[int, EDSR] = {}
    for label in sorted(set(int(l) for l in labels)):
        member = labels == label
        model = EDSR(config.micro_config, seed=config.seed + int(label))
        train_sr(model, lq_i[member], hr_i[member], config.sr_train)
        models[int(label)] = model

    manifest = VideoManifest(
        video_name=clip.name, width=clip.width, height=clip.height,
        fps=clip.fps, crf=config.codec.crf,
        segments=[
            SegmentRecord(index=seg.index, start=seg.start,
                          n_frames=seg.n_frames,
                          model_label=int(labels[i]))
            for i, seg in enumerate(segments)
        ],
        model_sizes={label: model.size_bytes()
                     for label, model in models.items()},
    )
    package = DcsrPackage(manifest=manifest, encoded=encoded, models=models,
                          features=features, selection=selection, vae=vae,
                          segments=segments, decoded_low=decoded)
    if config.validate_in_loop:
        package.manifest.enhance_in_loop = _validate_in_loop(package, clip)
    return package


def _validate_in_loop(package: DcsrPackage, clip: VideoClip) -> bool:
    """Server-side quality validation of in-loop enhancement.

    Simulates both client modes against the pristine original and keeps
    in-loop propagation only when it wins: on high-motion content the
    motion-compensated enhancement delta can land in the wrong place and
    drag P/B frames below the plain decode (cf. NEMO's per-anchor quality
    validation).  Display-only enhancement is the drift-free floor — it can
    only improve the I frames it touches.
    """
    from .client import DcsrClient

    scores = {}
    for in_loop in (True, False):
        package.manifest.enhance_in_loop = in_loop
        result = DcsrClient(package).play(clip.frames)
        scores[in_loop] = result.mean_psnr
    return scores[True] >= scores[False]
