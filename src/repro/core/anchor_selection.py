"""NEMO-style adaptive anchor selection.

The full NEMO system (Yeo et al., MobiCom'20) does not enhance a fixed set
of key frames — it *selects* anchor frames per chunk so that, for a given
inference budget, the quality propagated through the codec's references is
maximised.  The paper's evaluation simplifies NEMO to "SR on I frames"; this
module implements the real anchor-selection idea on our codec so the
simplification can be quantified.

Anchors are reference frames (I and P): enhancing one improves every frame
that predicts from it.  Segments are closed GOPs, so selection runs
per segment: greedy forward selection over the segment's I/P frames,
adding whichever anchor raises the segment's mean luma PSNR most, until the
per-segment budget is spent or no candidate helps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sr.edsr import EDSR
from ..video.codec import Decoder, EncodedSegment, EncodedVideo
from ..video.frame import YuvFrame
from ..video.quality import psnr_yuv
from ..video import rgb_to_yuv420
from .client import enhance_yuv_frame

__all__ = ["AnchorPlan", "evaluate_anchor_set", "select_anchors"]


@dataclass
class AnchorPlan:
    """Selected anchors and the quality trajectory of the greedy search."""

    anchors: set = field(default_factory=set)       # display indices
    quality_db: float = 0.0                          # final mean luma PSNR
    history: list = field(default_factory=list)      # (added, quality) steps

    @property
    def n_anchors(self) -> int:
        return len(self.anchors)


def _segment_quality(
    segment: EncodedSegment, width: int, height: int, model: EDSR,
    references: list[YuvFrame], anchors: set,
) -> float:
    """Mean luma PSNR of one segment decoded with ``anchors`` enhanced."""

    def hook(frame: YuvFrame, display: int, ftype: str):
        if display in anchors:
            return enhance_yuv_frame(model, frame)
        return None

    decoder = Decoder(anchor_hook=hook)
    decoded = decoder.decode_segment(segment, width, height)
    values = []
    for item in decoded:
        ref = references[item.display - segment.start]
        value = psnr_yuv(ref, item.frame)
        if np.isfinite(value):
            values.append(value)
    return float(np.mean(values)) if values else 100.0


def evaluate_anchor_set(
    encoded: EncodedVideo, model: EDSR, reference_frames: np.ndarray,
    anchors: set,
) -> float:
    """Mean luma PSNR of the whole video with ``anchors`` enhanced."""
    totals = []
    for segment in encoded.segments:
        refs = [rgb_to_yuv420(reference_frames[t])
                for t in range(segment.start, segment.start + segment.n_frames)]
        seg_anchors = {a for a in anchors
                       if segment.start <= a < segment.start + segment.n_frames}
        quality = _segment_quality(segment, encoded.width, encoded.height,
                                   model, refs, seg_anchors)
        totals.append((quality, segment.n_frames))
    weight = sum(n for _, n in totals)
    return float(sum(q * n for q, n in totals) / weight)


def select_anchors(
    encoded: EncodedVideo, model: EDSR, reference_frames: np.ndarray,
    budget_per_segment: int = 2, min_gain_db: float = 0.01,
) -> AnchorPlan:
    """Greedy per-segment anchor selection.

    For each segment, candidates are its I and P frames.  Anchors are added
    one at a time, each time picking the candidate with the largest mean-
    PSNR improvement, stopping at ``budget_per_segment`` anchors or when no
    candidate improves quality by at least ``min_gain_db``.
    """
    if budget_per_segment < 0:
        raise ValueError("budget_per_segment must be >= 0")
    plan = AnchorPlan()
    weighted = []

    for segment in encoded.segments:
        refs = [rgb_to_yuv420(reference_frames[t])
                for t in range(segment.start, segment.start + segment.n_frames)]
        candidates = [info.display for info in segment.frames
                      if info.ftype in ("I", "P")]
        chosen: set = set()
        current = _segment_quality(segment, encoded.width, encoded.height,
                                   model, refs, chosen)
        while len(chosen) < budget_per_segment:
            best_candidate, best_quality = None, current
            for candidate in candidates:
                if candidate in chosen:
                    continue
                quality = _segment_quality(
                    segment, encoded.width, encoded.height, model, refs,
                    chosen | {candidate})
                if quality > best_quality + min_gain_db:
                    best_candidate, best_quality = candidate, quality
            if best_candidate is None:
                break
            chosen.add(best_candidate)
            current = best_quality
            plan.history.append((best_candidate, best_quality))
        plan.anchors |= chosen
        weighted.append((current, segment.n_frames))

    total = sum(n for _, n in weighted)
    plan.quality_db = float(sum(q * n for q, n in weighted) / total)
    return plan
