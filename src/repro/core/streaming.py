"""Streaming and bandwidth accounting (Figure 10) plus playback timing.

Total network usage of a method is its video bytes plus whatever model
bytes it downloads: one big model for NAS/NEMO, the cached micro-model set
for dcSR, nothing for LOW.  The figure normalises against NAS.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices import DeviceSpec, inference_seconds, sr_power_draw
from ..devices.power import PowerTimeline, playback_power_schedule, simulate_power
from ..sr.edsr import EDSR
from .client import PlaybackResult, PlaybackTelemetry

__all__ = ["BandwidthUsage", "bandwidth_of", "normalized_usage",
           "session_goodput_bps", "session_power", "stall_ratio",
           "startup_delay", "startup_comparison"]


@dataclass(frozen=True)
class BandwidthUsage:
    """Bytes moved for one playback session."""

    method: str
    video_bytes: int
    model_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.video_bytes + self.model_bytes


def bandwidth_of(method: str, result: PlaybackResult) -> BandwidthUsage:
    return BandwidthUsage(method=method, video_bytes=result.video_bytes,
                          model_bytes=result.model_bytes)


def normalized_usage(usages: dict[str, BandwidthUsage],
                     reference: str = "NAS") -> dict[str, float]:
    """Figure 10's Y axis: total bytes relative to the reference method."""
    if reference not in usages:
        raise KeyError(f"reference method {reference!r} not in usages")
    ref = usages[reference].total_bytes
    if ref <= 0:
        raise ValueError("reference usage must be positive")
    return {name: usage.total_bytes / ref for name, usage in usages.items()}


def startup_delay(
    bandwidth_bps: float, first_segment_bytes: int, upfront_model_bytes: int,
) -> float:
    """Seconds before playback can start at a constant bandwidth.

    NAS/NEMO must download the whole big model *before* the first frame can
    be enhanced (Section 2.2: "the model needs to be downloaded in the
    beginning of the streaming"); dcSR only needs the first segment's micro
    model.  Both need the first segment itself.
    """
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth must be positive")
    return 8.0 * (first_segment_bytes + upfront_model_bytes) / bandwidth_bps


def startup_comparison(package, big_model_bytes: int,
                       bandwidth_bps: float,
                       precision: str = "fp32") -> dict[str, float]:
    """Startup delay of each method for one package at a given bandwidth.

    ``precision`` sizes the first micro model a dcSR client downloads:
    when the manifest carries a calibrated quantization record for it,
    the smaller quantized checkpoint shortens dcSR's startup (NAS/NEMO
    still ship their fp32 big model).
    """
    first_segment = package.encoded.segments[0].n_bytes
    first_label = package.manifest.label_sequence()[0]
    manifest = package.manifest
    if hasattr(manifest, "model_size_for"):
        first_micro = manifest.model_size_for(first_label, precision)
    else:
        first_micro = manifest.model_sizes[first_label]
    return {
        "NAS": startup_delay(bandwidth_bps, first_segment, big_model_bytes),
        "NEMO": startup_delay(bandwidth_bps, first_segment, big_model_bytes),
        "dcSR": startup_delay(bandwidth_bps, first_segment, first_micro),
        "LOW": startup_delay(bandwidth_bps, first_segment, 0),
    }


def stall_ratio(telemetry: PlaybackTelemetry) -> float:
    """Fraction of the viewing session spent stalled.

    Media time is what the playout clock owes the viewer
    (frames / native fps); stalls extend the session beyond it.
    """
    n_frames = sum(seg.n_frames for seg in telemetry.segments)
    media_s = n_frames / telemetry.native_fps if telemetry.native_fps > 0 else 0.0
    session_s = media_s + telemetry.stall_seconds
    if session_s <= 0:
        return 0.0
    return telemetry.stall_seconds / session_s


def session_goodput_bps(result: PlaybackResult) -> float:
    """Delivered payload bits per second of time spent downloading.

    Failed attempts burn download time without delivering bytes, so
    injected loss shows up directly as a goodput drop.
    """
    if result.telemetry is None:
        raise ValueError("result carries no telemetry")
    download_s = result.telemetry.stage_seconds.get("download", 0.0)
    if download_s <= 0:
        return 0.0
    return 8.0 * (result.video_bytes + result.model_bytes) / download_s


def session_power(
    device: DeviceSpec, model: EDSR, resolution: str,
    segment_durations_s: list[float], inferences_per_segment: int,
    continuous: bool = False,
) -> PowerTimeline:
    """Power trace of one playback session (Figure 8(d)).

    ``continuous=True`` models NAS: the accelerator runs SR for the whole
    session.  Otherwise inference bursts fire at each segment start
    (NEMO / dcSR).
    """
    total = float(sum(segment_durations_s))
    cost = inference_seconds(model, resolution, device)
    watts = sr_power_draw(device, cost.profile.flops, cost.seconds)
    if continuous:
        intervals = [(0.0, total)]
    else:
        intervals = playback_power_schedule(
            segment_durations_s, inferences_per_segment, cost.seconds)
    return simulate_power(device, total, intervals, watts)
