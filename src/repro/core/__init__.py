"""The dcSR system: server pipeline, client decoder integration, model
caching, baselines, and streaming accounting."""

from .anchor_selection import AnchorPlan, evaluate_anchor_set, select_anchors
from .baselines import (
    BigModelBaseline,
    play_low,
    play_nas,
    play_nemo,
    play_nemo_adaptive,
    train_big_model,
)
from .cache import CacheStats, ModelCache, simulate_caching
from .client import (
    PLAYBACK_STAGES,
    DcsrClient,
    FastPathConfig,
    PlaybackResult,
    PlaybackTelemetry,
    PlayedFrame,
    SegmentPlayback,
    enhance_yuv_frame,
)
from .manifest import SegmentRecord, VideoManifest
from .network import (
    DownloadError,
    DownloadStats,
    NetworkConfig,
    RetryPolicy,
    SimulatedNetwork,
    download_with_retry,
)
from .parallel import (
    BuildTelemetry,
    ClusterTrainingError,
    ParallelConfig,
)
from .persist import StoredPackage, TrainingCache, load_package, save_package
from .server import DcsrPackage, ServerConfig, build_package, prepare_video
from .streaming import (
    BandwidthUsage,
    bandwidth_of,
    normalized_usage,
    session_goodput_bps,
    session_power,
    stall_ratio,
    startup_comparison,
    startup_delay,
)

__all__ = [
    "SegmentRecord",
    "VideoManifest",
    "CacheStats",
    "ModelCache",
    "simulate_caching",
    "ServerConfig",
    "DcsrPackage",
    "ParallelConfig",
    "BuildTelemetry",
    "ClusterTrainingError",
    "TrainingCache",
    "StoredPackage",
    "save_package",
    "load_package",
    "build_package",
    "prepare_video",
    "DcsrClient",
    "FastPathConfig",
    "PlaybackResult",
    "PlaybackTelemetry",
    "PlayedFrame",
    "SegmentPlayback",
    "PLAYBACK_STAGES",
    "NetworkConfig",
    "SimulatedNetwork",
    "DownloadError",
    "DownloadStats",
    "RetryPolicy",
    "download_with_retry",
    "enhance_yuv_frame",
    "BigModelBaseline",
    "train_big_model",
    "play_nas",
    "play_nemo",
    "play_nemo_adaptive",
    "play_low",
    "AnchorPlan",
    "select_anchors",
    "evaluate_anchor_set",
    "BandwidthUsage",
    "bandwidth_of",
    "normalized_usage",
    "session_power",
    "session_goodput_bps",
    "stall_ratio",
    "startup_delay",
    "startup_comparison",
]
