"""Client-side dcSR (Section 3.2, Figure 6).

Streams a :class:`~repro.core.server.DcsrPackage` segment by segment:

1. download the segment (bytes counted);
2. check the manifest's model label against the cache; download the micro
   model only on a miss (Algorithm 1);
3. decode the segment with the SR hook installed: each I frame is pulled
   out of the decoded-picture buffer, converted YUV -> RGB, enhanced by the
   segment's micro model, converted back, and written back into the DPB so
   every P/B frame reconstructs from the enhanced reference;
4. emit display-order frames and per-frame quality against the pristine
   original.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sr.edsr import EDSR
from ..video import rgb_to_yuv420, yuv420_to_rgb
from ..video.frame import YuvFrame
from ..video.quality import psnr, ssim
from .cache import CacheStats, ModelCache
from .server import DcsrPackage

__all__ = ["PlaybackResult", "DcsrClient", "enhance_yuv_frame"]


def enhance_yuv_frame(model: EDSR, frame: YuvFrame) -> YuvFrame:
    """Steps 2-5 of Figure 6: YUV -> RGB, SR, RGB -> YUV."""
    rgb = yuv420_to_rgb(frame)
    enhanced = model.enhance(rgb)
    return rgb_to_yuv420(enhanced)


@dataclass
class PlaybackResult:
    """Outcome of one streaming session."""

    frames: list[np.ndarray] = field(default_factory=list)   # RGB, display order
    frame_types: list[str] = field(default_factory=list)
    psnr_per_frame: list[float] = field(default_factory=list)
    ssim_per_frame: list[float] = field(default_factory=list)
    video_bytes: int = 0
    model_bytes: int = 0
    model_downloads: list[int] = field(default_factory=list)
    cache_stats: CacheStats | None = None
    sr_inferences: int = 0

    @property
    def total_bytes(self) -> int:
        return self.video_bytes + self.model_bytes

    @property
    def mean_psnr(self) -> float:
        finite = [p for p in self.psnr_per_frame if np.isfinite(p)]
        return float(np.mean(finite)) if finite else float("inf")

    @property
    def mean_ssim(self) -> float:
        return float(np.mean(self.ssim_per_frame)) if self.ssim_per_frame else 1.0


class DcsrClient:
    """Plays a dcSR package through the SR-integrated decoder."""

    def __init__(self, package: DcsrPackage, cache_capacity: int | None = None):
        self.package = package
        self._cache: ModelCache[EDSR] = ModelCache(
            fetch=self._download_model, capacity=cache_capacity)
        self._model_bytes = 0

    def _download_model(self, label: int) -> EDSR:
        model = self.package.models.get(label)
        if model is None:
            raise KeyError(f"manifest references missing model {label}")
        self._model_bytes += self.package.manifest.model_sizes[label]
        return model

    def play(self, reference_frames: np.ndarray | None = None) -> PlaybackResult:
        """Stream every segment; optionally score against ``reference_frames``.

        ``reference_frames`` is the pristine ``(T, H, W, 3)`` original; when
        omitted, quality lists stay empty.
        """
        from ..video.codec import Decoder

        package = self.package
        self._model_bytes = 0
        result = PlaybackResult()
        decoded_by_display: dict[int, tuple[str, np.ndarray]] = {}
        inferences = 0

        for segment, encoded_segment in zip(package.segments,
                                            package.encoded.segments):
            label = package.manifest.model_label_for(segment.index)
            model = self._cache.get(label)
            result.video_bytes += encoded_segment.n_bytes

            def hook(frame: YuvFrame, display: int, model=model) -> YuvFrame:
                nonlocal inferences
                inferences += 1
                return enhance_yuv_frame(model, frame)

            decoder = Decoder(
                i_frame_hook=hook,
                hook_display_only=not package.manifest.enhance_in_loop)
            for item in decoder.decode_segment(encoded_segment,
                                               package.encoded.width,
                                               package.encoded.height):
                decoded_by_display[item.display] = (
                    item.ftype, yuv420_to_rgb(item.frame))

        for display in sorted(decoded_by_display):
            ftype, rgb = decoded_by_display[display]
            result.frames.append(rgb)
            result.frame_types.append(ftype)
            if reference_frames is not None:
                ref = reference_frames[display]
                result.psnr_per_frame.append(psnr(rgb, ref))
                result.ssim_per_frame.append(ssim(rgb, ref))

        result.model_bytes = self._model_bytes
        result.model_downloads = list(self._cache.stats.downloaded_labels)
        result.cache_stats = self._cache.stats
        result.sr_inferences = inferences
        return result
