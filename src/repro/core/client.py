"""Client-side dcSR (Section 3.2, Figure 6): the streaming session engine.

Plays a :class:`~repro.core.server.DcsrPackage` segment by segment as a
bounded-memory generator session (:meth:`DcsrClient.iter_frames`):

1. download the segment over the (optionally simulated) network, with
   retry + exponential backoff on injected failures;
2. check the manifest's model label against the cache; download the micro
   model only on a miss (Algorithm 1), with the same retry budget;
3. decode the segment with the SR hook installed: each I frame is pulled
   out of the decoded-picture buffer, converted YUV -> RGB, enhanced by the
   segment's micro model, converted back, and written back into the DPB so
   every P/B frame reconstructs from the enhanced reference;
4. emit display-order frames (one segment resident at a time) and
   per-frame quality against the pristine original.

Failure semantics (the paths a real CDN exercises daily):

- **Corrupt bitstream** (:class:`~repro.video.codec.DecodeError` /
  ``EOFError``) or a segment download that exhausts its retry budget →
  the session *conceals*: it holds the last good frame for the segment's
  duration, records the segment in ``PlaybackResult.skipped_segments``,
  and keeps playing.
- **Model fetch failure** (missing from the package, or download retries
  exhausted) → with ``fallback=True`` the segment plays *unenhanced*
  (passthrough — the LOW baseline for that segment, bit-identical to the
  plain decode) and is recorded in
  ``PlaybackResult.fallback_segments``; with the default strict mode the
  error propagates.

Every session carries a :class:`PlaybackTelemetry`: per-segment and
per-stage wall time (download / decode / SR / YUV<->RGB), achieved FPS vs
the package's native FPS, stall seconds under a simple playout clock, the
model-cache hit rate, and the peak number of frames resident at once.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..control import ControlContext, JointController, segment_energy, \
    tier_options
from ..nn.functional import PRECISIONS
from ..obs import Observability, SimulatedClock
from ..sr.edsr import EDSR
from ..sr.engine import ENGINE_KERNELS, InferenceEngine
from ..video import rgb_to_yuv420, yuv420_to_rgb
from ..video.frame import YuvFrame
from ..video.quality import psnr, ssim
from .cache import CacheStats, ModelCache
from .network import (
    DownloadError,
    RetryPolicy,
    SimulatedNetwork,
    download_with_retry,
)
from .server import DcsrPackage

__all__ = [
    "PLAYBACK_STAGES",
    "FastPathConfig",
    "PlayoutClock",
    "SegmentPlayback",
    "PlaybackTelemetry",
    "PlayedFrame",
    "PlaybackResult",
    "DcsrClient",
    "enhance_yuv_frame",
]

#: Stage names recorded in :attr:`PlaybackTelemetry.stage_seconds`, in
#: playback order.  ``color`` is both YUV->RGB directions (display path
#: and inside the SR hook).
PLAYBACK_STAGES = ("download", "decode", "sr", "color")


def enhance_yuv_frame(model: EDSR, frame: YuvFrame) -> YuvFrame:
    """Steps 2-5 of Figure 6: YUV -> RGB, SR, RGB -> YUV."""
    rgb = yuv420_to_rgb(frame)
    enhanced = model.enhance(rgb)
    return rgb_to_yuv420(enhanced)


@dataclass(frozen=True)
class FastPathConfig:
    """Client inference fast-path knobs (``cli play --tile/--sr-threads/
    --prefetch``).

    Passing a config to :class:`DcsrClient` routes every SR inference
    through the tiled NHWC :class:`~repro.sr.engine.InferenceEngine`
    instead of the reference forward, and — with ``prefetch > 0`` —
    overlaps download + decode + SR of upcoming segments with emission of
    the current one behind a bounded queue.  ``None`` (the default client
    behaviour) is the fully serial reference path.

    Parameters
    ----------
    tile:
        SR tile edge in input pixels (``None`` = whole frame).  Tiles are
        expanded by the model's receptive-field halo, so output equals
        whole-frame inference; smaller tiles bound peak SR memory.
    sr_threads:
        Thread-pool width tiles fan out across (the conv GEMMs release
        the GIL).  1 keeps SR in the decoding thread.
    prefetch:
        How many *future* segments may sit fully decoded in the pipeline
        queue while the current segment plays.  0 disables the pipeline
        (serial engine, fast SR only).  Memory grows by up to
        ``prefetch`` segments of decoded frames.
    calibrate:
        Measure the fast-over-reference speedup once per session on the
        first enhanced frame (one extra reference inference, excluded
        from stage accounting) and report it as
        ``PlaybackTelemetry.fast_path_speedup``.
    precision:
        SR kernel precision: ``fp32`` (default, bitwise-identical to the
        reference forward), ``fp16`` (half-rounded operands, fp32
        accumulate), or ``int8`` (per-output-channel symmetric weight
        quantization).  Reduced precisions also shrink the model bytes a
        session downloads — accounting uses the manifest's
        :meth:`~repro.core.manifest.VideoManifest.model_size_for`.
    skip_gate:
        Optional per-tile variance gate: a
        :class:`~repro.sr.engine.SkipGateConfig` (or a bare threshold
        float) that routes low-detail tiles to bicubic upscaling instead
        of the model.  ``None`` (default) disables the gate entirely —
        output stays bitwise identical to the ungated engine.
    sr_batch:
        Number of segment pipeline workers.  1 (default) keeps the
        single-worker prefetch pipeline.  ``> 1`` (requires
        ``prefetch >= 1``) decodes up to ``sr_batch`` segments
        concurrently, and their co-pending I-frames merge into one
        batched GEMM call through a session-local
        :class:`~repro.serve.BatchingInferenceEngine` — same mechanism
        the fleet simulator uses across sessions, applied inside one.
        Downloads stay serialized in segment order, so the simulated
        network consumes its schedule exactly as the serial client does.
    reuse:
        Optional temporal tile reuse: a
        :class:`~repro.sr.engine.TileReuseConfig`, ``True`` (exact mode),
        or a bare max-abs-diff tolerance float.  Tiles whose decoded LR
        content matches the previous frame emit the cached SR output
        instead of running the conv stack; the cache resets at every
        segment boundary so seeks and concealment stay correct.  Exact
        mode is bitwise-identical to playing without reuse.  Incompatible
        with ``sr_batch > 1`` — concurrent segment decode breaks the
        temporal ordering reuse relies on.
    kernel:
        SR conv kernel: ``"shift"`` (default, the tap-decomposed NHWC
        kernel) or ``"blocked"`` (cache-blocked im2col GEMM).
    """

    tile: int | None = None
    sr_threads: int = 1
    prefetch: int = 0
    calibrate: bool = True
    precision: str = "fp32"
    skip_gate: object | None = None
    sr_batch: int = 1
    reuse: object | None = None
    kernel: str = "shift"

    def __post_init__(self):
        if self.precision not in PRECISIONS:
            raise ValueError(
                f"precision must be one of {PRECISIONS}, "
                f"got {self.precision!r}")
        if self.kernel not in ENGINE_KERNELS:
            raise ValueError(
                f"kernel must be one of {ENGINE_KERNELS}, "
                f"got {self.kernel!r}")
        if isinstance(self.skip_gate, (int, float)) \
                and not isinstance(self.skip_gate, bool) \
                and self.skip_gate < 0:
            raise ValueError(
                f"skip_gate threshold must be >= 0, got {self.skip_gate}")
        if isinstance(self.reuse, (int, float)) \
                and not isinstance(self.reuse, bool) \
                and self.reuse < 0:
            raise ValueError(
                f"reuse tolerance must be >= 0, got {self.reuse}")
        if self.sr_batch < 1:
            raise ValueError(f"sr_batch must be >= 1, got {self.sr_batch}")
        if self.sr_batch > 1 and self.prefetch < 1:
            raise ValueError(
                "sr_batch > 1 needs the pipeline: set prefetch >= 1")
        if self.sr_batch > 1 and self.reuse not in (None, False):
            raise ValueError(
                "reuse needs in-order frames: sr_batch > 1 decodes "
                "segments concurrently and is incompatible with it")


class PlayoutClock:
    """The serial playout recurrence, shared by the reference client and
    the fleet simulator's trace-mode sessions.

    Segment ``i`` becomes ready ``download + compute`` seconds after
    segment ``i-1`` did; it *should* be ready by the time segment
    ``i-1`` finishes displaying at ``fps``.  The first segment's ready
    time is the startup delay; any later segment's lateness accrues as
    stall seconds; an early segment pushes the next deadline out by
    exactly its display duration (no credit accumulates).  All inputs
    are simulated (or measured) seconds — the recurrence itself is pure
    arithmetic, so two runs fed identical per-segment seconds produce
    bit-identical stall numbers.
    """

    def __init__(self, fps: float):
        if fps <= 0:
            raise ValueError(f"fps must be > 0, got {fps}")
        self.fps = float(fps)
        #: Session clock: when the most recent segment became ready.
        self.position_s = 0.0
        self.startup_s = 0.0
        self.stall_s = 0.0
        self._next_deadline: float | None = None

    def segment_ready(self, seconds: float, n_frames: int) -> None:
        """Advance past one segment that took ``seconds`` to be ready
        and displays for ``n_frames / fps``."""
        self.position_s += seconds
        if self._next_deadline is None:
            self.startup_s = self.position_s
            self._next_deadline = self.position_s
        self.stall_s += max(0.0, self.position_s - self._next_deadline)
        self._next_deadline = max(self.position_s, self._next_deadline) \
            + n_frames / self.fps


@dataclass
class SegmentPlayback:
    """Per-segment telemetry of one streaming session."""

    index: int
    status: str = "ok"              # ok | concealed | fallback
    n_frames: int = 0
    download_attempts: int = 0
    sr_inferences: int = 0
    download_s: float = 0.0
    decode_s: float = 0.0
    sr_s: float = 0.0
    color_s: float = 0.0
    sr_tiles: int = 0
    sr_skipped_tiles: int = 0
    sr_reused_tiles: int = 0
    sr_flops: float = 0.0


@dataclass
class PlaybackTelemetry:
    """Where one playback session's time went (client mirror of
    :class:`~repro.core.parallel.BuildTelemetry`).

    A thin typed view over the session's :class:`~repro.obs.Observability`:
    every number here is derived from spans and metrics recorded through
    ``obs``, so the span tree exported from the same session agrees with
    these fields (``download`` spans carry ``clock="simulated"``; the
    others are wall time).

    ``download`` seconds are *simulated* network time (including retries
    and backoff); ``decode``/``sr``/``color`` are measured wall time.
    ``stall_seconds`` comes from a simple playout clock: each segment must
    be ready by the time the previous one finishes displaying at
    ``native_fps``, and lateness accrues as a stall.
    """

    native_fps: float = 0.0
    segments: list[SegmentPlayback] = field(default_factory=list)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    achieved_fps: float = 0.0
    startup_seconds: float = 0.0
    stall_seconds: float = 0.0
    download_attempts: int = 0
    peak_resident_frames: int = 0
    cache_hit_rate: float = 0.0
    #: SR tiles executed across the session (0 = whole-frame / no fast path).
    tile_count: int = 0
    #: Tiles the variance gate routed to bicubic instead of the model
    #: (0 unless a :attr:`FastPathConfig.skip_gate` is set).
    skipped_tiles: int = 0
    #: Tiles emitted from the temporal reuse cache instead of the model
    #: (0 unless :attr:`FastPathConfig.reuse` is set).
    reused_tiles: int = 0
    #: Effective SR throughput: model FLOPs divided by measured SR seconds.
    sr_gflops: float = 0.0
    #: Simulated playout seconds saved by pipelining download of segment
    #: n+1 under compute of segment n (0 without prefetch).
    prefetch_overlap_seconds: float = 0.0
    #: Measured fast-over-reference SR speedup from the per-session
    #: calibration frame (0 = not calibrated).
    fast_path_speedup: float = 0.0
    #: Realized rail energy over the session from the device power model
    #: (0 unless the client runs with a joint controller).
    energy_joules: float = 0.0
    #: Segments the joint controller enabled SR for (0 without one).
    sr_segments: int = 0
    obs: Observability = field(default_factory=Observability,
                               repr=False, compare=False)

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def n_concealed(self) -> int:
        return sum(1 for s in self.segments if s.status == "concealed")

    @property
    def n_fallback(self) -> int:
        return sum(1 for s in self.segments if s.status == "fallback")

    def summary_lines(self) -> list[str]:
        """A printable per-stage breakdown (CLI ``play``).

        The stage table renders through
        :func:`repro.bench.runner.format_table` — the same renderer the
        build summary and the benchmark tables use.
        """
        from ..bench.runner import format_table

        rows = [[name, self.stage_seconds[name]]
                for name in PLAYBACK_STAGES if name in self.stage_seconds]
        rows.append(["total", self.total_seconds])
        lines = [f"playback stages ({len(self.segments)} segments):"]
        lines += ["  " + line
                  for line in format_table("", ["stage", "seconds"],
                                           rows).splitlines()]
        lines.append(f"  fps        {self.achieved_fps:.1f} achieved "
                     f"vs {self.native_fps:g} native")
        lines.append(f"  stalls     {self.stall_seconds:.3f}s "
                     f"(startup {self.startup_seconds:.3f}s)")
        lines.append(f"  network    {self.download_attempts} attempts, "
                     f"cache hit rate {self.cache_hit_rate:.0%}")
        if self.tile_count or self.fast_path_speedup \
                or self.prefetch_overlap_seconds:
            skipped = f" ({self.skipped_tiles} gated to bicubic)" \
                if self.skipped_tiles else ""
            if self.reused_tiles:
                skipped += f" ({self.reused_tiles} reused)"
            lines.append(
                f"  fastpath   {self.tile_count} tiles{skipped}, "
                f"{self.sr_gflops:.2f} GFLOP/s, "
                f"{self.fast_path_speedup:.1f}x vs reference, "
                f"overlap {self.prefetch_overlap_seconds:.3f}s")
        if self.energy_joules:
            n_frames = sum(s.n_frames for s in self.segments)
            played = n_frames / self.native_fps if self.native_fps else 0.0
            watts = self.energy_joules / played if played > 0 else 0.0
            lines.append(f"  energy     {self.energy_joules:.2f} J "
                         f"({watts:.2f} W avg, SR on for "
                         f"{self.sr_segments}/{len(self.segments)} segments)")
        if self.n_concealed or self.n_fallback:
            lines.append(f"  degraded   {self.n_concealed} concealed, "
                         f"{self.n_fallback} fallback segments")
        return lines


@dataclass(frozen=True)
class PlayedFrame:
    """One display-order frame emitted by :meth:`DcsrClient.iter_frames`."""

    display: int
    segment_index: int
    ftype: str                      # I / P / B, or C for a concealed frame
    rgb: np.ndarray
    concealed: bool = False


@dataclass
class PlaybackResult:
    """Outcome of one streaming session."""

    frames: list[np.ndarray] = field(default_factory=list)   # RGB, display order
    frame_types: list[str] = field(default_factory=list)
    psnr_per_frame: list[float] = field(default_factory=list)
    ssim_per_frame: list[float] = field(default_factory=list)
    video_bytes: int = 0
    model_bytes: int = 0
    model_downloads: list[int] = field(default_factory=list)
    cache_stats: CacheStats | None = None
    sr_inferences: int = 0
    skipped_segments: list[int] = field(default_factory=list)
    fallback_segments: list[int] = field(default_factory=list)
    telemetry: PlaybackTelemetry | None = None

    @property
    def total_bytes(self) -> int:
        return self.video_bytes + self.model_bytes

    @property
    def mean_psnr(self) -> float:
        """Mean finite per-frame PSNR.

        ``nan`` when no reference was supplied (unmeasured is not
        perfect); ``inf`` only when every scored frame was genuinely
        lossless.
        """
        if not self.psnr_per_frame:
            return float("nan")
        finite = [p for p in self.psnr_per_frame if np.isfinite(p)]
        return float(np.mean(finite)) if finite else float("inf")

    @property
    def mean_ssim(self) -> float:
        """Mean per-frame SSIM, or ``nan`` when quality was not measured."""
        if not self.ssim_per_frame:
            return float("nan")
        return float(np.mean(self.ssim_per_frame))


class DcsrClient:
    """Plays a dcSR package through the SR-integrated decoder.

    Parameters
    ----------
    package:
        The :class:`~repro.core.server.DcsrPackage` (or duck-typed
        :class:`~repro.core.persist.StoredPackage`) to stream.
    cache_capacity:
        Optional LRU bound on the model cache.
    network:
        Optional :class:`~repro.core.network.SimulatedNetwork`; when
        given, every segment and model download goes through it (latency,
        bandwidth, and failure injection).  ``None`` keeps downloads
        instantaneous and infallible.
    retry:
        :class:`~repro.core.network.RetryPolicy` for downloads over the
        simulated network (default: no retries).
    fallback:
        When ``True``, a segment whose micro model cannot be fetched
        plays unenhanced (passthrough) instead of raising.
    fast_path:
        Optional :class:`FastPathConfig`.  ``None`` (default) keeps the
        serial reference engine; a config switches SR to the tiled NHWC
        fast path and, with ``prefetch > 0``, pipelines
        download + decode + SR of upcoming segments behind a bounded
        queue.  Frame order, concealment/fallback semantics, and the
        accounting contract are identical either way.
    obs:
        Optional :class:`~repro.obs.Observability` session the client
        records its spans and metrics into.  Defaults to the network's
        session when it has one, else a fresh session; either way the
        network is bound to the same session so download counters land in
        the same registry.
    model_cache:
        Optional *shared* model cache (duck-typed to
        :class:`repro.serve.SharedModelCache`: must expose
        ``session(fetch)`` returning a per-session view with
        ``acquire``/``release``/``stats``).  When given, Algorithm 1 runs
        against the fleet-wide cache — a model another session already
        downloaded is a hit here, and the entry is refcount-pinned for the
        duration of each segment so eviction can never drop a model
        mid-SR.  ``cache_capacity`` is ignored (the shared cache carries
        its own bound).
    engine_provider:
        Optional ``model -> engine`` factory overriding how SR engines are
        built (``engine.enhance(rgb)`` plus an ``EngineStats``-shaped
        ``stats`` attribute).  The fleet simulator injects
        :class:`repro.serve.BatchingInferenceEngine` adapters here so
        I-frame tiles from many sessions share one GEMM call.
    span_attrs:
        Extra attributes stamped on the session's ``play`` span (fleet
        runs tag each session's subtree with its session id).
    controller:
        Optional :class:`~repro.control.JointController`.  When given, the
        client consults it at every segment boundary: the controller picks
        the SR mode (off, or a published model *tier* at a *precision*),
        the client plays the segment that way — downloading the tier
        checkpoint at its manifest-recorded size on first use — and feeds
        the segment's *realized* energy (device power model on the actual
        inference count) back into the controller's budget state.
        ``None`` (the default) keeps the pre-controller code path
        bit-for-bit: no context is built, no energy is modelled, and the
        output frames are identical to a client without the feature.
        Requires the serial engine (no ``prefetch``/``sr_batch``):
        decisions are sequential by construction.
    """

    def __init__(self, package: DcsrPackage, cache_capacity: int | None = None,
                 network: SimulatedNetwork | None = None,
                 retry: RetryPolicy | None = None,
                 fallback: bool = False,
                 fast_path: FastPathConfig | None = None,
                 obs: Observability | None = None,
                 model_cache=None,
                 engine_provider=None,
                 span_attrs: dict | None = None,
                 controller: JointController | None = None):
        if fast_path is not None and fast_path.prefetch < 0:
            raise ValueError("prefetch must be >= 0")
        if controller is not None and fast_path is not None \
                and (fast_path.prefetch > 0 or fast_path.sr_batch > 1):
            raise ValueError(
                "a joint controller needs the serial client path; "
                "disable prefetch/sr_batch")
        self.package = package
        self._controller = controller
        if model_cache is not None:
            self._cache = model_cache.session(self._download_model)
        else:
            self._cache = ModelCache(
                fetch=self._download_model, capacity=cache_capacity)
        self._engine_provider = engine_provider
        self._span_attrs = dict(span_attrs or {})
        self._network = network
        self._retry = retry
        self._fallback = bool(fallback)
        self._fast = fast_path
        if obs is None and network is not None and network.obs is not None:
            obs = network.obs
        self.obs = obs or Observability(root_name="client")
        if network is not None and network.obs is None:
            network.obs = self.obs
        # Simulated seconds (downloads, backoff) are recorded against this
        # clock so their spans are tagged with a non-wall time domain.
        self._sim_clock = network.clock if network is not None \
            else SimulatedClock()
        self._session = None
        self._engines: dict[int, InferenceEngine] = {}
        self._batcher = None
        self._speedup_sample = 0.0
        self._model_bytes = 0
        self._fetch_seconds = 0.0
        self._fetch_attempts = 0
        # Joint-controller session state: which (label, tier, precision)
        # checkpoints were downloaded, their engines, and the engine the
        # current segment's hook must use (serial path only, no races).
        self._tier_downloaded: set[tuple[int, str, str]] = set()
        self._tier_engines: dict[tuple[int, str, str], InferenceEngine] = {}
        self._ctrl_engine: InferenceEngine | None = None
        self.last_result: PlaybackResult | None = None

    def _engine_for(self, model: EDSR):
        """The per-model fast-path engine (built once per session model).

        Engines live on the client, not the model, so a shared package's
        models are never mutated and concurrent sessions stay independent.
        An injected ``engine_provider`` (cross-session batching) takes
        precedence over the private per-session engine.

        With ``sr_batch > 1`` the engine (an adapter onto the session's
        batcher, or the injected provider's product) is built fresh per
        call instead of cached: adapters carry per-call ``stats``, so
        concurrent decode workers must not share one.
        """
        if self._fast is not None and self._fast.sr_batch > 1:
            if self._engine_provider is not None:
                return self._engine_provider(model)
            return self._batcher.engine_for(model)
        engine = self._engines.get(id(model))
        if engine is None:
            if self._engine_provider is not None:
                engine = self._engine_provider(model)
            else:
                engine = InferenceEngine(model, tile=self._fast.tile,
                                         threads=self._fast.sr_threads,
                                         obs=self.obs,
                                         precision=self._fast.precision,
                                         skip_gate=self._fast.skip_gate,
                                         reuse=self._fast.reuse,
                                         kernel=self._fast.kernel)
            self._engines[id(model)] = engine
        return engine

    def _download_model(self, label: int) -> EDSR:
        model = self.package.models.get(label)
        if model is None:
            raise KeyError(f"manifest references missing model {label}")
        # A reduced-precision session downloads the quantized checkpoint:
        # fewer bytes if (and only if) the manifest carries a calibrated
        # record for that precision — otherwise the fp32 size is charged.
        precision = self._fast.precision if self._fast is not None else "fp32"
        manifest = self.package.manifest
        if hasattr(manifest, "model_size_for"):
            size = manifest.model_size_for(label, precision)
        else:
            size = manifest.model_sizes[label]
        if self._network is not None:
            seconds, attempts = download_with_retry(
                self._network, self._retry, "model", label, size)
            self._fetch_seconds += seconds
            self._fetch_attempts += attempts
        self._model_bytes += size
        return model

    def play(self, reference_frames: np.ndarray | None = None) -> PlaybackResult:
        """Stream every segment; optionally score against ``reference_frames``.

        ``reference_frames`` is the pristine ``(T, H, W, 3)`` original; when
        omitted, quality lists stay empty.  This is the materializing
        wrapper around :meth:`iter_frames`: every RGB frame is retained in
        the result, so memory grows with the video.  Byte counts, quality
        lists, and telemetry are identical between the two entry points.
        """
        result = PlaybackResult()
        for frame in self.iter_frames(reference_frames, result=result):
            result.frames.append(frame.rgb)
        return result

    def iter_frames(
        self, reference_frames: np.ndarray | None = None, *,
        result: PlaybackResult | None = None,
    ) -> Iterator[PlayedFrame]:
        """Bounded-memory streaming session: yield display-order frames.

        At most one segment's decoded frames (plus one held concealment
        frame) are resident at a time; the caller decides what to retain.
        Accounting (bytes, quality, telemetry, degradation lists — all of
        :class:`PlaybackResult` except ``frames``) accumulates into
        ``result`` as the generator runs and is finalized when the
        generator is exhausted or closed; the same object is exposed as
        ``self.last_result``.
        """
        from ..video.codec import Decoder

        package = self.package
        result = result if result is not None else PlaybackResult()
        self.last_result = result
        self._model_bytes = 0
        self._speedup_sample = 0.0
        self._engines = {}
        self._batcher = None
        self._tier_downloaded = set()
        self._tier_engines = {}
        self._ctrl_engine = None
        if self._controller is not None:
            self._controller.reset()
        fps = package.encoded.fps
        telemetry = PlaybackTelemetry(native_fps=fps, obs=self.obs)
        result.telemetry = telemetry
        # The session span outlives this lexical block (it is held open
        # across generator yields), so it uses begin/end and stage spans
        # name it as an explicit parent.
        self._session = self.obs.tracer.begin(
            "play", segments=len(package.segments), **self._span_attrs)

        decoder = Decoder(
            hook_display_only=not package.manifest.enhance_in_loop)
        prefetch = self._fast.prefetch if self._fast is not None else 0
        sr_batch = self._fast.sr_batch if self._fast is not None else 1
        if sr_batch > 1:
            if self._engine_provider is None:
                # Session-local leader–follower batcher: the same merge
                # machinery the fleet uses across sessions, scoped to
                # this session's decode workers.  Imported lazily — the
                # serve layer imports this module at load time.
                from ..serve.batching import BatchingInferenceEngine
                self._batcher = BatchingInferenceEngine(
                    max_batch=sr_batch, max_wait_s=0.005,
                    tile=self._fast.tile, threads=self._fast.sr_threads,
                    obs=self.obs, precision=self._fast.precision,
                    skip_gate=self._fast.skip_gate)
            inner = self._iter_batched(reference_frames, result, telemetry,
                                       prefetch, sr_batch)
        elif prefetch > 0:
            inner = self._iter_prefetch(decoder, reference_frames, result,
                                        telemetry, prefetch)
        else:
            inner = self._iter_serial(decoder, reference_frames, result,
                                      telemetry)
        try:
            yield from inner
        finally:
            inner.close()
            self._finalize(result, telemetry)
            self.obs.tracer.end(self._session)

    def _iter_serial(self, decoder, reference_frames, result: PlaybackResult,
                     telemetry: PlaybackTelemetry) -> Iterator[PlayedFrame]:
        """The reference engine: strictly serial download → decode → emit."""
        package = self.package
        held: list[YuvFrame | None] = [None]
        playout = PlayoutClock(package.encoded.fps)

        for segment, encoded_segment in zip(package.segments,
                                            package.encoded.segments):
            seg_t, decoded = self._produce_segment(segment, encoded_segment,
                                                   decoder, result, telemetry)

            if decoded is None:
                telemetry.peak_resident_frames = max(
                    telemetry.peak_resident_frames, 1)
            else:
                telemetry.peak_resident_frames = max(
                    telemetry.peak_resident_frames,
                    len(decoded) + (1 if held[0] is not None else 0))

            playout.segment_ready(
                seg_t.download_s + seg_t.decode_s + seg_t.sr_s
                + seg_t.color_s, segment.n_frames)
            telemetry.startup_seconds = playout.startup_s
            telemetry.stall_seconds = playout.stall_s

            yield from self._emit_segment(segment, seg_t, decoded, held,
                                          reference_frames, result)

    def _iter_prefetch(self, decoder, reference_frames,
                       result: PlaybackResult, telemetry: PlaybackTelemetry,
                       prefetch: int) -> Iterator[PlayedFrame]:
        """Stage-overlapped session: one background worker runs
        download → decode → SR per segment *in order* (so the simulated
        network consumes its failure schedule exactly as the serial
        engine does), handing finished segments to this thread through a
        queue bounded at ``prefetch`` entries.  Emission, colour
        conversion, and quality scoring stay on the caller's thread,
        preserving frame order and the bounded-memory contract (at most
        ``prefetch + 1`` segments of decoded frames resident).

        The playout clock generalizes the serial one: downloads of
        upcoming segments proceed while earlier segments are computing,
        gated by the queue bound; with ``prefetch = 0`` the recurrence
        degenerates to the serial accumulation.  The simulated seconds
        this saves are reported as ``prefetch_overlap_seconds``.
        """
        package = self.package
        fps = package.encoded.fps
        held: list[YuvFrame | None] = [None]
        work_q: queue.Queue = queue.Queue(maxsize=prefetch)
        stop = threading.Event()
        resident_lock = threading.Lock()
        resident = [0]          # decoded frames alive in queue + in flight

        def note_resident(extra: int) -> None:
            with resident_lock:
                telemetry.peak_resident_frames = max(
                    telemetry.peak_resident_frames, resident[0] + extra)

        def offer(item) -> bool:
            while not stop.is_set():
                try:
                    work_q.put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def producer() -> None:
            try:
                for segment, encoded_segment in zip(package.segments,
                                                    package.encoded.segments):
                    if stop.is_set():
                        return
                    seg_t, decoded = self._produce_segment(
                        segment, encoded_segment, decoder, result, telemetry)
                    with resident_lock:
                        resident[0] += len(decoded) if decoded else 0
                    note_resident(0)
                    if not offer(("seg", segment, seg_t, decoded)):
                        return
            except BaseException as exc:       # surfaced on the main thread
                offer(("err", exc, None, None))
            else:
                offer(("done", None, None, None))

        worker = threading.Thread(target=producer, name="dcsr-prefetch",
                                  daemon=True)
        worker.start()

        dl_done = 0.0
        comp_done = 0.0
        serial_clock = 0.0
        finish_times: list[float] = []
        next_deadline: float | None = None

        try:
            while True:
                kind, segment, seg_t, decoded = work_q.get()
                if kind == "err":
                    raise segment
                if kind == "done":
                    break
                # The held concealment frame (or the single stand-in of a
                # concealed segment) rides on top of the queued frames.
                note_resident(1 if (held[0] is not None or decoded is None)
                              else 0)

                # Pipelined playout clock: the download of segment i may
                # start once segment i-1 finished downloading *and* the
                # queue had room (segment i-1-prefetch fully played).
                i = len(finish_times)
                gate = (finish_times[i - 1 - prefetch]
                        if i - 1 - prefetch >= 0 else 0.0)
                comp = seg_t.decode_s + seg_t.sr_s + seg_t.color_s
                dl_done = max(dl_done, gate) + seg_t.download_s
                comp_done = max(comp_done, dl_done) + comp
                finish_times.append(comp_done)
                serial_clock += seg_t.download_s + comp
                telemetry.prefetch_overlap_seconds = serial_clock - comp_done
                if next_deadline is None:
                    telemetry.startup_seconds = comp_done
                    next_deadline = comp_done
                telemetry.stall_seconds += max(0.0, comp_done - next_deadline)
                next_deadline = max(comp_done, next_deadline) \
                    + segment.n_frames / fps

                yield from self._emit_segment(segment, seg_t, decoded, held,
                                              reference_frames, result)
                with resident_lock:
                    resident[0] -= len(decoded) if decoded else 0
        finally:
            stop.set()
            # Keep draining so a producer blocked on a full queue can see
            # the stop flag; finalization must not race a live producer.
            while worker.is_alive():
                try:
                    work_q.get_nowait()
                except queue.Empty:
                    pass
                worker.join(timeout=0.05)

    def _iter_batched(self, reference_frames, result: PlaybackResult,
                      telemetry: PlaybackTelemetry, prefetch: int,
                      sr_batch: int) -> Iterator[PlayedFrame]:
        """Multi-worker pipeline (``sr_batch > 1``): up to ``sr_batch``
        segments decode concurrently, each on its own worker with a
        private :class:`~repro.video.codec.Decoder`, and their co-pending
        I-frames merge into one batched GEMM through the session's
        :class:`~repro.serve.BatchingInferenceEngine` (bitwise identical
        per frame to the serial engine).

        Determinism and ordering contract:

        - Downloads (model acquire + segment fetch) are serialized in
          segment order behind a turn counter, so the simulated network
          consumes its latency/failure schedule exactly as the
          single-worker pipeline does; only decode + SR overlap.
        - Emission, concealment bookkeeping, quality scoring, and
          ``telemetry.segments`` appends all happen on the consumer
          (caller's) thread in segment order.
        - At most ``prefetch + sr_batch`` segments of decoded frames are
          resident at once (a counting semaphore: workers acquire a slot
          before claiming a segment, the consumer releases it after
          emitting).
        - A worker error surfaces at its segment index: segments before
          it emit normally, then the error re-raises here.

        The playout clock reuses the pipelined recurrence with a window
        of ``prefetch + sr_batch - 1`` queued segments; it still charges
        each segment's decode+SR seconds serially (measured wall time
        cannot be attributed across overlapping workers), so reported
        stalls are conservative.
        """
        from ..video.codec import Decoder

        package = self.package
        fps = package.encoded.fps
        held: list[YuvFrame | None] = [None]
        pairs = list(zip(package.segments, package.encoded.segments))
        n_segments = len(pairs)
        hook_display_only = not package.manifest.enhance_in_loop

        stop = threading.Event()
        slots = threading.Semaphore(prefetch + sr_batch)
        claim_lock = threading.Lock()
        claim = [0]
        turn_cv = threading.Condition()
        turn = [0]
        done_cv = threading.Condition()
        done: dict[int, tuple] = {}
        resident_lock = threading.Lock()
        resident = [0]

        def publish(index: int, item: tuple) -> None:
            with done_cv:
                done[index] = item
                done_cv.notify_all()

        def worker() -> None:
            decoder = Decoder(hook_display_only=hook_display_only)
            while not stop.is_set():
                if not slots.acquire(timeout=0.05):
                    continue            # re-check stop while queue is full
                with claim_lock:
                    index = claim[0]
                    if index >= n_segments:
                        slots.release()
                        return
                    claim[0] = index + 1
                segment, encoded_segment = pairs[index]
                seg_t = SegmentPlayback(index=segment.index,
                                        n_frames=segment.n_frames)
                try:
                    with turn_cv:
                        while turn[0] != index:
                            if stop.is_set():
                                return
                            turn_cv.wait(0.05)
                    try:
                        model, have = self._fetch_stage(
                            segment, encoded_segment, seg_t, result)
                    finally:
                        # Advance even on error so later turns never hang.
                        with turn_cv:
                            turn[0] = index + 1
                            turn_cv.notify_all()
                    decoded = self._decode_stage(
                        segment, encoded_segment, seg_t, model, have,
                        decoder)
                except BaseException as exc:   # surfaced on main thread
                    publish(index, ("err", exc, None, None))
                    return
                with resident_lock:
                    resident[0] += len(decoded) if decoded else 0
                publish(index, ("seg", segment, seg_t, decoded))

        workers = [threading.Thread(target=worker, name=f"dcsr-sr-batch-{i}",
                                    daemon=True) for i in range(sr_batch)]
        for thread in workers:
            thread.start()

        dl_done = 0.0
        comp_done = 0.0
        serial_clock = 0.0
        finish_times: list[float] = []
        next_deadline: float | None = None
        window = prefetch + sr_batch - 1

        try:
            for index in range(n_segments):
                with done_cv:
                    while index not in done:
                        done_cv.wait(0.1)
                        if index not in done \
                                and not any(t.is_alive() for t in workers):
                            raise RuntimeError(
                                f"pipeline workers exited without "
                                f"producing segment {index}")
                    kind, segment, seg_t, decoded = done.pop(index)
                if kind == "err":
                    raise segment
                telemetry.segments.append(seg_t)
                if decoded is None:
                    self._note_unplayable(segment, seg_t, result)
                with resident_lock:
                    telemetry.peak_resident_frames = max(
                        telemetry.peak_resident_frames,
                        resident[0]
                        + (1 if (held[0] is not None or decoded is None)
                           else 0))

                i = len(finish_times)
                gate = (finish_times[i - 1 - window]
                        if i - 1 - window >= 0 else 0.0)
                comp = seg_t.decode_s + seg_t.sr_s + seg_t.color_s
                dl_done = max(dl_done, gate) + seg_t.download_s
                comp_done = max(comp_done, dl_done) + comp
                finish_times.append(comp_done)
                serial_clock += seg_t.download_s + comp
                telemetry.prefetch_overlap_seconds = serial_clock - comp_done
                if next_deadline is None:
                    telemetry.startup_seconds = comp_done
                    next_deadline = comp_done
                telemetry.stall_seconds += max(0.0, comp_done - next_deadline)
                next_deadline = max(comp_done, next_deadline) \
                    + segment.n_frames / fps

                yield from self._emit_segment(segment, seg_t, decoded, held,
                                              reference_frames, result)
                with resident_lock:
                    resident[0] -= len(decoded) if decoded else 0
                slots.release()
        finally:
            stop.set()
            for thread in workers:
                while thread.is_alive():
                    thread.join(timeout=0.05)

    # ------------------------------------------------------------------
    # Session internals.

    def _produce_segment(self, segment, encoded_segment, decoder,
                         result: PlaybackResult,
                         telemetry: PlaybackTelemetry):
        """Stages 1-3 for one segment: model fetch, segment fetch, decode
        (with the SR hook in the loop).  Returns ``(seg_t, decoded)``;
        ``decoded is None`` means the segment must be concealed."""
        seg_t = SegmentPlayback(index=segment.index,
                                n_frames=segment.n_frames)
        telemetry.segments.append(seg_t)
        if self._controller is not None:
            decision, model, have = self._controlled_fetch(
                segment, encoded_segment, seg_t, result)
            decoded = self._decode_stage(segment, encoded_segment, seg_t,
                                         model, have, decoder, pinned=False)
            self._controller_feedback(segment, seg_t, decision, telemetry)
        else:
            model, have = self._fetch_stage(segment, encoded_segment, seg_t,
                                            result)
            decoded = self._decode_stage(segment, encoded_segment, seg_t,
                                         model, have, decoder)
        if decoded is None:
            self._note_unplayable(segment, seg_t, result)
        return seg_t, decoded

    def _fetch_stage(self, segment, encoded_segment,
                     seg_t: SegmentPlayback, result: PlaybackResult):
        """Stages 1-2: model acquire + segment download.

        Touches the network and the session's fetch accounting, so in a
        multi-worker pipeline (``sr_batch > 1``) calls MUST be serialized
        in segment order — the simulated network consumes a deterministic
        schedule.  Returns ``(model, have_payload)``.
        """
        model = self._acquire_model(segment.index, seg_t, result)
        have = self._fetch_segment(encoded_segment, seg_t, result)
        return model, have

    # ------------------------------------------------------------------
    # Joint-controller path (serial engine only).

    def _control_context(self, segment, encoded_segment,
                         label: int) -> ControlContext:
        """One segment boundary's decision context.

        The solo client streams one pre-encoded rendition, so the ladder
        collapses to a single rung (the segment's actual bits at a neutral
        quality origin — tier gains are *relative* uplifts); buffer depth
        is unbounded because the serial client has no playout buffer to
        protect.  The SR options come from the manifest's tier table, with
        already-downloaded checkpoints owing zero bits.
        """
        n_inferences = sum(1 for f in encoded_segment.frames
                           if f.ftype == "I") or 1
        cached = frozenset(
            (tier, precision)
            for (lab, tier, precision) in self._tier_downloaded
            if lab == label)
        bandwidth = None
        if self._network is not None:
            bandwidth = self._network.config.bandwidth_bps
        return ControlContext(
            segment=segment.index,
            segment_seconds=segment.n_frames / self.package.encoded.fps,
            throughput_bps=(float(bandwidth) if bandwidth
                            else float("inf")),
            buffer_s=float("inf"),
            rung_bits=(encoded_segment.n_bytes * 8.0,),
            rung_quality_db=(0.0,),
            sr_options=tier_options(self.package.manifest, label,
                                    cached=cached),
            n_inferences=n_inferences,
        )

    def _controlled_fetch(self, segment, encoded_segment,
                          seg_t: SegmentPlayback, result: PlaybackResult):
        """Stages 1-2 under the joint controller: decide, then fetch the
        chosen tier checkpoint (if any) and the segment."""
        label = self.package.manifest.model_label_for(segment.index)
        decision = self._controller.decide(
            self._control_context(segment, encoded_segment, label))
        self.obs.metrics.counter(
            "dcsr_controller_decisions_total",
            "Joint controller segment decisions by SR tier and precision",
        ).inc(tier=decision.tier or "off", precision=decision.precision)
        self._ctrl_engine = None
        model = None
        if decision.sr_enabled:
            model = self._acquire_tier_model(label, decision, seg_t, result)
            if model is not None:
                self._ctrl_engine = self._tier_engine(label, decision, model)
        have = self._fetch_segment(encoded_segment, seg_t, result)
        return decision, model, have

    def _acquire_tier_model(self, label: int, decision,
                            seg_t: SegmentPlayback,
                            result: PlaybackResult) -> EDSR | None:
        """The decided tier's model, downloading its checkpoint (at the
        manifest-recorded per-precision size) on first use.  Fetch
        failures degrade exactly like base-model failures: fallback mode
        plays the segment unenhanced, strict mode raises."""
        key = (label, decision.tier, decision.precision)
        tier_models = getattr(self.package, "tier_models", {})
        model = tier_models.get(decision.tier, {}).get(label)
        self._fetch_seconds = 0.0
        self._fetch_attempts = 0
        try:
            if model is None:
                raise KeyError(
                    f"package has no tier {decision.tier!r} model for "
                    f"label {label}")
            if key not in self._tier_downloaded:
                size = self.package.manifest.tier_size_for(
                    label, decision.tier, decision.precision)
                if self._network is not None:
                    seconds, attempts = download_with_retry(
                        self._network, self._retry, "model",
                        f"{label}:{decision.tier}:{decision.precision}",
                        size)
                    self._fetch_seconds += seconds
                    self._fetch_attempts += attempts
                self._model_bytes += size
                self._tier_downloaded.add(key)
        except (KeyError, DownloadError) as exc:
            if isinstance(exc, DownloadError):
                self._fetch_seconds += exc.seconds
                self._fetch_attempts += exc.attempts
            self._record_download(seg_t, "model", seg_t.index, failed=True)
            if not self._fallback:
                raise
            seg_t.status = "fallback"
            result.fallback_segments.append(seg_t.index)
            return None
        self._record_download(seg_t, "model", seg_t.index)
        return model

    def _tier_engine(self, label: int, decision, model: EDSR):
        """Per-(label, tier, precision) inference engine, built once per
        session.  Inherits the fast path's tiling/threading knobs when a
        config is present; the *precision* always comes from the decision."""
        key = (label, decision.tier, decision.precision)
        engine = self._tier_engines.get(key)
        if engine is None:
            fast = self._fast
            engine = InferenceEngine(
                model,
                tile=fast.tile if fast is not None else None,
                threads=fast.sr_threads if fast is not None else 1,
                obs=self.obs,
                precision=decision.precision,
                skip_gate=fast.skip_gate if fast is not None else None,
                kernel=fast.kernel if fast is not None else "shift")
            self._tier_engines[key] = engine
        return engine

    def _controller_feedback(self, segment, seg_t: SegmentPlayback,
                             decision, telemetry: PlaybackTelemetry) -> None:
        """Close the loop: realized energy from the device power model on
        the segment's *actual* inference count."""
        seconds = segment.n_frames / self.package.encoded.fps
        flops = (decision.option.flops_per_inference
                 if decision.sr_enabled else 0.0)
        energy = segment_energy(self._controller.device, seconds, flops,
                                seg_t.sr_inferences)
        self._controller.feedback(energy.energy_j, seconds)
        telemetry.energy_joules += energy.energy_j
        if decision.sr_enabled and seg_t.sr_inferences:
            telemetry.sr_segments += 1
        self._ctrl_engine = None

    def _decode_stage(self, segment, encoded_segment,
                      seg_t: SegmentPlayback, model, have: bool, decoder,
                      pinned: bool = True):
        """Stage 3: decode with the SR hook in the loop; release the
        model pin.  Thread-safe given a private ``decoder`` per caller —
        decode workers run this concurrently.  ``pinned=False`` skips the
        cache release (controller-chosen tier models live outside the
        label-keyed model cache)."""
        from ..video.codec import DecodeError

        package = self.package
        decoded = None
        try:
            if have:
                # Passthrough fallback decodes with no hook at all —
                # bit-identical to the plain (LOW) decode.
                decoder.i_frame_hook = (
                    None if model is None
                    else self._timed_hook(model, seg_t,
                                          engine=self._ctrl_engine))
                # The decode span nests the hook's sr/color spans (same
                # thread), so its staged self-time equals decode_s below.
                with self.obs.tracer.span("decode", parent=self._session,
                                          stage="decode",
                                          segment=segment.index) as span:
                    try:
                        decoded = decoder.decode_segment(
                            encoded_segment, package.encoded.width,
                            package.encoded.height)
                    except (DecodeError, EOFError):
                        decoded = None
                seg_t.decode_s = max(
                    0.0, span.elapsed - seg_t.sr_s - seg_t.color_s)
        finally:
            # The model was pinned by acquire for the duration of decode
            # (where every SR inference happens); release the pin so a
            # bounded shared cache may evict it again.
            if model is not None and pinned:
                self._cache.release(
                    package.manifest.model_label_for(segment.index))
        return decoded

    @staticmethod
    def _note_unplayable(segment, seg_t: SegmentPlayback,
                         result: PlaybackResult) -> None:
        """Record that none of ``segment``'s frames will play."""
        if seg_t.status == "fallback":
            # Superseded: none of its frames play, so the
            # segment is concealed, not degraded-but-played.
            result.fallback_segments.remove(segment.index)
        seg_t.status = "concealed"
        result.skipped_segments.append(segment.index)

    def _emit_segment(self, segment, seg_t: SegmentPlayback, decoded,
                      held: list, reference_frames,
                      result: PlaybackResult) -> Iterator[PlayedFrame]:
        """Stage 4 for one segment: colour-convert, score, and yield the
        display-order frames.  ``held`` is a one-cell box carrying the
        last good YUV frame across segments for concealment."""
        package = self.package
        if decoded is None:
            emit = self._concealed_frames(
                segment, held[0], package.encoded.height,
                package.encoded.width)
        else:
            emit = sorted(decoded, key=lambda d: d.display)
        tracer = self.obs.tracer
        emit_color = 0.0
        try:
            for item in emit:
                concealed = decoded is None
                if concealed:
                    rgb = item.rgb
                else:
                    t0 = tracer.clock.now()
                    rgb = yuv420_to_rgb(item.frame)
                    dt = tracer.clock.now() - t0
                    emit_color += dt
                    seg_t.color_s += dt
                    held[0] = item.frame
                result.frame_types.append(item.ftype)
                if reference_frames is not None:
                    ref = reference_frames[item.display]
                    result.psnr_per_frame.append(psnr(rgb, ref))
                    result.ssim_per_frame.append(ssim(rgb, ref))
                yield PlayedFrame(display=item.display,
                                  segment_index=segment.index,
                                  ftype=item.ftype, rgb=rgb,
                                  concealed=concealed)
        finally:
            # One span per segment (the per-frame conversions are too
            # fine-grained to be useful nodes); emitted even when the
            # caller abandons the generator mid-segment, so the trace
            # still matches the partial seg_t.color_s.
            if emit_color > 0.0:
                tracer.record("color", emit_color, parent=self._session,
                              stage="color", segment=seg_t.index,
                              where="display")

    def _acquire_model(self, segment_index: int, seg_t: SegmentPlayback,
                       result: PlaybackResult) -> EDSR | None:
        """The segment's micro model, or — on a fetch failure with
        ``fallback=True`` — ``None`` (play unenhanced), with the
        degradation recorded.  Strict mode re-raises."""
        label = self.package.manifest.model_label_for(segment_index)
        self._fetch_seconds = 0.0
        self._fetch_attempts = 0
        try:
            model = self._cache.acquire(label)
        except (KeyError, DownloadError) as exc:
            if isinstance(exc, DownloadError):
                self._fetch_seconds += exc.seconds
                self._fetch_attempts += exc.attempts
            self._record_download(seg_t, "model", segment_index, failed=True)
            if not self._fallback:
                raise
            seg_t.status = "fallback"
            result.fallback_segments.append(segment_index)
            return None
        self._record_download(seg_t, "model", segment_index)
        return model

    def _record_download(self, seg_t: SegmentPlayback, kind: str,
                         segment_index: int, failed: bool = False) -> None:
        """Fold the pending fetch accounting into ``seg_t`` and the trace.

        Download seconds are simulated (the network's clock domain), so
        the span is recorded against ``self._sim_clock`` and carries a
        ``clock="simulated"`` attribute rather than mixing into wall time.
        Cache hits (zero attempts) leave no span.
        """
        seg_t.download_s += self._fetch_seconds
        seg_t.download_attempts += self._fetch_attempts
        if self._fetch_attempts:
            attrs = {"kind": kind, "segment": segment_index,
                     "attempts": self._fetch_attempts}
            if failed:
                attrs["failed"] = True
            self.obs.tracer.record("download", self._fetch_seconds,
                                   parent=self._session,
                                   clock=self._sim_clock,
                                   stage="download", **attrs)
        self._fetch_seconds = 0.0
        self._fetch_attempts = 0

    def _fetch_segment(self, encoded_segment, seg_t: SegmentPlayback,
                       result: PlaybackResult) -> bool:
        """Download one segment; ``False`` means conceal (budget exhausted)."""
        if self._network is None:
            result.video_bytes += encoded_segment.n_bytes
            seg_t.download_attempts += 1
            return True
        try:
            seconds, attempts = download_with_retry(
                self._network, self._retry, "segment",
                encoded_segment.index, encoded_segment.n_bytes)
        except DownloadError as exc:
            self._fetch_seconds, self._fetch_attempts = \
                exc.seconds, exc.attempts
            self._record_download(seg_t, "segment", encoded_segment.index,
                                  failed=True)
            return False
        self._fetch_seconds, self._fetch_attempts = seconds, attempts
        self._record_download(seg_t, "segment", encoded_segment.index)
        result.video_bytes += encoded_segment.n_bytes
        return True

    def _timed_hook(self, model, seg_t: SegmentPlayback, engine=None):
        """Figure 6's enhancement hook with per-stage timing attached.

        With a :class:`FastPathConfig`, SR runs on the tiled NHWC engine;
        the first enhanced frame of the session optionally times the
        reference forward once on the same input (output discarded) to
        report the measured speedup.  Calibration seconds are measurement
        overhead and are excluded from stage accounting.  An explicit
        ``engine`` (the controller's per-tier engine) overrides the
        session-level engine selection.
        """
        if engine is None:
            use_engine = (self._fast is not None
                          or self._engine_provider is not None)
            engine = self._engine_for(model) if use_engine else None
        if engine is not None and hasattr(engine, "reset_reuse"):
            # One hook per segment: a segment boundary is a GOP boundary
            # (and where seeks/concealment land), so cross-segment content
            # coincidence must never be mistaken for temporal continuity.
            engine.reset_reuse()
        tracer = self.obs.tracer
        clock = tracer.clock

        def hook(frame: YuvFrame, display: int) -> YuvFrame:
            # Runs inside the decode span (same thread), so the sr span
            # and the recorded color span nest under it automatically and
            # decode's staged self-time excludes them.
            t0 = clock.now()
            rgb = yuv420_to_rgb(frame)
            color_s = clock.now() - t0
            if engine is None:
                with tracer.span("sr", stage="sr", display=display) as sp:
                    enhanced = model.enhance(rgb)
                sr_s = sp.elapsed
            else:
                ref_s = None
                if self._fast is not None and self._fast.calibrate \
                        and not self._speedup_sample:
                    # Calibration is measurement overhead: no span, so it
                    # stays inside decode self-time, exactly as decode_s
                    # accounts it.
                    r0 = clock.now()
                    model.enhance(rgb)          # output discarded
                    ref_s = clock.now() - r0
                with tracer.span("sr", stage="sr", display=display) as sp:
                    enhanced = engine.enhance(rgb)
                sr_s = sp.elapsed
                if ref_s is not None:
                    self._speedup_sample = ref_s / max(sr_s, 1e-9)
                sp.attrs["tiles"] = engine.stats.tile_count
                sp.attrs["flops"] = engine.stats.flops
                seg_t.sr_tiles += engine.stats.tile_count
                seg_t.sr_skipped_tiles += engine.stats.skipped_tiles
                seg_t.sr_reused_tiles += engine.stats.reused_tiles
                seg_t.sr_flops += engine.stats.flops
            t2 = clock.now()
            out = rgb_to_yuv420(enhanced)
            color_total = color_s + (clock.now() - t2)
            tracer.record("color", color_total, stage="color",
                          display=display, where="hook")
            seg_t.color_s += color_total
            seg_t.sr_s += sr_s
            seg_t.sr_inferences += 1
            return out
        return hook

    @staticmethod
    def _concealed_frames(segment, last_good: YuvFrame | None,
                          height: int, width: int):
        """Display-order stand-ins for an unplayable segment.

        Holds the last good frame (converted once, shared by every
        concealed display); a loss before any good frame shows black.
        """
        @dataclass(frozen=True)
        class _Held:
            display: int
            ftype: str
            rgb: np.ndarray

        if last_good is not None:
            rgb = yuv420_to_rgb(last_good)
        else:
            rgb = np.zeros((height, width, 3), dtype=np.float32)
        return [_Held(display=d, ftype="C", rgb=rgb)
                for d in range(segment.start, segment.end)]

    def _finalize(self, result: PlaybackResult,
                  telemetry: PlaybackTelemetry) -> None:
        result.model_bytes = self._model_bytes
        result.model_downloads = list(self._cache.stats.downloaded_labels)
        result.cache_stats = self._cache.stats
        result.sr_inferences = sum(s.sr_inferences
                                   for s in telemetry.segments)
        for name in PLAYBACK_STAGES:
            total = sum(getattr(s, f"{name}_s") for s in telemetry.segments)
            if total or name in ("download", "decode"):
                telemetry.stage_seconds[name] = total
        telemetry.download_attempts = sum(s.download_attempts
                                          for s in telemetry.segments)
        telemetry.cache_hit_rate = self._cache.stats.hit_rate
        n_frames = sum(s.n_frames for s in telemetry.segments)
        compute = sum(telemetry.stage_seconds.get(k, 0.0)
                      for k in ("decode", "sr", "color"))
        telemetry.achieved_fps = n_frames / max(compute, 1e-9)
        telemetry.tile_count = sum(s.sr_tiles for s in telemetry.segments)
        telemetry.skipped_tiles = sum(s.sr_skipped_tiles
                                      for s in telemetry.segments)
        telemetry.reused_tiles = sum(s.sr_reused_tiles
                                     for s in telemetry.segments)
        sr_flops = sum(s.sr_flops for s in telemetry.segments)
        sr_seconds = telemetry.stage_seconds.get("sr", 0.0)
        if sr_flops and sr_seconds > 0.0:
            telemetry.sr_gflops = sr_flops / sr_seconds / 1e9
        telemetry.fast_path_speedup = self._speedup_sample

        metrics = self.obs.metrics
        for name, total in telemetry.stage_seconds.items():
            metrics.counter(
                "dcsr_playback_stage_seconds_total",
                "Seconds spent per playback stage (download is simulated)",
            ).inc(total, stage=name)
        metrics.counter("dcsr_playback_frames_total",
                        "Display frames emitted").inc(len(result.frame_types))
        if telemetry.stall_seconds:
            metrics.counter(
                "dcsr_playback_stall_seconds_total",
                "Simulated playout stall seconds",
            ).inc(telemetry.stall_seconds)
        metrics.gauge(
            "dcsr_playback_achieved_fps",
            "Frames per compute second of the most recent session",
        ).set(telemetry.achieved_fps)
        if self._controller is not None:
            metrics.counter(
                "dcsr_controller_energy_joules_total",
                "Simulated rail energy under the joint controller",
            ).inc(telemetry.energy_joules,
                  device=self._controller.device.name)
            if telemetry.energy_joules > 0 and result.psnr_per_frame:
                metrics.gauge(
                    "dcsr_controller_quality_per_joule",
                    "Mean PSNR per joule of the most recent session",
                ).set(float(np.mean(result.psnr_per_frame))
                      / telemetry.energy_joules,
                      device=self._controller.device.name)
