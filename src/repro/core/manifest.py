"""Video manifest: the metadata a dcSR server publishes alongside a video.

Maps every segment to its micro-model label (the ``HashMap_L`` of
Algorithm 1) and records model sizes for bandwidth accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SegmentRecord", "QuantizationRecord", "ModelTierRecord",
           "VideoManifest"]


@dataclass(frozen=True)
class SegmentRecord:
    """One segment's entry in the manifest."""

    index: int
    start: int
    n_frames: int
    model_label: int

    @property
    def end(self) -> int:
        return self.start + self.n_frames


@dataclass(frozen=True)
class QuantizationRecord:
    """One model's calibration result for one reduced precision.

    Produced by the build-time calibration pass
    (:func:`repro.sr.quantize.calibrate_quantized`): ``size_bytes`` is what
    a client downloading the quantized checkpoint transfers, and
    ``delta_db`` is the measured PSNR cost on the model's own calibration
    I-frames — ``PSNR(fp32 output) - PSNR(quantized output)`` against the
    pristine reference, so positive means the quantized model is worse.
    Scales themselves are *not* shipped: they derive deterministically
    from the fp32 weights (``Conv2d.packed(precision)``), so a client that
    downloaded the quantized checkpoint reconstructs identical kernels.
    """

    precision: str
    size_bytes: int
    delta_db: float

    def __post_init__(self):
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")


@dataclass(frozen=True)
class ModelTierRecord(QuantizationRecord):
    """One (model label, tier, precision) calibration entry.

    Extends :class:`QuantizationRecord` — the inherited ``size_bytes`` is
    what a client downloading this tier at this precision transfers, and
    ``delta_db`` is the quantization PSNR *cost* of the reduced precision
    (0 for fp32) — with the tier identity, its architecture, and
    ``gain_db``: the calibrated PSNR *uplift* of the fp32 tier model over
    the plain decode on the cluster's own I-frames.  A controller scores
    the tier at a precision as ``gain_db - delta_db``.
    """

    tier: str = ""
    n_resblocks: int = 0
    n_filters: int = 0
    gain_db: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        if not self.tier:
            raise ValueError("tier name must be non-empty")

    @property
    def net_gain_db(self) -> float:
        """Calibrated uplift net of the precision's quantization cost."""
        return self.gain_db - self.delta_db


@dataclass
class VideoManifest:
    """Everything a client needs to stream a dcSR-prepared video."""

    video_name: str
    width: int
    height: int
    fps: float
    crf: int
    segments: list[SegmentRecord] = field(default_factory=list)
    model_sizes: dict[int, int] = field(default_factory=dict)  # label -> bytes
    #: label -> precision -> calibration record for the quantized variants
    #: the server published (empty for packages built without calibration).
    quantization: dict[int, dict[str, QuantizationRecord]] = \
        field(default_factory=dict)
    #: label -> tier name -> precision -> per-tier record (empty for
    #: packages built without tier training; ``"fp32"`` is always present
    #: for a published tier).  The joint controller reads this table.
    tiers: dict[int, dict[str, dict[str, ModelTierRecord]]] = \
        field(default_factory=dict)
    #: Whether enhanced I frames are written back into the DPB so P/B frames
    #: inherit the enhancement.  The server validates this per video (on
    #: high-motion content, motion-misplaced enhancement detail can hurt
    #: dependent frames; the fallback enhances I frames for display only).
    enhance_in_loop: bool = True

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        """Check internal consistency (raises ``ValueError``)."""
        labels_used = {s.model_label for s in self.segments}
        missing = labels_used - set(self.model_sizes)
        if missing:
            raise ValueError(f"segments reference unknown model labels {missing}")
        expected_start = 0
        for seg in sorted(self.segments, key=lambda s: s.index):
            if seg.start != expected_start:
                raise ValueError(
                    f"segment {seg.index} starts at {seg.start}, expected "
                    f"{expected_start}")
            expected_start = seg.end
        bad = set(self.quantization) - set(self.model_sizes)
        if bad:
            raise ValueError(
                f"quantization records reference unknown model labels {bad}")
        for label, records in self.quantization.items():
            for precision, record in records.items():
                if record.precision != precision:
                    raise ValueError(
                        f"quantization record for model {label} keyed "
                        f"{precision!r} but carries {record.precision!r}")
        bad = set(self.tiers) - set(self.model_sizes)
        if bad:
            raise ValueError(
                f"tier records reference unknown model labels {bad}")
        for label, by_tier in self.tiers.items():
            for tier, records in by_tier.items():
                if "fp32" not in records:
                    raise ValueError(
                        f"tier {tier!r} of model {label} lacks an fp32 "
                        f"record")
                for precision, record in records.items():
                    if record.tier != tier:
                        raise ValueError(
                            f"tier record for model {label} keyed {tier!r} "
                            f"but carries {record.tier!r}")
                    if record.precision != precision:
                        raise ValueError(
                            f"tier record for model {label}/{tier} keyed "
                            f"{precision!r} but carries "
                            f"{record.precision!r}")

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def n_models(self) -> int:
        return len(self.model_sizes)

    @property
    def n_frames(self) -> int:
        return sum(s.n_frames for s in self.segments)

    @property
    def total_model_bytes(self) -> int:
        """Bytes of all micro models (each downloaded at most once)."""
        return sum(self.model_sizes.values())

    def model_size_for(self, label: int, precision: str = "fp32") -> int:
        """Download bytes for ``label`` at ``precision``.

        Falls back to the fp32 size when the server published no quantized
        variant for that precision — the client then downloads the full
        checkpoint, so bandwidth accounting stays honest.
        """
        if precision != "fp32":
            record = self.quantization.get(label, {}).get(precision)
            if record is not None:
                return record.size_bytes
        return self.model_sizes[label]

    @property
    def has_tiers(self) -> bool:
        return bool(self.tiers)

    def tier_names(self) -> tuple[str, ...]:
        """Published tier names, ascending by fp32 size (the order a
        knapsack controller walks them in)."""
        seen: dict[str, int] = {}
        for by_tier in self.tiers.values():
            for tier, records in by_tier.items():
                size = records["fp32"].size_bytes
                seen[tier] = max(seen.get(tier, 0), size)
        return tuple(sorted(seen, key=lambda t: (seen[t], t)))

    def tier_record(self, label: int, tier: str,
                    precision: str = "fp32") -> ModelTierRecord | None:
        """The per-tier record, or ``None`` when the server published no
        such (tier, precision) variant for ``label``."""
        return self.tiers.get(label, {}).get(tier, {}).get(precision)

    def tier_size_for(self, label: int, tier: str,
                      precision: str = "fp32") -> int:
        """Download bytes for ``label``'s ``tier`` model at ``precision``.

        Falls back to the tier's fp32 size when no quantized variant was
        published (mirroring :meth:`model_size_for`); raises ``KeyError``
        for an unpublished tier.
        """
        records = self.tiers.get(label, {}).get(tier)
        if records is None:
            raise KeyError(f"model {label} has no tier {tier!r}")
        record = records.get(precision)
        return (record or records["fp32"]).size_bytes

    def quant_delta_db(self, label: int, precision: str) -> float | None:
        """The calibrated PSNR delta for ``label`` at ``precision``, or
        ``None`` when no calibration record exists."""
        record = self.quantization.get(label, {}).get(precision)
        return None if record is None else record.delta_db

    def model_label_for(self, segment_index: int) -> int:
        for seg in self.segments:
            if seg.index == segment_index:
                return seg.model_label
        raise KeyError(f"no segment with index {segment_index}")

    def label_sequence(self) -> list[int]:
        """Model labels in playback order (the input to Algorithm 1)."""
        return [s.model_label
                for s in sorted(self.segments, key=lambda s: s.index)]
