"""Video manifest: the metadata a dcSR server publishes alongside a video.

Maps every segment to its micro-model label (the ``HashMap_L`` of
Algorithm 1) and records model sizes for bandwidth accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SegmentRecord", "VideoManifest"]


@dataclass(frozen=True)
class SegmentRecord:
    """One segment's entry in the manifest."""

    index: int
    start: int
    n_frames: int
    model_label: int

    @property
    def end(self) -> int:
        return self.start + self.n_frames


@dataclass
class VideoManifest:
    """Everything a client needs to stream a dcSR-prepared video."""

    video_name: str
    width: int
    height: int
    fps: float
    crf: int
    segments: list[SegmentRecord] = field(default_factory=list)
    model_sizes: dict[int, int] = field(default_factory=dict)  # label -> bytes
    #: Whether enhanced I frames are written back into the DPB so P/B frames
    #: inherit the enhancement.  The server validates this per video (on
    #: high-motion content, motion-misplaced enhancement detail can hurt
    #: dependent frames; the fallback enhances I frames for display only).
    enhance_in_loop: bool = True

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        """Check internal consistency (raises ``ValueError``)."""
        labels_used = {s.model_label for s in self.segments}
        missing = labels_used - set(self.model_sizes)
        if missing:
            raise ValueError(f"segments reference unknown model labels {missing}")
        expected_start = 0
        for seg in sorted(self.segments, key=lambda s: s.index):
            if seg.start != expected_start:
                raise ValueError(
                    f"segment {seg.index} starts at {seg.start}, expected "
                    f"{expected_start}")
            expected_start = seg.end

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def n_models(self) -> int:
        return len(self.model_sizes)

    @property
    def n_frames(self) -> int:
        return sum(s.n_frames for s in self.segments)

    @property
    def total_model_bytes(self) -> int:
        """Bytes of all micro models (each downloaded at most once)."""
        return sum(self.model_sizes.values())

    def model_label_for(self, segment_index: int) -> int:
        for seg in self.segments:
            if seg.index == segment_index:
                return seg.model_label
        raise KeyError(f"no segment with index {segment_index}")

    def label_sequence(self) -> list[int]:
        """Model labels in playback order (the input to Algorithm 1)."""
        return [s.model_label
                for s in sorted(self.segments, key=lambda s: s.index)]
