"""Parallel execution plumbing for the server build pipeline.

The server pipeline's expensive stages are embarrassingly parallel: every
segment encodes and decodes independently (closed GOPs), every I-frame
chunk embeds independently, and every cluster's micro model trains
independently.  :class:`ParallelConfig` selects how that independence is
exploited; :class:`BuildTelemetry` records where the wall-clock went.

Determinism contract: the parallel build computes exactly the same
floating-point operations as the serial build, in the same per-task order,
so a package built with any worker count is bit-identical to the serial
one for the same :class:`~repro.core.server.ServerConfig` seed.  Models
cross the process boundary through :mod:`repro.nn.serialize`, which
round-trips float32 parameters losslessly.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..obs import Observability

__all__ = [
    "BACKENDS",
    "BUILD_STAGES",
    "ParallelConfig",
    "BuildTelemetry",
    "ClusterTrainingError",
    "make_executor",
    "stage_timer",
]

#: Accepted values of :attr:`ParallelConfig.backend`.
BACKENDS = ("process", "thread", "serial")

#: Stage names recorded in :attr:`BuildTelemetry.stage_seconds`, in
#: pipeline order.
BUILD_STAGES = ("split", "encode", "embed", "cluster", "train", "quantize",
                "validate")


@dataclass(frozen=True)
class ParallelConfig:
    """How the server build fans out its independent stages.

    ``workers=None`` resolves to ``os.cpu_count()``.  ``backend`` picks the
    pool flavour: ``process`` (true CPU parallelism, the default choice for
    training-dominated builds), ``thread`` (lower task overhead, useful
    when numpy releases the GIL), or ``serial`` (the exact pre-parallel
    code path, also used automatically when only one worker resolves).
    ``chunk_size`` is the number of I frames embedded per VAE feature-
    extraction task.

    With ``auto_calibrate`` (the default), a pool backend additionally
    self-calibrates to ``serial`` on single-core hosts: when
    ``os.cpu_count() == 1``, no pool can beat the serial path — it can
    only add IPC and serialization overhead — so the build runs (and,
    crucially, *reports*) serial rather than publishing a "process x2"
    row whose measured speedup can never exceed 1.0x.  Set
    ``auto_calibrate=False`` to force the requested pool regardless
    (pool-mechanics tests do this; results are bit-identical either way
    by the determinism contract).
    """

    workers: int | None = None
    backend: str = "serial"
    chunk_size: int = 16
    auto_calibrate: bool = True

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")

    def resolve_workers(self) -> int:
        """The concrete worker count (1 whenever the build runs serial)."""
        if self.backend == "serial":
            return 1
        workers = self.workers if self.workers is not None \
            else (os.cpu_count() or 1)
        if self.auto_calibrate and (os.cpu_count() or 1) == 1:
            return 1
        return workers

    def effective_backend(self) -> str:
        """``serial`` whenever a pool would not help.

        One resolved worker never benefits from a pool — including any
        pool on a single-core host under ``auto_calibrate``.
        """
        if self.backend == "serial" or self.resolve_workers() == 1:
            return "serial"
        return self.backend

    @property
    def is_parallel(self) -> bool:
        return self.effective_backend() != "serial"


class ClusterTrainingError(RuntimeError):
    """A pool worker failed while training one cluster's micro model.

    Carries the cluster ``label`` so build failures are attributable; the
    original exception is chained as ``__cause__``.
    """

    def __init__(self, label: int, message: str):
        super().__init__(f"cluster {label}: {message}")
        self.label = int(label)


@dataclass
class BuildTelemetry:
    """Per-stage accounting of one :func:`~repro.core.server.build_package`.

    A thin typed view over the build's :class:`~repro.obs.Observability`
    session: every number here is derived from spans and metrics recorded
    through ``obs`` (one clock, one tracer, one registry), so the JSON
    span tree exported from the same build agrees with these fields.

    ``stage_seconds`` has one entry per :data:`BUILD_STAGES` name that ran;
    ``train_flops`` is the analytic forward+backward cost of the clusters
    actually trained (cache hits cost zero).
    """

    backend: str = "serial"
    workers: int = 1
    stage_seconds: dict[str, float] = field(default_factory=dict)
    train_seconds_per_cluster: dict[int, float] = field(default_factory=dict)
    train_flops: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    obs: Observability = field(default_factory=Observability,
                               repr=False, compare=False)

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def summary_lines(self) -> list[str]:
        """A printable per-stage breakdown (CLI ``prepare`` and quickstart).

        The stage table renders through
        :func:`repro.bench.runner.format_table` — the same renderer the
        playback summary and the benchmark tables use.
        """
        from ..bench.runner import format_table

        rows = [[name, self.stage_seconds[name]]
                for name in BUILD_STAGES if name in self.stage_seconds]
        rows.append(["total", self.total_seconds])
        lines = [f"build stages ({self.backend} x{self.workers}):"]
        lines += ["  " + line
                  for line in format_table("", ["stage", "seconds"],
                                           rows).splitlines()]
        if self.train_flops:
            lines.append(f"  training   {self.train_flops:.3g} FLOPs")
        if self.cache_hits or self.cache_misses:
            lines.append(f"  train cache: {self.cache_hits} hits, "
                         f"{self.cache_misses} misses")
        return lines


@contextmanager
def stage_timer(telemetry: BuildTelemetry | None, name: str):
    """Accumulate wall-clock of the enclosed block into ``telemetry``.

    Opens a staged span on the telemetry's tracer (so the block nests any
    spans it creates) and mirrors the elapsed seconds into
    ``stage_seconds`` and the ``dcsr_build_stage_seconds_total`` counter.
    """
    if telemetry is None:
        yield
        return
    obs = telemetry.obs
    span = None
    try:
        with obs.tracer.span(name, stage=name) as span:
            yield
    finally:
        if span is not None:
            telemetry.stage_seconds[name] = (
                telemetry.stage_seconds.get(name, 0.0) + span.elapsed)
            obs.metrics.counter(
                "dcsr_build_stage_seconds_total",
                "Wall seconds spent per server build stage",
            ).inc(span.elapsed, stage=name)


def make_executor(config: ParallelConfig) -> Executor | None:
    """An executor for ``config``, or ``None`` for the serial path."""
    backend = config.effective_backend()
    if backend == "serial":
        return None
    workers = config.resolve_workers()
    if backend == "process":
        return ProcessPoolExecutor(max_workers=workers)
    return ThreadPoolExecutor(max_workers=workers)
