"""Injectable clocks: the only place the repo reads a raw monotonic timer.

Every timed path in the system (server build stages, playback stages,
training epochs, inference tiles) measures through a :class:`Clock`, so

- tests can substitute a :class:`SimulatedClock` and get exact,
  machine-independent durations;
- simulated network seconds (:mod:`repro.core.network`) advance their own
  :class:`SimulatedClock` and are *tagged* as simulated wherever they are
  recorded, so simulated and wall time are never silently mixed;
- a static guard (``tests/test_no_raw_timers.py``) can assert that no
  ``time.perf_counter()`` / ``time.monotonic()`` call site exists outside
  this module, which keeps the abstraction from rotting.

``time`` is imported here and nowhere else in ``src/repro``.
"""

from __future__ import annotations

import threading
import time

__all__ = ["Clock", "MonotonicClock", "SimulatedClock", "wall_clock"]


class Clock:
    """Monotonic time source: ``now()`` returns seconds as a float.

    ``label`` names the time domain (``"wall"`` or ``"simulated"``); spans
    recorded against a clock carry it so exported traces state which kind
    of seconds they hold.
    """

    label = "wall"

    def now(self) -> float:
        raise NotImplementedError


class MonotonicClock(Clock):
    """Real wall time (``time.perf_counter`` — the one sanctioned call)."""

    label = "wall"

    def now(self) -> float:
        return time.perf_counter()


class SimulatedClock(Clock):
    """A manually advanced clock for simulated seconds.

    ``advance(seconds)`` moves time forward and returns the new ``now()``;
    it never sleeps.  Thread-safe: the playback prefetch producer and the
    main thread may both charge simulated seconds to one network clock.
    """

    label = "simulated"

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds} (< 0) seconds")
        with self._lock:
            self._now += float(seconds)
            return self._now


#: Process-wide wall clock, shared by default ``Observability`` sessions.
_WALL = MonotonicClock()


def wall_clock() -> MonotonicClock:
    """The shared process-wide wall clock."""
    return _WALL
