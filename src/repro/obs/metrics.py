"""Counter / gauge / histogram registry: the metrics half of the core.

One :class:`MetricsRegistry` per observability session; instruments are
created (or re-fetched) by name, optionally carry label dimensions, and
are cheap enough to update on hot paths (a dict lookup and a float add
under one lock).  :func:`repro.obs.export.prometheus_text` renders the
whole registry in the Prometheus text exposition format.

Naming follows Prometheus conventions: ``dcsr_<noun>_<unit>_total`` for
counters, ``dcsr_<noun>_<unit>`` for gauges and histograms.
"""

from __future__ import annotations

import re
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   60.0)


def _label_key(labels: dict) -> tuple:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Metric:
    """Shared plumbing: a named family of label-keyed series."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = lock
        self._series: dict[tuple, float | list] = {}

    def series(self) -> dict[tuple, float | list]:
        """Snapshot of ``{label_key: value}`` (label_key is a sorted
        tuple of ``(name, value)`` pairs)."""
        with self._lock:
            return dict(self._series)


class Counter(_Metric):
    """Monotonically increasing total."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {value})")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(value)

    def value(self, **labels) -> float:
        return float(self._series.get(_label_key(labels), 0.0))


class Gauge(_Metric):
    """Last-write-wins instantaneous value."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(value)

    def value(self, **labels) -> float:
        return float(self._series.get(_label_key(labels), 0.0))


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    Each series holds ``[bucket_counts..., sum, count]``; bucket ``i``
    counts observations ``<= buckets[i]`` plus an implicit ``+Inf``
    bucket equal to ``count``.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, lock: threading.Lock,
                 buckets: tuple = DEFAULT_BUCKETS):
        super().__init__(name, help, lock)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.buckets = tuple(float(b) for b in buckets)

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = [0] * len(self.buckets) + [0.0, 0]
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series[i] += 1
            series[-2] += float(value)
            series[-1] += 1

    def count(self, **labels) -> int:
        series = self._series.get(_label_key(labels))
        return int(series[-1]) if series else 0

    def sum(self, **labels) -> float:
        series = self._series.get(_label_key(labels))
        return float(series[-2]) if series else 0.0


class MetricsRegistry:
    """Create-or-fetch registry of named instruments (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}")
            return existing
        metric = cls(name, help, self._lock, **kwargs)
        with self._lock:
            return self._metrics.setdefault(name, metric)

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def metrics(self) -> list[_Metric]:
        """All registered instruments, sorted by name (export order)."""
        with self._lock:
            return [self._metrics[n] for n in sorted(self._metrics)]
