"""Unified observability core: one clock/trace/metrics substrate.

Every timed path in the repo — server build stages, playback stages,
network retries, SR tiles, training epochs — measures through one
:class:`Observability` session: an injectable clock, a thread-safe span
tree, and a metrics registry.  ``BuildTelemetry`` and
``PlaybackTelemetry`` are thin typed views over it; exporters in
:mod:`repro.obs.export` turn the same records into JSON span trees,
Prometheus text, and the summary tables the CLI prints.

See ``docs/observability.md`` for the span model and exporter formats.
"""

from __future__ import annotations

from .clock import Clock, MonotonicClock, SimulatedClock, wall_clock
from .export import (
    prometheus_text,
    render_trace_summary,
    span_from_dict,
    span_to_dict,
    stage_totals,
    trace_to_json,
    write_metrics,
    write_trace,
)
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .trace import Span, Tracer

__all__ = [
    "Clock",
    "MonotonicClock",
    "SimulatedClock",
    "wall_clock",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Observability",
    "span_to_dict",
    "span_from_dict",
    "trace_to_json",
    "write_trace",
    "stage_totals",
    "prometheus_text",
    "write_metrics",
    "render_trace_summary",
]


class Observability:
    """One measurement session: clock + tracer + metrics registry.

    The default session runs on the shared process wall clock; tests
    inject a :class:`SimulatedClock` for exact, machine-independent
    durations.  Creating a session is cheap and recording into an
    unexported session costs a couple of clock reads per span — there is
    no separate "disabled" mode.
    """

    def __init__(self, clock: Clock | None = None,
                 root_name: str = "session"):
        self.clock = clock or wall_clock()
        self.tracer = Tracer(self.clock, root_name=root_name)
        self.metrics = MetricsRegistry()
