"""Exporters: JSON span trees, Prometheus text format, summary tables.

Three consumers, one substrate:

- :func:`trace_to_json` / :func:`write_trace` dump a span tree as JSON
  (``cli prepare/play --trace-out``, and
  :func:`repro.bench.runner.save_results` embeds the same dict so
  ``bench_results/*.json`` are self-describing);
- :func:`prometheus_text` / :func:`write_metrics` render a
  :class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus text
  exposition format (``--metrics-out``);
- :func:`render_trace_summary` prints the per-stage breakdown through
  :func:`repro.bench.runner.format_table` — the same renderer the
  telemetry summaries and benchmark tables use.

:func:`stage_totals` defines the canonical per-stage accounting rule:
spans carrying a ``stage`` attribute contribute their duration *minus*
the duration already covered by staged spans nested below them.  A
``decode`` span therefore excludes the ``sr``/``color`` hook time inside
it (matching :class:`~repro.core.client.PlaybackTelemetry`), while a
``train`` stage span keeps its full duration because its per-cluster and
per-epoch children are unstaged detail.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from .metrics import Histogram, MetricsRegistry
from .trace import Span, Tracer

__all__ = [
    "span_to_dict",
    "span_from_dict",
    "trace_to_json",
    "write_trace",
    "stage_totals",
    "prometheus_text",
    "write_metrics",
    "render_trace_summary",
]


def _root_of(trace) -> Span | dict:
    """Accept a Tracer, a Span, an Observability session, or a parsed dict."""
    tracer = getattr(trace, "tracer", None)
    if tracer is not None:                      # Observability session
        trace = tracer
    root = getattr(trace, "root", None)
    if root is not None:                        # Tracer
        trace = root
    if not isinstance(trace, (Span, dict)):
        raise TypeError(f"cannot export a trace from {type(trace).__name__}")
    return trace


def _fields(node) -> tuple[str, float, dict, list]:
    if isinstance(node, Span):
        return node.name, node.elapsed, node.attrs, node.children
    return (node["name"], node.get("duration_s") or 0.0,
            node.get("attrs", {}), node.get("children", []))


# ------------------------------------------------------------------- JSON

def span_to_dict(span: Span) -> dict:
    """JSON-serializable dict of one span subtree (stable field set)."""
    return {
        "name": span.name,
        "start_s": span.start_s,
        "duration_s": span.duration_s,
        "attrs": dict(span.attrs),
        "children": [span_to_dict(c) for c in span.children],
    }


def span_from_dict(data: dict) -> Span:
    """Inverse of :func:`span_to_dict` (JSON round-trip)."""
    return Span(
        name=data["name"],
        start_s=float(data["start_s"]),
        duration_s=(None if data.get("duration_s") is None
                    else float(data["duration_s"])),
        attrs=dict(data.get("attrs", {})),
        children=[span_from_dict(c) for c in data.get("children", [])],
    )


def trace_to_json(trace, indent: int | None = 2) -> str:
    """The span tree as a JSON document."""
    root = _root_of(trace)
    payload = root if isinstance(root, dict) else span_to_dict(root)
    return json.dumps(payload, indent=indent)


def write_trace(path: str | Path, trace, indent: int | None = 2) -> Path:
    path = Path(path)
    path.write_text(trace_to_json(trace, indent=indent) + "\n")
    return path


# ----------------------------------------------------------- stage totals

def stage_totals(trace) -> dict[str, float]:
    """Per-stage seconds aggregated over the tree (see module docstring).

    Matches the telemetry contract: for every playback/build stage name,
    the returned total equals the corresponding
    ``stage_seconds[name]`` within float-summation noise.
    """
    totals: dict[str, float] = {}

    def visit(node) -> float:
        _name, duration, attrs, children = _fields(node)
        covered = 0.0
        for child in children:
            covered += visit(child)
        stage = attrs.get("stage")
        if stage:
            totals[stage] = totals.get(stage, 0.0) \
                + max(0.0, duration - covered)
            return duration
        return covered

    visit(_root_of(trace))
    return totals


def _stage_counts(trace) -> dict[str, int]:
    counts: dict[str, int] = {}

    def visit(node):
        _name, _duration, attrs, children = _fields(node)
        stage = attrs.get("stage")
        if stage:
            counts[stage] = counts.get(stage, 0) + 1
        for child in children:
            visit(child)

    visit(_root_of(trace))
    return counts


# -------------------------------------------------------------- Prometheus

def _fmt_value(value: float) -> str:
    value = float(value)
    if math.isfinite(value) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _fmt_labels(pairs) -> str:
    if not pairs:
        return ""
    body = ",".join(
        '%s="%s"' % (k, str(v).replace("\\", r"\\").replace('"', r"\""))
        for k, v in pairs)
    return "{%s}" % body


def prometheus_text(registry: MetricsRegistry) -> str:
    """The whole registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for key, value in sorted(metric.series().items()):
            if isinstance(metric, Histogram):
                # Bucket counts are cumulative by construction (observe()
                # increments every bucket whose bound covers the value).
                total_count = value[-1]
                for bound, cumulative in zip(metric.buckets, value[:-2]):
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_fmt_labels(tuple(key) + (('le', _fmt_value(bound)),))}"
                        f" {_fmt_value(cumulative)}")
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_fmt_labels(tuple(key) + (('le', '+Inf'),))}"
                    f" {_fmt_value(total_count)}")
                lines.append(f"{metric.name}_sum{_fmt_labels(key)} "
                             f"{_fmt_value(value[-2])}")
                lines.append(f"{metric.name}_count{_fmt_labels(key)} "
                             f"{_fmt_value(total_count)}")
            else:
                lines.append(
                    f"{metric.name}{_fmt_labels(key)} {_fmt_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(path: str | Path, registry: MetricsRegistry) -> Path:
    path = Path(path)
    path.write_text(prometheus_text(registry))
    return path


# ----------------------------------------------------------------- summary

def render_trace_summary(trace, title: str = "trace summary") -> str:
    """One-screen per-stage table, rendered via ``bench.runner.format_table``."""
    from ..bench.runner import format_table     # lazy: bench imports obs

    totals = stage_totals(trace)
    counts = _stage_counts(trace)
    grand = sum(totals.values())
    rows = []
    for stage, seconds in totals.items():
        share = seconds / grand if grand > 0 else 0.0
        rows.append([stage, counts.get(stage, 0), seconds,
                     f"{share:.0%}"])
    rows.append(["total", sum(counts.values()), grand, "100%" if grand else "0%"])
    return format_table(title, ["stage", "spans", "seconds", "share"], rows)
