"""Nested span trees: the tracing half of the observability core.

A :class:`Span` is one timed region with attributes and children; a
:class:`Tracer` builds a tree of them against an injectable
:class:`~repro.obs.clock.Clock`.  Three entry points cover every call
shape in the codebase:

- ``with tracer.span("decode", stage="decode"):`` — the common case.
  Uses a per-*thread* span stack, so spans opened inside the block (same
  thread) nest automatically.
- ``tracer.begin(...)`` / ``tracer.end(span)`` — for regions that outlive
  a lexical block (the playback session span lives across generator
  yields).  ``begin`` does *not* touch the thread stack; children name it
  as an explicit ``parent``.
- ``tracer.record("download", seconds, clock=net.clock)`` — a
  pre-measured duration (simulated network seconds).  The span carries a
  ``clock`` attribute whenever its time domain is not wall time, so
  simulated and wall seconds are never silently mixed in one tree.

Thread safety: child lists mutate under one tracer lock, and each thread
has its own current-span stack, so pool workers (tiled SR) and the
prefetch producer can attach spans concurrently — workers that should
nest under a span owned by another thread pass it as ``parent=``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from .clock import Clock, wall_clock

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One timed region.  ``duration_s is None`` while the span is open."""

    name: str
    start_s: float = 0.0
    duration_s: float | None = None
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        """Closed duration in this span's own time domain (0.0 while open)."""
        return self.duration_s if self.duration_s is not None else 0.0

    def walk(self):
        """Depth-first iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Every descendant span (including self) named ``name``."""
        return [s for s in self.walk() if s.name == name]


class Tracer:
    """Builds one span tree per session against an injectable clock."""

    def __init__(self, clock: Clock | None = None, root_name: str = "trace"):
        self.clock = clock or wall_clock()
        self._lock = threading.Lock()
        self._local = threading.local()
        self.root = Span(name=root_name, start_s=self.clock.now())

    # ------------------------------------------------------------ internals

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _attach(self, span: Span, parent: Span | None) -> None:
        if parent is None:
            stack = self._stack()
            parent = stack[-1] if stack else self.root
        with self._lock:
            parent.children.append(span)

    # ------------------------------------------------------------------ API

    def current(self) -> Span | None:
        """The innermost ``span()`` block open on *this* thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, parent: Span | None = None, **attrs):
        """Open a child span for the enclosed block (current thread nests)."""
        sp = self.begin(name, parent=parent, **attrs)
        stack = self._stack()
        stack.append(sp)
        try:
            yield sp
        finally:
            stack.pop()
            self.end(sp)

    def begin(self, name: str, parent: Span | None = None, **attrs) -> Span:
        """Start a span without entering it on the thread stack.

        For regions that outlive a lexical block (a playback session held
        open across generator yields).  Close with :meth:`end`; children
        must pass it as ``parent=`` explicitly.
        """
        sp = Span(name=name, start_s=self.clock.now(), attrs=dict(attrs))
        self._attach(sp, parent)
        return sp

    def end(self, span: Span) -> Span:
        """Close a span started with :meth:`begin`."""
        if span.duration_s is None:
            span.duration_s = max(0.0, self.clock.now() - span.start_s)
        return span

    def record(self, name: str, seconds: float, parent: Span | None = None,
               clock: Clock | None = None, **attrs) -> Span:
        """Attach an already-measured duration as a closed span.

        ``clock`` names the time domain the seconds were measured in
        (e.g. a :class:`~repro.obs.clock.SimulatedClock`); any non-wall
        domain is stamped into the span's ``clock`` attribute.
        """
        clock = clock or self.clock
        if clock.label != "wall":
            attrs = {"clock": clock.label, **attrs}
        now = clock.now()
        sp = Span(name=name, start_s=max(0.0, now - seconds),
                  duration_s=float(seconds), attrs=dict(attrs))
        self._attach(sp, parent)
        return sp
