"""Power-rail timeline simulation (Figure 8(d)).

A playback session is a timeline of power states: the idle+decode baseline
runs throughout; SR inference adds a draw proportional to how hard the
model loads the accelerator.  NAS infers continuously (a flat elevated
line); NEMO and dcSR infer only at I frames (periodic spikes whose width is
the inference latency) — the structure visible in the paper's plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .specs import DeviceSpec

__all__ = ["PowerTimeline", "sr_power_draw", "simulate_power",
           "playback_power_schedule"]


@dataclass
class PowerTimeline:
    """Sampled power trace plus its integral."""

    times: np.ndarray      # seconds
    watts: np.ndarray

    @property
    def energy_joules(self) -> float:
        return float(np.trapezoid(self.watts, self.times))

    @property
    def mean_watts(self) -> float:
        duration = self.times[-1] - self.times[0]
        return self.energy_joules / duration if duration > 0 else 0.0

    @property
    def peak_watts(self) -> float:
        return float(self.watts.max())


def sr_power_draw(device: DeviceSpec, model_flops_per_inference: float,
                  inference_seconds: float) -> float:
    """Instantaneous SR power draw while an inference is running.

    Utilisation is how far one inference's work fills the accelerator's
    wide units (``power_saturation_flops``): micro models with few filters
    draw near ``power_sr_min_w``, big saturating models draw
    ``power_sr_max_w`` — the paper's ~2 W dcSR spikes vs NAS's flat 2.8 W.
    """
    if inference_seconds <= 0:
        return 0.0
    utilisation = min(1.0,
                      model_flops_per_inference / device.power_saturation_flops)
    return (device.power_sr_min_w
            + (device.power_sr_max_w - device.power_sr_min_w) * utilisation)


def playback_power_schedule(
    segment_durations_s: list[float], inferences_per_segment: int,
    inference_seconds: float,
) -> list[tuple[float, float]]:
    """SR-busy intervals ``(start, duration)`` over a playback session.

    Each segment triggers ``inferences_per_segment`` back-to-back
    inferences at its start (I frames decode first).
    """
    intervals = []
    t = 0.0
    busy = inferences_per_segment * inference_seconds
    for duration in segment_durations_s:
        if busy > 0:
            intervals.append((t, min(busy, duration)))
        t += duration
    return intervals


def simulate_power(
    device: DeviceSpec, total_seconds: float,
    sr_intervals: list[tuple[float, float]], sr_watts: float,
    dt: float = 0.05,
) -> PowerTimeline:
    """Sample the power rail over a playback of ``total_seconds``."""
    if total_seconds <= 0:
        raise ValueError("total_seconds must be positive")
    n = max(2, int(round(total_seconds / dt)) + 1)
    times = np.linspace(0.0, total_seconds, n)
    watts = np.full(n, device.power_idle_w + device.power_decode_w)
    for start, duration in sr_intervals:
        mask = (times >= start) & (times < start + duration)
        watts[mask] += sr_watts
    return PowerTimeline(times=times, watts=watts)
