"""Analytic device models.

The paper measures on three physical devices: a Jetson Xavier NX
(mobile-grade), a laptop (i7-7700HQ + GTX 1060), and a desktop (i7-8700 +
RTX 2070).  None are available offline, so each becomes an analytic spec:
an effective neural-compute throughput, a usable accelerator memory budget,
per-resolution video decode rates, and a power-state model.

Calibration (documented in EXPERIMENTS.md): throughputs are set to the
devices' published FP32 figures derated for framework overhead so that the
paper's qualitative results hold — NAS's big model runs below 1 FPS at
1080p on the Jetson, NAS/NEMO exhaust Jetson memory at 4K, and dcSR-1
clears 30 FPS everywhere.  Model FLOPs themselves are computed exactly from
the architectures (:mod:`repro.devices.flops`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DeviceSpec", "DEVICES", "get_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """One device's analytic parameters.

    ``effective_flops`` is sustained neural throughput (FLOPs/s) after
    framework overhead.  ``usable_memory_bytes`` is the memory the inference
    runtime can actually claim: on the Jetson the 8 GB is *shared* with the
    OS and the video pipeline, leaving roughly 1 GB for SR inference — this
    is what makes the big models OOM at 4K (Figure 8) while the discrete
    GPUs with dedicated VRAM do not (Figure 12).

    ``decode_fps`` maps resolution name to sustained H.264 decode rate.
    Power figures follow the Jetson rail measurements of Figure 8(d):
    ``power_idle_w`` + ``power_decode_w`` form the playback baseline, and SR
    inference adds up to ``power_sr_max_w`` depending on model utilisation.
    """

    name: str
    device_class: str                 # "mobile" | "laptop" | "desktop"
    effective_flops: float
    usable_memory_bytes: int
    decode_fps: dict[str, float] = field(default_factory=dict)
    power_idle_w: float = 0.5
    power_decode_w: float = 0.4
    power_sr_min_w: float = 0.6
    power_sr_max_w: float = 1.9
    #: FLOPs per inference at which the accelerator's wide units saturate;
    #: small micro models stay well below it and draw near the SR minimum
    #: (the paper's dcSR spikes reach ~2 W vs NAS's 2.8 W).
    power_saturation_flops: float = 2.0e11

    def decode_rate(self, resolution: str) -> float:
        rate = self.decode_fps.get(resolution.lower())
        if rate is None:
            raise ValueError(
                f"{self.name} has no decode rate for {resolution!r}; "
                f"known: {sorted(self.decode_fps)}")
        return rate


DEVICES: dict[str, DeviceSpec] = {
    # Jetson Xavier NX: ~21 TOPS int8 marketing, ~0.8 TFLOPs/s sustained
    # FP32 through a Python inference stack; 8 GB shared memory of which
    # ~1 GB is actually claimable by the SR runtime during playback.
    "jetson": DeviceSpec(
        name="Jetson Xavier NX",
        device_class="mobile",
        effective_flops=0.8e12,
        usable_memory_bytes=2_000_000_000,
        decode_fps={"720p": 120.0, "1080p": 80.0, "4k": 40.0},
        power_idle_w=0.5,
        power_decode_w=0.4,
        power_sr_min_w=0.6,
        power_sr_max_w=1.9,
    ),
    # GTX 1060 laptop: ~4.4 TFLOPs/s peak, derated; 6 GB dedicated VRAM.
    "laptop": DeviceSpec(
        name="Laptop (i7-7700HQ, GTX 1060)",
        device_class="laptop",
        effective_flops=5.0e12,
        usable_memory_bytes=6_000_000_000,
        decode_fps={"720p": 480.0, "1080p": 240.0, "4k": 90.0},
        power_idle_w=8.0,
        power_decode_w=6.0,
        power_sr_min_w=15.0,
        power_sr_max_w=60.0,
        power_saturation_flops=1.0e12,
    ),
    # RTX 2070 desktop: ~7.5 TFLOPs/s peak, derated; 8 GB dedicated VRAM.
    "desktop": DeviceSpec(
        name="Desktop (i7-8700, RTX 2070)",
        device_class="desktop",
        effective_flops=9.0e12,
        usable_memory_bytes=8_000_000_000,
        decode_fps={"720p": 700.0, "1080p": 360.0, "4k": 140.0},
        power_idle_w=15.0,
        power_decode_w=10.0,
        power_sr_min_w=30.0,
        power_sr_max_w=120.0,
        power_saturation_flops=2.0e12,
    ),
}


def get_device(name: str) -> DeviceSpec:
    spec = DEVICES.get(name.lower())
    if spec is None:
        raise ValueError(f"unknown device {name!r}; choose from {sorted(DEVICES)}")
    return spec
