"""Analytic device substrate: FLOPs tracing, latency/memory, and power."""

from .flops import ModelProfile, model_forward_flops, trace_model
from .latency import (
    CONVERSION_S_PER_MPIXEL,
    RETAINED_MAPS,
    InferenceCost,
    OutOfMemory,
    fits_in_memory,
    inference_seconds,
    playback_fps,
    profile_at_resolution,
)
from .power import (
    PowerTimeline,
    playback_power_schedule,
    simulate_power,
    sr_power_draw,
)
from .specs import DEVICES, DeviceSpec, get_device

__all__ = [
    "ModelProfile",
    "trace_model",
    "model_forward_flops",
    "InferenceCost",
    "OutOfMemory",
    "inference_seconds",
    "profile_at_resolution",
    "fits_in_memory",
    "playback_fps",
    "RETAINED_MAPS",
    "CONVERSION_S_PER_MPIXEL",
    "PowerTimeline",
    "sr_power_draw",
    "simulate_power",
    "playback_power_schedule",
    "DeviceSpec",
    "DEVICES",
    "get_device",
]
