"""Inference-latency, playback-FPS, and memory feasibility models.

The practical FPS of Figures 8 and 12 counts both decode latency and SR
inference latency over a segment: a method that SR-infers ``k`` frames in
an ``n``-frame segment delivers

    FPS = n / (n / decode_rate + k * t_inference)

with ``t_inference`` derived from the exact model FLOPs and the device's
effective throughput.  NAS sets ``k = n`` (every frame); NEMO and dcSR set
``k`` to the number of I frames per segment.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import nn
from ..sr.configs import RESOLUTIONS, Resolution
from .flops import ModelProfile, trace_model
from .specs import DeviceSpec

__all__ = ["InferenceCost", "profile_at_resolution", "inference_seconds",
           "fits_in_memory", "playback_fps", "OutOfMemory"]

#: Retained intermediate feature maps assumed for the inference runtime
#: (live input + output of the widest layer, plus skip/workspace overhead).
RETAINED_MAPS = 2.5

#: Fixed per-inference overhead (YUV<->RGB conversion, host<->device copy),
#: in seconds per megapixel of the *output* frame.
CONVERSION_S_PER_MPIXEL = 0.002


class OutOfMemory(RuntimeError):
    """Raised when a model's working set exceeds the device's memory."""


@dataclass(frozen=True)
class InferenceCost:
    """Cost of enhancing one frame at a given resolution."""

    profile: ModelProfile
    seconds: float
    memory_bytes: int


def profile_at_resolution(model: nn.Layer, resolution: str | Resolution) -> ModelProfile:
    """Trace ``model`` on the SR input size implied by ``resolution``.

    The SR network runs at the pre-upsampling resolution (the paper's
    models upscale x2 at 720p/1080p and x4 at 4K); a ``scale = 1`` model is
    traced at the full display resolution (pure quality enhancement).
    """
    res = RESOLUTIONS[resolution.lower()] if isinstance(resolution, str) else resolution
    scale = getattr(model, "scale", 1)
    in_h = res.height // scale
    in_w = res.width // scale
    return trace_model(model, (3, in_h, in_w))


def inference_seconds(
    model: nn.Layer, resolution: str | Resolution, device: DeviceSpec,
) -> InferenceCost:
    """Latency and memory of one SR inference; raises :class:`OutOfMemory`.

    Matches the paper's observation that NAS/NEMO's big models cannot run
    at 4K on the Jetson at all.
    """
    res = RESOLUTIONS[resolution.lower()] if isinstance(resolution, str) else resolution
    profile = profile_at_resolution(model, res)
    memory = profile.total_memory_bytes(RETAINED_MAPS)
    if memory > device.usable_memory_bytes:
        raise OutOfMemory(
            f"model working set {memory / 1e9:.2f} GB exceeds "
            f"{device.name}'s usable {device.usable_memory_bytes / 1e9:.2f} GB "
            f"at {res.name}")
    compute_s = profile.flops / device.effective_flops
    conversion_s = CONVERSION_S_PER_MPIXEL * res.pixels / 1e6
    return InferenceCost(profile=profile, seconds=compute_s + conversion_s,
                         memory_bytes=memory)


def fits_in_memory(
    model: nn.Layer, resolution: str | Resolution, device: DeviceSpec,
) -> bool:
    try:
        inference_seconds(model, resolution, device)
        return True
    except OutOfMemory:
        return False


def playback_fps(
    model: nn.Layer, resolution: str | Resolution, device: DeviceSpec,
    segment_frames: int, inferences_per_segment: int,
) -> float:
    """Practical playback FPS over one segment (decode + SR inference).

    ``inferences_per_segment`` is the number of frames the method enhances
    per segment: the I-frame count for dcSR/NEMO, the full frame count for
    NAS.  Raises :class:`OutOfMemory` when the model cannot run at all.
    """
    if segment_frames < 1:
        raise ValueError("segment_frames must be >= 1")
    if not 0 <= inferences_per_segment <= segment_frames:
        raise ValueError(
            f"inferences_per_segment must be in [0, {segment_frames}]")
    res = RESOLUTIONS[resolution.lower()] if isinstance(resolution, str) else resolution
    decode_s = segment_frames / device.decode_rate(res.name)
    infer_s = 0.0
    if inferences_per_segment:
        infer_s = inferences_per_segment * inference_seconds(
            model, res, device).seconds
    return segment_frames / (decode_s + infer_s)
