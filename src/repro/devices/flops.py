"""Per-layer FLOPs and activation accounting for ``repro.nn`` models.

A static tracer walks a layer graph with a symbolic input shape and sums
multiply-add costs.  This is what turns an actual model architecture into
the inference-latency and memory numbers of the device model (Figures 1(a),
8, 12) — the FLOPs are exact for the architecture, only the device
throughput is calibrated.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import nn

__all__ = ["ModelProfile", "trace_model", "model_forward_flops"]


@dataclass(frozen=True)
class ModelProfile:
    """Static cost profile of one forward pass."""

    flops: float                 # total floating-point operations
    param_bytes: int             # float32 parameter payload
    largest_activation_bytes: int
    n_activations: int           # number of intermediate tensors produced
    output_shape: tuple          # (C, H, W) or (features,)

    def activation_working_set(self, retained_maps: float = 2.5) -> int:
        """Approximate runtime activation memory.

        Inference frameworks retain a window of intermediate maps (graph
        buffers, skip connections, double buffering); ``retained_maps``
        scales the largest map to a working set.
        """
        return int(self.largest_activation_bytes * retained_maps)

    def total_memory_bytes(self, retained_maps: float = 2.5) -> int:
        return self.param_bytes + self.activation_working_set(retained_maps)


def _shape_size(shape: tuple) -> int:
    size = 1
    for s in shape:
        size *= s
    return size


def _trace(layer: nn.Layer, shape: tuple, acc: dict) -> tuple:
    """Advance ``shape`` through ``layer``, accumulating costs into ``acc``."""
    if isinstance(layer, nn.Sequential):
        for sub in layer:
            shape = _trace(sub, shape, acc)
        return shape
    if isinstance(layer, nn.ResidualBlock):
        inner_shape = _trace(layer.body, shape, acc)
        acc["flops"] += _shape_size(inner_shape)  # the skip add
        return inner_shape
    if isinstance(layer, nn.GlobalSkip):
        inner_shape = _trace(layer.inner, shape, acc)
        acc["flops"] += _shape_size(inner_shape)
        return inner_shape
    if isinstance(layer, nn.Upsampler):
        return _trace(layer.body, shape, acc)
    if isinstance(layer, nn.Conv2d):
        cout, cin, kh, kw = layer.weight.shape
        c, h, w = shape
        if c != cin:
            raise ValueError(f"channel mismatch tracing conv: {c} vs {cin}")
        oh = (h + 2 * layer.padding - kh) // layer.stride + 1
        ow = (w + 2 * layer.padding - kw) // layer.stride + 1
        macs = cin * kh * kw * cout * oh * ow
        acc["flops"] += 2 * macs
        if layer.bias is not None:
            acc["flops"] += cout * oh * ow
        _record_activation(acc, (cout, oh, ow))
        return (cout, oh, ow)
    if isinstance(layer, nn.Dense):
        in_f, out_f = layer.weight.shape
        acc["flops"] += 2 * in_f * out_f + out_f
        _record_activation(acc, (out_f,))
        return (out_f,)
    if isinstance(layer, (nn.ReLU, nn.LeakyReLU, nn.Sigmoid, nn.Tanh,
                          nn.Scale)):
        acc["flops"] += _shape_size(shape)
        return shape
    if isinstance(layer, nn.PixelShuffle):
        c, h, w = shape
        r = layer.scale
        out = (c // (r * r), h * r, w * r)
        _record_activation(acc, out)
        return out
    if isinstance(layer, nn.NearestUpsample):
        c, h, w = shape
        out = (c, h * layer.scale, w * layer.scale)
        _record_activation(acc, out)
        return out
    if isinstance(layer, nn.AvgPool2d):
        c, h, w = shape
        acc["flops"] += _shape_size(shape)
        return (c, h // layer.kernel, w // layer.kernel)
    if isinstance(layer, nn.Flatten):
        return (_shape_size(shape),)
    if isinstance(layer, nn.Reshape):
        return layer.shape
    if isinstance(layer, nn.Identity):
        return shape
    # Unknown composite: try common attribute conventions before giving up.
    for attr in ("body", "inner"):
        if hasattr(layer, attr):
            return _trace(getattr(layer, attr), shape, acc)
    raise TypeError(f"cannot trace layer of type {type(layer).__name__}")


def _record_activation(acc: dict, shape: tuple) -> None:
    nbytes = _shape_size(shape) * 4
    acc["largest"] = max(acc["largest"], nbytes)
    acc["count"] += 1


def trace_model(model: nn.Layer, input_shape: tuple) -> ModelProfile:
    """Profile one forward pass of ``model`` on a ``(C, H, W)`` input.

    EDSR models are traced via their head/body/tail; any
    :class:`~repro.nn.layers.Layer` composition of the standard layers
    works.
    """
    acc = {"flops": 0.0, "largest": _shape_size(input_shape) * 4, "count": 1}
    # EDSR exposes head/body/tail rather than being a Sequential itself.
    if hasattr(model, "head") and hasattr(model, "body") and hasattr(model, "tail"):
        shape = _trace(model.head, input_shape, acc)
        shape = _trace(model.body, shape, acc)
        shape = _trace(model.tail, shape, acc)
        acc["flops"] += 2 * _shape_size(input_shape)  # the two pixel shifts
    else:
        shape = _trace(model, input_shape, acc)
    param_bytes = sum(p.nbytes for p in model.parameters())
    return ModelProfile(
        flops=float(acc["flops"]),
        param_bytes=param_bytes,
        largest_activation_bytes=int(acc["largest"]),
        n_activations=int(acc["count"]),
        output_shape=shape,
    )


def model_forward_flops(model: nn.Layer, height: int, width: int,
                        channels: int = 3) -> float:
    """Convenience: forward FLOPs for one ``channels x height x width`` input."""
    return trace_model(model, (channels, height, width)).flops
