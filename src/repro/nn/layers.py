"""Layer library.

Every layer implements:

- ``forward(x, training=True)`` — compute the output.  With
  ``training=True`` (the default) it caches whatever the backward pass
  needs on ``self``; with ``training=False`` (or via the ``infer``
  shorthand) it is **zero-retention**: no activations, masks, or packed
  inputs are kept alive, so inference holds no training state.
- ``backward(grad_out)`` — accumulate parameter gradients and return the
  gradient with respect to the layer input;
- ``parameters()`` — yield the layer's :class:`~repro.nn.tensor.Parameter`
  objects.

Layers are single-use per step: ``backward`` must follow the matching
``forward(x, training=True)``.  ``Sequential`` composes layers into
networks.  ``Conv2d`` additionally routes inference through the packed
im2col GEMM kernel (:func:`repro.nn.functional.conv2d_gemm`), which is
bitwise-equal to the reference ``conv2d_forward``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from . import functional as F
from . import init as winit
from .tensor import Parameter

__all__ = [
    "Layer",
    "Identity",
    "Conv2d",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "Reshape",
    "PixelShuffle",
    "NearestUpsample",
    "AvgPool2d",
    "Scale",
    "Sequential",
]


class Layer:
    """Base class for all layers."""

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Zero-retention forward: no state is cached for a backward pass."""
        return self.forward(x, training=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> Iterator[Parameter]:
        return iter(())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training=training)


class Identity(Layer):
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class Conv2d(Layer):
    """2-D convolution over NCHW tensors.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Square kernel side.
    stride, padding:
        Usual convolution hyper-parameters.  ``padding='same'`` keeps the
        spatial size for stride 1 and odd kernels.
    rng:
        Generator used for He-normal weight init.
    """

    def __init__(
        self, in_channels: int, out_channels: int, kernel_size: int,
        stride: int = 1, padding: int | str = "same",
        rng: np.random.Generator | None = None, bias: bool = True,
        name: str = "conv",
    ):
        rng = rng if rng is not None else np.random.default_rng(0)
        if padding == "same":
            if kernel_size % 2 == 0:
                raise ValueError("padding='same' requires an odd kernel size")
            padding = kernel_size // 2
        self.stride = int(stride)
        self.padding = int(padding)
        self.weight = Parameter(
            winit.he_normal((out_channels, in_channels, kernel_size, kernel_size), rng),
            name=f"{name}.weight",
        )
        self.bias = Parameter(winit.zeros((out_channels,)), name=f"{name}.bias") if bias else None
        self._x: np.ndarray | None = None
        self.needs_input_grad = True
        self._packed: dict[str, F.PackedConvWeight | F.QuantizedConvWeight] = {}
        self._packed_key: tuple[int, int] | None = None

    def packed(self, precision: str = "fp32"
               ) -> F.PackedConvWeight | F.QuantizedConvWeight:
        """The kernel pre-packed for the GEMM inference path.

        ``precision="fp32"`` returns the exact :class:`PackedConvWeight`;
        ``"fp16"``/``"int8"`` return a :class:`QuantizedConvWeight` (see
        :func:`repro.nn.functional.quantize_conv_weight` — scales derive
        deterministically from the fp32 weights, so clients recompute them
        rather than downloading a second checkpoint).  Each precision is
        packed once and cached; any weight or bias update (tracked through
        :attr:`Parameter.version`) invalidates every cached precision, so
        a model that trains between inferences always infers with fresh
        taps and fresh scales.
        """
        key = (self.weight.version,
               self.bias.version if self.bias is not None else -1)
        if self._packed_key != key:
            self._packed = {}
            self._packed_key = key
        entry = self._packed.get(precision)
        if entry is None:
            bias = self.bias.data if self.bias is not None else None
            if precision == "fp32":
                entry = F.pack_conv_weight(self.weight.data, bias)
            else:
                entry = F.quantize_conv_weight(self.weight.data, bias,
                                               precision)
            self._packed[precision] = entry
        return entry

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training:
            return F.conv2d_gemm(x, self.packed(),
                                 stride=self.stride, padding=self.padding)
        self._x = x
        return F.conv2d_forward(
            x, self.weight.data,
            self.bias.data if self.bias is not None else None,
            stride=self.stride, padding=self.padding,
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        grad_x, grad_w, grad_b = F.conv2d_backward(
            self._x, self.weight.data, grad_out,
            stride=self.stride, padding=self.padding,
            need_input_grad=self.needs_input_grad,
        )
        self.weight.accumulate(grad_w)
        if self.bias is not None:
            self.bias.accumulate(grad_b)
        self._x = None
        return grad_x if grad_x is not None else np.zeros(0, dtype=np.float32)

    def parameters(self) -> Iterator[Parameter]:
        yield self.weight
        if self.bias is not None:
            yield self.bias


class Dense(Layer):
    """Fully connected layer over ``(N, in_features)`` inputs."""

    def __init__(
        self, in_features: int, out_features: int,
        rng: np.random.Generator | None = None, name: str = "dense",
        init: str = "xavier",
    ):
        rng = rng if rng is not None else np.random.default_rng(0)
        shape = (in_features, out_features)
        data = winit.he_normal(shape, rng) if init == "he" else winit.xavier_uniform(shape, rng)
        self.weight = Parameter(data, name=f"{name}.weight")
        self.bias = Parameter(winit.zeros((out_features,)), name=f"{name}.bias")
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._x = x
        return x @ self.weight.data + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.accumulate(self._x.T @ grad_out)
        self.bias.accumulate(grad_out.sum(axis=0))
        grad_x = grad_out @ self.weight.data.T
        self._x = None
        return grad_x

    def parameters(self) -> Iterator[Parameter]:
        yield self.weight
        yield self.bias


class ReLU(Layer):
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training:
            return np.maximum(x, 0.0)
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._mask


class LeakyReLU(Layer):
    def __init__(self, slope: float = 0.2):
        self.slope = float(slope)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training:
            return np.where(x > 0, x, self.slope * x)
        self._mask = x > 0
        return np.where(self._mask, x, self.slope * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_out, self.slope * grad_out)


class Sigmoid(Layer):
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        # Numerically stable logistic: exp(-|x|) <= 1 never overflows, and
        # one clip + one exp serve both branches.
        z = np.exp(-np.abs(np.clip(x, -60, 60)))
        y = np.where(x >= 0, 1.0 / (1.0 + z), z / (1.0 + z)).astype(np.float32)
        if training:
            self._y = y
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._y * (1.0 - self._y)


class Tanh(Layer):
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        y = np.tanh(x)
        if training:
            self._y = y
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (1.0 - self._y * self._y)


class Flatten(Layer):
    """Flatten all but the batch axis."""

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)


class Reshape(Layer):
    """Reshape the per-sample part of the tensor to ``shape``."""

    def __init__(self, shape: tuple):
        self.shape = tuple(shape)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._in_shape = x.shape
        return x.reshape((x.shape[0],) + self.shape)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._in_shape)


class PixelShuffle(Layer):
    """Sub-pixel convolution rearrangement used by the EDSR upsampler."""

    def __init__(self, scale: int):
        if scale < 1:
            raise ValueError("scale must be >= 1")
        self.scale = int(scale)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return F.pixel_shuffle(x, self.scale)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return F.pixel_unshuffle(grad_out, self.scale)


class NearestUpsample(Layer):
    """Nearest-neighbour spatial upsampling (VAE decoder)."""

    def __init__(self, scale: int):
        self.scale = int(scale)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return F.nearest_upsample(x, self.scale)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return F.nearest_downsample_grad(grad_out, self.scale)


class AvgPool2d(Layer):
    """Non-overlapping average pooling."""

    def __init__(self, kernel: int):
        self.kernel = int(kernel)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return F.avg_pool2d_forward(x, self.kernel)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return F.avg_pool2d_backward(grad_out, self.kernel)


class Scale(Layer):
    """Multiply by a fixed constant (EDSR residual scaling)."""

    def __init__(self, value: float):
        self.value = float(value)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return x * self.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self.value


class Sequential(Layer):
    """Compose layers; backward runs them in reverse."""

    def __init__(self, *layers: Layer):
        self.layers = list(layers)

    def append(self, layer: Layer) -> None:
        self.layers.append(layer)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> Iterator[Parameter]:
        for layer in self.layers:
            yield from layer.parameters()

    def __iter__(self):
        return iter(self.layers)

    def __len__(self):
        return len(self.layers)
