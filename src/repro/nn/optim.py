"""Optimizers and learning-rate schedules."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .tensor import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "CosineLR", "clip_grad_norm"]


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global L2 norm of all gradients to ``max_norm``.

    Returns the pre-clip norm.
    """
    params = list(params)
    total = float(np.sqrt(sum(float(np.sum(p.grad ** 2)) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list and a mutable learning rate."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) — the optimizer used for both EDSR and VAE."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            m_hat = m / bc1
            v_hat = v / bc2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the optimizer LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.optimizer = optimizer
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineLR:
    """Cosine-anneal the LR from its initial value to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.optimizer = optimizer
        self.total_epochs = int(total_epochs)
        self.min_lr = float(min_lr)
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch = min(self.epoch + 1, self.total_epochs)
        frac = self.epoch / self.total_epochs
        self.optimizer.lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + np.cos(np.pi * frac)
        )
