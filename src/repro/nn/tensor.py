"""Parameter container used by all trainable layers.

The framework is deliberately layer-based rather than tape-based: every layer
implements an explicit ``forward`` and ``backward``, and trainable state lives
in :class:`Parameter` objects that pair a value array with its gradient
accumulator.  This keeps the training loop easy to reason about and easy to
verify with numerical gradient checks (see :mod:`repro.nn.gradcheck`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A trainable array with a gradient accumulator.

    Parameters
    ----------
    data:
        Initial value.  Stored as ``float32`` (the dtype used throughout the
        framework; it also determines serialized model size).
    name:
        Optional human-readable name used in state dicts and error messages.
    """

    def __init__(self, data: np.ndarray, name: str = "param"):
        self._data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self._data)
        self.name = name
        self._version = 0

    @property
    def data(self) -> np.ndarray:
        return self._data

    @data.setter
    def data(self, value: np.ndarray) -> None:
        self._data = np.asarray(value, dtype=np.float32)
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic update counter used to invalidate derived state.

        Every assignment through ``.data`` bumps it — including augmented
        assignments like ``p.data -= lr * g`` (Python stores the mutated
        array back through the setter), which covers all optimizer steps
        and checkpoint loads.  Direct element writes that never reassign
        the attribute (``p.data[i] = v``) are invisible to the counter;
        code that mutates elements in place must reassign ``.data``
        afterwards if packed-weight caches are in play.
        """
        return self._version

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        """Serialized size in bytes (float32)."""
        return int(self.data.size) * 4

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the accumulator (shape-checked)."""
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name!r} shape {self.data.shape}"
            )
        self.grad += grad

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"
