"""Numerical gradient verification.

Used by the test suite to prove every layer's analytic backward pass against
central finite differences.  Checks run in float64 conceptually but the
layers store float32, so tolerances are set accordingly.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .layers import Layer

__all__ = ["numerical_gradient", "check_layer_gradients"]


def numerical_gradient(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-3,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` with respect to ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = fn(x)
        flat[i] = orig - eps
        minus = fn(x)
        flat[i] = orig
        gflat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_layer_gradients(
    layer: Layer, x: np.ndarray, rng: np.random.Generator,
    atol: float = 5e-3, rtol: float = 5e-2,
) -> None:
    """Verify input and parameter gradients of ``layer`` at point ``x``.

    The scalar objective is ``sum(forward(x) * R)`` for a fixed random ``R``,
    which exercises every output element with distinct weights.

    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    x = np.asarray(x, dtype=np.float32)
    y = layer.forward(x.copy())
    weights = rng.normal(size=y.shape).astype(np.float32)

    def objective(x_in: np.ndarray) -> float:
        return float(np.sum(layer.forward(x_in.astype(np.float32)) * weights))

    # Analytic gradients.
    layer.zero_grad()
    layer.forward(x.copy())
    grad_x = layer.backward(weights)
    analytic_params = [p.grad.copy() for p in layer.parameters()]

    # Numerical input gradient.
    num_gx = numerical_gradient(objective, x.copy())
    _assert_close("input", grad_x, num_gx, atol, rtol)

    # Numerical parameter gradients.
    for p, analytic in zip(layer.parameters(), analytic_params):
        def p_objective(v: np.ndarray, p=p) -> float:
            saved = p.data
            p.data = v.astype(np.float32)
            try:
                return float(np.sum(layer.forward(x.copy()) * weights))
            finally:
                p.data = saved

        num_gp = numerical_gradient(p_objective, p.data.copy())
        _assert_close(p.name, analytic, num_gp, atol, rtol)


def _assert_close(
    label: str, analytic: np.ndarray, numeric: np.ndarray,
    atol: float, rtol: float,
) -> None:
    analytic = np.asarray(analytic, dtype=np.float64)
    if analytic.shape != numeric.shape:
        raise AssertionError(
            f"{label}: analytic shape {analytic.shape} != numeric {numeric.shape}"
        )
    err = np.abs(analytic - numeric)
    tol = atol + rtol * np.abs(numeric)
    if not np.all(err <= tol):
        worst = float(np.max(err - tol))
        raise AssertionError(
            f"gradient mismatch for {label}: max excess error {worst:.3e} "
            f"(atol={atol}, rtol={rtol})"
        )
