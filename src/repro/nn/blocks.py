"""Composite blocks: residual blocks and the EDSR upsampler.

These are the building blocks of EDSR (Lim et al., CVPRW 2017), which dcSR
uses for all its SR models (Section 3.1.3 of the paper).  EDSR residual
blocks drop batch-norm and scale the residual branch before the skip add.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .layers import Conv2d, Layer, PixelShuffle, ReLU, Scale, Sequential
from .tensor import Parameter

__all__ = ["ResidualBlock", "Upsampler", "GlobalSkip"]


class ResidualBlock(Layer):
    """EDSR-style residual block: ``x + s * conv(relu(conv(x)))``."""

    def __init__(
        self, channels: int, kernel_size: int = 3, res_scale: float = 1.0,
        rng: np.random.Generator | None = None, name: str = "resblock",
    ):
        self.body = Sequential(
            Conv2d(channels, channels, kernel_size, rng=rng, name=f"{name}.conv1"),
            ReLU(),
            Conv2d(channels, channels, kernel_size, rng=rng, name=f"{name}.conv2"),
            Scale(res_scale),
        )

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return x + self.body.forward(x, training=training)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out + self.body.backward(grad_out)

    def parameters(self) -> Iterator[Parameter]:
        return self.body.parameters()


class Upsampler(Layer):
    """Sub-pixel upsampler: conv to ``C * r^2`` channels then pixel shuffle.

    Scales that are powers of two are built as a chain of x2 stages (as in
    the original EDSR); scale 3 is a single stage.
    """

    def __init__(
        self, channels: int, scale: int,
        rng: np.random.Generator | None = None, name: str = "upsampler",
    ):
        stages: list[Layer] = []
        if scale == 1:
            pass
        elif scale & (scale - 1) == 0:  # power of two
            n_stages = int(np.log2(scale))
            for i in range(n_stages):
                stages.append(Conv2d(channels, channels * 4, 3, rng=rng,
                                     name=f"{name}.conv{i}"))
                stages.append(PixelShuffle(2))
        elif scale == 3:
            stages.append(Conv2d(channels, channels * 9, 3, rng=rng,
                                 name=f"{name}.conv0"))
            stages.append(PixelShuffle(3))
        else:
            raise ValueError(f"unsupported upsampling scale {scale}")
        self.body = Sequential(*stages)
        self.scale = scale

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.body.forward(x, training=training)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.body.backward(grad_out)

    def parameters(self) -> Iterator[Parameter]:
        return self.body.parameters()


class GlobalSkip(Layer):
    """Wrap a body with the EDSR global skip: ``body(x) + x``."""

    def __init__(self, body: Layer):
        self.inner = body

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return x + self.inner.forward(x, training=training)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out + self.inner.backward(grad_out)

    def parameters(self) -> Iterator[Parameter]:
        return self.inner.parameters()
