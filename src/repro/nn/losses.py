"""Loss functions.

Each loss returns ``(value, grad)`` where ``grad`` is the gradient of the
scalar loss with respect to the prediction, ready to feed into a network's
``backward``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mse_loss", "l1_loss", "kl_standard_normal", "vae_loss"]


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error over all elements."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    value = float(np.mean(diff * diff))
    grad = (2.0 / diff.size) * diff
    return value, grad.astype(np.float32)


def l1_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean absolute error (the loss EDSR trains with)."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    value = float(np.mean(np.abs(diff)))
    grad = np.sign(diff) / diff.size
    return value, grad.astype(np.float32)


def kl_standard_normal(mu: np.ndarray, logvar: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
    """KL divergence ``KL[N(mu, sigma) || N(0, 1)]`` summed over latent dims,
    averaged over the batch.

    Returns ``(value, grad_mu, grad_logvar)``.
    """
    if mu.shape != logvar.shape:
        raise ValueError(f"shape mismatch: {mu.shape} vs {logvar.shape}")
    n = mu.shape[0]
    var = np.exp(logvar)
    value = float(0.5 * np.sum(mu * mu + var - 1.0 - logvar) / n)
    grad_mu = mu / n
    grad_logvar = 0.5 * (var - 1.0) / n
    return value, grad_mu.astype(np.float32), grad_logvar.astype(np.float32)


def vae_loss(
    x: np.ndarray, x_hat: np.ndarray, mu: np.ndarray, logvar: np.ndarray,
    recon_weight: float = 1.0, kl_weight: float = 1.0,
) -> tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """The VAE objective of Eq. (1): ``c * ||x - x_hat||^2 + KL``.

    The reconstruction term is *summed* over pixels and averaged over the
    batch (matching the balance against the summed KL term), then scaled by
    ``recon_weight`` (the paper's ``c``).

    Returns ``(value, grad_x_hat, grad_mu, grad_logvar)``.
    """
    n = x.shape[0]
    diff = x_hat - x
    recon = float(recon_weight * np.sum(diff * diff) / n)
    grad_x_hat = (recon_weight * 2.0 / n) * diff
    kl, grad_mu, grad_logvar = kl_standard_normal(mu, logvar)
    total = recon + kl_weight * kl
    return (
        total,
        grad_x_hat.astype(np.float32),
        (kl_weight * grad_mu).astype(np.float32),
        (kl_weight * grad_logvar).astype(np.float32),
    )
