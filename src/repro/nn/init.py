"""Weight initialisers.

All initialisers take an explicit :class:`numpy.random.Generator` so model
construction is deterministic and reproducible across runs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "xavier_uniform", "zeros", "fan_in_out"]


def fan_in_out(shape: tuple) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and conv kernel shapes.

    Dense weights are ``(in, out)``; conv kernels are ``(Cout, Cin, KH, KW)``.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def he_normal(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialisation (suited to ReLU networks such as EDSR)."""
    fan_in, _ = fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialisation (used for the VAE's tanh/sigmoid heads)."""
    fan_in, fan_out = fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)
