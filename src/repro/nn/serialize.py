"""Model serialization and size accounting.

Model size drives two of the paper's results: Table 1 (the micro-model
configuration grid) and Figure 1(b) (big-model size vs. resolution), and it
is the quantity transferred over the network in the bandwidth experiments
(Figure 10).  ``model_size_bytes`` therefore counts exactly what a client
would download: every float32 parameter plus a small per-tensor container
overhead, mirroring real serialized checkpoints.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Mapping

import numpy as np

from .layers import Layer

__all__ = [
    "state_dict",
    "load_state_dict",
    "save_model",
    "load_model",
    "model_size_bytes",
    "model_size_mb",
    "quantized_size_bytes",
    "serialize_to_bytes",
    "deserialize_from_bytes",
    "PER_TENSOR_OVERHEAD_BYTES",
]

# Approximate container overhead (name, dtype, shape header) per stored
# tensor, comparable to npz/TF-checkpoint metadata.
PER_TENSOR_OVERHEAD_BYTES = 128


def state_dict(model: Layer) -> dict[str, np.ndarray]:
    """Collect parameters into an ordered ``{key: array}`` mapping.

    Keys combine the enumeration index with the parameter's human name so
    they are unique and stable for a fixed architecture.
    """
    out: dict[str, np.ndarray] = {}
    for i, p in enumerate(model.parameters()):
        out[f"{i:04d}:{p.name}"] = p.data.copy()
    return out


def load_state_dict(model: Layer, state: Mapping[str, np.ndarray]) -> None:
    """Assign ``state`` back into ``model`` (strict: counts and shapes match)."""
    params = list(model.parameters())
    if len(params) != len(state):
        raise ValueError(
            f"state has {len(state)} tensors, model expects {len(params)}"
        )
    for key in sorted(state):
        idx = int(key.split(":", 1)[0])
        value = np.asarray(state[key], dtype=np.float32)
        if params[idx].data.shape != value.shape:
            raise ValueError(
                f"shape mismatch for {key}: model {params[idx].data.shape}, "
                f"state {value.shape}"
            )
        params[idx].data = value.copy()


def save_model(model: Layer, path: str | Path) -> int:
    """Serialize ``model`` to an ``.npz`` file; returns bytes written."""
    path = Path(path)
    np.savez(path, **state_dict(model))
    return path.stat().st_size


def load_model(model: Layer, path: str | Path) -> None:
    """Load an ``.npz`` checkpoint produced by :func:`save_model`."""
    with np.load(Path(path)) as data:
        load_state_dict(model, dict(data))


def serialize_to_bytes(model: Layer) -> bytes:
    """Serialize to an in-memory npz blob (used by the streaming simulator)."""
    buf = io.BytesIO()
    np.savez(buf, **state_dict(model))
    return buf.getvalue()


def deserialize_from_bytes(model: Layer, blob: bytes) -> None:
    with np.load(io.BytesIO(blob)) as data:
        load_state_dict(model, dict(data))


def model_size_bytes(model: Layer) -> int:
    """Download size of a model: parameter payload + container overhead."""
    n_tensors = 0
    payload = 0
    for p in model.parameters():
        n_tensors += 1
        payload += p.nbytes
    return payload + n_tensors * PER_TENSOR_OVERHEAD_BYTES


def model_size_mb(model: Layer) -> float:
    return model_size_bytes(model) / (1024.0 * 1024.0)


def quantized_size_bytes(model: Layer, precision: str) -> int:
    """Download size of a ``precision``-quantized checkpoint.

    Mirrors what a quantized serialization would ship: fp16 stores every
    parameter at 2 bytes; int8 stores weight tensors as 1-byte codes plus
    float32 per-output-channel scales (axis 0, matching
    :func:`repro.nn.functional.quantize_conv_weight`) while biases and
    other 1-D tensors stay float32.  Container overhead per tensor is the
    same as :func:`model_size_bytes`.
    """
    if precision == "fp32":
        return model_size_bytes(model)
    if precision not in ("fp16", "int8"):
        raise ValueError(f"unknown precision {precision!r}")
    n_tensors = 0
    payload = 0
    for p in model.parameters():
        n_tensors += 1
        if precision == "fp16":
            payload += 2 * p.size
        elif p.data.ndim >= 2:
            payload += p.size + 4 * p.data.shape[0]
        else:
            payload += 4 * p.size
    return payload + n_tensors * PER_TENSOR_OVERHEAD_BYTES
