"""Stateless numerical primitives shared by the layers.

All image tensors use the NCHW layout: ``(batch, channels, height, width)``.

The convolution here is implemented with ``sliding_window_view`` plus
``tensordot`` in the forward pass, and with the classic "full convolution of
the (stride-dilated) output gradient with the flipped kernel" in the backward
pass.  Everything is fully vectorised; there are no per-pixel Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "pad2d",
    "unpad2d",
    "conv2d_forward",
    "conv2d_backward",
    "conv_output_size",
    "im2col",
    "PackedConvWeight",
    "pack_conv_weight",
    "conv2d_gemm",
    "conv2d_shift_nhwc",
    "IM2COL_SCRATCH_BYTES",
    "im2col_block_rows",
    "conv2d_im2col_nhwc",
    "conv2d_im2col_nhwc_quant",
    "PRECISIONS",
    "INT8_EXACT_ACC_BOUND",
    "QuantizedConvWeight",
    "quantize_conv_weight",
    "conv2d_gemm_quant",
    "conv2d_shift_nhwc_quant",
    "pixel_shuffle",
    "pixel_unshuffle",
    "pixel_shuffle_nhwc",
    "avg_pool2d_forward",
    "avg_pool2d_backward",
    "nearest_upsample",
    "nearest_downsample_grad",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial size of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output size is non-positive: size={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def pad2d(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two trailing (spatial) axes symmetrically."""
    if padding == 0:
        return x
    pad_spec = [(0, 0)] * (x.ndim - 2) + [(padding, padding), (padding, padding)]
    return np.pad(x, pad_spec)


def unpad2d(x: np.ndarray, padding: int) -> np.ndarray:
    """Inverse of :func:`pad2d`: crop the two trailing axes."""
    if padding == 0:
        return x
    return x[..., padding:-padding, padding:-padding]


def _windows(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Strided sliding windows of ``x`` (N, C, H, W) -> (N, C, OH, OW, kh, kw)."""
    win = sliding_window_view(x, (kh, kw), axis=(2, 3))
    return win[:, :, ::stride, ::stride]


def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None,
    stride: int = 1, padding: int = 0,
) -> np.ndarray:
    """2-D cross-correlation.

    Parameters
    ----------
    x:
        Input of shape ``(N, Cin, H, W)``.
    weight:
        Kernel of shape ``(Cout, Cin, KH, KW)``.
    bias:
        Optional per-output-channel bias of shape ``(Cout,)``.
    """
    cout, cin, kh, kw = weight.shape
    if x.shape[1] != cin:
        raise ValueError(f"input has {x.shape[1]} channels, kernel expects {cin}")
    xp = pad2d(x, padding)
    win = _windows(xp, kh, kw, stride)  # (N, Cin, OH, OW, KH, KW)
    # Contract over (Cin, KH, KW).
    out = np.tensordot(win, weight, axes=([1, 4, 5], [1, 2, 3]))
    # tensordot leaves (N, OH, OW, Cout): move channels forward.
    out = np.ascontiguousarray(out.transpose(0, 3, 1, 2))
    if bias is not None:
        out += bias[None, :, None, None]
    return out


def _dilate(grad: np.ndarray, stride: int) -> np.ndarray:
    """Insert ``stride - 1`` zeros between spatial elements of ``grad``."""
    if stride == 1:
        return grad
    n, c, h, w = grad.shape
    out = np.zeros((n, c, (h - 1) * stride + 1, (w - 1) * stride + 1),
                   dtype=grad.dtype)
    out[:, :, ::stride, ::stride] = grad
    return out


def conv2d_backward(
    x: np.ndarray, weight: np.ndarray, grad_out: np.ndarray,
    stride: int = 1, padding: int = 0, need_input_grad: bool = True,
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray]:
    """Gradients of :func:`conv2d_forward`.

    Returns ``(grad_x, grad_weight, grad_bias)``; ``grad_x`` is ``None`` when
    ``need_input_grad`` is false (first layer of a network).
    """
    cout, cin, kh, kw = weight.shape
    xp = pad2d(x, padding)
    win = _windows(xp, kh, kw, stride)  # (N, Cin, OH, OW, KH, KW)

    # d L / d W: correlate input windows with the output gradient.
    grad_w = np.tensordot(grad_out, win, axes=([0, 2, 3], [0, 2, 3]))
    # -> (Cout, Cin, KH, KW) already in kernel layout.
    grad_b = grad_out.sum(axis=(0, 2, 3))

    grad_x = None
    if need_input_grad:
        # Full convolution of the stride-dilated output gradient with the
        # spatially flipped kernel, channels transposed.
        gd = _dilate(grad_out, stride)
        w_flip = weight[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)  # (Cin, Cout, KH, KW)
        gp = pad2d(gd, 0)
        gp = np.pad(gp, [(0, 0), (0, 0), (kh - 1, kh - 1), (kw - 1, kw - 1)])
        gwin = _windows(gp, kh, kw, 1)  # (N, Cout, H', W', KH, KW)
        gx_full = np.tensordot(gwin, w_flip, axes=([1, 4, 5], [1, 2, 3]))
        gx_full = gx_full.transpose(0, 3, 1, 2)  # (N, Cin, H', W')
        # Trim to the padded-input size (the dilated full conv can fall short
        # of covering the last rows/cols the kernel never reached), then crop
        # the padding.
        ph, pw = xp.shape[2], xp.shape[3]
        gx = np.zeros((x.shape[0], cin, ph, pw), dtype=grad_out.dtype)
        gh = min(ph, gx_full.shape[2])
        gw = min(pw, gx_full.shape[3])
        gx[:, :, :gh, :gw] = gx_full[:, :, :gh, :gw]
        grad_x = unpad2d(gx, padding)
        grad_x = np.ascontiguousarray(grad_x)

    return grad_x, np.ascontiguousarray(grad_w), grad_b


# ---------------------------------------------------------------------------
# GEMM inference fast path.
#
# ``conv2d_forward`` stays the reference and training implementation; the
# functions below are the inference-only path.  Two kernels are provided:
#
# - :func:`conv2d_gemm` — classic im2col + one BLAS matmul over NCHW
#   tensors.  It reproduces ``conv2d_forward`` *bitwise* because the packed
#   operands use exactly the ``(Cin, KH, KW)`` contraction order and operand
#   layouts ``tensordot`` reduces to internally, so the same sgemm runs on
#   the same bits.  General stride/padding; used by ``Conv2d`` inference.
# - :func:`conv2d_shift_nhwc` — the conv decomposed into one small GEMM per
#   kernel tap on shifted NHWC views of the padded input.  It never
#   materializes the KH*KW-times-larger im2col matrix, which on
#   memory-bound CPUs makes it several times faster than the im2col path;
#   the price is a different summation order, i.e. float32 reassociation
#   differences of a few ULP per layer.  Stride 1 / 'same' only — the SR
#   engine's kernel.
#
# Both fuse the bias / ReLU / residual + res_scale epilogues so the
# activation is touched once while hot in cache.


@dataclass(frozen=True)
class PackedConvWeight:
    """A conv kernel pre-packed for the GEMM fast path.

    Built once per weight version (:attr:`~repro.nn.tensor.Parameter.version`)
    and reused across frames; see ``Conv2d.packed``.
    """

    #: ``(Cout, Cin*KH*KW)`` — the kernel flattened in im2col K-order.
    mat: np.ndarray
    #: ``(Cin*KH*KW, Cout)`` C-contiguous — the right-hand GEMM operand
    #: (same bits ``tensordot`` feeds to sgemm in ``conv2d_forward``).
    mat_t: np.ndarray
    #: ``(KH, KW, Cin, Cout)`` — per-tap matrices for the NHWC shift kernel.
    taps: np.ndarray
    bias: np.ndarray | None
    kernel: tuple[int, int]

    @property
    def out_channels(self) -> int:
        return self.mat.shape[0]

    @property
    def in_channels(self) -> int:
        return self.taps.shape[2]


def pack_conv_weight(weight: np.ndarray,
                     bias: np.ndarray | None) -> PackedConvWeight:
    """Pack a ``(Cout, Cin, KH, KW)`` kernel for :func:`conv2d_gemm` /
    :func:`conv2d_shift_nhwc`."""
    cout, cin, kh, kw = weight.shape
    # Explicit copy: a view of the live weight would silently track later
    # in-place updates, defeating version-keyed cache invalidation.
    mat = weight.reshape(cout, cin * kh * kw).astype(np.float32, copy=True)
    return PackedConvWeight(
        mat=mat,
        mat_t=np.ascontiguousarray(mat.T),
        taps=np.ascontiguousarray(weight.transpose(2, 3, 1, 0)),
        bias=None if bias is None else np.ascontiguousarray(bias),
        kernel=(kh, kw),
    )


def im2col(x: np.ndarray, kh: int, kw: int, stride: int = 1,
           padding: int = 0) -> tuple[np.ndarray, int, int]:
    """Unfold NCHW ``x`` into a ``(N*OH*OW, Cin*KH*KW)`` patch matrix.

    Column order is ``(Cin, KH, KW)`` — the contraction order of
    ``conv2d_forward`` — so ``col @ packed.mat_t`` matches the reference
    bitwise.  Returns ``(col, OH, OW)``.
    """
    xp = pad2d(x, padding)
    win = _windows(xp, kh, kw, stride)            # (N, Cin, OH, OW, KH, KW)
    n, cin, oh, ow = win.shape[:4]
    col = win.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, cin * kh * kw)
    return col, oh, ow


def _apply_epilogue(out: np.ndarray, bias: np.ndarray | None, relu: bool,
                    residual: np.ndarray | None, res_scale: float,
                    channel_axis: int) -> np.ndarray:
    """Fused conv epilogue: bias add, then ReLU, then ``res_scale`` and the
    residual skip add — all in place on ``out``."""
    if bias is not None:
        shape = [1] * out.ndim
        shape[channel_axis] = bias.size
        out += bias.reshape(shape)
    if relu:
        np.maximum(out, 0.0, out=out)
    if res_scale != 1.0:
        out *= res_scale
    if residual is not None:
        out += residual
    return out


def conv2d_gemm(
    x: np.ndarray, packed: PackedConvWeight, stride: int = 1,
    padding: int = 0, relu: bool = False,
    residual: np.ndarray | None = None, res_scale: float = 1.0,
) -> np.ndarray:
    """im2col + single-GEMM convolution over NCHW tensors.

    Bitwise-equal to ``conv2d_forward`` followed by the (optional) ReLU /
    ``residual + res_scale * out`` epilogue, without retaining anything for
    a backward pass.
    """
    kh, kw = packed.kernel
    cin = packed.in_channels
    if x.shape[1] != cin:
        raise ValueError(f"input has {x.shape[1]} channels, kernel expects {cin}")
    col, oh, ow = im2col(x, kh, kw, stride, padding)
    out = col @ packed.mat_t                       # (N*OH*OW, Cout)
    out = out.reshape(x.shape[0], oh, ow, packed.out_channels)
    out = np.ascontiguousarray(out.transpose(0, 3, 1, 2))
    return _apply_epilogue(out, packed.bias, relu, residual, res_scale,
                           channel_axis=1)


def conv2d_shift_nhwc(
    x: np.ndarray, packed: PackedConvWeight, relu: bool = False,
    residual: np.ndarray | None = None, res_scale: float = 1.0,
) -> np.ndarray:
    """Tap-decomposed convolution over NHWC tensors (stride 1, 'same').

    One ``(W, Cin) @ (Cin, Cout)`` GEMM per kernel tap, accumulated over
    shifted views of the zero-padded input.  Epilogues are fused as in
    :func:`conv2d_gemm`; output differs from the reference only by float32
    reassociation (a few ULP per layer).
    """
    kh, kw = packed.kernel
    n, h, w, cin = x.shape
    if cin != packed.in_channels:
        raise ValueError(f"input has {cin} channels, kernel expects "
                         f"{packed.in_channels}")
    xp = np.pad(x, [(0, 0), (kh // 2, kh // 2), (kw // 2, kw // 2), (0, 0)])
    taps = packed.taps
    acc = np.empty((n, h, w, packed.out_channels), dtype=np.float32)
    tmp = np.empty_like(acc)
    first = True
    for i in range(kh):
        for j in range(kw):
            np.matmul(xp[:, i:i + h, j:j + w, :], taps[i, j],
                      out=acc if first else tmp)
            if not first:
                acc += tmp
            first = False
    return _apply_epilogue(acc, packed.bias, relu, residual, res_scale,
                           channel_axis=3)


# ---------------------------------------------------------------------------
# Cache-blocked im2col kernel.
#
# The classic im2col trade-off is memory: the patch matrix is KH*KW times
# the activation, and at frame scale it falls out of L2 long before the
# GEMM reads it back.  :func:`conv2d_im2col_nhwc` keeps the im2col GEMM
# shape (one big (M, Cin*KH*KW) @ (Cin*KH*KW, Cout) product, which BLAS
# likes far better than the shift kernel's KH*KW skinny GEMMs) but
# materializes the patch matrix one *row block* at a time, sized so the
# scratch stays inside a fixed budget (:data:`IM2COL_SCRATCH_BYTES`,
# default 256 KiB — comfortably L2-resident).  Each block is an
# independent slice of the same GEMM: the sliding windows of an NHWC
# image flatten in the same ``(Cin, KH, KW)`` K-order ``im2col`` uses,
# against the same ``packed.mat_t`` operand.
#
# Exactness caveat, learned the hard way: BLAS sgemm output *depends on
# M*.  OpenBLAS switches micro-kernel / threading partition below a
# shape threshold (measured: M >= ~2560 for K=72, N=8 lands in one
# regime, smaller M in another), so two fp32 GEMMs over the same operand
# rows can differ in the last ulp when their M differs.  Consequences:
#   - fp32/fp16 blocked output matches unblocked within reassociation
#     tolerance (<= ~5e-6 at unit-scale operands), NOT bitwise in
#     general — asserted at 1e-5 in tests/nn/test_blocked_gemm.py.
#   - int8 blocked output IS bitwise-equal to unblocked (and to the
#     shift kernel) at every block size: integer-valued operands
#     accumulate exactly under 2^24, so summation order cannot matter.

#: Scratch budget (bytes) for the blocked im2col patch matrix; sized to
#: stay L2-resident on commodity cores.
IM2COL_SCRATCH_BYTES = 256 * 1024


def im2col_block_rows(w: int, cin: int, kh: int, kw: int,
                      scratch_bytes: int = IM2COL_SCRATCH_BYTES) -> int:
    """Output rows per im2col block such that the ``(rows*W, Cin*KH*KW)``
    float32 scratch fits in ``scratch_bytes`` (always at least one row)."""
    bytes_per_row = max(1, w * cin * kh * kw * 4)
    return max(1, scratch_bytes // bytes_per_row)


def _im2col_nhwc_blocked(xp: np.ndarray, mat_t: np.ndarray, out: np.ndarray,
                         kh: int, kw: int, block_rows: int) -> None:
    """Blocked ``im2col @ mat_t`` over a padded NHWC batch, into ``out``."""
    n, h, w, cout = out.shape
    cin = xp.shape[3]
    for img in range(n):
        # (H, W, Cin, KH, KW): K-order (Cin, KH, KW) matches ``mat_t``.
        win = sliding_window_view(xp[img], (kh, kw), axis=(0, 1))
        out2d = out[img].reshape(h * w, cout)
        for y0 in range(0, h, block_rows):
            y1 = min(y0 + block_rows, h)
            block = win[y0:y1].reshape((y1 - y0) * w, cin * kh * kw)
            np.matmul(block, mat_t, out=out2d[y0 * w:y1 * w])


def _resolve_block_rows(block_rows: int | None, h: int, w: int, cin: int,
                        kh: int, kw: int) -> int:
    if block_rows is None:
        return im2col_block_rows(w, cin, kh, kw)
    block_rows = int(block_rows)
    if block_rows == 0:
        return h                   # unblocked: whole image in one GEMM
    if block_rows < 0:
        raise ValueError("block_rows must be >= 0 (0 = unblocked) or None")
    return block_rows


def conv2d_im2col_nhwc(
    x: np.ndarray, packed: PackedConvWeight, relu: bool = False,
    residual: np.ndarray | None = None, res_scale: float = 1.0,
    block_rows: int | None = None,
) -> np.ndarray:
    """Cache-blocked im2col convolution over NHWC tensors (stride 1, 'same').

    ``block_rows`` output rows are expanded at a time so the patch matrix
    scratch stays within :data:`IM2COL_SCRATCH_BYTES` (``None`` derives the
    block from the budget; ``0`` disables blocking).  Blocks are disjoint
    row ranges of one GEMM, but BLAS selects M-dependent fp32 kernels, so
    the blocked result matches the unblocked one (and ``conv2d_forward``)
    within reassociation tolerance — not bitwise; see the module comment
    above.  Under int8 quantization the accumulation is exact and every
    block size is bitwise-identical.  Epilogues are fused as in
    :func:`conv2d_shift_nhwc`.
    """
    kh, kw = packed.kernel
    n, h, w, cin = x.shape
    if cin != packed.in_channels:
        raise ValueError(f"input has {cin} channels, kernel expects "
                         f"{packed.in_channels}")
    rows = _resolve_block_rows(block_rows, h, w, cin, kh, kw)
    xp = np.pad(x, [(0, 0), (kh // 2, kh // 2), (kw // 2, kw // 2), (0, 0)])
    out = np.empty((n, h, w, packed.out_channels), dtype=np.float32)
    _im2col_nhwc_blocked(xp, packed.mat_t, out, kh, kw, rows)
    return _apply_epilogue(out, packed.bias, relu, residual, res_scale,
                           channel_axis=3)


# ---------------------------------------------------------------------------
# Quantized inference kernels.
#
# numpy has no int8 GEMM, so both reduced-precision paths run the actual
# accumulation through the same float32 sgemm as the fp32 kernels — but on
# operands constrained to the reduced-precision grid, which makes the
# arithmetic *bit-exact* to what dedicated hardware kernels would produce:
#
# - ``fp16``: weights and activations are rounded to the nearest float16
#   (round-to-nearest-even) and the products accumulate in float32.  Every
#   float16 value is exactly representable in float32, so fp32 sgemm over
#   fp16-rounded operands computes exactly the fp16-multiplicand /
#   fp32-accumulator GEMM of tensor-core style mixed precision.
# - ``int8``: weights use symmetric per-output-channel scales
#   ``s[o] = max|w[o]| / 127`` and activations a dynamic per-tensor scale
#   ``s_x = max|x| / 127``; both are rounded to integer codes in
#   [-127, 127] stored as float32.  Products and partial sums are then
#   integers, and float32 adds integers exactly while the running sum
#   stays below 2^24 — guaranteed by requiring
#   ``Cin*KH*KW * 127^2 < 2^24`` at quantization time (Cin*KH*KW <= 1040,
#   ample for micro-EDSR's 3x3/16-filter convs).  The dequantized output
#   ``acc * (s_x * s[o])`` is therefore bitwise what an int8xint8->int32
#   kernel with per-channel dequant would return.
#
# Epilogues (bias, ReLU, res_scale, residual) run in float32 after the
# dequant, in exactly the order of :func:`_apply_epilogue`, so residual
# skip paths never lose precision.

#: Precisions understood by ``Conv2d.packed`` / the inference engine.
PRECISIONS = ("fp32", "fp16", "int8")

#: Largest integer magnitude float32 carries exactly; the int8 reduction
#: ``Cin*KH*KW * 127^2`` must stay strictly below it.
INT8_EXACT_ACC_BOUND = 2 ** 24


@dataclass(frozen=True)
class QuantizedConvWeight:
    """A conv kernel quantized for the reduced-precision GEMM path.

    Operands are stored as float32 arrays constrained to the target
    precision's grid (see the module comment above); ``scales`` carries the
    per-output-channel dequantization factors for int8 (``None`` for fp16).
    """

    precision: str
    #: ``(KH, KW, Cin, Cout)`` — per-tap matrices on the quantized grid.
    taps: np.ndarray
    #: ``(Cin*KH*KW, Cout)`` — right-hand operand for the im2col path.
    mat_t: np.ndarray
    #: ``(Cout,)`` per-output-channel weight scales (int8) or ``None`` (fp16).
    scales: np.ndarray | None
    #: Bias stays float32 — it is added after dequantization.
    bias: np.ndarray | None
    kernel: tuple[int, int]

    @property
    def out_channels(self) -> int:
        return self.taps.shape[3]

    @property
    def in_channels(self) -> int:
        return self.taps.shape[2]


def quantize_conv_weight(weight: np.ndarray, bias: np.ndarray | None,
                         precision: str) -> QuantizedConvWeight:
    """Quantize a ``(Cout, Cin, KH, KW)`` kernel for ``precision``.

    fp16 rounds the weights to the float16 grid; int8 derives symmetric
    per-output-channel scales ``max|w[o]| / 127`` and stores integer codes.
    Raises ``ValueError`` for unknown precisions and when the int8
    reduction depth would overflow exact float32 integer accumulation.
    """
    cout, cin, kh, kw = weight.shape
    w = np.asarray(weight, dtype=np.float32)
    bias = None if bias is None else np.ascontiguousarray(
        np.asarray(bias, dtype=np.float32))
    if precision == "fp16":
        q = w.astype(np.float16).astype(np.float32)
        scales = None
    elif precision == "int8":
        depth = cin * kh * kw
        if depth * 127 * 127 >= INT8_EXACT_ACC_BOUND:
            raise ValueError(
                f"int8 reduction depth Cin*KH*KW = {depth} overflows exact "
                f"float32 integer accumulation (needs depth * 127^2 < 2^24, "
                f"i.e. depth <= {INT8_EXACT_ACC_BOUND // (127 * 127)})")
        amax = np.abs(w).reshape(cout, -1).max(axis=1)
        scales = np.where(amax > 0.0, amax / 127.0, 1.0).astype(np.float32)
        q = np.clip(np.rint(w / scales[:, None, None, None]), -127.0, 127.0)
        q = q.astype(np.float32)
    else:
        raise ValueError(f"unknown precision {precision!r}; "
                         f"expected one of {PRECISIONS[1:]}")
    mat = q.reshape(cout, cin * kh * kw)
    return QuantizedConvWeight(
        precision=precision,
        taps=np.ascontiguousarray(q.transpose(2, 3, 1, 0)),
        mat_t=np.ascontiguousarray(mat.T),
        scales=scales,
        bias=bias,
        kernel=(kh, kw),
    )


def _quantize_activations(x: np.ndarray,
                          precision: str) -> tuple[np.ndarray, float]:
    """Constrain activations to the precision's grid.

    Returns ``(xq, scale)``: fp16 rounds in place of a scale (scale 1.0);
    int8 returns integer codes plus the dynamic per-tensor scale.
    """
    if precision == "fp16":
        return x.astype(np.float16).astype(np.float32), 1.0
    amax = float(np.max(np.abs(x))) if x.size else 0.0
    if amax == 0.0:
        return np.zeros_like(x, dtype=np.float32), 1.0
    scale = amax / 127.0
    return np.rint(x * (1.0 / scale)).astype(np.float32, copy=False), scale


def conv2d_gemm_quant(
    x: np.ndarray, qw: QuantizedConvWeight, stride: int = 1,
    padding: int = 0, relu: bool = False,
    residual: np.ndarray | None = None, res_scale: float = 1.0,
) -> np.ndarray:
    """Reduced-precision counterpart of :func:`conv2d_gemm` (NCHW)."""
    kh, kw = qw.kernel
    if x.shape[1] != qw.in_channels:
        raise ValueError(f"input has {x.shape[1]} channels, kernel expects "
                         f"{qw.in_channels}")
    xq, x_scale = _quantize_activations(np.asarray(x, dtype=np.float32),
                                        qw.precision)
    col, oh, ow = im2col(xq, kh, kw, stride, padding)
    out = col @ qw.mat_t                          # exact on the quant grid
    out = out.reshape(x.shape[0], oh, ow, qw.out_channels)
    out = np.ascontiguousarray(out.transpose(0, 3, 1, 2))
    if qw.scales is not None:
        out *= (x_scale * qw.scales)[None, :, None, None]
    return _apply_epilogue(out, qw.bias, relu, residual, res_scale,
                           channel_axis=1)


def conv2d_shift_nhwc_quant(
    x: np.ndarray, qw: QuantizedConvWeight, relu: bool = False,
    residual: np.ndarray | None = None, res_scale: float = 1.0,
) -> np.ndarray:
    """Reduced-precision counterpart of :func:`conv2d_shift_nhwc` (NHWC).

    The padded input is quantized once per conv; every tap GEMM then runs
    on grid-constrained operands, and for int8 the integer accumulator is
    dequantized by ``x_scale * scales[o]`` before the fused epilogue.
    """
    kh, kw = qw.kernel
    n, h, w, cin = x.shape
    if cin != qw.in_channels:
        raise ValueError(f"input has {cin} channels, kernel expects "
                         f"{qw.in_channels}")
    xq, x_scale = _quantize_activations(x, qw.precision)
    xp = np.pad(xq, [(0, 0), (kh // 2, kh // 2), (kw // 2, kw // 2), (0, 0)])
    taps = qw.taps
    acc = np.empty((n, h, w, qw.out_channels), dtype=np.float32)
    tmp = np.empty_like(acc)
    first = True
    for i in range(kh):
        for j in range(kw):
            np.matmul(xp[:, i:i + h, j:j + w, :], taps[i, j],
                      out=acc if first else tmp)
            if not first:
                acc += tmp
            first = False
    if qw.scales is not None:
        acc *= x_scale * qw.scales
    return _apply_epilogue(acc, qw.bias, relu, residual, res_scale,
                           channel_axis=3)


def conv2d_im2col_nhwc_quant(
    x: np.ndarray, qw: QuantizedConvWeight, relu: bool = False,
    residual: np.ndarray | None = None, res_scale: float = 1.0,
    block_rows: int | None = None,
) -> np.ndarray:
    """Reduced-precision counterpart of :func:`conv2d_im2col_nhwc` (NHWC).

    Activations are quantized once per conv (same per-tensor scale as the
    shift kernel), then each row block runs the grid-constrained GEMM; for
    int8 the exact integer accumulator is dequantized before the fused
    epilogue, so int8 blocked output is bitwise-equal to unblocked at any
    block size.  fp16 accumulates in general float32 and matches unblocked
    within reassociation tolerance only (see the module comment above).
    """
    kh, kw = qw.kernel
    n, h, w, cin = x.shape
    if cin != qw.in_channels:
        raise ValueError(f"input has {cin} channels, kernel expects "
                         f"{qw.in_channels}")
    rows = _resolve_block_rows(block_rows, h, w, cin, kh, kw)
    xq, x_scale = _quantize_activations(x, qw.precision)
    xp = np.pad(xq, [(0, 0), (kh // 2, kh // 2), (kw // 2, kw // 2), (0, 0)])
    out = np.empty((n, h, w, qw.out_channels), dtype=np.float32)
    _im2col_nhwc_blocked(xp, qw.mat_t, out, kh, kw, rows)
    if qw.scales is not None:
        out *= x_scale * qw.scales
    return _apply_epilogue(out, qw.bias, relu, residual, res_scale,
                           channel_axis=3)


def pixel_shuffle(x: np.ndarray, scale: int) -> np.ndarray:
    """Rearrange ``(N, C*r^2, H, W)`` to ``(N, C, H*r, W*r)`` (sub-pixel conv)."""
    n, c, h, w = x.shape
    r = scale
    if c % (r * r) != 0:
        raise ValueError(f"channels {c} not divisible by scale^2 = {r * r}")
    cout = c // (r * r)
    x = x.reshape(n, cout, r, r, h, w)
    x = x.transpose(0, 1, 4, 2, 5, 3)  # (N, Cout, H, r, W, r)
    return np.ascontiguousarray(x.reshape(n, cout, h * r, w * r))


def pixel_unshuffle(x: np.ndarray, scale: int) -> np.ndarray:
    """Inverse of :func:`pixel_shuffle`."""
    n, c, hr, wr = x.shape
    r = scale
    if hr % r != 0 or wr % r != 0:
        raise ValueError(f"spatial dims ({hr}, {wr}) not divisible by scale {r}")
    h, w = hr // r, wr // r
    x = x.reshape(n, c, h, r, w, r)
    x = x.transpose(0, 1, 3, 5, 2, 4)  # (N, C, r, r, H, W)
    return np.ascontiguousarray(x.reshape(n, c * r * r, h, w))


def pixel_shuffle_nhwc(x: np.ndarray, scale: int) -> np.ndarray:
    """:func:`pixel_shuffle` for NHWC tensors: ``(N, H, W, C*r^2)`` to
    ``(N, H*r, W*r, C)``, channel-index-compatible with the NCHW version."""
    n, h, w, c = x.shape
    r = scale
    if c % (r * r) != 0:
        raise ValueError(f"channels {c} not divisible by scale^2 = {r * r}")
    cout = c // (r * r)
    x = x.reshape(n, h, w, cout, r, r)
    x = x.transpose(0, 1, 4, 2, 5, 3)  # (N, H, r, W, r, Cout)
    return np.ascontiguousarray(x).reshape(n, h * r, w * r, cout)


def avg_pool2d_forward(x: np.ndarray, kernel: int) -> np.ndarray:
    """Non-overlapping average pooling (stride == kernel)."""
    n, c, h, w = x.shape
    if h % kernel != 0 or w % kernel != 0:
        raise ValueError(f"spatial dims ({h}, {w}) not divisible by pool {kernel}")
    x = x.reshape(n, c, h // kernel, kernel, w // kernel, kernel)
    return x.mean(axis=(3, 5))


def avg_pool2d_backward(grad_out: np.ndarray, kernel: int) -> np.ndarray:
    """Backward of :func:`avg_pool2d_forward`: spread gradient uniformly."""
    scale = 1.0 / (kernel * kernel)
    g = np.repeat(np.repeat(grad_out, kernel, axis=2), kernel, axis=3)
    return g * scale


def nearest_upsample(x: np.ndarray, scale: int) -> np.ndarray:
    """Nearest-neighbour upsampling of the two trailing axes."""
    return np.repeat(np.repeat(x, scale, axis=-2), scale, axis=-1)


def nearest_downsample_grad(grad_out: np.ndarray, scale: int) -> np.ndarray:
    """Backward of :func:`nearest_upsample`: sum each scale x scale block."""
    n, c, hr, wr = grad_out.shape
    h, w = hr // scale, wr // scale
    g = grad_out.reshape(n, c, h, scale, w, scale)
    return g.sum(axis=(3, 5))
