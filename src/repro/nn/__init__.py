"""repro.nn — a from-scratch numpy neural-network framework.

This package is the stand-in for TensorFlow in the dcSR reproduction (see
DESIGN.md): layers with explicit forward/backward passes, EDSR building
blocks, losses, optimizers, and checkpoint serialization.  Every layer's
backward pass is verified against finite differences in the test suite.
"""

from .blocks import GlobalSkip, ResidualBlock, Upsampler
from .layers import (
    AvgPool2d,
    Conv2d,
    Dense,
    Flatten,
    Identity,
    Layer,
    LeakyReLU,
    NearestUpsample,
    PixelShuffle,
    ReLU,
    Reshape,
    Scale,
    Sequential,
    Sigmoid,
    Tanh,
)
from .losses import kl_standard_normal, l1_loss, mse_loss, vae_loss
from .optim import SGD, Adam, CosineLR, Optimizer, StepLR, clip_grad_norm
from .serialize import (
    deserialize_from_bytes,
    load_model,
    load_state_dict,
    model_size_bytes,
    model_size_mb,
    quantized_size_bytes,
    save_model,
    serialize_to_bytes,
    state_dict,
)
from .tensor import Parameter

__all__ = [
    "Parameter",
    "Layer",
    "Identity",
    "Conv2d",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "Reshape",
    "PixelShuffle",
    "NearestUpsample",
    "AvgPool2d",
    "Scale",
    "Sequential",
    "ResidualBlock",
    "Upsampler",
    "GlobalSkip",
    "mse_loss",
    "l1_loss",
    "kl_standard_normal",
    "vae_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "CosineLR",
    "clip_grad_norm",
    "state_dict",
    "load_state_dict",
    "save_model",
    "load_model",
    "model_size_bytes",
    "model_size_mb",
    "quantized_size_bytes",
    "serialize_to_bytes",
    "deserialize_from_bytes",
]
