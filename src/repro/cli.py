"""Command-line interface.

End-to-end workflow from a shell::

    repro-dcsr generate --genre music --seconds 10 --out video.npz
    repro-dcsr prepare video.npz --out pkg/ --crf 51
    repro-dcsr info pkg/
    repro-dcsr play pkg/ --reference video.npz
    repro-dcsr serve pkg/ --sessions 8 --arrival poisson:2 --bandwidth 2e6
    repro-dcsr plan --device jetson --resolution 4k
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dcsr",
        description="dcSR: data-centric super resolution (CoNEXT 2021 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic video")
    gen.add_argument("--genre", default="music",
                     help="news/sports/documentary/music/gaming/animation")
    gen.add_argument("--seconds", type=float, default=10.0)
    gen.add_argument("--fps", type=float, default=10.0)
    gen.add_argument("--height", type=int, default=48)
    gen.add_argument("--width", type=int, default=64)
    gen.add_argument("--scenes", type=int, default=3)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--out", required=True, help="output .npz path")

    prep = sub.add_parser("prepare", help="run the server pipeline")
    prep.add_argument("video", help="video .npz from `generate`")
    prep.add_argument("--out", required=True, help="package directory")
    prep.add_argument("--crf", type=int, default=51)
    prep.add_argument("--epochs", type=int, default=25,
                      help="SR training epochs per micro model")
    prep.add_argument("--max-segment-frames", type=int, default=20)
    prep.add_argument("--k", type=int, default=None,
                      help="override the silhouette-selected K")
    prep.add_argument("--workers", type=int, default=1,
                      help="parallel build workers (1 = serial, 0 = all cores)")
    prep.add_argument("--backend", choices=("process", "thread", "serial"),
                      default=None,
                      help="pool backend (default: process when workers > 1)")
    prep.add_argument("--tiers", default=None, metavar="LIST",
                      help="also train per-cluster model tiers, e.g. "
                           "'dcSR-1,dcSR-2,dcSR-3'; the manifest then "
                           "carries a per-tier size/gain table the joint "
                           "controller chooses from")
    prep.add_argument("--train-cache", default=None, metavar="DIR",
                      help="content-addressed training cache directory; "
                           "rebuilds with unchanged clusters skip training")
    prep.add_argument("--trace-out", default=None, metavar="FILE",
                      help="write the build's span tree as JSON")
    prep.add_argument("--metrics-out", default=None, metavar="FILE",
                      help="write the build's metrics in Prometheus "
                           "text format")

    info = sub.add_parser("info", help="inspect a stored package")
    info.add_argument("package", help="package directory")

    play = sub.add_parser("play", help="stream a stored package")
    play.add_argument("package", nargs="?", default=None,
                      help="package directory (omit with --url)")
    play.add_argument("--url", default=None, metavar="URL",
                      help="stream from a real dcSR origin (see "
                           "`serve-origin`) instead of a local package: "
                           "the package is mirrored over HTTP and every "
                           "download crosses an actual socket")
    play.add_argument("--mirror", default=None, metavar="DIR",
                      help="directory the --url package is mirrored into "
                           "(default: a fresh temporary directory)")
    play.add_argument("--timeout", type=float, default=5.0, metavar="S",
                      help="per-read stall budget for --url downloads "
                           "(default 5s)")
    play.add_argument("--reference", default=None,
                      help="original video .npz for quality scoring")
    play.add_argument("--fail-rate", type=float, default=0.0,
                      help="injected per-download failure probability "
                           "(simulated network; 0 disables)")
    play.add_argument("--latency", type=float, default=0.0,
                      help="simulated per-request latency in seconds")
    play.add_argument("--bandwidth", type=float, default=None,
                      help="simulated link bandwidth in bit/s "
                           "(default: instantaneous)")
    play.add_argument("--retries", type=int, default=3,
                      help="retry budget per download (with backoff)")
    play.add_argument("--fallback", action="store_true",
                      help="play segments whose model fetch fails through "
                           "a passthrough enhancer instead of raising")
    play.add_argument("--net-seed", type=int, default=0,
                      help="failure-injection RNG seed")
    play.add_argument("--tile", type=int, default=None, metavar="PX",
                      help="SR tile edge in pixels (fast path; bounds peak "
                           "memory, default whole-frame)")
    play.add_argument("--sr-threads", type=int, default=None, metavar="N",
                      help="worker threads for tiled SR (fast path; "
                           "default 1)")
    play.add_argument("--prefetch", type=int, default=None, metavar="N",
                      help="segments to download+decode ahead of SR "
                           "(fast path; default 0 = serial)")
    play.add_argument("--precision", choices=("fp32", "fp16", "int8"),
                      default=None,
                      help="SR kernel precision (fast path; quantized "
                           "kernels also shrink model downloads when the "
                           "manifest carries calibration records)")
    play.add_argument("--skip-gate", type=float, default=None,
                      metavar="VAR",
                      help="route SR tiles whose luma variance is below "
                           "VAR to bicubic upscaling (fast path; default "
                           "off = bitwise-identical output)")
    play.add_argument("--sr-batch", type=int, default=None, metavar="N",
                      help="decode N segments concurrently and merge "
                           "their I-frames into one batched GEMM (fast "
                           "path; needs --prefetch >= 1; default 1)")
    play.add_argument("--reuse", action="store_true",
                      help="temporal tile reuse: emit the previous "
                           "frame's SR output for tiles whose decoded "
                           "content did not change (fast path; exact "
                           "mode, bitwise-identical output)")
    play.add_argument("--reuse-tol", type=float, default=None,
                      metavar="DIFF",
                      help="near-static reuse: also reuse tiles whose "
                           "max abs diff vs the previous frame is <= "
                           "DIFF in [0,1] units (implies --reuse; "
                           "carries a measurable PSNR cost)")
    play.add_argument("--sr-kernel", choices=("shift", "blocked"),
                      default=None,
                      help="conv kernel for the fast path: shift "
                           "(tap-decomposed, default) or blocked "
                           "(cache-blocked im2col GEMM)")
    play.add_argument("--controller", choices=("greedy", "fixed", "off"),
                      default="off",
                      help="joint (SR tier + precision) controller at "
                           "every segment boundary; needs --device "
                           "(default off = pre-controller path, "
                           "bitwise-identical)")
    play.add_argument("--device", default=None,
                      help="client device class for the power model: "
                           "jetson / laptop / desktop")
    play.add_argument("--power-budget", type=float, default=None,
                      metavar="WATTS",
                      help="session-average power budget the controller "
                           "must respect (default: unconstrained)")
    play.add_argument("--controller-tier", default=None, metavar="TIER",
                      help="pinned tier for --controller fixed "
                           "(e.g. dcSR-2; default: SR off)")
    play.add_argument("--trace-out", default=None, metavar="FILE",
                      help="write the session's span tree as JSON")
    play.add_argument("--metrics-out", default=None, metavar="FILE",
                      help="write the session's metrics in Prometheus "
                           "text format")

    serve = sub.add_parser(
        "serve", help="simulate a fleet of concurrent streaming sessions")
    serve.add_argument("package", help="package directory")
    serve.add_argument("--sessions", type=int, default=4,
                       help="number of viewer sessions to simulate")
    serve.add_argument("--mode", choices=("playback", "trace"),
                       default="playback",
                       help="playback = full media sessions; trace = "
                            "byte-trace replicas (thousand-session scale)")
    serve.add_argument("--arrival", default="all", metavar="SPEC",
                       help="arrival schedule: all | poisson:<rate> | "
                            "uniform:<gap-seconds>")
    serve.add_argument("--bandwidth", type=float, default=None,
                       help="shared uplink bandwidth in bit/s, split "
                            "fairly among active transfers "
                            "(default: instantaneous)")
    serve.add_argument("--latency", type=float, default=0.0,
                       help="simulated per-request latency in seconds")
    serve.add_argument("--fail-rate", type=float, default=0.0,
                       help="injected per-download failure probability")
    serve.add_argument("--retries", type=int, default=3,
                       help="retry budget per download (with backoff)")
    serve.add_argument("--rate-limit", type=float, default=None,
                       metavar="BPS",
                       help="per-session token-bucket rate cap in bit/s "
                            "(default: uncapped)")
    serve.add_argument("--edges", type=int, default=1,
                       help="edge caches in the CDN hierarchy; sessions "
                            "shard across them by id")
    serve.add_argument("--cache-admission",
                       choices=("always", "second-hit", "size-aware"),
                       default="always",
                       help="edge cache admission policy for missed models")
    serve.add_argument("--cache-capacity", type=int, default=None,
                       metavar="N",
                       help="per-edge model cache bound (default unbounded)")
    serve.add_argument("--max-sessions", type=int, default=None, metavar="N",
                       help="admission-control concurrency limit "
                            "(default: admit everyone)")
    serve.add_argument("--admission", choices=("queue", "reject"),
                       default="queue",
                       help="what to do with arrivals over --max-sessions")
    serve.add_argument("--batching", action="store_true",
                       help="batch SR frames across sessions into one "
                            "GEMM call (bit-identical output)")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="largest cross-session SR batch")
    serve.add_argument("--fallback", action="store_true",
                       help="sessions play segments whose model fetch "
                            "fails unenhanced instead of raising")
    serve.add_argument("--seed", type=int, default=0,
                       help="fleet seed (arrivals + per-session failures)")
    serve.add_argument("--reuse", action="store_true",
                       help="playback mode: enable exact temporal tile "
                            "reuse in every session's SR engine")
    serve.add_argument("--reuse-tol", type=float, default=None,
                       metavar="DIFF",
                       help="playback mode: tolerance-mode reuse (implies "
                            "--reuse; see `play --reuse-tol`)")
    serve.add_argument("--sr-demand-factor", type=float, default=1.0,
                       metavar="F",
                       help="trace mode: scale each session's modeled SR "
                            "FLOP demand by F in [0, 1] (the measured "
                            "fast-path savings from skip gate + reuse)")
    serve.add_argument("--device", default=None, metavar="LIST",
                       help="per-session device classes, cycled by "
                            "session id: e.g. 'jetson,laptop,desktop'; "
                            "enables fleet energy accounting")
    serve.add_argument("--controller", choices=("greedy", "fixed", "off"),
                       default="off",
                       help="per-session joint SR controller (needs "
                            "--device; default off)")
    serve.add_argument("--power-budget", type=float, default=None,
                       metavar="WATTS",
                       help="session-average power budget per controller")
    serve.add_argument("--controller-tier", default=None, metavar="TIER",
                       help="pinned tier for --controller fixed")
    serve.add_argument("--reference", default=None,
                       help="original video .npz for quality scoring")
    serve.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write the fleet's span tree as JSON")
    serve.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the fleet's metrics in Prometheus "
                            "text format")
    serve.add_argument("--origin", default=None, metavar="URL",
                       help="playback mode: every session downloads over "
                            "real sockets from a running `serve-origin` "
                            "at URL instead of the simulated pool")

    origin = sub.add_parser(
        "serve-origin",
        help="serve a stored package over real HTTP (asyncio origin)")
    origin.add_argument("package", help="package directory to serve")
    origin.add_argument("--host", default="127.0.0.1",
                        help="listen address (default 127.0.0.1)")
    origin.add_argument("--port", type=int, default=0,
                        help="listen port (default 0 = ephemeral, printed "
                             "on startup)")

    plan = sub.add_parser("plan", help="device feasibility table")
    plan.add_argument("--device", default="jetson",
                      help="jetson / laptop / desktop")
    plan.add_argument("--resolution", default="1080p",
                      help="720p / 1080p / 4k")
    plan.add_argument("--segment-frames", type=int, default=30)
    return parser


def _cmd_generate(args) -> int:
    from .video import make_video

    clip = make_video(Path(args.out).stem, genre=args.genre, seed=args.seed,
                      size=(args.height, args.width),
                      duration_seconds=args.seconds, fps=args.fps,
                      n_distinct_scenes=args.scenes)
    np.savez_compressed(args.out, frames=clip.frames, fps=clip.fps,
                        scene_ids=clip.scene_ids, genre=clip.genre,
                        name=clip.name)
    print(f"wrote {clip.n_frames} frames "
          f"({clip.width}x{clip.height} @ {clip.fps:g} fps) to {args.out}")
    return 0


def _load_clip(path: str):
    from .video.synthetic import VideoClip

    with np.load(path, allow_pickle=False) as data:
        return VideoClip(name=str(data["name"]), genre=str(data["genre"]),
                         frames=data["frames"], fps=float(data["fps"]),
                         scene_ids=data["scene_ids"])


def _write_obs(args, obs) -> None:
    """Honor ``--trace-out`` / ``--metrics-out`` for one command's session."""
    from .obs import write_metrics, write_trace

    if args.trace_out:
        print(f"trace -> {write_trace(args.trace_out, obs)}")
    if args.metrics_out:
        print(f"metrics -> {write_metrics(args.metrics_out, obs.metrics)}")


def _cmd_prepare(args) -> int:
    from .core import ParallelConfig, ServerConfig, build_package, save_package
    from .obs import Observability
    from .sr import SrTrainConfig
    from .video.codec import CodecConfig

    clip = _load_clip(args.video)
    workers = None if args.workers == 0 else args.workers
    backend = args.backend
    if backend is None:
        backend = "serial" if workers == 1 else "process"
    tiers = tuple(t.strip() for t in args.tiers.split(",") if t.strip()) \
        if args.tiers else ()
    config = ServerConfig(
        codec=CodecConfig(crf=args.crf),
        max_segment_len=args.max_segment_frames,
        sr_train=SrTrainConfig(epochs=args.epochs, steps_per_epoch=12,
                               batch_size=8, patch_size=16,
                               learning_rate=5e-3,
                               lr_decay_epochs=max(5, args.epochs // 3)),
        k_override=args.k,
        parallel=ParallelConfig(workers=workers, backend=backend),
        train_cache_dir=args.train_cache,
        model_tiers=tiers,
    )
    obs = Observability(root_name="prepare")
    t0 = obs.clock.now()
    package = build_package(clip, config, obs=obs)
    save_package(package, args.out)
    print(f"prepared {package.manifest.n_segments} segments, "
          f"K = {package.selection.k} micro models in "
          f"{obs.clock.now() - t0:.1f}s"
          f" -> {args.out}")
    for line in package.telemetry.summary_lines():
        print(line)
    _write_obs(args, obs)
    return 0


def _cmd_info(args) -> int:
    from .core import load_package, simulate_caching

    package = load_package(args.package)
    manifest = package.manifest
    print(f"video:    {manifest.video_name} "
          f"({manifest.width}x{manifest.height} @ {manifest.fps:g} fps, "
          f"CRF {manifest.crf})")
    print(f"frames:   {manifest.n_frames} in {manifest.n_segments} segments")
    print(f"models:   {manifest.n_models} "
          f"({manifest.total_model_bytes / 1024:.0f} KiB total)")
    print(f"video:    {package.encoded.total_bytes / 1024:.0f} KiB encoded")
    labels = manifest.label_sequence()
    _, stats = simulate_caching(labels)
    print(f"labels:   {labels}")
    print(f"caching:  {stats.downloads} downloads, {stats.hits} hits "
          f"({stats.hit_rate:.0%} hit rate)")
    if manifest.quantization:
        print("quantized checkpoints (calibrated at build time):")
        for label in sorted(manifest.quantization):
            for precision, record in sorted(
                    manifest.quantization[label].items()):
                fp32_bytes = manifest.model_sizes[label]
                print(f"  model {label} {precision}: "
                      f"{record.size_bytes / 1024:.1f} KiB "
                      f"({record.size_bytes / fp32_bytes:.2f}x of fp32), "
                      f"delta {record.delta_db:+.3f} dB")
    if manifest.has_tiers:
        from .bench.runner import format_table

        print("model tiers (per cluster, calibrated at build time):")
        rows = []
        for label in sorted(manifest.tiers):
            for tier in manifest.tier_names():
                if tier not in manifest.tiers[label]:
                    continue
                for precision, record in sorted(
                        manifest.tiers[label][tier].items()):
                    rows.append([
                        str(label), tier, precision,
                        f"{record.n_resblocks}x{record.n_filters}",
                        f"{record.size_bytes / 1024:.1f}",
                        f"{record.gain_db:+.2f}",
                        f"{record.net_gain_db:+.2f}",
                    ])
        print(format_table(
            "", ["model", "tier", "precision", "blocks x filters",
                 "KiB", "gain dB", "net dB"], rows))
    return 0


def _cmd_play(args) -> int:
    from .core import (
        DcsrClient,
        FastPathConfig,
        NetworkConfig,
        RetryPolicy,
        SimulatedNetwork,
        load_package,
    )

    from .obs import Observability

    if (args.package is None) == (args.url is None):
        print("play needs exactly one source: a package directory "
              "or --url", file=sys.stderr)
        return 2
    obs = Observability(root_name="play")
    reference = _load_clip(args.reference).frames if args.reference else None
    network = None
    if args.url is not None:
        if args.fail_rate > 0 or args.latency > 0 \
                or args.bandwidth is not None:
            print("--fail-rate/--latency/--bandwidth shape the simulated "
                  "network; with --url, faults and timing come from the "
                  "wire (put a chaos proxy in front to inject them)",
                  file=sys.stderr)
            return 2
        import tempfile

        from .net import HttpTransport, mirror_package

        network = HttpTransport(args.url, obs=obs, timeout_s=args.timeout)
        mirror_dir = args.mirror or tempfile.mkdtemp(prefix="dcsr-mirror-")
        package = load_package(mirror_package(network, mirror_dir))
        print(f"mirrored {args.url} -> {mirror_dir}")
    else:
        package = load_package(args.package)
        if args.fail_rate > 0 or args.latency > 0 \
                or args.bandwidth is not None:
            network = SimulatedNetwork(NetworkConfig(
                fail_rate=args.fail_rate, latency_s=args.latency,
                bandwidth_bps=args.bandwidth, seed=args.net_seed))
    fast = None
    reuse = args.reuse_tol if args.reuse_tol is not None \
        else (True if args.reuse else None)
    if (args.tile is not None or args.sr_threads is not None
            or args.prefetch is not None or args.precision is not None
            or args.skip_gate is not None or args.sr_batch is not None
            or reuse is not None or args.sr_kernel is not None):
        fast = FastPathConfig(tile=args.tile,
                              sr_threads=args.sr_threads or 1,
                              prefetch=args.prefetch or 0,
                              precision=args.precision or "fp32",
                              skip_gate=args.skip_gate,
                              sr_batch=args.sr_batch or 1,
                              reuse=reuse,
                              kernel=args.sr_kernel or "shift")
    controller = None
    if args.controller != "off":
        if args.device is None:
            print("--controller needs --device (the power model)",
                  file=sys.stderr)
            return 2
        from .control import build_controller
        from .devices import get_device

        controller = build_controller(
            args.controller, get_device(args.device),
            power_budget_w=args.power_budget, tier=args.controller_tier)
    client = DcsrClient(package, network=network,
                        retry=RetryPolicy(retries=args.retries),
                        fallback=args.fallback, fast_path=fast,
                        obs=obs, controller=controller)
    try:
        result = client.play(reference)
    finally:
        if args.url is not None:
            network.close()
    if controller is not None:
        tiers = [d.tier or "off" for d in controller.decisions]
        print(f"controller: {args.controller} on {args.device}, "
              f"mean power {controller.mean_power_w:.2f} W, "
              f"tiers {tiers}")
    print(f"played {len(result.frames)} frames, "
          f"{result.sr_inferences} SR inferences")
    print(f"downloaded: video {result.video_bytes / 1024:.0f} KiB + "
          f"models {result.model_bytes / 1024:.0f} KiB "
          f"(labels {result.model_downloads})")
    if result.skipped_segments:
        print(f"concealed segments: {result.skipped_segments}")
    if result.fallback_segments:
        print(f"fallback segments: {result.fallback_segments}")
    if reference is not None:
        print(f"quality: {result.mean_psnr:.2f} dB PSNR, "
              f"{result.mean_ssim:.3f} SSIM")
    for line in result.telemetry.summary_lines():
        print(line)
    _write_obs(args, client.obs)
    return 0


def _cmd_serve(args) -> int:
    from .core import load_package
    from .obs import Observability
    from .serve import FleetConfig, FleetSimulator

    package = load_package(args.package)
    reference = _load_clip(args.reference).frames if args.reference else None
    reuse = (args.reuse_tol if args.reuse_tol is not None
             else (True if args.reuse else None))
    fast_path = None
    if reuse is not None:
        from .core import FastPathConfig
        fast_path = FastPathConfig(reuse=reuse)
    devices = tuple(d.strip() for d in args.device.split(",") if d.strip()) \
        if args.device else ()
    config = FleetConfig(
        sessions=args.sessions, mode=args.mode, arrival=args.arrival,
        bandwidth_bps=args.bandwidth, latency_s=args.latency,
        fail_rate=args.fail_rate, retries=args.retries,
        rate_limit_bps=args.rate_limit, edges=args.edges,
        cache_admission=args.cache_admission,
        cache_capacity=args.cache_capacity,
        max_sessions=args.max_sessions, admission=args.admission,
        batching=args.batching, max_batch=args.max_batch,
        fallback=args.fallback, seed=args.seed,
        fast_path=fast_path, sr_demand_factor=args.sr_demand_factor,
        devices=devices, controller=args.controller,
        power_budget_w=args.power_budget,
        controller_tier=args.controller_tier,
    )
    obs = Observability(root_name="serve")
    network_factory = None
    if args.origin is not None:
        if args.mode != "playback":
            print("--origin drives real downloads and needs "
                  "--mode playback", file=sys.stderr)
            return 2
        if args.fail_rate > 0 or args.latency > 0 \
                or args.bandwidth is not None or args.rate_limit is not None:
            print("--fail-rate/--latency/--bandwidth/--rate-limit shape "
                  "the simulated pool; with --origin, timing comes from "
                  "the wire", file=sys.stderr)
            return 2
        from .net import HttpTransport

        def network_factory(session_id: int, arrival_s: float):
            return HttpTransport(args.origin, obs=obs,
                                 session=str(session_id))
    simulator = FleetSimulator(package, config, obs=obs,
                               network_factory=network_factory)
    fleet = simulator.run(reference)
    for line in fleet.telemetry.summary_lines():
        print(line)
    if reference is not None:
        completed = fleet.completed()
        if completed:
            psnrs = [s.result.mean_psnr for s in completed]
            print(f"  quality  {float(np.mean(psnrs)):.2f} dB mean PSNR "
                  f"across sessions")
    degraded = [(s.session_id, s.result)
                for s in fleet.completed()
                if s.result.skipped_segments or s.result.fallback_segments]
    for sid, result in degraded:
        print(f"  session {sid}: concealed {result.skipped_segments}, "
              f"fallback {result.fallback_segments}")
    _write_obs(args, obs)
    return 0


def _cmd_serve_origin(args) -> int:
    import asyncio

    from .net import DcsrOrigin, OriginConfig
    from .obs import Observability

    origin = DcsrOrigin(args.package,
                        OriginConfig(host=args.host, port=args.port),
                        obs=Observability(root_name="origin"))

    async def _serve() -> None:
        await origin.start()
        print(f"dcSR origin serving {args.package} at {origin.base_url}",
              flush=True)
        await origin.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_plan(args) -> int:
    from .bench.runner import format_table
    from .devices import OutOfMemory, get_device, inference_seconds, playback_fps
    from .sr import EDSR, RESOLUTIONS, big_model_config, dcsr_config

    device = get_device(args.device)
    res = RESOLUTIONS[args.resolution.lower()]
    print(f"{device.name} @ {res.name} "
          f"(segment = {args.segment_frames} frames)")
    candidates = [("NAS/NEMO", EDSR(big_model_config(res.name)))]
    for level in (1, 2, 3):
        candidates.append((f"dcSR-{level}", EDSR(dcsr_config(level, res.sr_scale))))
    rows = []
    for label, model in candidates:
        try:
            cost = inference_seconds(model, res.name, device)
            fps1 = playback_fps(model, res.name, device, args.segment_frames, 1)
            fps5 = playback_fps(model, res.name, device, args.segment_frames,
                                min(5, args.segment_frames))
            rows.append([label, f"{fps1:.1f}", f"{fps5:.1f}",
                         f"{cost.seconds * 1000:.1f}",
                         f"{cost.memory_bytes / 1e6:.0f}"])
        except OutOfMemory:
            rows.append([label, "OOM", "OOM", "-", "-"])
    print(format_table("", ["model", "FPS@1", "FPS@5", "ms/inf", "mem MB"],
                       rows))
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "prepare": _cmd_prepare,
    "info": _cmd_info,
    "play": _cmd_play,
    "serve": _cmd_serve,
    "serve-origin": _cmd_serve_origin,
    "plan": _cmd_plan,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
