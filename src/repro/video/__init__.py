"""Video substrate: frames, color, synthetic content, metrics, segmentation,
and the block codec."""

from .color import (
    downsample_chroma,
    rgb_float_to_uint8,
    rgb_to_yuv420,
    rgb_uint8_to_float,
    upsample_chroma,
    yuv420_to_rgb,
)
from .frame import FrameType, YuvFrame, validate_rgb
from .quality import ms_ssim, mse, psnr, psnr_yuv, ssim, ssim_luma
from .sampling import downscale, resize, resize_multi, upscale
from .segment import (
    Segment,
    detect_segments,
    fixed_length_segments,
    frame_difference,
    segment_lengths,
)
from .synthetic import GENRES, SceneSpec, VideoClip, make_scene, make_video

__all__ = [
    "YuvFrame",
    "FrameType",
    "validate_rgb",
    "rgb_to_yuv420",
    "yuv420_to_rgb",
    "rgb_float_to_uint8",
    "rgb_uint8_to_float",
    "downsample_chroma",
    "upsample_chroma",
    "psnr",
    "ssim",
    "ms_ssim",
    "psnr_yuv",
    "ssim_luma",
    "mse",
    "resize",
    "resize_multi",
    "downscale",
    "upscale",
    "Segment",
    "detect_segments",
    "fixed_length_segments",
    "frame_difference",
    "segment_lengths",
    "GENRES",
    "SceneSpec",
    "VideoClip",
    "make_scene",
    "make_video",
]
