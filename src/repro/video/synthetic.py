"""Procedural video generator.

The paper evaluates on six ~12-minute YouTube videos from different genres.
Those are not available offline, so this module generates deterministic
synthetic videos with the properties dcSR depends on:

- **shot structure** — a video is a sequence of scenes with visually abrupt
  boundaries (drives the Netflix-style variable-length segmentation);
- **long-term scene recurrence** — scenes repeat later in the video (drives
  the I-frame clustering and model caching: Section 3.1 / Figure 7);
- **intra-scene motion and texture** — gives the codec real residuals and
  motion vectors, and gives SR models real high-frequency detail to restore.

Each genre preset controls motion intensity, object count, texture detail,
and scene length — the axes on which real genres differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.ndimage import gaussian_filter

__all__ = ["SceneSpec", "VideoClip", "GENRES", "make_scene", "make_video",
           "scene_schedule"]


#: Genre presets: (motion, n_objects, texture_amp, texture_scale,
#: mean_scene_seconds).  Motion is in pixels/frame at the reference height.
GENRES = {
    "news": dict(motion=0.2, n_objects=2, texture_amp=0.10, texture_scale=3.0,
                 scene_seconds=9.0),
    "sports": dict(motion=2.5, n_objects=5, texture_amp=0.18, texture_scale=1.5,
                   scene_seconds=4.0),
    "documentary": dict(motion=0.8, n_objects=3, texture_amp=0.22,
                        texture_scale=2.0, scene_seconds=7.0),
    "music": dict(motion=1.8, n_objects=6, texture_amp=0.15, texture_scale=1.0,
                  scene_seconds=3.0),
    "gaming": dict(motion=2.0, n_objects=7, texture_amp=0.20, texture_scale=1.2,
                   scene_seconds=5.0),
    "animation": dict(motion=1.2, n_objects=4, texture_amp=0.08,
                      texture_scale=4.0, scene_seconds=6.0),
}


@dataclass
class _ObjectSpec:
    kind: str               # "circle" | "rect"
    color: np.ndarray       # (3,) float in [0, 1]
    size: float             # fraction of frame height
    center: np.ndarray      # (2,) initial center, fraction of frame
    velocity: np.ndarray    # (2,) fraction of frame per frame
    wobble: float           # sinusoidal amplitude (fraction of frame)
    phase: float


@dataclass
class SceneSpec:
    """Deterministic description of one scene's visual content."""

    scene_id: int
    seed: int
    palette: np.ndarray          # (2, 3) background gradient endpoint colors
    gradient_angle: float
    texture_amp: float
    texture_scale: float
    pan_velocity: tuple[float, float]
    objects: list[_ObjectSpec] = field(default_factory=list)
    _texture_cache: dict = field(default_factory=dict, repr=False)

    def texture(self, height: int, width: int) -> np.ndarray:
        """Per-scene smooth random luminance field, cached per size."""
        key = (height, width)
        if key not in self._texture_cache:
            rng = np.random.default_rng(self.seed ^ 0x5EED)
            # Oversize so panning can scroll without wrapping artifacts
            # becoming visible too quickly.
            noise = rng.normal(size=(height * 2, width * 2))
            smooth = gaussian_filter(noise, self.texture_scale, mode="wrap")
            smooth = smooth / (np.abs(smooth).max() + 1e-9)
            self._texture_cache[key] = smooth.astype(np.float32)
        return self._texture_cache[key]


def make_scene(scene_id: int, seed: int, genre: str) -> SceneSpec:
    """Create a deterministic scene spec for ``scene_id`` of a video."""
    params = GENRES[genre]
    rng = np.random.default_rng((seed * 1_000_003 + scene_id) & 0x7FFFFFFF)
    palette = rng.uniform(0.1, 0.9, size=(2, 3)).astype(np.float32)
    motion = params["motion"]
    objects = []
    for _ in range(params["n_objects"]):
        objects.append(_ObjectSpec(
            kind=rng.choice(["circle", "rect"]),
            color=rng.uniform(0.0, 1.0, size=3).astype(np.float32),
            size=float(rng.uniform(0.08, 0.25)),
            center=rng.uniform(0.15, 0.85, size=2),
            velocity=rng.normal(0.0, motion / 100.0, size=2),
            wobble=float(rng.uniform(0.0, motion / 60.0)),
            phase=float(rng.uniform(0, 2 * np.pi)),
        ))
    pan = rng.normal(0.0, motion / 2.0, size=2)
    return SceneSpec(
        scene_id=scene_id,
        seed=int(rng.integers(0, 2**31)),
        palette=palette,
        gradient_angle=float(rng.uniform(0, np.pi)),
        texture_amp=params["texture_amp"],
        texture_scale=params["texture_scale"],
        pan_velocity=(float(pan[0]), float(pan[1])),
        objects=objects,
    )


def render_frame(spec: SceneSpec, t: int, height: int, width: int) -> np.ndarray:
    """Render frame ``t`` of a scene as an ``(H, W, 3)`` float RGB image."""
    yy, xx = np.mgrid[0:height, 0:width]
    yy = yy / max(height - 1, 1)
    xx = xx / max(width - 1, 1)

    # Background: linear gradient between the two palette colors.
    axis = np.cos(spec.gradient_angle) * xx + np.sin(spec.gradient_angle) * yy
    axis = (axis - axis.min()) / (axis.max() - axis.min() + 1e-9)
    frame = (spec.palette[0][None, None, :] * (1.0 - axis[..., None])
             + spec.palette[1][None, None, :] * axis[..., None])

    # Panning texture field (adds codec-visible high-frequency detail).
    tex = spec.texture(height, width)
    dy = int(round(spec.pan_velocity[0] * t)) % tex.shape[0]
    dx = int(round(spec.pan_velocity[1] * t)) % tex.shape[1]
    window = np.roll(np.roll(tex, -dy, axis=0), -dx, axis=1)[:height, :width]
    frame = frame + spec.texture_amp * window[..., None]

    # Moving foreground objects.
    for obj in spec.objects:
        cy = obj.center[0] + obj.velocity[0] * t + obj.wobble * np.sin(
            0.15 * t + obj.phase)
        cx = obj.center[1] + obj.velocity[1] * t + obj.wobble * np.cos(
            0.12 * t + obj.phase)
        cy = cy % 1.0
        cx = cx % 1.0
        radius = obj.size / 2.0
        if obj.kind == "circle":
            mask = ((yy - cy) ** 2 + (xx - cx) ** 2) <= radius * radius
        else:
            mask = (np.abs(yy - cy) <= radius) & (np.abs(xx - cx) <= radius * 1.4)
        frame[mask] = obj.color

    return np.clip(frame, 0.0, 1.0).astype(np.float32)


@dataclass
class VideoClip:
    """A rendered synthetic video."""

    name: str
    genre: str
    frames: np.ndarray        # (T, H, W, 3) float32 in [0, 1]
    fps: float
    scene_ids: np.ndarray     # (T,) int — ground-truth scene label per frame

    @property
    def n_frames(self) -> int:
        return int(self.frames.shape[0])

    @property
    def height(self) -> int:
        return int(self.frames.shape[1])

    @property
    def width(self) -> int:
        return int(self.frames.shape[2])

    @property
    def duration_seconds(self) -> float:
        return self.n_frames / self.fps

    def scene_changes(self) -> list[int]:
        """Ground-truth shot-boundary frame indices (excluding frame 0)."""
        ids = self.scene_ids
        return [i for i in range(1, len(ids)) if ids[i] != ids[i - 1]]


def scene_schedule(
    n_frames: int, fps: float, genre: str, seed: int,
    n_distinct_scenes: int, recurrence: float = 0.45,
) -> list[tuple[int, int]]:
    """Build a ``[(scene_id, n_frames), ...]`` schedule with recurrence.

    New scenes are introduced until ``n_distinct_scenes`` exist; afterwards
    (and with probability ``recurrence`` before that) an already-seen scene
    is revisited — the long-term temporal redundancy dcSR exploits.
    Consecutive shots never share a scene id, so every boundary is a real
    visual cut.
    """
    if n_distinct_scenes < 1:
        raise ValueError("need at least one distinct scene")
    params = GENRES[genre]
    rng = np.random.default_rng(seed ^ 0xC0FFEE)
    mean_len = max(int(params["scene_seconds"] * fps), 2)

    schedule: list[tuple[int, int]] = []
    introduced = 0
    prev = -1
    used = 0
    while used < n_frames:
        revisit = introduced >= n_distinct_scenes or (
            introduced > 1 and rng.uniform() < recurrence)
        if revisit:
            choices = [s for s in range(introduced) if s != prev]
            scene = int(rng.choice(choices))
        else:
            scene = introduced
            introduced += 1
        length = max(2, int(rng.normal(mean_len, mean_len * 0.3)))
        length = min(length, n_frames - used)
        if length < 2 and schedule:
            # Fold a trailing 1-frame shot into the previous one.
            sid, slen = schedule[-1]
            schedule[-1] = (sid, slen + length)
        else:
            schedule.append((scene, length))
        used += length
        prev = scene
    return schedule


def make_video(
    name: str, genre: str, seed: int,
    size: tuple[int, int] = (64, 96), duration_seconds: float = 20.0,
    fps: float = 30.0, n_distinct_scenes: int = 4, recurrence: float = 0.45,
) -> VideoClip:
    """Generate a deterministic synthetic video.

    Parameters
    ----------
    size:
        ``(height, width)``; both must be multiples of 16 (codec macroblock
        alignment).
    n_distinct_scenes:
        Number of visually distinct scenes; the schedule revisits them.
    """
    if genre not in GENRES:
        raise ValueError(f"unknown genre {genre!r}; choose from {sorted(GENRES)}")
    height, width = size
    if height % 16 or width % 16:
        raise ValueError(f"frame size {size} must be multiples of 16")
    n_frames = int(round(duration_seconds * fps))
    if n_frames < 1:
        raise ValueError("duration too short")

    schedule = scene_schedule(n_frames, fps, genre, seed,
                              n_distinct_scenes, recurrence)
    scenes = {sid: make_scene(sid, seed, genre)
              for sid in {s for s, _ in schedule}}

    frames = np.empty((n_frames, height, width, 3), dtype=np.float32)
    scene_ids = np.empty(n_frames, dtype=np.int64)
    cursor = 0
    for sid, length in schedule:
        spec = scenes[sid]
        for t in range(length):
            frames[cursor] = render_frame(spec, t, height, width)
            scene_ids[cursor] = sid
            cursor += 1
    return VideoClip(name=name, genre=genre, frames=frames, fps=fps,
                     scene_ids=scene_ids)
