"""Separable bicubic / bilinear image resampling.

Implemented as two sparse-ish weight matrices (one per axis) applied with
matrix products, so resizing a frame is two GEMMs per channel — no Python
pixel loops.  Bicubic uses the Catmull-Rom-style kernel with ``a = -0.5``
(the same kernel family FFMPEG and PIL use), and is the substrate for the
bicubic SR baseline and for building low-resolution training inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["resize", "resize_multi", "cubic_kernel", "downscale", "upscale"]


def cubic_kernel(x: np.ndarray, a: float = -0.5) -> np.ndarray:
    """Cubic convolution kernel (Keys 1981) with free parameter ``a``."""
    x = np.abs(x)
    x2 = x * x
    x3 = x2 * x
    out = np.where(
        x <= 1.0,
        (a + 2.0) * x3 - (a + 3.0) * x2 + 1.0,
        np.where(x < 2.0, a * x3 - 5.0 * a * x2 + 8.0 * a * x - 4.0 * a, 0.0),
    )
    return out


def _linear_kernel(x: np.ndarray) -> np.ndarray:
    x = np.abs(x)
    return np.maximum(0.0, 1.0 - x)


def _axis_weights(n_in: int, n_out: int, method: str) -> np.ndarray:
    """Dense (n_out, n_in) resampling matrix for one axis.

    Uses pixel-centre alignment: output pixel ``i`` samples input coordinate
    ``(i + 0.5) * n_in / n_out - 0.5``.  When downscaling, the kernel is
    widened by the scale factor (area-style anti-aliasing).
    """
    if n_in < 1 or n_out < 1:
        raise ValueError("image dimensions must be positive")
    if method == "cubic":
        kernel, support = cubic_kernel, 2.0
    elif method == "linear":
        kernel, support = _linear_kernel, 1.0
    else:
        raise ValueError(f"unknown resampling method {method!r}")

    scale = n_in / n_out
    widen = max(scale, 1.0)
    centers = (np.arange(n_out) + 0.5) * scale - 0.5
    radius = support * widen
    lo = np.floor(centers - radius).astype(int)
    width = int(np.ceil(2 * radius)) + 2
    offsets = np.arange(width)
    idx = lo[:, None] + offsets[None, :]  # (n_out, width)
    dist = (idx - centers[:, None]) / widen
    w = kernel(dist)
    # Clamp out-of-range taps to the edge pixels (replicate border).
    idx = np.clip(idx, 0, n_in - 1)
    norm = w.sum(axis=1, keepdims=True)
    norm[norm == 0] = 1.0
    w = w / norm
    mat = np.zeros((n_out, n_in), dtype=np.float64)
    rows = np.repeat(np.arange(n_out), width)
    np.add.at(mat, (rows, idx.reshape(-1)), w.reshape(-1))
    return mat.astype(np.float32)


def resize(
    img: np.ndarray, size: tuple[int, int], method: str = "cubic",
    clip: tuple[float, float] | None = (0.0, 1.0),
) -> np.ndarray:
    """Resize ``img`` to ``size = (H, W)``.

    ``img`` may be ``(H, W)`` or ``(H, W, C)`` float.  ``clip`` bounds the
    output range (bicubic overshoots near edges); pass ``None`` to disable.
    """
    img = np.asarray(img, dtype=np.float32)
    if img.ndim not in (2, 3):
        raise ValueError(f"expected 2-D or 3-D image, got shape {img.shape}")
    out_h, out_w = size
    wh = _axis_weights(img.shape[0], out_h, method)
    ww = _axis_weights(img.shape[1], out_w, method)
    if img.ndim == 2:
        out = wh @ img @ ww.T
    else:
        out = np.einsum("oi,ijc,pj->opc", wh, img, ww, optimize=True)
    if clip is not None:
        out = np.clip(out, clip[0], clip[1])
    return out.astype(np.float32)


def resize_multi(
    frames: np.ndarray, size: tuple[int, int], method: str = "cubic",
) -> np.ndarray:
    """Resize a stack of frames ``(T, H, W[, C])`` to ``size``."""
    return np.stack([resize(f, size, method=method) for f in frames])


def downscale(img: np.ndarray, factor: int, method: str = "cubic") -> np.ndarray:
    """Downscale by an integer ``factor`` (dimensions must divide evenly)."""
    h, w = img.shape[:2]
    if h % factor or w % factor:
        raise ValueError(f"dimensions {(h, w)} not divisible by factor {factor}")
    return resize(img, (h // factor, w // factor), method=method)


def upscale(img: np.ndarray, factor: int, method: str = "cubic") -> np.ndarray:
    """Upscale by an integer ``factor`` (the bicubic SR baseline)."""
    h, w = img.shape[:2]
    return resize(img, (h * factor, w * factor), method=method)
