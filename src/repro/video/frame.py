"""Frame containers.

Two representations move through the system:

- **RGB float frames** — ``(H, W, 3)`` float32 arrays in ``[0, 1]``.  This is
  what the synthetic generator produces and what the neural networks (SR
  models, VAE) consume.
- **Planar YUV 4:2:0 frames** (:class:`YuvFrame`) — what the codec encodes
  and decodes, matching the decoded-picture-buffer format the paper's
  client-side pipeline manipulates (Figure 6: the I frame sits in the DPB in
  YUV and is converted to RGB for SR and back).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["YuvFrame", "FrameType", "validate_rgb"]


class FrameType:
    """Frame classification used by the codec (Section 2 of the paper)."""

    I = "I"
    P = "P"
    B = "B"

    ALL = (I, P, B)


def validate_rgb(rgb: np.ndarray) -> np.ndarray:
    """Check an RGB float frame and return it as float32.

    Raises ``ValueError`` for wrong rank, channel count, or range.
    """
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) RGB frame, got shape {rgb.shape}")
    rgb = rgb.astype(np.float32, copy=False)
    if float(rgb.min()) < -1e-3 or float(rgb.max()) > 1.0 + 1e-3:
        raise ValueError("RGB frame values must lie in [0, 1]")
    return np.clip(rgb, 0.0, 1.0)


@dataclass
class YuvFrame:
    """A planar YUV 4:2:0 frame with uint8 samples.

    ``y`` has shape ``(H, W)``; ``u`` and ``v`` have shape ``(H/2, W/2)``.
    Both dimensions of the luma plane must be even.
    """

    y: np.ndarray
    u: np.ndarray
    v: np.ndarray

    def __post_init__(self):
        self.y = np.asarray(self.y, dtype=np.uint8)
        self.u = np.asarray(self.u, dtype=np.uint8)
        self.v = np.asarray(self.v, dtype=np.uint8)
        h, w = self.y.shape
        if h % 2 or w % 2:
            raise ValueError(f"luma plane dimensions must be even, got {(h, w)}")
        expected = (h // 2, w // 2)
        if self.u.shape != expected or self.v.shape != expected:
            raise ValueError(
                f"chroma planes must be {expected}, got {self.u.shape} / {self.v.shape}"
            )

    @property
    def height(self) -> int:
        return int(self.y.shape[0])

    @property
    def width(self) -> int:
        return int(self.y.shape[1])

    @property
    def size(self) -> tuple[int, int]:
        return self.y.shape

    def copy(self) -> "YuvFrame":
        return YuvFrame(self.y.copy(), self.u.copy(), self.v.copy())

    def nbytes(self) -> int:
        """Raw (uncompressed) size of the frame in bytes."""
        return int(self.y.size + self.u.size + self.v.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, YuvFrame):
            return NotImplemented
        return (
            np.array_equal(self.y, other.y)
            and np.array_equal(self.u, other.u)
            and np.array_equal(self.v, other.v)
        )
