"""Video segmentation.

dcSR follows Netflix's shot-based encoding (Section 3.1.1): a new segment
starts at every visually noticeable change between consecutive frames, so
each segment is one shot and is represented by its leading I frame.  The
paper also evaluates a constant-length mode (Figure 8 sweeps the number of
I-frame inferences per segment), so both splitters are provided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Segment", "frame_difference", "detect_segments",
           "fixed_length_segments", "segment_lengths"]


@dataclass(frozen=True)
class Segment:
    """Half-open frame range ``[start, end)`` of one video segment."""

    index: int
    start: int
    end: int

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError(f"empty segment [{self.start}, {self.end})")

    @property
    def n_frames(self) -> int:
        return self.end - self.start

    @property
    def i_frame(self) -> int:
        """Display index of the segment's leading I frame."""
        return self.start


def frame_difference(frames: np.ndarray) -> np.ndarray:
    """Mean absolute luma difference between consecutive frames.

    ``frames`` is ``(T, H, W, 3)`` RGB float; returns ``(T-1,)`` differences
    in [0, 1].  Luma approximates the detector a shot-based encoder uses.
    """
    if frames.ndim != 4 or frames.shape[0] < 1:
        raise ValueError(f"expected (T, H, W, 3) frames, got {frames.shape}")
    luma = (0.299 * frames[..., 0] + 0.587 * frames[..., 1]
            + 0.114 * frames[..., 2])
    if frames.shape[0] == 1:
        return np.zeros(0, dtype=np.float64)
    return np.mean(np.abs(np.diff(luma, axis=0)), axis=(1, 2))


def detect_segments(
    frames: np.ndarray, threshold: float = 0.08, min_length: int = 2,
    max_length: int | None = None,
) -> list[Segment]:
    """Variable-length shot detection.

    A new segment begins where the inter-frame difference exceeds
    ``threshold``.  Segments shorter than ``min_length`` are merged into
    their predecessor; segments longer than ``max_length`` are split (a real
    encoder inserts periodic I frames to bound seek latency).
    """
    n = frames.shape[0]
    diffs = frame_difference(frames)
    cuts = [0] + [i + 1 for i, d in enumerate(diffs) if d > threshold] + [n]

    # Merge too-short segments forward.
    merged = [cuts[0]]
    for c in cuts[1:-1]:
        if c - merged[-1] >= min_length:
            merged.append(c)
    bounds = merged + [n]
    if bounds[-1] - bounds[-2] < min_length and len(bounds) > 2:
        bounds.pop(-2)

    # Enforce max length by splitting over-long shots into even chunks
    # (each <= max_length), as encoders do when bounding seek latency.
    if max_length is not None:
        if max_length < min_length:
            raise ValueError("max_length must be >= min_length")
        split: list[int] = []
        for a, b in zip(bounds[:-1], bounds[1:]):
            length = b - a
            n_chunks = -(-length // max_length)  # ceil
            base, extra = divmod(length, n_chunks)
            pos = a
            for i in range(n_chunks):
                split.append(pos)
                pos += base + (1 if i < extra else 0)
        bounds = split + [n]

    return [Segment(index=i, start=a, end=b)
            for i, (a, b) in enumerate(zip(bounds[:-1], bounds[1:]))]


def fixed_length_segments(n_frames: int, length: int) -> list[Segment]:
    """Constant-length segmentation (the content-agnostic baseline)."""
    if length < 1:
        raise ValueError("segment length must be >= 1")
    if n_frames < 1:
        raise ValueError("video must have at least one frame")
    segments = []
    for i, start in enumerate(range(0, n_frames, length)):
        segments.append(Segment(index=i, start=start,
                                end=min(start + length, n_frames)))
    return segments


def segment_lengths(segments: list[Segment]) -> np.ndarray:
    return np.array([s.n_frames for s in segments], dtype=np.int64)
