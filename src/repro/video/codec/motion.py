"""Block motion estimation and compensation (P/B-frame coding).

Full-search block matching over a +/-R window with SAD cost, fully
vectorised per macroblock via ``sliding_window_view``.  Motion vectors are
integer-pel and restricted so the compensated block stays inside the
reference frame (no border extension), which keeps encoder and decoder
bit-exactly in sync.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = ["MB", "motion_search", "compensate", "chroma_vector",
           "motion_search_halfpel", "compensate_halfpel",
           "chroma_vector_halfpel"]

MB = 16  # luma macroblock size


def motion_search(
    reference: np.ndarray, target: np.ndarray, y: int, x: int,
    search_range: int = 7, mb: int = MB,
) -> tuple[int, int, float]:
    """Find the best motion vector for the macroblock at ``(y, x)``.

    Parameters
    ----------
    reference:
        Reconstructed reference luma plane (float or uint8).
    target:
        Current frame's luma plane.
    y, x:
        Top-left corner of the macroblock in the current frame.

    Returns
    -------
    (dy, dx, sad):
        Displacement into the reference and the matching SAD.
    """
    h, w = reference.shape
    block = target[y:y + mb, x:x + mb].astype(np.int32)
    y_lo = max(0, y - search_range)
    y_hi = min(h - mb, y + search_range)
    x_lo = max(0, x - search_range)
    x_hi = min(w - mb, x + search_range)
    region = reference[y_lo:y_hi + mb, x_lo:x_hi + mb].astype(np.int32)
    windows = sliding_window_view(region, (mb, mb))  # (ny, nx, mb, mb)
    sads = np.abs(windows - block[None, None]).sum(axis=(2, 3))
    flat = int(np.argmin(sads))
    iy, ix = divmod(flat, sads.shape[1])
    best_y, best_x = y_lo + iy, x_lo + ix
    return best_y - y, best_x - x, float(sads[iy, ix])


def compensate(
    reference: np.ndarray, y: int, x: int, dy: int, dx: int,
    height: int, width: int,
) -> np.ndarray:
    """Extract the motion-compensated prediction block from ``reference``."""
    sy, sx = y + dy, x + dx
    h, w = reference.shape
    if sy < 0 or sx < 0 or sy + height > h or sx + width > w:
        raise ValueError(
            f"motion vector ({dy}, {dx}) at ({y}, {x}) leaves the reference "
            f"frame of size {(h, w)}"
        )
    return reference[sy:sy + height, sx:sx + width].astype(np.float64)


def chroma_vector(dy: int, dx: int) -> tuple[int, int]:
    """Derive the 4:2:0 chroma motion vector from a luma vector.

    Integer division with rounding toward negative infinity on both encoder
    and decoder keeps them in sync.
    """
    return dy // 2, dx // 2


# --------------------------------------------------------------- half-pel


def compensate_halfpel(
    reference: np.ndarray, y: int, x: int, dy_hp: int, dx_hp: int,
    height: int, width: int,
) -> np.ndarray:
    """Motion compensation with half-pel vectors (units of 1/2 pixel).

    Half-pel positions are bilinearly interpolated (the H.264 6-tap filter
    simplified to 2-tap, which is exact for our synthetic content and keeps
    encoder/decoder trivially in sync).
    """
    base_y, frac_y = dy_hp >> 1, dy_hp & 1
    base_x, frac_x = dx_hp >> 1, dx_hp & 1
    sy, sx = y + base_y, x + base_x
    h, w = reference.shape
    need_h = height + (1 if frac_y else 0)
    need_w = width + (1 if frac_x else 0)
    if sy < 0 or sx < 0 or sy + need_h > h or sx + need_w > w:
        raise ValueError(
            f"half-pel vector ({dy_hp}, {dx_hp}) at ({y}, {x}) leaves the "
            f"reference frame of size {(h, w)}")
    block = reference[sy:sy + need_h, sx:sx + need_w].astype(np.float64)
    if frac_y:
        block = 0.5 * (block[:-1, :] + block[1:, :])
    if frac_x:
        block = 0.5 * (block[:, :-1] + block[:, 1:])
    return block


def motion_search_halfpel(
    reference: np.ndarray, target: np.ndarray, y: int, x: int,
    search_range: int = 7, mb: int = MB,
) -> tuple[int, int, float]:
    """Integer full search plus half-pel refinement.

    Returns ``(dy_hp, dx_hp, sad)`` with the vector in half-pel units.
    """
    int_dy, int_dx, best_sad = motion_search(reference, target, y, x,
                                             search_range, mb)
    block = target[y:y + mb, x:x + mb].astype(np.float64)
    best = (2 * int_dy, 2 * int_dx)
    for ddy in (-1, 0, 1):
        for ddx in (-1, 0, 1):
            if ddy == 0 and ddx == 0:
                continue
            cand = (2 * int_dy + ddy, 2 * int_dx + ddx)
            try:
                pred = compensate_halfpel(reference, y, x, cand[0], cand[1],
                                          mb, mb)
            except ValueError:
                continue
            sad = float(np.abs(block - pred).sum())
            if sad < best_sad:
                best, best_sad = cand, sad
    return best[0], best[1], best_sad


def chroma_vector_halfpel(dy_hp: int, dx_hp: int) -> tuple[int, int]:
    """Chroma half-pel vector from a luma half-pel vector.

    The chroma plane is half resolution, so the displacement in chroma
    pixels is a quarter of the luma half-pel units; rounding to the nearest
    half-pel with floor division keeps both sides deterministic.
    """
    return dy_hp // 2, dx_hp // 2
