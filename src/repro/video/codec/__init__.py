"""A from-scratch H.264-like block codec (the FFMPEG stand-in).

Real bitstreams, real decoded-picture buffer, real I/P/B reference
structure — see DESIGN.md for why this substitution preserves the behaviour
dcSR depends on.
"""

from .bitstream import BitReader, BitWriter
from .decoder import (
    CorruptStreamError,
    DecodedFrame,
    DecodedVideo,
    DecodeError,
    Decoder,
    IFrameHook,
    SegmentMetadataError,
    TruncatedStreamError,
)
from .dct import BLOCK, dct_matrix, forward_dct, from_blocks, inverse_dct, to_blocks
from .encoder import (
    CodecConfig,
    EncodedFrameInfo,
    EncodedSegment,
    EncodedVideo,
    Encoder,
)
from .gop import FramePlan, count_types, plan_segment
from .motion import MB, chroma_vector, compensate, motion_search
from .ratecontrol import RateControlResult, bitrate_of, encode_to_target_size
from .quant import (
    MAX_CRF,
    dequantize,
    frequency_weights,
    qp_from_crf,
    qstep_from_qp,
    quantize,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "BLOCK",
    "MB",
    "MAX_CRF",
    "dct_matrix",
    "forward_dct",
    "inverse_dct",
    "to_blocks",
    "from_blocks",
    "quantize",
    "dequantize",
    "qp_from_crf",
    "qstep_from_qp",
    "frequency_weights",
    "motion_search",
    "compensate",
    "chroma_vector",
    "FramePlan",
    "plan_segment",
    "count_types",
    "CodecConfig",
    "EncodedFrameInfo",
    "EncodedSegment",
    "EncodedVideo",
    "Encoder",
    "Decoder",
    "DecodedFrame",
    "DecodedVideo",
    "DecodeError",
    "CorruptStreamError",
    "TruncatedStreamError",
    "SegmentMetadataError",
    "IFrameHook",
    "RateControlResult",
    "encode_to_target_size",
    "bitrate_of",
]
