"""Bit-level writer/reader for the codec bitstream.

The encoder produces a real byte string that the decoder parses back, so
compressed segment sizes used in the bandwidth experiments (Figure 10) are
measured, not estimated.
"""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Append-only MSB-first bit buffer."""

    def __init__(self):
        self._bytes = bytearray()
        self._acc = 0
        self._n_acc = 0

    def write_bit(self, bit: int) -> None:
        self._acc = (self._acc << 1) | (bit & 1)
        self._n_acc += 1
        if self._n_acc == 8:
            self._bytes.append(self._acc)
            self._acc = 0
            self._n_acc = 0

    def write_bits(self, value: int, n_bits: int) -> None:
        """Write the ``n_bits`` low bits of ``value``, MSB first."""
        if n_bits < 0:
            raise ValueError("n_bits must be non-negative")
        if value < 0 or (n_bits < 64 and value >> n_bits):
            raise ValueError(f"value {value} does not fit in {n_bits} bits")
        for shift in range(n_bits - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_uint(self, value: int, n_bits: int = 32) -> None:
        """Fixed-width unsigned integer."""
        self.write_bits(value, n_bits)

    @property
    def bit_length(self) -> int:
        return len(self._bytes) * 8 + self._n_acc

    def getvalue(self) -> bytes:
        """Byte-align (zero padding) and return the buffer."""
        out = bytearray(self._bytes)
        if self._n_acc:
            out.append(self._acc << (8 - self._n_acc))
        return bytes(out)


class BitReader:
    """MSB-first bit reader over a byte string."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0  # bit position

    def read_bit(self) -> int:
        byte_idx, bit_idx = divmod(self._pos, 8)
        if byte_idx >= len(self._data):
            raise EOFError("bitstream exhausted")
        self._pos += 1
        return (self._data[byte_idx] >> (7 - bit_idx)) & 1

    def read_bits(self, n_bits: int) -> int:
        value = 0
        for _ in range(n_bits):
            value = (value << 1) | self.read_bit()
        return value

    def read_uint(self, n_bits: int = 32) -> int:
        return self.read_bits(n_bits)

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos

    @property
    def bit_position(self) -> int:
        return self._pos
