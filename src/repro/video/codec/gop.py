"""Group-of-pictures planning.

Builds the I/P/B schedule for a segment (Section 2 "Insights" of the paper:
I frames reference nothing, P frames reference the previous anchor, B frames
reference the surrounding anchors).  Segments are closed GOPs: every segment
starts with an I frame and never references frames outside itself, which is
what makes per-segment model download and decode possible.

``extra_i_interval`` forces additional I frames inside a segment — the
paper's "multiple I frames in a segment" setting used to sweep the number of
SR inferences per segment in Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FramePlan", "plan_segment", "count_types"]


@dataclass(frozen=True)
class FramePlan:
    """One frame's coding decision.

    ``display`` is the video-level display index; ``fwd_ref``/``bwd_ref``
    are display indices of the past/future reference anchors (``None`` where
    not applicable).
    """

    display: int
    ftype: str  # "I" | "P" | "B"
    fwd_ref: int | None = None
    bwd_ref: int | None = None


def plan_segment(
    start: int, length: int, n_b_frames: int = 2,
    extra_i_interval: int | None = None,
) -> list[FramePlan]:
    """Plan a segment's frames, returned in *encode* order.

    Anchors (I/P frames) are spaced ``n_b_frames + 1`` apart with B frames
    between consecutive anchors; the segment's final frame is always an
    anchor so every B frame has a future reference.
    """
    if length < 1:
        raise ValueError("segment length must be >= 1")
    if n_b_frames < 0:
        raise ValueError("n_b_frames must be >= 0")
    if extra_i_interval is not None and extra_i_interval < 1:
        raise ValueError("extra_i_interval must be >= 1")

    spacing = n_b_frames + 1
    anchors = list(range(0, length, spacing))
    if anchors[-1] != length - 1 and length > 1:
        anchors.append(length - 1)

    plans = [FramePlan(display=start, ftype="I")]
    for prev, cur in zip(anchors[:-1], anchors[1:]):
        is_extra_i = extra_i_interval is not None and cur % extra_i_interval == 0
        if is_extra_i:
            plans.append(FramePlan(display=start + cur, ftype="I"))
        else:
            plans.append(FramePlan(display=start + cur, ftype="P",
                                   fwd_ref=start + prev))
        for b in range(prev + 1, cur):
            plans.append(FramePlan(display=start + b, ftype="B",
                                   fwd_ref=start + prev, bwd_ref=start + cur))
    return plans


def count_types(plans: list[FramePlan]) -> dict[str, int]:
    """Histogram of frame types in a plan list."""
    counts = {"I": 0, "P": 0, "B": 0}
    for plan in plans:
        counts[plan.ftype] += 1
    return counts
