"""Residual transform coding shared by the encoder and decoder.

Two layers:

- whole-plane intra coding (I frames): raster 8x8 blocks, spatial
  prediction, DCT, quantization, entropy coding, closed-loop reconstruction;
- per-macroblock residual coding (P/B frames): the motion-compensated
  residual of one macroblock (16x16 luma + two 8x8 chroma blocks) with a
  skip flag when everything quantizes to zero.
"""

from __future__ import annotations

import numpy as np

from .bitstream import BitReader, BitWriter
from .dct import BLOCK, forward_dct, inverse_dct
from .entropy import decode_coeff_block, encode_coeff_block, read_ue, write_ue
from .intra import choose_mode, predict_block
from .quant import dequantize, quantize

__all__ = [
    "encode_plane_intra",
    "decode_plane_intra",
    "encode_block_residual",
    "decode_block_residual",
    "encode_mb_residual",
    "decode_mb_residual",
]


def encode_plane_intra(writer: BitWriter, plane: np.ndarray, qp: int) -> np.ndarray:
    """Intra-code a full plane; returns the reconstructed plane (uint8)."""
    h, w = plane.shape
    if h % BLOCK or w % BLOCK:
        raise ValueError(f"plane {(h, w)} not divisible by {BLOCK}")
    original = plane.astype(np.float64)
    recon = np.zeros((h, w), dtype=np.float64)
    for by in range(h // BLOCK):
        for bx in range(w // BLOCK):
            mode, pred = choose_mode(recon, original, by, bx)
            y0, x0 = by * BLOCK, bx * BLOCK
            target = original[y0:y0 + BLOCK, x0:x0 + BLOCK]
            levels = quantize(forward_dct(target - pred), qp)
            write_ue(writer, mode)
            encode_coeff_block(writer, levels)
            rec = pred + inverse_dct(dequantize(levels, qp))
            recon[y0:y0 + BLOCK, x0:x0 + BLOCK] = np.clip(rec, 0, 255)
    return np.rint(recon).astype(np.uint8)


def decode_plane_intra(reader: BitReader, height: int, width: int, qp: int) -> np.ndarray:
    """Decode a plane written by :func:`encode_plane_intra`."""
    recon = np.zeros((height, width), dtype=np.float64)
    for by in range(height // BLOCK):
        for bx in range(width // BLOCK):
            mode = read_ue(reader)
            levels = decode_coeff_block(reader, BLOCK)
            pred = predict_block(recon, by, bx, mode)
            rec = pred + inverse_dct(dequantize(levels, qp))
            y0, x0 = by * BLOCK, bx * BLOCK
            recon[y0:y0 + BLOCK, x0:x0 + BLOCK] = np.clip(rec, 0, 255)
    return np.rint(recon).astype(np.uint8)


def _blocks_of(residual: np.ndarray) -> list[np.ndarray]:
    """Split a 16x16 or 8x8 residual into 8x8 blocks in raster order."""
    h, w = residual.shape
    out = []
    for y0 in range(0, h, BLOCK):
        for x0 in range(0, w, BLOCK):
            out.append(residual[y0:y0 + BLOCK, x0:x0 + BLOCK])
    return out


def encode_block_residual(
    writer: BitWriter, residual: np.ndarray, qp: int,
) -> np.ndarray:
    """Transform-code one residual array (any 8-divisible size).

    Returns the reconstructed residual (float64).
    """
    recon = np.empty_like(residual, dtype=np.float64)
    h, w = residual.shape
    for y0 in range(0, h, BLOCK):
        for x0 in range(0, w, BLOCK):
            block = residual[y0:y0 + BLOCK, x0:x0 + BLOCK]
            levels = quantize(forward_dct(block), qp)
            encode_coeff_block(writer, levels)
            recon[y0:y0 + BLOCK, x0:x0 + BLOCK] = inverse_dct(
                dequantize(levels, qp))
    return recon


def decode_block_residual(
    reader: BitReader, height: int, width: int, qp: int,
) -> np.ndarray:
    """Decode a residual written by :func:`encode_block_residual`."""
    recon = np.empty((height, width), dtype=np.float64)
    for y0 in range(0, height, BLOCK):
        for x0 in range(0, width, BLOCK):
            levels = decode_coeff_block(reader, BLOCK)
            recon[y0:y0 + BLOCK, x0:x0 + BLOCK] = inverse_dct(
                dequantize(levels, qp))
    return recon


def _quantize_blocks(residual: np.ndarray, qp: int) -> list[tuple[int, int, np.ndarray]]:
    """Quantize every 8x8 block of a residual; returns (y0, x0, levels)."""
    out = []
    h, w = residual.shape
    for y0 in range(0, h, BLOCK):
        for x0 in range(0, w, BLOCK):
            block = residual[y0:y0 + BLOCK, x0:x0 + BLOCK]
            out.append((y0, x0, quantize(forward_dct(block), qp)))
    return out


def encode_mb_residual(
    writer: BitWriter, luma_res: np.ndarray, u_res: np.ndarray,
    v_res: np.ndarray, qp: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Code one macroblock's residual with a leading skip flag.

    Returns the reconstructed residual triple ``(luma, u, v)``.
    """
    quantized = [
        (res, _quantize_blocks(res, qp)) for res in (luma_res, u_res, v_res)
    ]
    skip = all(
        not np.any(levels)
        for _, blocks in quantized
        for _, _, levels in blocks
    )
    writer.write_bit(1 if skip else 0)
    if skip:
        return (np.zeros_like(luma_res, dtype=np.float64),
                np.zeros_like(u_res, dtype=np.float64),
                np.zeros_like(v_res, dtype=np.float64))
    recons = []
    for res, blocks in quantized:
        recon = np.empty_like(res, dtype=np.float64)
        for y0, x0, levels in blocks:
            encode_coeff_block(writer, levels)
            recon[y0:y0 + BLOCK, x0:x0 + BLOCK] = inverse_dct(
                dequantize(levels, qp))
        recons.append(recon)
    return recons[0], recons[1], recons[2]


def decode_mb_residual(
    reader: BitReader, mb: int, qp: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode a macroblock residual written by :func:`encode_mb_residual`."""
    skip = reader.read_bit()
    half = mb // 2
    if skip:
        return (np.zeros((mb, mb)), np.zeros((half, half)),
                np.zeros((half, half)))
    luma = decode_block_residual(reader, mb, mb, qp)
    u = decode_block_residual(reader, half, half, qp)
    v = decode_block_residual(reader, half, half, qp)
    return luma, u, v
