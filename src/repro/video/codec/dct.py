"""8x8 orthonormal DCT-II transform and block (de)composition.

The transform stage of the codec: every residual plane is cut into 8x8
blocks, transformed, quantized, and entropy coded, mirroring the structure
of H.264/JPEG transforms.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BLOCK", "dct_matrix", "forward_dct", "inverse_dct",
           "to_blocks", "from_blocks"]

BLOCK = 8


def dct_matrix(n: int = BLOCK) -> np.ndarray:
    """Orthonormal DCT-II matrix ``D`` such that ``X = D @ x @ D.T``."""
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    mat = np.cos(np.pi * (2 * i + 1) * k / (2 * n))
    mat[0, :] *= 1.0 / np.sqrt(2.0)
    return (mat * np.sqrt(2.0 / n)).astype(np.float64)


_D = dct_matrix()
_DT = _D.T


def forward_dct(blocks: np.ndarray) -> np.ndarray:
    """DCT-II of a stack of blocks ``(..., 8, 8)``."""
    return np.einsum("ij,...jk,lk->...il", _D, blocks.astype(np.float64), _D,
                     optimize=True)


def inverse_dct(coeffs: np.ndarray) -> np.ndarray:
    """Inverse DCT of a stack of coefficient blocks ``(..., 8, 8)``."""
    return np.einsum("ji,...jk,kl->...il", _D, coeffs.astype(np.float64), _D,
                     optimize=True)


def to_blocks(plane: np.ndarray, block: int = BLOCK) -> np.ndarray:
    """Split ``(H, W)`` into ``(H/b, W/b, b, b)`` blocks."""
    h, w = plane.shape
    if h % block or w % block:
        raise ValueError(f"plane {(h, w)} not divisible by block size {block}")
    return (plane.reshape(h // block, block, w // block, block)
            .swapaxes(1, 2))


def from_blocks(blocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_blocks`."""
    nby, nbx, b, b2 = blocks.shape
    if b != b2:
        raise ValueError("blocks must be square")
    return blocks.swapaxes(1, 2).reshape(nby * b, nbx * b)
