"""Video encoder.

A closed-loop block codec with the H.264 structure dcSR relies on: segments
are closed GOPs starting with an I frame; P frames are motion-compensated
from the previous anchor; B frames predict from both surrounding anchors.
The encoder reconstructs exactly what the decoder will, so prediction never
drifts (until a client deliberately enhances I frames — which is the point
of dcSR).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..color import rgb_to_yuv420
from ..frame import YuvFrame
from ..segment import Segment
from .bitstream import BitWriter
from .deblock import deblock_plane
from .entropy import write_se, write_ue
from .gop import FramePlan, plan_segment
from .motion import (MB, chroma_vector, chroma_vector_halfpel, compensate,
                     compensate_halfpel, motion_search, motion_search_halfpel)
from .quant import qp_for_frame_type, qp_from_crf
from .residual import encode_mb_residual, encode_plane_intra

__all__ = ["CodecConfig", "EncodedFrameInfo", "EncodedSegment",
           "EncodedVideo", "Encoder", "FRAME_TYPE_CODES"]

FRAME_TYPE_CODES = {"I": 0, "P": 1, "B": 2}


@dataclass(frozen=True)
class CodecConfig:
    """Encoder settings.

    ``crf`` follows the FFMPEG 0-51 scale (51 = worst quality; the paper's
    low-quality inputs use 51).  ``n_b_frames`` is the number of B frames
    between anchors; ``extra_i_interval`` forces additional I frames within
    segments (the multiple-inferences-per-segment setting of Figure 8).
    """

    crf: int = 30
    n_b_frames: int = 2
    search_range: int = 7
    extra_i_interval: int | None = None
    deblock: bool = True
    half_pel: bool = True

    def __post_init__(self):
        qp_from_crf(self.crf)  # validates range
        if self.n_b_frames < 0:
            raise ValueError("n_b_frames must be >= 0")
        if self.search_range < 1:
            raise ValueError("search_range must be >= 1")


@dataclass(frozen=True)
class EncodedFrameInfo:
    """Per-frame accounting: display index, type, and exact coded bits."""

    display: int
    ftype: str
    n_bits: int


@dataclass
class EncodedSegment:
    """One segment's coded payload plus bookkeeping."""

    index: int
    start: int
    n_frames: int
    payload: bytes
    frames: list[EncodedFrameInfo] = field(default_factory=list)

    @property
    def n_bytes(self) -> int:
        return len(self.payload)

    @property
    def i_frame_displays(self) -> list[int]:
        return [f.display for f in self.frames if f.ftype == "I"]


@dataclass
class EncodedVideo:
    """A fully encoded video: per-segment payloads and metadata."""

    width: int
    height: int
    fps: float
    config: CodecConfig
    segments: list[EncodedSegment] = field(default_factory=list)

    @property
    def n_frames(self) -> int:
        return sum(s.n_frames for s in self.segments)

    @property
    def total_bytes(self) -> int:
        return sum(s.n_bytes for s in self.segments)

    def bits_by_type(self) -> dict[str, int]:
        """Total coded bits per frame type (I frames dominate — Section 3.1.1)."""
        totals = {"I": 0, "P": 0, "B": 0}
        for seg in self.segments:
            for info in seg.frames:
                totals[info.ftype] += info.n_bits
        return totals

    def frame_types(self) -> list[str]:
        """Frame types in display order."""
        out: dict[int, str] = {}
        for seg in self.segments:
            for info in seg.frames:
                out[info.display] = info.ftype
        return [out[i] for i in sorted(out)]


class Encoder:
    """Encode RGB float videos into segment bitstreams."""

    def __init__(self, config: CodecConfig | None = None):
        self.config = config or CodecConfig()

    def encode(
        self, frames_rgb: np.ndarray, segments: list[Segment], fps: float = 30.0,
    ) -> EncodedVideo:
        """Encode ``(T, H, W, 3)`` RGB frames split into ``segments``."""
        if frames_rgb.ndim != 4:
            raise ValueError(f"expected (T, H, W, 3) frames, got {frames_rgb.shape}")
        n, height, width = frames_rgb.shape[:3]
        if height % MB or width % MB:
            raise ValueError(f"frame size {(height, width)} must be multiples of {MB}")
        covered = sorted((s.start, s.end) for s in segments)
        if covered[0][0] != 0 or covered[-1][1] != n or any(
            a[1] != b[0] for a, b in zip(covered[:-1], covered[1:])
        ):
            raise ValueError("segments must exactly tile the video")

        yuv = [rgb_to_yuv420(frame) for frame in frames_rgb]
        video = EncodedVideo(width=width, height=height, fps=fps,
                             config=self.config)
        for seg in sorted(segments, key=lambda s: s.start):
            video.segments.append(self._encode_segment(yuv, seg))
        return video

    def encode_segment(
        self, frames_rgb: np.ndarray, segment: Segment,
    ) -> EncodedSegment:
        """Encode one closed-GOP segment from its own frames.

        ``frames_rgb`` holds exactly ``segment.n_frames`` RGB frames (the
        slice ``[segment.start, segment.end)`` of the video).  Because
        segments are closed GOPs and the bitstream stores segment-local
        display offsets, the payload is bit-identical to the corresponding
        segment of :meth:`encode` — this is the unit of work the parallel
        server build fans out per worker.
        """
        if frames_rgb.ndim != 4:
            raise ValueError(f"expected (T, H, W, 3) frames, got {frames_rgb.shape}")
        if frames_rgb.shape[0] != segment.n_frames:
            raise ValueError(
                f"segment {segment.index} expects {segment.n_frames} frames, "
                f"got {frames_rgb.shape[0]}")
        height, width = frames_rgb.shape[1:3]
        if height % MB or width % MB:
            raise ValueError(f"frame size {(height, width)} must be multiples of {MB}")
        yuv = [rgb_to_yuv420(frame) for frame in frames_rgb]
        local = Segment(index=segment.index, start=0, end=segment.n_frames)
        coded = self._encode_segment(yuv, local)
        return EncodedSegment(
            index=segment.index, start=segment.start,
            n_frames=segment.n_frames, payload=coded.payload,
            frames=[EncodedFrameInfo(display=f.display + segment.start,
                                     ftype=f.ftype, n_bits=f.n_bits)
                    for f in coded.frames])

    # ------------------------------------------------------------------

    def _encode_segment(self, yuv: list[YuvFrame], seg: Segment) -> EncodedSegment:
        cfg = self.config
        qp = qp_from_crf(cfg.crf)
        plans = plan_segment(seg.start, seg.n_frames, cfg.n_b_frames,
                             cfg.extra_i_interval)
        writer = BitWriter()
        writer.write_uint(qp, 8)
        flags = (1 if cfg.deblock else 0) | (2 if cfg.half_pel else 0)
        writer.write_uint(flags, 8)
        write_ue(writer, seg.n_frames)

        dpb: dict[int, YuvFrame] = {}
        infos: list[EncodedFrameInfo] = []
        for plan in plans:
            bits_before = writer.bit_length
            recon = self._encode_frame(writer, yuv[plan.display], plan,
                                       seg.start, dpb, qp)
            if cfg.deblock:
                recon = _deblock_frame(recon, qp_for_frame_type(qp, plan.ftype))
            if plan.ftype in ("I", "P"):
                dpb[plan.display] = recon
            infos.append(EncodedFrameInfo(
                display=plan.display, ftype=plan.ftype,
                n_bits=writer.bit_length - bits_before,
            ))
        infos.sort(key=lambda f: f.display)
        return EncodedSegment(index=seg.index, start=seg.start,
                              n_frames=seg.n_frames, payload=writer.getvalue(),
                              frames=infos)

    def _encode_frame(
        self, writer: BitWriter, frame: YuvFrame, plan: FramePlan,
        seg_start: int, dpb: dict[int, YuvFrame], qp: int,
    ) -> YuvFrame:
        write_ue(writer, FRAME_TYPE_CODES[plan.ftype])
        write_ue(writer, plan.display - seg_start)
        qp = qp_for_frame_type(qp, plan.ftype)
        if plan.ftype == "I":
            y = encode_plane_intra(writer, frame.y, qp)
            u = encode_plane_intra(writer, frame.u, qp)
            v = encode_plane_intra(writer, frame.v, qp)
            return YuvFrame(y, u, v)
        if plan.ftype == "P":
            write_ue(writer, plan.display - plan.fwd_ref)
            return self._encode_inter(writer, frame, [dpb[plan.fwd_ref]], qp)
        # B frame
        write_ue(writer, plan.display - plan.fwd_ref)
        write_ue(writer, plan.bwd_ref - plan.display)
        return self._encode_inter(
            writer, frame, [dpb[plan.fwd_ref], dpb[plan.bwd_ref]], qp)

    def _encode_inter(
        self, writer: BitWriter, frame: YuvFrame, refs: list[YuvFrame], qp: int,
    ) -> YuvFrame:
        """Motion-compensated coding against one (P) or two (B) references."""
        height, width = frame.size
        rec_y = np.empty((height, width), dtype=np.float64)
        rec_u = np.empty((height // 2, width // 2), dtype=np.float64)
        rec_v = np.empty_like(rec_u)
        orig_y = frame.y.astype(np.float64)
        orig_u = frame.u.astype(np.float64)
        orig_v = frame.v.astype(np.float64)

        for y0 in range(0, height, MB):
            for x0 in range(0, width, MB):
                pred_y, pred_u, pred_v = self._predict_mb(
                    writer, frame, refs, y0, x0)
                cy, cx, half = y0 // 2, x0 // 2, MB // 2
                res_y = orig_y[y0:y0 + MB, x0:x0 + MB] - pred_y
                res_u = orig_u[cy:cy + half, cx:cx + half] - pred_u
                res_v = orig_v[cy:cy + half, cx:cx + half] - pred_v
                rl, ru, rv = encode_mb_residual(writer, res_y, res_u, res_v, qp)
                rec_y[y0:y0 + MB, x0:x0 + MB] = np.clip(pred_y + rl, 0, 255)
                rec_u[cy:cy + half, cx:cx + half] = np.clip(pred_u + ru, 0, 255)
                rec_v[cy:cy + half, cx:cx + half] = np.clip(pred_v + rv, 0, 255)

        return YuvFrame(np.rint(rec_y).astype(np.uint8),
                        np.rint(rec_u).astype(np.uint8),
                        np.rint(rec_v).astype(np.uint8))

    def _predict_mb(
        self, writer: BitWriter, frame: YuvFrame, refs: list[YuvFrame],
        y0: int, x0: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Choose the prediction mode for one macroblock and write it.

        With half-pel enabled, motion vectors are in half-pel units; if the
        refined vector's chroma compensation would leave the frame (a rare
        alignment corner), the vector falls back to its integer-pel part.
        """
        search = self.config.search_range
        half_pel = self.config.half_pel
        searcher = motion_search_halfpel if half_pel else motion_search
        candidates = []  # (sad, mode, mvs)
        for ref_idx, ref in enumerate(refs):
            dy, dx, sad = searcher(ref.y, frame.y, y0, x0, search)
            candidates.append((sad, ref_idx, [(dy, dx)]))
        if len(refs) == 2:
            # Bidirectional: average the two best unidirectional predictions.
            (_, _, mv_f), (_, _, mv_b) = candidates[0], candidates[1]
            comp = compensate_halfpel if half_pel else compensate
            pred_bi = 0.5 * (
                comp(refs[0].y, y0, x0, *mv_f[0], MB, MB)
                + comp(refs[1].y, y0, x0, *mv_b[0], MB, MB))
            sad_bi = float(np.abs(
                frame.y[y0:y0 + MB, x0:x0 + MB].astype(np.float64) - pred_bi
            ).sum())
            candidates.append((sad_bi, 2, [mv_f[0], mv_b[0]]))

        _, mode, mvs = min(candidates, key=lambda c: c[0])
        try:
            pred = _predict_from_refs(refs, mode, mvs, y0, x0,
                                      half_pel=half_pel)
        except ValueError:
            # Chroma out of bounds at a half-pel corner: drop to integer pel.
            mvs = [(dy & ~1, dx & ~1) for dy, dx in mvs]
            pred = _predict_from_refs(refs, mode, mvs, y0, x0,
                                      half_pel=half_pel)
        if len(refs) == 2:
            write_ue(writer, mode)  # 0 = fwd, 1 = bwd, 2 = bi
        for dy, dx in mvs:
            write_se(writer, dy)
            write_se(writer, dx)
        return pred


def _predict_from_refs(
    refs: list[YuvFrame], mode: int, mvs: list[tuple[int, int]],
    y0: int, x0: int, half_pel: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build the (luma, u, v) prediction for a macroblock.

    Shared with the decoder so both sides are bit-exact.  With ``half_pel``,
    vectors are in half-pel units and bilinear interpolation applies.
    """
    half = MB // 2
    cy, cx = y0 // 2, x0 // 2

    def one(ref: YuvFrame, mv: tuple[int, int]):
        dy, dx = mv
        if half_pel:
            cdy, cdx = chroma_vector_halfpel(dy, dx)
            return (compensate_halfpel(ref.y, y0, x0, dy, dx, MB, MB),
                    compensate_halfpel(ref.u, cy, cx, cdy, cdx, half, half),
                    compensate_halfpel(ref.v, cy, cx, cdy, cdx, half, half))
        cdy, cdx = chroma_vector(dy, dx)
        return (compensate(ref.y, y0, x0, dy, dx, MB, MB),
                compensate(ref.u, cy, cx, cdy, cdx, half, half),
                compensate(ref.v, cy, cx, cdy, cdx, half, half))

    if mode == 2:
        py0, pu0, pv0 = one(refs[0], mvs[0])
        py1, pu1, pv1 = one(refs[1], mvs[1])
        return 0.5 * (py0 + py1), 0.5 * (pu0 + pu1), 0.5 * (pv0 + pv1)
    return one(refs[mode], mvs[0])


def _deblock_frame(frame: YuvFrame, qp: int) -> YuvFrame:
    """Apply the in-loop deblocking filter to all three planes."""
    return YuvFrame(deblock_plane(frame.y, qp),
                    deblock_plane(frame.u, qp),
                    deblock_plane(frame.v, qp))
