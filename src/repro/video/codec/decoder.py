"""Video decoder with a decoded-picture buffer and an I-frame enhancement hook.

This is the integration point of client-side dcSR (Figure 6): after an I
frame is reconstructed into the DPB, an optional ``i_frame_hook`` is invoked
with the YUV frame.  The (possibly super-resolved) frame the hook returns is
stored in the DPB and used as the reference for all dependent P and B
frames, so the enhancement propagates through the GOP exactly as the paper
describes.  NEMO's "SR only on key frames" uses the same hook; NAS-style
"SR on every frame" is applied after decoding and needs no hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..frame import YuvFrame
from .bitstream import BitReader
from .encoder import EncodedSegment, EncodedVideo, _deblock_frame, _predict_from_refs
from .entropy import read_se, read_ue
from .motion import MB
from .quant import qp_for_frame_type
from .residual import decode_mb_residual, decode_plane_intra

__all__ = [
    "DecodeError",
    "CorruptStreamError",
    "TruncatedStreamError",
    "SegmentMetadataError",
    "DecodedFrame",
    "DecodedVideo",
    "Decoder",
    "IFrameHook",
]


class DecodeError(ValueError):
    """Base of all bitstream decode failures.

    Subclasses ``ValueError`` so pre-typed callers keep working; the
    streaming client catches this (plus ``EOFError``) to distinguish
    *corrupt input* — concealable — from client bugs such as a broken
    enhancement hook, which keep raising ``TypeError``/``RuntimeError``.
    """


class CorruptStreamError(DecodeError):
    """The payload violates the bitstream grammar (bad code, missing ref)."""


class TruncatedStreamError(CorruptStreamError, EOFError):
    """The payload ended mid-frame (also an ``EOFError`` for old callers)."""


class SegmentMetadataError(DecodeError):
    """Segment header and out-of-band metadata disagree."""

#: Hook signature: ``(frame, display_index) -> enhanced frame``.
IFrameHook = Callable[[YuvFrame, int], YuvFrame]

#: Anchor hook signature: ``(frame, display_index, frame_type)`` for every
#: I *and* P frame; return the enhanced frame, or ``None`` to leave it
#: untouched.  This is the NEMO-style "enhance selected anchors" interface.
AnchorHook = Callable[[YuvFrame, int, str], "YuvFrame | None"]

_TYPE_FROM_CODE = {0: "I", 1: "P", 2: "B"}


@dataclass(frozen=True)
class DecodedFrame:
    """One decoded frame with its coding metadata."""

    display: int
    ftype: str
    frame: YuvFrame
    n_bits: int


@dataclass
class DecodedVideo:
    """Decode result in display order."""

    width: int
    height: int
    fps: float
    frames: list[YuvFrame] = field(default_factory=list)
    frame_types: list[str] = field(default_factory=list)
    frame_bits: list[int] = field(default_factory=list)
    hook_invocations: int = 0

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def i_frame_indices(self) -> list[int]:
        return [i for i, t in enumerate(self.frame_types) if t == "I"]


class Decoder:
    """Decode segment bitstreams produced by :class:`~.encoder.Encoder`."""

    def __init__(self, i_frame_hook: IFrameHook | None = None,
                 anchor_hook: AnchorHook | None = None,
                 hook_display_only: bool = False):
        """``hook_display_only`` keeps the *unenhanced* frame in the DPB and
        only swaps the displayed frame — the drift-free fallback a server
        selects when in-loop propagation does not pay off on a video."""
        if i_frame_hook is not None and anchor_hook is not None:
            raise ValueError(
                "pass either i_frame_hook (dcSR: I frames only) or "
                "anchor_hook (NEMO-style: any I/P anchor), not both")
        self.i_frame_hook = i_frame_hook
        self.anchor_hook = anchor_hook
        self.hook_display_only = bool(hook_display_only)
        self._hook_invocations = 0

    @property
    def hook_invocations(self) -> int:
        """Hook calls made by the most recent ``decode_segment`` (or the
        whole of the most recent ``decode_video``)."""
        return self._hook_invocations

    def decode_video(self, encoded: EncodedVideo) -> DecodedVideo:
        """Decode all segments into display order."""
        total_invocations = 0
        by_display: dict[int, DecodedFrame] = {}
        for seg in encoded.segments:
            for decoded in self.decode_segment(seg, encoded.width, encoded.height):
                by_display[decoded.display] = decoded
            total_invocations += self._hook_invocations
        result = DecodedVideo(width=encoded.width, height=encoded.height,
                              fps=encoded.fps)
        for display in sorted(by_display):
            item = by_display[display]
            result.frames.append(item.frame)
            result.frame_types.append(item.ftype)
            result.frame_bits.append(item.n_bits)
        self._hook_invocations = total_invocations
        result.hook_invocations = total_invocations
        return result

    def decode_segment(
        self, segment: EncodedSegment, width: int, height: int,
    ) -> list[DecodedFrame]:
        """Decode one closed-GOP segment (frames returned in decode order).

        The hook-invocation counter is reset on entry, so a single decoder
        reused across segments (the streaming session engine does this)
        reports per-segment counts instead of accumulating stale ones.
        """
        if height % MB or width % MB:
            raise ValueError(f"frame size {(height, width)} must be multiples of {MB}")
        self._hook_invocations = 0
        reader = BitReader(segment.payload)
        try:
            return self._decode_segment_frames(reader, segment, width, height)
        except EOFError as exc:
            if isinstance(exc, DecodeError):
                raise
            raise TruncatedStreamError(
                f"segment {segment.index}: payload truncated "
                f"({segment.n_bytes} bytes)") from exc

    def _decode_segment_frames(
        self, reader: BitReader, segment: EncodedSegment,
        width: int, height: int,
    ) -> list[DecodedFrame]:
        qp = reader.read_uint(8)
        flags = reader.read_uint(8)
        deblock = bool(flags & 1)
        half_pel = bool(flags & 2)
        n_frames = read_ue(reader)
        if n_frames != segment.n_frames:
            raise SegmentMetadataError(
                f"segment {segment.index}: header says {n_frames} frames, "
                f"metadata says {segment.n_frames}"
            )

        dpb: dict[int, YuvFrame] = {}
        out: list[DecodedFrame] = []
        for _ in range(n_frames):
            bits_before = reader.bit_position
            display, ftype, frame = self._decode_frame(
                reader, segment.start, width, height, qp, dpb, half_pel)
            if deblock:
                frame = _deblock_frame(frame, qp_for_frame_type(qp, ftype))
            reference = frame  # what dependent P/B frames will predict from
            if ftype == "I" and self.i_frame_hook is not None:
                frame = self._apply_hook(frame, display)
            if ftype in ("I", "P") and self.anchor_hook is not None:
                enhanced = self.anchor_hook(frame, display, ftype)
                if enhanced is not None:
                    frame = self._check_enhanced(enhanced, frame)
                    self._hook_invocations += 1
            if ftype in ("I", "P"):
                dpb[display] = reference if self.hook_display_only else frame
            out.append(DecodedFrame(display=display, ftype=ftype, frame=frame,
                                    n_bits=reader.bit_position - bits_before))
        return out

    # ------------------------------------------------------------------

    def _apply_hook(self, frame: YuvFrame, display: int) -> YuvFrame:
        enhanced = self.i_frame_hook(frame, display)
        result = self._check_enhanced(enhanced, frame)
        self._hook_invocations += 1
        return result

    @staticmethod
    def _check_enhanced(enhanced, original: YuvFrame) -> YuvFrame:
        if not isinstance(enhanced, YuvFrame):
            raise TypeError("enhancement hook must return a YuvFrame")
        if enhanced.size != original.size:
            raise ValueError(
                f"enhancement hook changed frame size from {original.size} "
                f"to {enhanced.size}; in-loop enhancement must preserve size"
            )
        return enhanced

    def _decode_frame(
        self, reader: BitReader, seg_start: int, width: int, height: int,
        qp: int, dpb: dict[int, YuvFrame], half_pel: bool = False,
    ) -> tuple[int, str, YuvFrame]:
        code = read_ue(reader)
        if code not in _TYPE_FROM_CODE:
            raise CorruptStreamError(
                f"corrupt stream: unknown frame type code {code}")
        ftype = _TYPE_FROM_CODE[code]
        display = seg_start + read_ue(reader)
        qp = qp_for_frame_type(qp, ftype)

        if ftype == "I":
            y = decode_plane_intra(reader, height, width, qp)
            u = decode_plane_intra(reader, height // 2, width // 2, qp)
            v = decode_plane_intra(reader, height // 2, width // 2, qp)
            return display, ftype, YuvFrame(y, u, v)

        if ftype == "P":
            fwd = display - read_ue(reader)
            refs = [self._ref(dpb, fwd)]
        else:
            fwd = display - read_ue(reader)
            bwd = display + read_ue(reader)
            refs = [self._ref(dpb, fwd), self._ref(dpb, bwd)]
        frame = self._decode_inter(reader, refs, width, height, qp, half_pel)
        return display, ftype, frame

    @staticmethod
    def _ref(dpb: dict[int, YuvFrame], display: int) -> YuvFrame:
        if display not in dpb:
            raise CorruptStreamError(
                f"corrupt stream: reference frame {display} not in DPB")
        return dpb[display]

    def _decode_inter(
        self, reader: BitReader, refs: list[YuvFrame], width: int, height: int,
        qp: int, half_pel: bool = False,
    ) -> YuvFrame:
        rec_y = np.empty((height, width), dtype=np.float64)
        rec_u = np.empty((height // 2, width // 2), dtype=np.float64)
        rec_v = np.empty_like(rec_u)
        half = MB // 2

        for y0 in range(0, height, MB):
            for x0 in range(0, width, MB):
                if len(refs) == 2:
                    mode = read_ue(reader)
                    if mode not in (0, 1, 2):
                        raise CorruptStreamError(
                            f"corrupt stream: B-frame mode {mode}")
                else:
                    mode = 0
                n_mvs = 2 if mode == 2 else 1
                mvs = [(read_se(reader), read_se(reader)) for _ in range(n_mvs)]
                pred_y, pred_u, pred_v = _predict_from_refs(
                    refs, mode, mvs, y0, x0, half_pel=half_pel)
                rl, ru, rv = decode_mb_residual(reader, MB, qp)
                cy, cx = y0 // 2, x0 // 2
                rec_y[y0:y0 + MB, x0:x0 + MB] = np.clip(pred_y + rl, 0, 255)
                rec_u[cy:cy + half, cx:cx + half] = np.clip(pred_u + ru, 0, 255)
                rec_v[cy:cy + half, cx:cx + half] = np.clip(pred_v + rv, 0, 255)

        return YuvFrame(np.rint(rec_y).astype(np.uint8),
                        np.rint(rec_u).astype(np.uint8),
                        np.rint(rec_v).astype(np.uint8))
