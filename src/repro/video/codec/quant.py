"""Quantization and the CRF -> quantizer mapping.

The paper generates its low-quality inputs with ``CRF = 51`` in FFMPEG
(Section 4).  We mirror H.264's quantizer design: the quantization step
doubles every 6 QP points, and CRF maps onto the same 0-51 scale.  A mild
frequency weighting (coarser steps at high frequencies) mimics the
perceptual quantization matrices real encoders use — this is what creates
the blocky, detail-stripped look at CRF 51 that SR then repairs.
"""

from __future__ import annotations

import numpy as np

from .dct import BLOCK

__all__ = ["qstep_from_qp", "qp_from_crf", "frequency_weights",
           "quantize", "dequantize", "qp_for_frame_type", "MAX_CRF",
           "I_QP_OFFSET", "B_QP_OFFSET"]

MAX_CRF = 51

# Per-frame-type QP offsets, mirroring x264's ip/pb factors: I frames are
# quantized finer (they seed every prediction chain), B frames coarser
# (nothing references them).  This is what gives I frames their dominant
# per-frame bitrate — the structural fact dcSR builds on.
I_QP_OFFSET = -4
B_QP_OFFSET = +2


def qp_for_frame_type(qp: int, ftype: str) -> int:
    """Effective QP for a frame of type ``ftype`` ("I" | "P" | "B")."""
    if ftype == "I":
        return max(0, qp + I_QP_OFFSET)
    if ftype == "P":
        return qp
    if ftype == "B":
        return min(MAX_CRF, qp + B_QP_OFFSET)
    raise ValueError(f"unknown frame type {ftype!r}")


def qp_from_crf(crf: int) -> int:
    """Map a constant-rate-factor to a quantization parameter.

    Our toy codec is single-pass, so CRF degenerates to a constant QP on the
    same 0-51 scale (this is also how FFMPEG behaves with ``-qp``).
    """
    if not 0 <= crf <= MAX_CRF:
        raise ValueError(f"CRF must be in [0, {MAX_CRF}], got {crf}")
    return int(crf)


def qstep_from_qp(qp: int) -> float:
    """H.264-style quantization step: doubles every 6 QP points."""
    if not 0 <= qp <= MAX_CRF:
        raise ValueError(f"QP must be in [0, {MAX_CRF}], got {qp}")
    return float(0.625 * 2.0 ** ((qp - 4) / 6.0))


def frequency_weights(block: int = BLOCK, strength: float = 0.6) -> np.ndarray:
    """Perceptual weighting matrix: high frequencies quantized more coarsely.

    ``strength = 0`` is a flat matrix (all ones).
    """
    i = np.arange(block)[:, None]
    j = np.arange(block)[None, :]
    return (1.0 + strength * (i + j) / (2.0 * (block - 1))).astype(np.float64)


_WEIGHTS = frequency_weights()


def quantize(coeffs: np.ndarray, qp: int, weighted: bool = True) -> np.ndarray:
    """Quantize DCT coefficients to integer levels."""
    step = qstep_from_qp(qp)
    divisor = step * (_WEIGHTS if weighted else 1.0)
    return np.rint(coeffs / divisor).astype(np.int64)


def dequantize(levels: np.ndarray, qp: int, weighted: bool = True) -> np.ndarray:
    """Reconstruct coefficients from integer levels."""
    step = qstep_from_qp(qp)
    divisor = step * (_WEIGHTS if weighted else 1.0)
    return levels.astype(np.float64) * divisor
