"""Rate control: encode to a target size instead of a fixed CRF.

Real encoders offer target-bitrate modes next to CRF; the bitrate ladders
of ABR systems are usually built this way.  The controller runs a bisection
over the integer CRF scale — each probe is a real encode, so the result is
exact for the chosen CRF — and returns the best CRF whose output fits the
byte budget (or the maximum CRF if even that overshoots).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..segment import Segment
from .encoder import CodecConfig, EncodedVideo, Encoder
from .quant import MAX_CRF

__all__ = ["RateControlResult", "encode_to_target_size", "bitrate_of"]


@dataclass(frozen=True)
class RateControlResult:
    """Outcome of the CRF search."""

    crf: int
    encoded: EncodedVideo
    target_bytes: int
    probes: int

    @property
    def achieved_bytes(self) -> int:
        return self.encoded.total_bytes

    @property
    def utilisation(self) -> float:
        return self.achieved_bytes / self.target_bytes


def bitrate_of(encoded: EncodedVideo) -> float:
    """Average bitrate in bits/second."""
    duration = encoded.n_frames / encoded.fps
    return 8.0 * encoded.total_bytes / duration


def encode_to_target_size(
    frames: np.ndarray, segments: list[Segment], target_bytes: int,
    base_config: CodecConfig | None = None, fps: float = 30.0,
    min_crf: int = 0, max_crf: int = MAX_CRF,
) -> RateControlResult:
    """Find the best-quality CRF whose encode fits ``target_bytes``.

    Bisection over CRF: compressed size is monotone non-increasing in CRF,
    so the search needs at most ``log2(52) ~ 6`` probe encodes.  Returns the
    smallest such CRF (best quality); if even ``max_crf`` overshoots the
    budget, that encode is returned (with ``utilisation > 1``) rather than
    failing, matching encoder behaviour.
    """
    if target_bytes <= 0:
        raise ValueError("target_bytes must be positive")
    if not 0 <= min_crf <= max_crf <= MAX_CRF:
        raise ValueError(f"need 0 <= min_crf <= max_crf <= {MAX_CRF}")
    base = base_config or CodecConfig()

    def encode_at(crf: int) -> EncodedVideo:
        return Encoder(replace(base, crf=crf)).encode(frames, segments,
                                                      fps=fps)

    probes = 0
    lo, hi = min_crf, max_crf
    best: tuple[int, EncodedVideo] | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        encoded = encode_at(mid)
        probes += 1
        if encoded.total_bytes <= target_bytes:
            best = (mid, encoded)
            hi = mid - 1      # try better quality (lower CRF)
        else:
            lo = mid + 1
    if best is None:
        encoded = encode_at(max_crf)
        probes += 1
        best = (max_crf, encoded)
    return RateControlResult(crf=best[0], encoded=best[1],
                             target_bytes=target_bytes, probes=probes)
