"""In-loop deblocking filter.

At high CRF the dominant artifact is blocking at 8x8 transform boundaries —
exactly what H.264's in-loop deblocking filter attacks.  This is a
simplified H.263-Annex-J-style boundary filter: at every block edge the
two boundary samples on each side are smoothed when the discontinuity is
small enough (relative to the quantization step) to be an artifact rather
than a real image edge.

The filter is *in-loop*: the encoder applies it to its reconstructions
before they become references, and the decoder applies the identical filter,
so prediction stays bit-exact between the two.
"""

from __future__ import annotations

import numpy as np

from .dct import BLOCK
from .quant import qstep_from_qp

__all__ = ["deblock_plane", "deblock_strength"]


def deblock_strength(qp: int) -> tuple[float, float]:
    """Filter thresholds for a quantizer: ``(alpha, tc)``.

    ``alpha`` bounds the boundary step that is still considered an artifact
    (real edges are larger); ``tc`` caps the per-sample correction.
    Both scale with the quantization step, vanishing at high quality.
    """
    step = qstep_from_qp(qp)
    alpha = 2.5 * step
    tc = 0.5 * step
    return alpha, tc


def _filter_edges(plane: np.ndarray, qp: int, axis: int, block: int) -> None:
    """Filter all block boundaries perpendicular to ``axis``, in place."""
    alpha, tc = deblock_strength(qp)
    size = plane.shape[axis]
    for edge in range(block, size, block):
        if axis == 0:
            p1 = plane[edge - 2, :]
            p0 = plane[edge - 1, :]
            q0 = plane[edge, :]
            q1 = plane[edge + 1, :] if edge + 1 < size else q0
        else:
            p1 = plane[:, edge - 2]
            p0 = plane[:, edge - 1]
            q0 = plane[:, edge]
            q1 = plane[:, edge + 1] if edge + 1 < plane.shape[1] else q0

        step = q0 - p0
        # Artifact test: small boundary step, locally flat on both sides.
        smooth = (np.abs(step) < alpha) & (np.abs(p1 - p0) < alpha) & (
            np.abs(q1 - q0) < alpha)
        delta = np.clip(step / 4.0, -tc, tc) * smooth
        p0 += delta
        q0 -= delta
        # Soft second-tap correction pulls p1/q1 toward the filtered edge.
        p1 += np.clip((p0 - p1) / 4.0, -tc / 2, tc / 2) * smooth
        q1 -= np.clip((q1 - q0) / 4.0, -tc / 2, tc / 2) * smooth


def deblock_plane(plane: np.ndarray, qp: int, block: int = BLOCK) -> np.ndarray:
    """Deblock a reconstructed uint8 plane; returns a new uint8 plane.

    Vertical (column) boundaries are filtered first, then horizontal ones,
    matching the usual decoder order.
    """
    if plane.dtype != np.uint8:
        raise ValueError(f"expected uint8 plane, got {plane.dtype}")
    work = plane.astype(np.float64)
    _filter_edges(work, qp, axis=1, block=block)
    _filter_edges(work, qp, axis=0, block=block)
    return np.clip(np.rint(work), 0, 255).astype(np.uint8)
