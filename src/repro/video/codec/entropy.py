"""Entropy coding: Exp-Golomb codes and run-level coefficient coding.

H.264's CAVLC/CABAC are replaced by the simpler (but real and decodable)
Exp-Golomb run-level scheme also used by H.264 for headers and by earlier
codecs for coefficients.  What matters for the reproduction is that bits are
actually spent in proportion to residual energy, so I frames cost more than
P/B frames and higher CRF genuinely shrinks the stream.
"""

from __future__ import annotations

import numpy as np

from .bitstream import BitReader, BitWriter

__all__ = [
    "write_ue",
    "read_ue",
    "write_se",
    "read_se",
    "zigzag_order",
    "encode_coeff_block",
    "decode_coeff_block",
]


def write_ue(writer: BitWriter, value: int) -> None:
    """Unsigned Exp-Golomb code."""
    if value < 0:
        raise ValueError(f"ue(v) requires v >= 0, got {value}")
    code = value + 1
    n_bits = code.bit_length()
    writer.write_bits(0, n_bits - 1)  # prefix zeros
    writer.write_bits(code, n_bits)


def read_ue(reader: BitReader) -> int:
    zeros = 0
    while reader.read_bit() == 0:
        zeros += 1
        if zeros > 64:
            raise ValueError("corrupt Exp-Golomb code (prefix too long)")
    value = 1
    for _ in range(zeros):
        value = (value << 1) | reader.read_bit()
    return value - 1


def write_se(writer: BitWriter, value: int) -> None:
    """Signed Exp-Golomb code (H.264 mapping: 0, 1, -1, 2, -2, ...)."""
    if value > 0:
        write_ue(writer, 2 * value - 1)
    else:
        write_ue(writer, -2 * value)


def read_se(reader: BitReader) -> int:
    code = read_ue(reader)
    magnitude = (code + 1) // 2
    return magnitude if code % 2 == 1 else -magnitude


def _build_zigzag(n: int) -> np.ndarray:
    """Indices of the classic zigzag scan for an n x n block."""
    order = sorted(
        ((i, j) for i in range(n) for j in range(n)),
        key=lambda ij: (ij[0] + ij[1],
                        ij[1] if (ij[0] + ij[1]) % 2 == 0 else ij[0]),
    )
    flat = np.array([i * n + j for i, j in order], dtype=np.int64)
    return flat


_ZIGZAG_CACHE: dict[int, np.ndarray] = {}


def zigzag_order(n: int = 8) -> np.ndarray:
    """Flattened zigzag scan indices for an ``n x n`` block (cached)."""
    if n not in _ZIGZAG_CACHE:
        _ZIGZAG_CACHE[n] = _build_zigzag(n)
    return _ZIGZAG_CACHE[n]


def encode_coeff_block(writer: BitWriter, coeffs: np.ndarray) -> None:
    """Encode one quantized coefficient block.

    Format: ``ue(n_nonzero)`` then, for each nonzero coefficient in zigzag
    order, ``ue(zero_run_before_it) se(level)``.
    """
    n = coeffs.shape[0]
    if coeffs.shape != (n, n):
        raise ValueError(f"expected square block, got {coeffs.shape}")
    scan = coeffs.reshape(-1)[zigzag_order(n)].astype(np.int64)
    nz_positions = np.nonzero(scan)[0]
    write_ue(writer, len(nz_positions))
    prev = -1
    for pos in nz_positions:
        write_ue(writer, int(pos - prev - 1))
        write_se(writer, int(scan[pos]))
        prev = pos


def decode_coeff_block(reader: BitReader, n: int = 8) -> np.ndarray:
    """Decode one block written by :func:`encode_coeff_block`."""
    n_nonzero = read_ue(reader)
    if n_nonzero > n * n:
        raise ValueError(f"corrupt block: {n_nonzero} nonzeros in {n}x{n}")
    scan = np.zeros(n * n, dtype=np.int64)
    pos = -1
    for _ in range(n_nonzero):
        run = read_ue(reader)
        level = read_se(reader)
        pos += run + 1
        if pos >= n * n:
            raise ValueError("corrupt block: zigzag position out of range")
        scan[pos] = level
    block = np.zeros(n * n, dtype=np.int64)
    block[zigzag_order(n)] = scan
    return block.reshape(n, n)
