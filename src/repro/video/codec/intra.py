"""Intra prediction (I-frame coding).

Implements the H.264-style spatial prediction modes DC, vertical, and
horizontal on 8x8 blocks.  Blocks are coded in raster order and predict from
already-reconstructed neighbours, exactly as a real intra encoder does, so
the decoder can reproduce the prediction from its own reconstruction.
"""

from __future__ import annotations

import numpy as np

from .dct import BLOCK

__all__ = ["MODE_DC", "MODE_V", "MODE_H", "INTRA_MODES", "predict_block",
           "choose_mode"]

MODE_DC = 0
MODE_V = 1
MODE_H = 2
INTRA_MODES = (MODE_DC, MODE_V, MODE_H)

_DEFAULT_DC = 128.0


def predict_block(
    recon: np.ndarray, by: int, bx: int, mode: int, block: int = BLOCK,
) -> np.ndarray:
    """Prediction for the block at block-coordinates ``(by, bx)``.

    ``recon`` is the partially reconstructed plane (float); neighbours above
    and to the left of the block are final by raster-order processing.
    """
    y0, x0 = by * block, bx * block
    top = recon[y0 - 1, x0:x0 + block] if y0 > 0 else None
    left = recon[y0:y0 + block, x0 - 1] if x0 > 0 else None

    if mode == MODE_V:
        if top is None:
            return np.full((block, block), _DEFAULT_DC)
        return np.tile(top, (block, 1)).astype(np.float64)
    if mode == MODE_H:
        if left is None:
            return np.full((block, block), _DEFAULT_DC)
        return np.tile(left[:, None], (1, block)).astype(np.float64)
    if mode == MODE_DC:
        parts = [p for p in (top, left) if p is not None]
        if not parts:
            return np.full((block, block), _DEFAULT_DC)
        dc = float(np.mean(np.concatenate(parts)))
        return np.full((block, block), dc)
    raise ValueError(f"unknown intra mode {mode}")


def choose_mode(
    recon: np.ndarray, original: np.ndarray, by: int, bx: int,
    block: int = BLOCK,
) -> tuple[int, np.ndarray]:
    """Pick the intra mode with the lowest SSD against the original block.

    Returns ``(mode, prediction)``.
    """
    y0, x0 = by * block, bx * block
    target = original[y0:y0 + block, x0:x0 + block].astype(np.float64)
    best_mode, best_pred, best_cost = MODE_DC, None, np.inf
    for mode in INTRA_MODES:
        pred = predict_block(recon, by, bx, mode, block)
        cost = float(np.sum((target - pred) ** 2))
        if cost < best_cost:
            best_mode, best_pred, best_cost = mode, pred, cost
    return best_mode, best_pred
