"""BT.601 full-range color conversion and 4:2:0 chroma resampling.

This is the "YUV to RGB conversion" step of the client-side dcSR pipeline
(Figure 6, steps 2 and 5): I frames live in the decoded-picture buffer in
YUV 4:2:0 and must be converted to RGB for the SR model and back afterwards.
"""

from __future__ import annotations

import numpy as np

from .frame import YuvFrame, validate_rgb

__all__ = [
    "rgb_to_yuv420",
    "yuv420_to_rgb",
    "rgb_float_to_uint8",
    "rgb_uint8_to_float",
    "downsample_chroma",
    "upsample_chroma",
]

# BT.601 full-range ("JPEG") coefficients.
_KR, _KG, _KB = 0.299, 0.587, 0.114


def rgb_float_to_uint8(rgb: np.ndarray) -> np.ndarray:
    """Quantize a float RGB frame in [0, 1] to uint8 with rounding."""
    rgb = validate_rgb(rgb)
    return np.clip(np.rint(rgb * 255.0), 0, 255).astype(np.uint8)


def rgb_uint8_to_float(rgb: np.ndarray) -> np.ndarray:
    """Dequantize a uint8 RGB frame to float32 in [0, 1]."""
    rgb = np.asarray(rgb)
    if rgb.dtype != np.uint8:
        raise ValueError(f"expected uint8 RGB, got dtype {rgb.dtype}")
    return (rgb.astype(np.float32) / 255.0)


def downsample_chroma(plane: np.ndarray) -> np.ndarray:
    """4:2:0 chroma subsampling: average each 2x2 block."""
    h, w = plane.shape
    if h % 2 or w % 2:
        raise ValueError(f"plane dimensions must be even, got {(h, w)}")
    blocks = plane.astype(np.float32).reshape(h // 2, 2, w // 2, 2)
    return blocks.mean(axis=(1, 3))


def upsample_chroma(plane: np.ndarray) -> np.ndarray:
    """Nearest-neighbour 2x chroma upsampling (decoder-side)."""
    return np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)


def rgb_to_yuv420(rgb: np.ndarray) -> YuvFrame:
    """Convert a float RGB frame in [0, 1] to planar YUV 4:2:0 uint8."""
    rgb = validate_rgb(rgb)
    r = rgb[..., 0].astype(np.float32) * 255.0
    g = rgb[..., 1].astype(np.float32) * 255.0
    b = rgb[..., 2].astype(np.float32) * 255.0

    y = _KR * r + _KG * g + _KB * b
    cb = (b - y) / (2.0 * (1.0 - _KB)) + 128.0
    cr = (r - y) / (2.0 * (1.0 - _KR)) + 128.0

    u = downsample_chroma(np.clip(cb, 0, 255))
    v = downsample_chroma(np.clip(cr, 0, 255))
    return YuvFrame(
        np.clip(np.rint(y), 0, 255).astype(np.uint8),
        np.clip(np.rint(u), 0, 255).astype(np.uint8),
        np.clip(np.rint(v), 0, 255).astype(np.uint8),
    )


def yuv420_to_rgb(frame: YuvFrame) -> np.ndarray:
    """Convert a planar YUV 4:2:0 frame to a float RGB frame in [0, 1]."""
    y = frame.y.astype(np.float32)
    cb = upsample_chroma(frame.u.astype(np.float32)) - 128.0
    cr = upsample_chroma(frame.v.astype(np.float32)) - 128.0

    r = y + 2.0 * (1.0 - _KR) * cr
    b = y + 2.0 * (1.0 - _KB) * cb
    g = (y - _KR * r - _KB * b) / _KG

    rgb = np.stack([r, g, b], axis=-1) / 255.0
    return np.clip(rgb, 0.0, 1.0).astype(np.float32)
