"""Video quality metrics: PSNR and SSIM (Wang et al. 2004).

These are the metrics of Figure 9 (quality comparison across the six-video
corpus) and Figure 1(c) (per-frame quality variance of a single big model).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

from .frame import YuvFrame

__all__ = ["psnr", "ssim", "ms_ssim", "psnr_yuv", "ssim_luma", "mse"]


def mse(a: np.ndarray, b: np.ndarray) -> float:
    """Mean squared error between two arrays of identical shape."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.mean((a - b) ** 2))


def psnr(a: np.ndarray, b: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB.

    Returns ``inf`` for identical inputs.
    """
    err = mse(a, b)
    if err == 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range * data_range / err))


def ssim(
    a: np.ndarray, b: np.ndarray, data_range: float = 1.0,
    sigma: float = 1.5, k1: float = 0.01, k2: float = 0.03,
) -> float:
    """Structural similarity index with a Gaussian window.

    ``a`` and ``b`` are 2-D (single channel) or ``(H, W, C)`` (averaged over
    channels).  Follows Wang et al. 2004 with an 11-tap Gaussian window
    approximated by ``gaussian_filter`` truncated at 3.5 sigma.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim == 3:
        return float(np.mean([
            ssim(a[..., c], b[..., c], data_range=data_range,
                 sigma=sigma, k1=k1, k2=k2)
            for c in range(a.shape[2])
        ]))
    if a.ndim != 2:
        raise ValueError(f"expected 2-D or 3-D input, got shape {a.shape}")

    c1 = (k1 * data_range) ** 2
    c2 = (k2 * data_range) ** 2
    truncate = 3.5

    mu_a = gaussian_filter(a, sigma, truncate=truncate)
    mu_b = gaussian_filter(b, sigma, truncate=truncate)
    mu_a2 = mu_a * mu_a
    mu_b2 = mu_b * mu_b
    mu_ab = mu_a * mu_b
    sigma_a2 = gaussian_filter(a * a, sigma, truncate=truncate) - mu_a2
    sigma_b2 = gaussian_filter(b * b, sigma, truncate=truncate) - mu_b2
    sigma_ab = gaussian_filter(a * b, sigma, truncate=truncate) - mu_ab

    num = (2.0 * mu_ab + c1) * (2.0 * sigma_ab + c2)
    den = (mu_a2 + mu_b2 + c1) * (sigma_a2 + sigma_b2 + c2)
    return float(np.mean(num / den))


def _ssim_components(
    a: np.ndarray, b: np.ndarray, data_range: float, sigma: float,
    k1: float, k2: float,
) -> tuple[float, float]:
    """Mean (luminance*contrast*structure, contrast*structure) maps."""
    c1 = (k1 * data_range) ** 2
    c2 = (k2 * data_range) ** 2
    truncate = 3.5
    mu_a = gaussian_filter(a, sigma, truncate=truncate)
    mu_b = gaussian_filter(b, sigma, truncate=truncate)
    sigma_a2 = gaussian_filter(a * a, sigma, truncate=truncate) - mu_a ** 2
    sigma_b2 = gaussian_filter(b * b, sigma, truncate=truncate) - mu_b ** 2
    sigma_ab = gaussian_filter(a * b, sigma, truncate=truncate) - mu_a * mu_b
    luminance = (2 * mu_a * mu_b + c1) / (mu_a ** 2 + mu_b ** 2 + c1)
    cs = (2 * sigma_ab + c2) / (sigma_a2 + sigma_b2 + c2)
    return float(np.mean(luminance * cs)), float(np.mean(cs))


#: Per-scale weights from Wang et al. 2003 (the standard MS-SSIM weights).
_MS_WEIGHTS = (0.0448, 0.2856, 0.3001, 0.2363, 0.1333)


def ms_ssim(
    a: np.ndarray, b: np.ndarray, data_range: float = 1.0,
    sigma: float = 1.5, k1: float = 0.01, k2: float = 0.03,
    n_scales: int | None = None,
) -> float:
    """Multi-scale SSIM (Wang, Simoncelli & Bovik 2003).

    The image is repeatedly 2x-downsampled; contrast/structure terms are
    collected at every scale, the luminance term only at the coarsest.  The
    scale count adapts to the image size (each scale needs enough support
    for the Gaussian window); ``n_scales`` can cap it explicitly.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim == 3:
        return float(np.mean([
            ms_ssim(a[..., c], b[..., c], data_range=data_range, sigma=sigma,
                    k1=k1, k2=k2, n_scales=n_scales)
            for c in range(a.shape[2])
        ]))
    if a.ndim != 2:
        raise ValueError(f"expected 2-D or 3-D input, got shape {a.shape}")

    min_side = min(a.shape)
    feasible = max(1, int(np.log2(min_side / 12)) + 1)
    scales = min(len(_MS_WEIGHTS), feasible)
    if n_scales is not None:
        if n_scales < 1:
            raise ValueError("n_scales must be >= 1")
        scales = min(scales, n_scales)
    weights = np.array(_MS_WEIGHTS[:scales])
    weights = weights / weights.sum()

    value = 1.0
    for scale in range(scales):
        lcs, cs = _ssim_components(a, b, data_range, sigma, k1, k2)
        if scale == scales - 1:
            value *= np.sign(lcs) * np.abs(lcs) ** weights[scale]
        else:
            value *= np.sign(cs) * np.abs(cs) ** weights[scale]
            h, w = a.shape
            a = a[: h - h % 2, : w - w % 2].reshape(h // 2, 2, w // 2, 2).mean(axis=(1, 3))
            b = b[: h - h % 2, : w - w % 2].reshape(h // 2, 2, w // 2, 2).mean(axis=(1, 3))
    return float(value)


def psnr_yuv(a: YuvFrame, b: YuvFrame) -> float:
    """PSNR over the luma plane of two YUV frames (uint8 range)."""
    return psnr(a.y.astype(np.float64), b.y.astype(np.float64), data_range=255.0)


def ssim_luma(a: YuvFrame, b: YuvFrame) -> float:
    """SSIM over the luma plane of two YUV frames (uint8 range)."""
    return ssim(a.y.astype(np.float64), b.y.astype(np.float64), data_range=255.0)
