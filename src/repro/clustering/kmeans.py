"""Lloyd's K-means with k-means++ seeding.

The baseline clustering algorithm (Section 3.1.2).  The paper replaces it
with the *global* K-means of Likas et al. to avoid poor local optima — both
are provided, and an ablation benchmark compares them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KMeansResult", "kmeans", "lloyd_iterations", "assign_labels",
           "inertia_of"]


@dataclass(frozen=True)
class KMeansResult:
    """Clustering output: centroids ``(k, d)``, labels ``(n,)``, inertia."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float

    @property
    def k(self) -> int:
        return int(self.centroids.shape[0])


def assign_labels(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid assignment (squared Euclidean)."""
    d2 = np.sum((points[:, None, :] - centroids[None, :, :]) ** 2, axis=2)
    return np.argmin(d2, axis=1)


def inertia_of(points: np.ndarray, centroids: np.ndarray,
               labels: np.ndarray) -> float:
    """Within-cluster sum of squared distances."""
    return float(np.sum((points - centroids[labels]) ** 2))


def _kmeans_pp_init(points: np.ndarray, k: int,
                    rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    centroids[0] = points[rng.integers(n)]
    d2 = np.sum((points - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = d2.sum()
        if total <= 0:
            centroids[i:] = points[rng.integers(n, size=k - i)]
            break
        probs = d2 / total
        centroids[i] = points[rng.choice(n, p=probs)]
        d2 = np.minimum(d2, np.sum((points - centroids[i]) ** 2, axis=1))
    return centroids


def lloyd_iterations(
    points: np.ndarray, centroids: np.ndarray, max_iter: int = 100,
    tol: float = 1e-7,
) -> KMeansResult:
    """Run Lloyd's algorithm to convergence from given centroids."""
    centroids = centroids.astype(np.float64).copy()
    labels = assign_labels(points, centroids)
    for _ in range(max_iter):
        for j in range(centroids.shape[0]):
            members = points[labels == j]
            if len(members):
                centroids[j] = members.mean(axis=0)
        new_labels = assign_labels(points, centroids)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return KMeansResult(centroids=centroids, labels=labels,
                        inertia=inertia_of(points, centroids, labels))


def kmeans(
    points: np.ndarray, k: int, seed: int = 0, n_init: int = 4,
    max_iter: int = 100,
) -> KMeansResult:
    """K-means with ``n_init`` k-means++ restarts; best inertia wins."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"expected (n, d) points, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = np.random.default_rng(seed)
    best: KMeansResult | None = None
    for _ in range(n_init):
        init = _kmeans_pp_init(points, k, rng)
        result = lloyd_iterations(points, init, max_iter=max_iter)
        if best is None or result.inertia < best.inertia:
            best = result
    return best
