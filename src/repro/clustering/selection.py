"""Constrained selection of the number of micro models (Eq. 2-3).

``k* = argmax_k SC(k)`` subject to ``1 <= k <= |M_big| / |M_min|`` — the
total size of the deployed micro models must not exceed the single big
model prior systems ship.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .global_kmeans import global_kmeans_path
from .kmeans import KMeansResult
from .silhouette import silhouette_score

__all__ = ["KSelection", "max_k_for_budget", "select_k"]


@dataclass
class KSelection:
    """Result of the constrained-K search."""

    k: int
    scores: dict[int, float] = field(default_factory=dict)
    k_max: int = 0
    result: KMeansResult | None = None

    @property
    def best_score(self) -> float:
        return self.scores.get(self.k, float("nan"))


def max_k_for_budget(big_model_bytes: int, min_model_bytes: int) -> int:
    """Eq. (3): the largest K whose micro models fit the big-model budget."""
    if big_model_bytes <= 0 or min_model_bytes <= 0:
        raise ValueError("model sizes must be positive")
    return max(1, big_model_bytes // min_model_bytes)


def select_k(
    features: np.ndarray, k_max: int, max_iter: int = 100,
) -> KSelection:
    """Pick K by maximum silhouette over ``2..k_max`` (Eq. 2).

    ``k_max`` comes from :func:`max_k_for_budget` and is additionally capped
    at ``n - 1`` (silhouette is undefined at ``k = n``; with every segment
    its own cluster there is nothing to share).  Degenerate inputs (a single
    segment, or ``k_max = 1``) select ``k = 1``.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"expected (n, d) features, got {features.shape}")
    n = features.shape[0]
    if k_max < 1:
        raise ValueError("k_max must be >= 1")

    effective_max = min(k_max, n - 1)
    if effective_max < 2:
        path = global_kmeans_path(features, 1, max_iter=max_iter)
        return KSelection(k=1, scores={}, k_max=k_max, result=path[0])

    path = global_kmeans_path(features, effective_max, max_iter=max_iter)
    scores: dict[int, float] = {}
    for k in range(2, effective_max + 1):
        result = path[k - 1]
        # Global k-means may leave a cluster empty when points coincide;
        # silhouette needs the realised number of clusters.
        realised = len(np.unique(result.labels))
        if realised < 2:
            scores[k] = float("-inf")
        else:
            scores[k] = silhouette_score(features, result.labels)
    best_k = max(scores, key=lambda k: (scores[k], -k))
    return KSelection(k=best_k, scores=scores, k_max=k_max,
                      result=path[best_k - 1])
