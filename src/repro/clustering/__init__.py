"""Clustering substrate: K-means, global K-means, silhouette, and the
constrained-K selection of Section 3.1.2."""

from .global_kmeans import global_kmeans, global_kmeans_path
from .kmeans import KMeansResult, assign_labels, inertia_of, kmeans, lloyd_iterations
from .selection import KSelection, max_k_for_budget, select_k
from .silhouette import silhouette_samples, silhouette_score

__all__ = [
    "KMeansResult",
    "kmeans",
    "lloyd_iterations",
    "assign_labels",
    "inertia_of",
    "global_kmeans",
    "global_kmeans_path",
    "silhouette_samples",
    "silhouette_score",
    "KSelection",
    "max_k_for_budget",
    "select_k",
]
