"""The global K-means algorithm (Likas, Vlassis & Verbeek, 2003).

dcSR uses global K-means instead of plain Lloyd's to avoid local optima
(Section 3.1.2).  The algorithm solves K-means incrementally: the solution
with ``k`` clusters is built from the ``k-1`` solution by trying every data
point as the seed of the new cluster and keeping the run with the lowest
inertia.  It is deterministic and (empirically) near-globally optimal, at
O(n) Lloyd runs per added cluster — fine at dcSR's scale, where ``n`` is the
number of video segments.
"""

from __future__ import annotations

import numpy as np

from .kmeans import KMeansResult, inertia_of, lloyd_iterations

__all__ = ["global_kmeans", "global_kmeans_path"]


def global_kmeans_path(
    points: np.ndarray, k_max: int, max_iter: int = 100,
) -> list[KMeansResult]:
    """Solutions for every ``k`` in ``1..k_max`` (index ``k-1``)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"expected (n, d) points, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= k_max <= n:
        raise ValueError(f"k_max must be in [1, {n}], got {k_max}")

    # k = 1: centroid is the mean.
    mean = points.mean(axis=0, keepdims=True)
    labels = np.zeros(n, dtype=np.int64)
    path = [KMeansResult(centroids=mean, labels=labels,
                         inertia=inertia_of(points, mean, labels))]

    for k in range(2, k_max + 1):
        base = path[-1].centroids
        best: KMeansResult | None = None
        # Deduplicate candidate seeds (identical points give identical runs).
        candidates = np.unique(points, axis=0)
        for seed_point in candidates:
            init = np.vstack([base, seed_point[None, :]])
            result = lloyd_iterations(points, init, max_iter=max_iter)
            if best is None or result.inertia < best.inertia:
                best = result
        path.append(best)
    return path


def global_kmeans(
    points: np.ndarray, k: int, max_iter: int = 100,
) -> KMeansResult:
    """Global K-means solution for a single ``k``."""
    return global_kmeans_path(points, k, max_iter=max_iter)[k - 1]
