"""Silhouette coefficient (Rousseeuw 1987).

The metric dcSR maximizes to pick the number of micro models (Figure 5 and
Eq. 2): cohesion vs. separation of each point's cluster assignment.
"""

from __future__ import annotations

import numpy as np

__all__ = ["silhouette_samples", "silhouette_score"]


def silhouette_samples(points: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-sample silhouette values ``(b - a) / max(a, b)``.

    ``a`` is the mean distance to the sample's own cluster (excluding
    itself); ``b`` is the smallest mean distance to any other cluster.
    Samples in singleton clusters score 0 (the standard convention).
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if points.ndim != 2:
        raise ValueError(f"expected (n, d) points, got shape {points.shape}")
    n = points.shape[0]
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} does not match {n} points")
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("silhouette requires at least 2 clusters")

    dists = np.sqrt(np.maximum(
        np.sum(points ** 2, axis=1)[:, None]
        + np.sum(points ** 2, axis=1)[None, :]
        - 2.0 * points @ points.T, 0.0))

    values = np.zeros(n, dtype=np.float64)
    cluster_masks = {c: labels == c for c in unique}
    sizes = {c: int(m.sum()) for c, m in cluster_masks.items()}
    for i in range(n):
        own = labels[i]
        if sizes[own] == 1:
            values[i] = 0.0
            continue
        a = dists[i][cluster_masks[own]].sum() / (sizes[own] - 1)
        b = min(
            dists[i][cluster_masks[c]].mean()
            for c in unique if c != own
        )
        denom = max(a, b)
        values[i] = 0.0 if denom == 0 else (b - a) / denom
    return values


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette over all samples."""
    return float(np.mean(silhouette_samples(points, labels)))
