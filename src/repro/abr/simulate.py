"""ABR session simulation.

Discrete-event playback: the client downloads segments (plus any model
bytes the policy budgets), the buffer drains in real time, and rebuffering
happens when a segment is not ready by its deadline.  QoE follows the
standard linear form: mean quality − rebuffer penalty − switching penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .ladder import BitrateLadder
from .policies import AbrPolicy, JointPolicy
from .trace import NetworkTrace

__all__ = ["AbrSessionResult", "simulate_session", "qoe_score"]


@dataclass
class AbrSessionResult:
    """Outcome of one simulated streaming session."""

    levels: list[int] = field(default_factory=list)
    qualities: list[float] = field(default_factory=list)   # per segment, dB
    rebuffer_seconds: float = 0.0
    startup_seconds: float = 0.0
    video_bits: float = 0.0
    extra_bits: float = 0.0
    switches: int = 0
    #: Per-segment SR tier chosen (``None`` = SR off); empty for rung-only
    #: policies.  Filled by joint policies only.
    tiers: list[str | None] = field(default_factory=list)
    #: Total expected rail energy of the session (joint policies only).
    energy_joules: float = 0.0
    #: Total seconds of video streamed (sum of segment durations).
    played_seconds: float = 0.0

    @property
    def total_bits(self) -> float:
        return self.video_bits + self.extra_bits

    @property
    def mean_quality(self) -> float:
        return float(np.mean(self.qualities)) if self.qualities else 0.0

    @property
    def quality_per_joule(self) -> float:
        """Mean quality per joule — the frontier's efficiency axis."""
        if self.energy_joules <= 0:
            return 0.0
        return self.mean_quality / self.energy_joules

    @property
    def stall_ratio(self) -> float:
        """Rebuffer seconds per streamed second (0 when nothing played)."""
        if self.played_seconds <= 0:
            return 0.0
        return self.rebuffer_seconds / self.played_seconds


def qoe_score(
    result: AbrSessionResult, rebuffer_penalty: float = 4.0,
    switch_penalty: float = 0.5,
) -> float:
    """Linear QoE: quality − rebuffering − switching (Pensieve-style)."""
    return (result.mean_quality
            - rebuffer_penalty * result.rebuffer_seconds
            - switch_penalty * result.switches)


def simulate_session(
    ladder: BitrateLadder, policy: AbrPolicy, trace: NetworkTrace,
    startup_buffer_s: float = 2.0, max_buffer_s: float = 8.0,
    throughput_ema: float = 0.5,
    quality_table: np.ndarray | None = None,
) -> AbrSessionResult:
    """Stream every segment of ``ladder`` under ``policy`` over ``trace``.

    The client never buffers beyond ``max_buffer_s`` (players cap their
    look-ahead), so bandwidth drops later in the session genuinely hurt.
    ``quality_table[level][segment]`` overrides the per-segment quality
    credited to the session (used to credit dcSR's *enhanced* quality);
    defaults to the ladder's decoded quality.
    """
    if not 0 < throughput_ema <= 1:
        raise ValueError("throughput_ema must be in (0, 1]")
    if max_buffer_s <= 0:
        raise ValueError("max_buffer_s must be positive")
    result = AbrSessionResult()
    clock = 0.0          # wall time
    buffer_s = 0.0       # seconds of video buffered
    estimate = trace.bandwidth_at(0.0)
    playing = False
    prev_level: int | None = None

    for segment in range(ladder.n_segments):
        if playing and buffer_s + ladder.segment_seconds[segment] > max_buffer_s:
            # Buffer full: idle until there is room for the next segment.
            # Playback can only drain what is actually buffered; a segment
            # longer than the buffer cap empties the buffer mid-wait and
            # the remainder of the wait is a stall, not negative buffer.
            wait = buffer_s + ladder.segment_seconds[segment] - max_buffer_s
            drained = min(wait, buffer_s)
            result.rebuffer_seconds += wait - drained
            clock += wait
            buffer_s -= drained
        joint = (policy.choose_joint(ladder, segment, estimate, buffer_s)
                 if isinstance(policy, JointPolicy) else None)
        if joint is not None:
            level = joint.level
            extra = joint.extra_bits
        else:
            level = policy.choose(ladder, segment, estimate, buffer_s)
            extra = policy.extra_bits(segment, level)
        seg_bits = ladder.levels[level].segment_bits[segment]
        dl_seconds = trace.download_time(seg_bits + extra, clock)

        if playing:
            # Buffer drains while downloading.
            drained = min(buffer_s, dl_seconds)
            stall = dl_seconds - drained
            result.rebuffer_seconds += max(0.0, stall)
            buffer_s = max(0.0, buffer_s - dl_seconds)
        clock += dl_seconds
        buffer_s += ladder.segment_seconds[segment]

        if not playing and (buffer_s >= startup_buffer_s
                            or segment == ladder.n_segments - 1):
            playing = True
            result.startup_seconds = clock

        measured = (seg_bits + extra) / max(dl_seconds, 1e-9)
        estimate = (1 - throughput_ema) * estimate + throughput_ema * measured

        if prev_level is not None and level != prev_level:
            result.switches += 1
        prev_level = level
        result.levels.append(level)
        if quality_table is not None:
            quality = float(quality_table[level, segment])
        else:
            quality = ladder.levels[level].segment_quality[segment]
        if joint is not None:
            quality += joint.quality_bonus_db
            result.tiers.append(joint.tier)
            result.energy_joules += joint.energy_j
            policy.feedback(joint.energy_j, ladder.segment_seconds[segment])
        result.qualities.append(quality)
        result.video_bits += seg_bits
        result.extra_bits += extra
        result.played_seconds += ladder.segment_seconds[segment]

    return result
