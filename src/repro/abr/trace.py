"""Network bandwidth traces for streaming simulation.

A trace is a piecewise-constant bandwidth profile.  Synthetic generators
produce the regimes ABR papers evaluate on: stable links, slow fades, and
bursty cellular-like traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NetworkTrace", "constant_trace", "step_trace", "random_walk_trace"]


@dataclass(frozen=True)
class NetworkTrace:
    """Piecewise-constant bandwidth: ``bandwidth_bps[i]`` holds during
    ``[boundaries[i], boundaries[i+1])``; the last value extends forever."""

    boundaries: np.ndarray     # (n,) start times, seconds; boundaries[0] == 0
    bandwidth_bps: np.ndarray  # (n,) bits per second

    def __post_init__(self):
        if len(self.boundaries) != len(self.bandwidth_bps):
            raise ValueError("boundaries and bandwidths must align")
        if len(self.boundaries) == 0 or self.boundaries[0] != 0.0:
            raise ValueError("trace must start at t = 0")
        if np.any(np.diff(self.boundaries) <= 0):
            raise ValueError("boundaries must be strictly increasing")
        if np.any(self.bandwidth_bps <= 0):
            raise ValueError("bandwidth must be positive")

    def bandwidth_at(self, t: float) -> float:
        """Bits/second at time ``t`` (clamped into the trace)."""
        idx = int(np.searchsorted(self.boundaries, t, side="right") - 1)
        return float(self.bandwidth_bps[max(idx, 0)])

    def download_time(self, n_bits: float, start: float) -> float:
        """Seconds to move ``n_bits`` starting at ``start``, integrating
        across bandwidth changes."""
        if n_bits <= 0:
            return 0.0
        t = start
        remaining = float(n_bits)
        while True:
            idx = int(np.searchsorted(self.boundaries, t, side="right") - 1)
            idx = max(idx, 0)
            rate = float(self.bandwidth_bps[idx])
            if idx + 1 < len(self.boundaries):
                window = float(self.boundaries[idx + 1]) - t
                capacity = rate * window
                if capacity >= remaining:
                    return t + remaining / rate - start
                remaining -= capacity
                t = float(self.boundaries[idx + 1])
            else:
                return t + remaining / rate - start


def constant_trace(bandwidth_bps: float) -> NetworkTrace:
    return NetworkTrace(boundaries=np.array([0.0]),
                        bandwidth_bps=np.array([float(bandwidth_bps)]))


def step_trace(steps: list[tuple[float, float]]) -> NetworkTrace:
    """Trace from ``[(start_time, bandwidth_bps), ...]`` pairs."""
    if not steps:
        raise ValueError("need at least one step")
    times, rates = zip(*steps)
    return NetworkTrace(boundaries=np.array(times, dtype=np.float64),
                        bandwidth_bps=np.array(rates, dtype=np.float64))


def random_walk_trace(
    mean_bps: float, duration_s: float, seed: int = 0,
    volatility: float = 0.3, interval_s: float = 2.0,
) -> NetworkTrace:
    """Bursty trace: log-space random walk around ``mean_bps``."""
    if mean_bps <= 0 or duration_s <= 0:
        raise ValueError("mean bandwidth and duration must be positive")
    rng = np.random.default_rng(seed)
    n = max(1, int(np.ceil(duration_s / interval_s)))
    log_rate = np.log(mean_bps) + np.cumsum(
        rng.normal(0, volatility, size=n))
    # Re-centre so the mean stays near the requested value.
    log_rate += np.log(mean_bps) - log_rate.mean()
    return NetworkTrace(
        boundaries=np.arange(n, dtype=np.float64) * interval_s,
        bandwidth_bps=np.exp(log_rate),
    )
