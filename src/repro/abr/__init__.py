"""Adaptive bitrate extension (the paper's discussion section).

Bitrate ladders measured with the real codec, network traces, classic
throughput/buffer policies, a dcSR-aware policy that budgets micro-model
downloads and targets *enhanced* quality, and a session simulator.
"""

from .ladder import BitrateLadder, QualityLevel, build_ladder
from .policies import (AbrPolicy, BufferAbr, DcsrAwareAbr, JointChoice,
                       JointPolicy, ThroughputAbr)
from .simulate import AbrSessionResult, qoe_score, simulate_session
from .trace import NetworkTrace, constant_trace, random_walk_trace, step_trace

__all__ = [
    "QualityLevel",
    "BitrateLadder",
    "build_ladder",
    "AbrPolicy",
    "ThroughputAbr",
    "BufferAbr",
    "DcsrAwareAbr",
    "JointChoice",
    "JointPolicy",
    "AbrSessionResult",
    "simulate_session",
    "qoe_score",
    "NetworkTrace",
    "constant_trace",
    "step_trace",
    "random_walk_trace",
]
