"""Bitrate ladders: the same video encoded at multiple quality levels.

For ABR simulation each (level, segment) cell needs its byte size and a
perceptual quality score.  ``build_ladder`` measures both with the real
codec; the dcSR-aware variant additionally records the *enhanced* quality —
what the viewer sees after the micro models run — which is what the paper's
discussion section proposes feeding into ABR decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..video import VideoClip, psnr, yuv420_to_rgb
from ..video.codec import CodecConfig, Decoder, Encoder
from ..video.segment import Segment

__all__ = ["QualityLevel", "BitrateLadder", "build_ladder"]


@dataclass
class QualityLevel:
    """One rung: a CRF setting with per-segment sizes and qualities."""

    level: int
    crf: int
    segment_bits: list[int] = field(default_factory=list)
    segment_quality: list[float] = field(default_factory=list)  # PSNR dB

    @property
    def total_bits(self) -> int:
        return sum(self.segment_bits)

    @property
    def mean_quality(self) -> float:
        return float(np.mean(self.segment_quality))


@dataclass
class BitrateLadder:
    """All rungs plus segment timing; index 0 is the *highest* quality."""

    levels: list[QualityLevel]
    segment_seconds: list[float]

    def __post_init__(self):
        if not self.levels:
            raise ValueError("ladder needs at least one level")
        n = len(self.segment_seconds)
        for level in self.levels:
            if len(level.segment_bits) != n:
                raise ValueError("level/segment shape mismatch")
        qualities = [lvl.mean_quality for lvl in self.levels]
        if any(a < b for a, b in zip(qualities[:-1], qualities[1:])):
            # levels must be ordered best-first
            raise ValueError("levels must be sorted by decreasing quality")

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def n_segments(self) -> int:
        return len(self.segment_seconds)

    def bitrate_bps(self, level: int, segment: int) -> float:
        seconds = self.segment_seconds[segment]
        return self.levels[level].segment_bits[segment] / seconds


def build_ladder(
    clip: VideoClip, segments: list[Segment], crfs: list[int],
    n_b_frames: int = 2,
) -> BitrateLadder:
    """Encode ``clip`` once per CRF and measure per-segment size/quality.

    ``crfs`` are sorted ascending (best quality first) to form the ladder.
    """
    if not crfs:
        raise ValueError("need at least one CRF")
    levels = []
    for i, crf in enumerate(sorted(crfs)):
        encoded = Encoder(CodecConfig(crf=crf, n_b_frames=n_b_frames)).encode(
            clip.frames, segments, fps=clip.fps)
        decoded = Decoder().decode_video(encoded)
        level = QualityLevel(level=i, crf=crf)
        for seg, payload in zip(segments, encoded.segments):
            level.segment_bits.append(payload.n_bytes * 8)
            # RGB PSNR — the same metric the dcSR client reports, so the
            # dcSR-aware policy can mix ladder and enhanced qualities.
            values = [psnr(yuv420_to_rgb(decoded.frames[t]), clip.frames[t])
                      for t in range(seg.start, seg.end)]
            finite = [v for v in values if np.isfinite(v)]
            level.segment_quality.append(
                float(np.mean(finite)) if finite else 60.0)
        levels.append(level)
    segment_seconds = [seg.n_frames / clip.fps for seg in segments]
    return BitrateLadder(levels=levels, segment_seconds=segment_seconds)
