"""ABR policies.

- :class:`ThroughputAbr` — classic rate-based selection with an EMA
  throughput estimate and a safety margin.
- :class:`BufferAbr` — BOLA-style buffer thresholds.
- :class:`DcsrAwareAbr` — the paper's discussion-section idea: the policy
  budgets for pending micro-model downloads and scores each rung by its
  *enhanced* quality, letting it ride a lower bitrate for the same
  perceived quality.
"""

from __future__ import annotations

import numpy as np

from .ladder import BitrateLadder

__all__ = ["AbrPolicy", "ThroughputAbr", "BufferAbr", "DcsrAwareAbr"]


class AbrPolicy:
    """Base policy: pick a level for the next segment."""

    name = "base"

    def choose(
        self, ladder: BitrateLadder, segment: int,
        throughput_estimate_bps: float, buffer_s: float,
    ) -> int:
        raise NotImplementedError

    def extra_bits(self, segment: int, level: int) -> float:
        """Side-channel bytes the policy knows it must also fetch (models)."""
        return 0.0


class ThroughputAbr(AbrPolicy):
    """Highest rung whose bitrate fits under ``safety * throughput``."""

    name = "throughput"

    def __init__(self, safety: float = 0.85):
        if not 0 < safety <= 1:
            raise ValueError("safety must be in (0, 1]")
        self.safety = float(safety)

    def choose(self, ladder, segment, throughput_estimate_bps, buffer_s):
        budget = self.safety * throughput_estimate_bps
        for level in range(ladder.n_levels):  # best quality first
            need = ladder.bitrate_bps(level, segment)
            need += self.extra_bits(segment, level) / ladder.segment_seconds[segment]
            if need <= budget:
                return level
        return ladder.n_levels - 1


class BufferAbr(AbrPolicy):
    """Buffer-threshold policy: deeper buffer -> higher quality."""

    name = "buffer"

    def __init__(self, reservoir_s: float = 4.0, cushion_s: float = 12.0):
        if reservoir_s <= 0 or cushion_s <= reservoir_s:
            raise ValueError("need 0 < reservoir < cushion")
        self.reservoir_s = float(reservoir_s)
        self.cushion_s = float(cushion_s)

    def choose(self, ladder, segment, throughput_estimate_bps, buffer_s):
        if buffer_s <= self.reservoir_s:
            return ladder.n_levels - 1
        if buffer_s >= self.cushion_s:
            return 0
        frac = (buffer_s - self.reservoir_s) / (self.cushion_s - self.reservoir_s)
        # frac = 1 -> best level (0); frac = 0 -> worst.
        return int(round((1.0 - frac) * (ladder.n_levels - 1)))


class DcsrAwareAbr(ThroughputAbr):
    """Throughput ABR that understands dcSR.

    Two changes over the base policy:

    1. **model budgeting** — segments whose micro model is not cached yet
       cost extra bits, charged through :meth:`extra_bits`;
    2. **enhanced quality targeting** — given a target quality, it picks the
       *cheapest* rung whose dcSR-enhanced quality reaches the target,
       instead of simply maxing quality under the rate budget.
    """

    name = "dcsr-aware"

    def __init__(
        self, enhanced_quality: np.ndarray, model_bits_by_segment: list[float],
        target_quality_db: float, safety: float = 0.85,
        enhanced_level: int | None = None,
    ):
        """``enhanced_quality[level][segment]`` is the post-SR PSNR;
        ``model_bits_by_segment[s]`` is the model download charged at
        segment ``s`` (zero when cached).  Models are only fetched — and
        only charged — when the client actually plays ``enhanced_level``
        (default: the bottom rung, the one dcSR prepares models for)."""
        super().__init__(safety=safety)
        self.enhanced_quality = np.asarray(enhanced_quality, dtype=np.float64)
        self.model_bits_by_segment = list(model_bits_by_segment)
        self.target_quality_db = float(target_quality_db)
        self.enhanced_level = (self.enhanced_quality.shape[0] - 1
                               if enhanced_level is None else int(enhanced_level))

    def extra_bits(self, segment: int, level: int) -> float:
        if level == self.enhanced_level:
            return self.model_bits_by_segment[segment]
        return 0.0

    def choose(self, ladder, segment, throughput_estimate_bps, buffer_s):
        budget = self.safety * throughput_estimate_bps
        seconds = ladder.segment_seconds[segment]
        affordable = []
        for level in range(ladder.n_levels):
            need = ladder.bitrate_bps(level, segment)
            need += self.extra_bits(segment, level) / seconds
            if need <= budget:
                affordable.append(level)
        if not affordable:
            return ladder.n_levels - 1
        # Cheapest affordable rung that still hits the enhanced-quality
        # target; otherwise the best-quality affordable rung.
        meeting = [lvl for lvl in affordable
                   if self.enhanced_quality[lvl, segment] >= self.target_quality_db]
        if meeting:
            return max(meeting)  # higher index = lower bitrate
        return min(affordable)
