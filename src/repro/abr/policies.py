"""ABR policies.

- :class:`ThroughputAbr` — classic rate-based selection with an EMA
  throughput estimate and a safety margin.
- :class:`BufferAbr` — BOLA-style buffer thresholds.
- :class:`DcsrAwareAbr` — the paper's discussion-section idea: the policy
  budgets for pending micro-model downloads and scores each rung by its
  *enhanced* quality, letting it ride a lower bitrate for the same
  perceived quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ladder import BitrateLadder

__all__ = ["AbrPolicy", "ThroughputAbr", "BufferAbr", "DcsrAwareAbr",
           "JointChoice", "JointPolicy"]


class AbrPolicy:
    """Base policy: pick a level for the next segment."""

    name = "base"

    def choose(
        self, ladder: BitrateLadder, segment: int,
        throughput_estimate_bps: float, buffer_s: float,
    ) -> int:
        raise NotImplementedError

    def extra_bits(self, segment: int, level: int) -> float:
        """Side-channel bytes the policy knows it must also fetch (models)."""
        return 0.0


@dataclass(frozen=True)
class JointChoice:
    """One segment's joint (rung, tier, SR-mode) decision.

    ``extra_bits`` is the tier- and precision-aware model download owed for
    this choice (zero when cached or SR is off); ``quality_bonus_db`` is
    the SR uplift credited on top of the rung's decoded quality;
    ``energy_j`` is the expected rail energy of playing the segment this
    way.
    """

    level: int
    extra_bits: float = 0.0
    quality_bonus_db: float = 0.0
    energy_j: float = 0.0
    tier: str | None = None
    precision: str = "fp32"

    @property
    def sr_enabled(self) -> bool:
        return self.tier is not None


class JointPolicy(AbrPolicy):
    """ABR policy that also decides the SR configuration per segment.

    The one-dimensional :meth:`AbrPolicy.choose` call site generalizes to
    :meth:`choose_joint`, whose ``extra_bits`` side-channel is tier- and
    precision-aware (the model download the *chosen* configuration owes,
    not a per-level table).  ``simulate_session`` drives joint policies
    through this method, credits ``quality_bonus_db`` on top of the rung
    quality, accumulates ``energy_j``, and calls :meth:`feedback` with the
    segment's realized energy so budget-tracking policies stay honest.
    """

    name = "joint"

    def choose_joint(
        self, ladder: BitrateLadder, segment: int,
        throughput_estimate_bps: float, buffer_s: float,
    ) -> JointChoice:
        raise NotImplementedError

    def choose(self, ladder, segment, throughput_estimate_bps, buffer_s):
        """Interop with rung-only call sites: the joint choice's rung."""
        return self.choose_joint(ladder, segment, throughput_estimate_bps,
                                 buffer_s).level

    def feedback(self, energy_j: float, seconds: float) -> None:
        """Realized energy of the segment just played (default: ignored)."""


class ThroughputAbr(AbrPolicy):
    """Highest rung whose bitrate fits under ``safety * throughput``."""

    name = "throughput"

    def __init__(self, safety: float = 0.85):
        if not 0 < safety <= 1:
            raise ValueError("safety must be in (0, 1]")
        self.safety = float(safety)

    def choose(self, ladder, segment, throughput_estimate_bps, buffer_s):
        budget = self.safety * throughput_estimate_bps
        for level in range(ladder.n_levels):  # best quality first
            need = ladder.bitrate_bps(level, segment)
            need += self.extra_bits(segment, level) / ladder.segment_seconds[segment]
            if need <= budget:
                return level
        return ladder.n_levels - 1


class BufferAbr(AbrPolicy):
    """Buffer-threshold policy: deeper buffer -> higher quality."""

    name = "buffer"

    def __init__(self, reservoir_s: float = 4.0, cushion_s: float = 12.0):
        if reservoir_s <= 0 or cushion_s <= reservoir_s:
            raise ValueError("need 0 < reservoir < cushion")
        self.reservoir_s = float(reservoir_s)
        self.cushion_s = float(cushion_s)

    def choose(self, ladder, segment, throughput_estimate_bps, buffer_s):
        if buffer_s <= self.reservoir_s:
            return ladder.n_levels - 1
        if buffer_s >= self.cushion_s:
            return 0
        frac = (buffer_s - self.reservoir_s) / (self.cushion_s - self.reservoir_s)
        # frac = 1 -> best level (0); frac = 0 -> worst.
        return int(round((1.0 - frac) * (ladder.n_levels - 1)))


class DcsrAwareAbr(ThroughputAbr):
    """Throughput ABR that understands dcSR.

    Two changes over the base policy:

    1. **model budgeting** — segments whose micro model is not cached yet
       cost extra bits, charged through :meth:`extra_bits`;
    2. **enhanced quality targeting** — given a target quality, it picks the
       *cheapest* rung whose dcSR-enhanced quality reaches the target,
       instead of simply maxing quality under the rate budget.
    """

    name = "dcsr-aware"

    def __init__(
        self, enhanced_quality: np.ndarray,
        model_bits_by_segment: list[float] | None = None,
        target_quality_db: float = 0.0, safety: float = 0.85,
        enhanced_level: int | None = None,
        manifest=None, precision: str = "fp32",
    ):
        """``enhanced_quality[level][segment]`` is the post-SR PSNR;
        ``model_bits_by_segment[s]`` is the model download charged at
        segment ``s`` (zero when cached).  Models are only fetched — and
        only charged — when the client actually plays ``enhanced_level``
        (default: the bottom rung, the one dcSR prepares models for).

        Instead of a precomputed bits table, pass ``manifest`` (a
        :class:`~repro.core.manifest.VideoManifest`) plus the client's
        playback ``precision``: each model is then budgeted at its *actual*
        download size — ``manifest.model_size_for(label, precision)`` —
        charged at the label's first segment, instead of always charging
        fp32 bytes even when the client plays a quantized checkpoint.
        """
        super().__init__(safety=safety)
        self.enhanced_quality = np.asarray(enhanced_quality, dtype=np.float64)
        if (model_bits_by_segment is None) == (manifest is None):
            raise ValueError(
                "pass exactly one of model_bits_by_segment or manifest")
        if manifest is not None:
            seen: set[int] = set()
            model_bits_by_segment = []
            for label in manifest.label_sequence():
                if label in seen:
                    model_bits_by_segment.append(0.0)
                else:
                    seen.add(label)
                    model_bits_by_segment.append(
                        manifest.model_size_for(label, precision) * 8.0)
        self.model_bits_by_segment = list(model_bits_by_segment)
        self.target_quality_db = float(target_quality_db)
        self.enhanced_level = (self.enhanced_quality.shape[0] - 1
                               if enhanced_level is None else int(enhanced_level))

    def extra_bits(self, segment: int, level: int) -> float:
        if level == self.enhanced_level:
            return self.model_bits_by_segment[segment]
        return 0.0

    def choose(self, ladder, segment, throughput_estimate_bps, buffer_s):
        budget = self.safety * throughput_estimate_bps
        seconds = ladder.segment_seconds[segment]
        affordable = []
        for level in range(ladder.n_levels):
            need = ladder.bitrate_bps(level, segment)
            need += self.extra_bits(segment, level) / seconds
            if need <= budget:
                affordable.append(level)
        if not affordable:
            return ladder.n_levels - 1
        # Cheapest affordable rung that still hits the enhanced-quality
        # target; otherwise the best-quality affordable rung.
        meeting = [lvl for lvl in affordable
                   if self.enhanced_quality[lvl, segment] >= self.target_quality_db]
        if meeting:
            return max(meeting)  # higher index = lower bitrate
        return min(affordable)
