"""Joint ABR x SR control plane.

Picks the per-segment tuple (ladder rung, micro-model tier, SR on/off +
precision) against a client power budget, buffer state, and throughput
estimate.  Imports only ``repro.abr``-level-and-below layers (``devices``,
``sr``) so both the solo client and the fleet scheduler can reuse it —
never ``repro.serve`` or ``repro.cli`` (guarded by
``tests/control/test_no_upward_imports.py``).
"""

from .bridge import LadderControllerPolicy, iframe_counts
from .context import (SR_OFF, ControlContext, ControlDecision, SrOption,
                      tier_options)
from .controller import (CONTROLLER_NAMES, FixedController,
                         GreedyKnapsackController, JointController,
                         build_controller)
from .energy import SegmentEnergy, segment_energy

__all__ = [
    "SrOption",
    "SR_OFF",
    "ControlContext",
    "ControlDecision",
    "tier_options",
    "JointController",
    "GreedyKnapsackController",
    "FixedController",
    "CONTROLLER_NAMES",
    "build_controller",
    "SegmentEnergy",
    "segment_energy",
    "LadderControllerPolicy",
    "iframe_counts",
]
