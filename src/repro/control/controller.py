"""Joint (ladder rung, model tier, SR-mode) controllers.

The control problem follows the adaptive-SR literature (delay/power-aware
quality control, arxiv 2110.05783; bitrate/energy-optimized "green
streaming", arxiv 2402.03513): at every segment boundary pick the tuple
that maximizes expected quality subject to a bandwidth estimate *and* a
client power budget.

- :class:`GreedyKnapsackController` — the baseline joint policy: treat SR
  configurations as knapsack items valued by quality uplift and weighed by
  joules + model bits, and greedily take the densest affordable upgrade
  over the best plain-ABR rung.
- :class:`FixedController` — rung-only throughput ABR with a pinned SR
  configuration (always-off or always-on-at-tier); the fixed points the
  benchmark frontier compares the joint policy against.

Controllers are deterministic: the same context sequence and feedback
produces the same decision sequence, bit for bit.
"""

from __future__ import annotations

from ..devices import DeviceSpec
from .context import ControlContext, ControlDecision, SrOption
from .energy import segment_energy

__all__ = ["JointController", "GreedyKnapsackController", "FixedController",
           "CONTROLLER_NAMES", "build_controller"]


class JointController:
    """Base joint controller: decision loop plus realized-energy state.

    ``power_budget_w`` caps the *session-average* rail power: a candidate
    is power-feasible only if playing it keeps cumulative joules at or
    under ``budget x played seconds``.  ``None`` means unconstrained.
    The client calls :meth:`feedback` with realized energy after each
    segment, so the budget binds on what actually happened, not on the
    controller's own predictions.
    """

    name = "joint"

    def __init__(self, device: DeviceSpec,
                 power_budget_w: float | None = None):
        if power_budget_w is not None and power_budget_w <= 0:
            raise ValueError("power_budget_w must be positive (or None)")
        self.device = device
        self.power_budget_w = power_budget_w
        self.energy_spent_j = 0.0
        self.played_seconds = 0.0
        self.decisions: list[ControlDecision] = []

    def decide(self, ctx: ControlContext) -> ControlDecision:
        decision = self._decide(ctx)
        self.decisions.append(decision)
        return decision

    def _decide(self, ctx: ControlContext) -> ControlDecision:
        raise NotImplementedError

    def feedback(self, energy_j: float, seconds: float) -> None:
        """Fold one segment's *realized* energy into the budget state."""
        if energy_j < 0 or seconds < 0:
            raise ValueError("feedback must be non-negative")
        self.energy_spent_j += float(energy_j)
        self.played_seconds += float(seconds)

    @property
    def mean_power_w(self) -> float:
        if self.played_seconds <= 0:
            return 0.0
        return self.energy_spent_j / self.played_seconds

    def power_feasible(self, energy_j: float, seconds: float) -> bool:
        if self.power_budget_w is None:
            return True
        total_s = self.played_seconds + seconds
        if total_s <= 0:
            return True
        return (self.energy_spent_j + energy_j
                <= self.power_budget_w * total_s)

    def reset(self) -> None:
        """Forget all session state (for replaying another session)."""
        self.energy_spent_j = 0.0
        self.played_seconds = 0.0
        self.decisions = []


class GreedyKnapsackController(JointController):
    """Greedy knapsack baseline over the joint decision space.

    Per segment: (1) pick the best bandwidth-feasible rung with SR off —
    classic throughput ABR, the guaranteed-playable floor; (2) enumerate
    every (rung, tier, precision) candidate that fits the bandwidth budget
    (segment bits + model bits owed) *and* the session power budget;
    (3) among candidates that beat the floor's quality, take the one with
    the highest quality-uplift-per-SR-joule density.  A thin buffer
    (below ``panic_buffer_s``, default one segment) forces the cheapest
    rung with SR off — stall avoidance outranks quality.
    """

    name = "greedy"

    def __init__(self, device: DeviceSpec,
                 power_budget_w: float | None = None, safety: float = 0.85,
                 panic_buffer_s: float | None = None):
        super().__init__(device, power_budget_w)
        if not 0 < safety <= 1:
            raise ValueError("safety must be in (0, 1]")
        if panic_buffer_s is not None and panic_buffer_s < 0:
            raise ValueError("panic_buffer_s must be non-negative")
        self.safety = float(safety)
        self.panic_buffer_s = panic_buffer_s

    def _decide(self, ctx: ControlContext) -> ControlDecision:
        off = ctx.off_option
        off_energy = segment_energy(self.device, ctx.segment_seconds)
        panic_below = (self.panic_buffer_s if self.panic_buffer_s is not None
                       else ctx.segment_seconds)
        worst = ctx.n_levels - 1
        if ctx.buffer_s < panic_below and ctx.segment > 0:
            return ControlDecision(
                segment=ctx.segment, level=worst, option=off,
                quality_db=ctx.rung_quality_db[worst],
                energy_j=off_energy.energy_j,
                download_bits=ctx.rung_bits[worst])

        budget_bits = self.safety * ctx.throughput_bps * ctx.segment_seconds
        floor: ControlDecision | None = None
        upgrades: list[tuple[ControlDecision, float]] = []
        for option in ctx.sr_options:
            if option.enabled:
                energy = segment_energy(
                    self.device, ctx.segment_seconds,
                    option.flops_per_inference, ctx.n_inferences)
                if not self.power_feasible(energy.energy_j,
                                           ctx.segment_seconds):
                    continue
            else:
                energy = off_energy
            for level in range(ctx.n_levels):
                bits = ctx.rung_bits[level] + option.model_bits
                if bits > budget_bits:
                    continue
                quality = ctx.rung_quality_db[level] + option.gain_db
                decision = ControlDecision(
                    segment=ctx.segment, level=level, option=option,
                    quality_db=quality, energy_j=energy.energy_j,
                    download_bits=bits)
                if not option.enabled:
                    if (floor is None or quality > floor.quality_db
                            or (quality == floor.quality_db
                                and bits < floor.download_bits)):
                        floor = decision
                else:
                    upgrades.append((decision, energy.sr_j))

        if floor is None:
            # Nothing fits the bandwidth budget: take the cheapest rung
            # with SR off and eat the stall.
            return ControlDecision(
                segment=ctx.segment, level=worst, option=off,
                quality_db=ctx.rung_quality_db[worst],
                energy_j=off_energy.energy_j,
                download_bits=ctx.rung_bits[worst])

        best = floor
        best_rank: tuple | None = None
        for decision, sr_j in upgrades:
            uplift = decision.quality_db - floor.quality_db
            if uplift <= 0:
                continue
            density = uplift / max(sr_j, 1e-9)
            # Deterministic preference: densest first, then higher quality,
            # then fewer joules/bits, then the stable option identity.
            rank = (-density, -decision.quality_db, decision.energy_j,
                    decision.download_bits, decision.level,
                    decision.option.tier or "", decision.option.precision)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best = decision
        return best


class FixedController(JointController):
    """Rung-only throughput ABR with a pinned SR configuration.

    The fixed points of the frontier: ``tier=None`` reproduces plain
    rate-based ABR (SR never runs); a named tier keeps SR always on at
    that tier/precision, charging the model download but never letting it
    — or the power budget — influence the rung choice.  What the joint
    controller must beat.
    """

    name = "fixed"

    def __init__(self, device: DeviceSpec, tier: str | None = None,
                 precision: str = "fp32",
                 power_budget_w: float | None = None, safety: float = 0.85):
        super().__init__(device, power_budget_w)
        if not 0 < safety <= 1:
            raise ValueError("safety must be in (0, 1]")
        self.tier = tier
        self.precision = precision
        self.safety = float(safety)

    def _option(self, ctx: ControlContext) -> SrOption:
        if self.tier is None:
            return ctx.off_option
        for option in ctx.sr_options:
            if option.tier == self.tier and option.precision == self.precision:
                return option
        return ctx.off_option  # tier not published for this segment

    def _decide(self, ctx: ControlContext) -> ControlDecision:
        budget_bps = self.safety * ctx.throughput_bps
        level = ctx.n_levels - 1
        for candidate in range(ctx.n_levels):  # best quality first
            if ctx.rung_bits[candidate] / ctx.segment_seconds <= budget_bps:
                level = candidate
                break
        option = self._option(ctx)
        energy = segment_energy(
            self.device, ctx.segment_seconds,
            option.flops_per_inference if option.enabled else 0.0,
            ctx.n_inferences if option.enabled else 0)
        return ControlDecision(
            segment=ctx.segment, level=level, option=option,
            quality_db=ctx.rung_quality_db[level] + option.gain_db,
            energy_j=energy.energy_j,
            download_bits=ctx.rung_bits[level] + option.model_bits)


#: Names :func:`build_controller` (and the CLI ``--controller`` flag)
#: accepts.  ``"off"`` disables joint control entirely.
CONTROLLER_NAMES = ("greedy", "fixed", "off")


def build_controller(
    name: str, device: DeviceSpec, power_budget_w: float | None = None,
    tier: str | None = None, precision: str = "fp32", safety: float = 0.85,
) -> JointController | None:
    """Controller factory keyed by :data:`CONTROLLER_NAMES`.

    ``"off"`` returns ``None`` — callers treat that as "keep the
    pre-controller code path", which stays bitwise-identical.
    """
    if name == "greedy":
        return GreedyKnapsackController(device, power_budget_w=power_budget_w,
                                        safety=safety)
    if name == "fixed":
        return FixedController(device, tier=tier, precision=precision,
                               power_budget_w=power_budget_w, safety=safety)
    if name in ("off", "none"):
        return None
    raise ValueError(
        f"unknown controller {name!r}; choose from {CONTROLLER_NAMES}")
