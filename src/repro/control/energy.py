"""Per-segment energy accounting for the joint controller.

Candidate SR configurations are costed with the same device power model
playback telemetry uses (:func:`repro.devices.sr_power_draw` +
:func:`repro.devices.simulate_power`), so the controller's predicted
joules and the client's realized joules come from one model and the
feedback loop cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices import (DeviceSpec, playback_power_schedule, simulate_power,
                       sr_power_draw)

__all__ = ["SegmentEnergy", "segment_energy"]


@dataclass(frozen=True)
class SegmentEnergy:
    """Energy breakdown of one segment under one SR configuration."""

    energy_j: float        # total rail energy over the segment
    baseline_j: float      # idle + decode floor (SR off)
    infer_seconds: float   # latency of one inference
    sr_watts: float        # instantaneous draw while inferring

    @property
    def sr_j(self) -> float:
        """Energy attributable to SR on top of the decode baseline."""
        return max(0.0, self.energy_j - self.baseline_j)


def segment_energy(
    device: DeviceSpec, segment_seconds: float,
    flops_per_inference: float = 0.0, n_inferences: int = 0,
    dt: float = 0.05,
) -> SegmentEnergy:
    """Rail energy of playing one segment on ``device``.

    ``flops_per_inference`` / ``n_inferences`` describe the SR work the
    segment triggers (zero for SR off).  The timeline is sampled exactly
    like :func:`repro.devices.simulate_power`, so repeated calls are
    bit-identical for the same inputs.
    """
    if segment_seconds <= 0:
        raise ValueError("segment_seconds must be positive")
    if n_inferences < 0:
        raise ValueError("n_inferences must be non-negative")
    baseline = (device.power_idle_w + device.power_decode_w) * segment_seconds
    if n_inferences == 0 or flops_per_inference <= 0:
        return SegmentEnergy(energy_j=baseline, baseline_j=baseline,
                             infer_seconds=0.0, sr_watts=0.0)
    infer_s = flops_per_inference / device.effective_flops
    watts = sr_power_draw(device, flops_per_inference, infer_s)
    intervals = playback_power_schedule([segment_seconds], n_inferences,
                                        infer_s)
    timeline = simulate_power(device, segment_seconds, intervals, watts,
                              dt=dt)
    return SegmentEnergy(energy_j=timeline.energy_joules, baseline_j=baseline,
                         infer_seconds=infer_s, sr_watts=watts)
