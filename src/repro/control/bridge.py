"""Adapter between the joint controller and the ABR session simulator.

:class:`LadderControllerPolicy` is a :class:`~repro.abr.JointPolicy` that
builds a :class:`~repro.control.ControlContext` from the ladder at every
segment boundary, lets a :class:`~repro.control.JointController` pick the
(rung, tier, SR-mode) tuple, and tracks which checkpoints the session has
already downloaded so model bits are charged exactly once per
(label, tier, precision).
"""

from __future__ import annotations

from ..abr.policies import JointChoice, JointPolicy
from .context import ControlContext, tier_options
from .controller import JointController

__all__ = ["LadderControllerPolicy", "iframe_counts"]


def iframe_counts(encoded) -> list[int]:
    """Real per-segment SR inference counts of an encoded video.

    dcSR runs one inference per I frame, so each segment's count is its
    I-frame tally: from the per-frame metadata when present, else
    re-derived from the GOP plan (packages saved before frame info was
    persisted load with empty ``frames``) — the same two-source rule the
    client and the fleet scheduler apply.
    """
    counts = []
    for segment in encoded.segments:
        if segment.frames:
            counts.append(sum(1 for fr in segment.frames
                              if fr.ftype == "I"))
            continue
        from ..video.codec.gop import plan_segment
        codec = encoded.config
        plans = plan_segment(segment.start, segment.n_frames,
                             codec.n_b_frames, codec.extra_i_interval)
        counts.append(sum(1 for plan in plans if plan.ftype == "I"))
    return counts


class LadderControllerPolicy(JointPolicy):
    """Drive a :class:`JointController` through ``abr.simulate_session``.

    ``manifest`` supplies the per-segment model labels and the published
    tier table (duck-typed, see :func:`~repro.control.tier_options`);
    ``encoded`` (the package's encoded video) supplies real per-segment
    I-frame counts via :func:`iframe_counts`, so the controller prices SR
    energy the way the client actually spends it;
    ``n_inferences_by_segment`` overrides those counts explicitly.
    Without either, every segment is priced at one inference — the
    historical default, which undercharges segments with extra I frames.
    """

    name = "controller"

    def __init__(self, controller: JointController, manifest,
                 n_inferences_by_segment: list[int] | None = None,
                 encoded=None):
        self.controller = controller
        self.manifest = manifest
        self.labels = list(manifest.label_sequence())
        if n_inferences_by_segment is None and encoded is not None:
            n_inferences_by_segment = iframe_counts(encoded)
        self.n_inferences_by_segment = n_inferences_by_segment
        self._downloaded: set[tuple[int, str, str]] = set()

    def reset(self) -> None:
        """Forget session state for replaying another trace."""
        self.controller.reset()
        self._downloaded = set()

    def _cached_for(self, label: int) -> frozenset:
        return frozenset((tier, precision)
                         for (lab, tier, precision) in self._downloaded
                         if lab == label)

    def choose_joint(self, ladder, segment, throughput_estimate_bps,
                     buffer_s) -> JointChoice:
        label = self.labels[segment]
        options = tier_options(self.manifest, label,
                               cached=self._cached_for(label))
        n_inferences = (self.n_inferences_by_segment[segment]
                        if self.n_inferences_by_segment is not None else 1)
        ctx = ControlContext(
            segment=segment,
            segment_seconds=ladder.segment_seconds[segment],
            throughput_bps=throughput_estimate_bps,
            buffer_s=buffer_s,
            rung_bits=tuple(
                float(ladder.levels[lvl].segment_bits[segment])
                for lvl in range(ladder.n_levels)),
            rung_quality_db=tuple(
                float(ladder.levels[lvl].segment_quality[segment])
                for lvl in range(ladder.n_levels)),
            sr_options=options,
            n_inferences=n_inferences,
        )
        decision = self.controller.decide(ctx)
        if decision.sr_enabled:
            self._downloaded.add(
                (label, decision.tier, decision.precision))
        return JointChoice(
            level=decision.level,
            extra_bits=decision.option.model_bits,
            quality_bonus_db=(decision.option.gain_db
                              if decision.sr_enabled else 0.0),
            energy_j=decision.energy_j,
            tier=decision.tier,
            precision=decision.precision,
        )

    def feedback(self, energy_j: float, seconds: float) -> None:
        self.controller.feedback(energy_j, seconds)
