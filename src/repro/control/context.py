"""The joint controller's per-segment decision space.

A :class:`ControlContext` is everything the caller knows at a segment
boundary — the ladder rungs, the published SR options, buffer and
throughput state — and a :class:`ControlDecision` is the tuple the
controller picks: (ladder rung, micro-model tier, SR on/off + precision).

The context is plain data so the control plane stays import-light: the
solo client and the fleet scheduler both build contexts from whatever
manifest/ladder objects they hold, and the controller never needs to see
them (see ``tests/control/test_no_upward_imports.py`` for the layering
guard).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..devices import model_forward_flops
from ..sr import EDSR, EdsrConfig

__all__ = ["SrOption", "SR_OFF", "ControlContext", "ControlDecision",
           "tier_options"]


@dataclass(frozen=True)
class SrOption:
    """One playable SR configuration for a segment.

    ``gain_db`` is the calibrated quality uplift *net* of the precision's
    quantization cost (:attr:`~repro.core.manifest.ModelTierRecord.net_gain_db`);
    ``model_bits`` is the download still owed for the checkpoint (zero when
    the client already holds it); ``flops_per_inference`` drives the energy
    model.  ``tier=None`` is the SR-off configuration.
    """

    tier: str | None
    precision: str = "fp32"
    gain_db: float = 0.0
    model_bits: float = 0.0
    flops_per_inference: float = 0.0

    def __post_init__(self):
        if self.model_bits < 0:
            raise ValueError("model_bits must be non-negative")
        if self.flops_per_inference < 0:
            raise ValueError("flops_per_inference must be non-negative")

    @property
    def enabled(self) -> bool:
        return self.tier is not None


#: The always-available SR-off configuration.
SR_OFF = SrOption(tier=None)


@dataclass(frozen=True)
class ControlContext:
    """Everything a controller sees at one segment boundary."""

    segment: int
    segment_seconds: float
    throughput_bps: float
    buffer_s: float
    #: Per-rung download bits of this segment, best quality first
    #: (matching :class:`~repro.abr.BitrateLadder` level order).
    rung_bits: tuple[float, ...]
    #: Per-rung decoded quality (dB), same order as ``rung_bits``.
    rung_quality_db: tuple[float, ...]
    sr_options: tuple[SrOption, ...] = (SR_OFF,)
    #: SR inferences the segment triggers when enhancement is on
    #: (its I-frame count).
    n_inferences: int = 1

    def __post_init__(self):
        if self.segment_seconds <= 0:
            raise ValueError("segment_seconds must be positive")
        if not self.rung_bits:
            raise ValueError("need at least one ladder rung")
        if len(self.rung_bits) != len(self.rung_quality_db):
            raise ValueError("rung_bits and rung_quality_db must align")
        if self.n_inferences < 0:
            raise ValueError("n_inferences must be non-negative")

    @property
    def n_levels(self) -> int:
        return len(self.rung_bits)

    @property
    def off_option(self) -> SrOption:
        for option in self.sr_options:
            if not option.enabled:
                return option
        return SR_OFF


@dataclass(frozen=True)
class ControlDecision:
    """The tuple a controller picked for one segment."""

    segment: int
    level: int
    option: SrOption
    quality_db: float       # expected quality including SR gain
    energy_j: float         # expected rail energy over the segment
    download_bits: float    # segment bits + any model bits owed

    @property
    def sr_enabled(self) -> bool:
        return self.option.enabled

    @property
    def tier(self) -> str | None:
        return self.option.tier

    @property
    def precision(self) -> str:
        return self.option.precision

    def key(self) -> tuple:
        """Hashable identity for decision-sequence comparisons."""
        return (self.segment, self.level, self.option.tier,
                self.option.precision)


# FLOPs depend only on (architecture, frame size); memoized so per-segment
# context building never re-traces the same tier.
_FLOPS_MEMO: dict[tuple[int, int, int, int], float] = {}


def _tier_flops(n_resblocks: int, n_filters: int, height: int,
                width: int) -> float:
    key = (n_resblocks, n_filters, height, width)
    cached = _FLOPS_MEMO.get(key)
    if cached is None:
        model = EDSR(EdsrConfig(n_resblocks=n_resblocks, n_filters=n_filters))
        cached = model_forward_flops(model, height, width)
        _FLOPS_MEMO[key] = cached
    return cached


def tier_options(
    manifest, label: int, cached: frozenset | set | tuple = (),
) -> tuple[SrOption, ...]:
    """SR-off plus every published (tier, precision) option of ``label``.

    ``manifest`` is duck-typed (anything with ``tiers``/``width``/``height``
    — a :class:`~repro.core.manifest.VideoManifest` in practice, but the
    control plane never imports ``repro.core``).  ``cached`` holds the
    ``(tier, precision)`` pairs whose checkpoints the client already has;
    those options owe zero model bits.  Options come out in ascending
    (size, tier, precision) order — the greedy knapsack walk order.
    """
    options: list[SrOption] = [SR_OFF]
    by_tier = getattr(manifest, "tiers", {}).get(label, {})
    ranked = sorted(by_tier,
                    key=lambda t: (by_tier[t]["fp32"].size_bytes, t))
    for tier in ranked:
        for precision in sorted(by_tier[tier]):
            record = by_tier[tier][precision]
            flops = _tier_flops(record.n_resblocks, record.n_filters,
                                manifest.height, manifest.width)
            owed = (0.0 if (tier, precision) in cached
                    else record.size_bytes * 8.0)
            options.append(SrOption(
                tier=tier, precision=precision, gain_db=record.net_gain_db,
                model_bits=owed, flops_per_inference=flops))
    return tuple(options)
