"""Asyncio HTTP/1.1 origin server for dcSR packages.

A real CDN origin stores exactly what :func:`repro.core.persist.save_package`
writes: ``manifest.json``, raw segment bitstreams, and ``.npz`` micro-model
checkpoints.  :class:`DcsrOrigin` serves that directory over a hand-rolled,
stdlib-only HTTP/1.1 implementation on one asyncio event loop — no threads,
no third-party frameworks — with the subset of HTTP semantics a streaming
client actually leans on:

- **Content-Length** on every response (the transport verifies it and
  treats a short body as a truncation fault);
- **ETag / If-None-Match** revalidation (strong ETags derived from file
  content, so a package rebuild changes them and a 304 can never serve
  stale bytes);
- **Range** requests (single ``bytes=a-b`` / ``bytes=a-`` / suffix
  ``bytes=-n`` forms; a syntactically valid but unsatisfiable range is
  ``416`` with ``Content-Range: bytes */size``, a malformed header is
  ignored per RFC 9110 and answered with the full ``200``);
- **keep-alive** connection reuse (closed on ``Connection: close`` or
  client EOF) and **HEAD**.

Every request lands in the origin's :class:`~repro.obs.Observability`
registry (``dcsr_origin_requests_total`` by method/status,
``dcsr_origin_bytes_total``), so a serving trace covers both sides of the
socket.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from ..obs import Observability

__all__ = ["OriginConfig", "DcsrOrigin"]

_SERVER_NAME = "dcsr-origin/1"
#: Reason phrases for the statuses this origin emits.
_REASONS = {
    200: "OK", 204: "No Content", 206: "Partial Content",
    304: "Not Modified", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    416: "Range Not Satisfiable", 431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


@dataclass(frozen=True)
class OriginConfig:
    """Listener shape of one origin.

    ``port = 0`` binds an ephemeral port (the test fixture default); the
    bound port is available as :attr:`DcsrOrigin.port` after ``start``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    #: Drop a connection whose request head exceeds this many bytes.
    max_request_bytes: int = 16384
    #: Seconds to wait for the next request on a kept-alive connection
    #: before closing it.  ``None`` waits forever (CLI default).
    idle_timeout_s: float | None = 30.0

    def __post_init__(self):
        if self.max_request_bytes < 1024:
            raise ValueError("max_request_bytes must be >= 1024")
        if self.idle_timeout_s is not None and self.idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive (or None)")


class _BadRequest(Exception):
    """Parse failure; carries the HTTP status to answer with."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class DcsrOrigin:
    """Serve one package directory over HTTP/1.1 on an asyncio loop.

    Parameters
    ----------
    root:
        The package directory (`manifest.json`, ``segments/``,
        ``models/``), as written by
        :func:`repro.core.persist.save_package`.  Any file under it is
        servable; paths are resolved and confined to ``root``, so
        traversal (``..``) cannot escape.
    config:
        Listener shape; defaults to loopback on an ephemeral port.
    obs:
        Optional observability session for request/byte counters.
    """

    def __init__(self, root: str | Path, config: OriginConfig | None = None,
                 obs: Observability | None = None):
        self.root = Path(root).resolve()
        if not self.root.is_dir():
            raise FileNotFoundError(f"package directory {self.root} missing")
        self.config = config or OriginConfig()
        self.obs = obs or Observability(root_name="origin")
        self._server: asyncio.AbstractServer | None = None
        #: path -> (stat signature, etag); invalidated when the file
        #: changes, so a package rebuild rotates the ETag.
        self._etags: dict[Path, tuple[tuple[int, int], str]] = {}
        self.host = self.config.host
        self.port = self.config.port

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> "DcsrOrigin":
        """Bind the listener; resolves the ephemeral port."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self

    async def stop(self) -> None:
        """Close the listener and wait for it to wind down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "DcsrOrigin":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled (CLI entry)."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------- plumbing

    def _count(self, method: str, status: int, n_bytes: int) -> None:
        metrics = self.obs.metrics
        metrics.counter(
            "dcsr_origin_requests_total",
            "Origin HTTP requests by method and status",
        ).inc(method=method, status=str(status))
        if n_bytes:
            metrics.counter(
                "dcsr_origin_bytes_total",
                "Response body bytes sent by the origin",
            ).inc(n_bytes)

    def etag_for(self, path: Path) -> str:
        """Strong ETag of one file: content hash, cached by stat signature."""
        stat = path.stat()
        signature = (stat.st_mtime_ns, stat.st_size)
        cached = self._etags.get(path)
        if cached is not None and cached[0] == signature:
            return cached[1]
        digest = hashlib.sha256(path.read_bytes()).hexdigest()[:32]
        etag = f'"{digest}"'
        self._etags[path] = (signature, etag)
        return etag

    def _resolve(self, url_path: str) -> Path | None:
        """Map a request path to a file under ``root`` (or ``None``)."""
        relative = url_path.lstrip("/")
        if not relative or "\x00" in relative:
            return None
        candidate = (self.root / relative).resolve()
        if not candidate.is_relative_to(self.root):
            return None                       # traversal attempt
        return candidate if candidate.is_file() else None

    # ------------------------------------------------------------- requests

    async def _read_head(self, reader: asyncio.StreamReader) -> bytes:
        limit = self.config.max_request_bytes
        head = b""
        while b"\r\n\r\n" not in head:
            if len(head) > limit:
                raise _BadRequest(431, "request head too large")
            try:
                if self.config.idle_timeout_s is not None and not head:
                    chunk = await asyncio.wait_for(
                        reader.read(4096), self.config.idle_timeout_s)
                else:
                    chunk = await reader.read(4096)
            except asyncio.TimeoutError:
                raise _BadRequest(408, "idle connection") from None
            if not chunk:
                if head:
                    raise _BadRequest(400, "truncated request head")
                raise EOFError                # clean close between requests
            head += chunk
        return head.split(b"\r\n\r\n", 1)[0]

    @staticmethod
    def _parse_head(head: bytes) -> tuple[str, str, dict[str, str]]:
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, target, version = lines[0].split(" ")
        except ValueError:
            raise _BadRequest(400, "malformed request line") from None
        if not version.startswith("HTTP/1."):
            raise _BadRequest(400, f"unsupported version {version!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            if not _:
                raise _BadRequest(400, f"malformed header {line!r}")
            headers[name.strip().lower()] = value.strip()
        path = target.split("?", 1)[0]
        return method, path, headers

    @staticmethod
    def parse_range(header: str, size: int) -> tuple[int, int] | None:
        """One satisfiable ``(start, end)`` byte range, inclusive.

        ``None`` means "ignore the header, serve the full body" (the RFC's
        treatment of a malformed or multi-part value); an unsatisfiable
        but well-formed range raises :class:`_BadRequest` (416).
        """
        if not header.startswith("bytes="):
            return None
        spec = header[len("bytes="):].strip()
        if "," in spec or not spec:
            return None                       # multi-range unsupported
        first, dash, last = spec.partition("-")
        if not dash:
            return None
        try:
            if not first:                     # suffix: bytes=-n
                n = int(last)
                if n <= 0:
                    raise _BadRequest(416, "empty suffix range")
                return max(0, size - n), size - 1
            start = int(first)
            end = int(last) if last else size - 1
        except ValueError:
            return None
        if start >= size:
            raise _BadRequest(416, f"range start {start} beyond size {size}")
        if start > end:
            return None
        return start, min(end, size - 1)

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       headers: list[tuple[str, str]], body: bytes,
                       *, head_only: bool = False,
                       keep_alive: bool = True) -> int:
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                 f"Server: {_SERVER_NAME}"]
        lines += [f"{name}: {value}" for name, value in headers]
        lines.append(
            f"Connection: {'keep-alive' if keep_alive else 'close'}")
        payload = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
        sent = 0
        writer.write(payload)
        if body and not head_only:
            writer.write(body)
            sent = len(body)
        await writer.drain()
        return sent

    def _build_response(self, method: str, path: str,
                        headers: dict[str, str]):
        """Route one request: returns ``(status, headers, body)``."""
        if method not in ("GET", "HEAD"):
            return 405, [("Allow", "GET, HEAD"),
                         ("Content-Length", "0")], b""
        if path in ("/", "/healthz"):
            body = json.dumps({
                "package": self.root.name,
                "status": "ok",
            }).encode()
            return 200, [("Content-Type", "application/json"),
                         ("Content-Length", str(len(body)))], body
        target = self._resolve(path)
        if target is None:
            body = b"not found"
            return 404, [("Content-Type", "text/plain"),
                         ("Content-Length", str(len(body)))], body

        etag = self.etag_for(target)
        content_type = ("application/json" if target.suffix == ".json"
                        else "application/octet-stream")
        base = [("ETag", etag), ("Accept-Ranges", "bytes"),
                ("Content-Type", content_type)]

        candidates = headers.get("if-none-match")
        if candidates is not None:
            tags = [t.strip() for t in candidates.split(",")]
            if "*" in tags or etag in tags:
                return 304, base + [("Content-Length", "0")], b""

        data = target.read_bytes()
        size = len(data)
        range_header = headers.get("range")
        if range_header is not None:
            try:
                span = self.parse_range(range_header, size)
            except _BadRequest:
                return 416, base + [
                    ("Content-Range", f"bytes */{size}"),
                    ("Content-Length", "0")], b""
            if span is not None:
                start, end = span
                body = data[start:end + 1]
                return 206, base + [
                    ("Content-Range", f"bytes {start}-{end}/{size}"),
                    ("Content-Length", str(len(body)))], body
        return 200, base + [("Content-Length", str(size))], data

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    head = await self._read_head(reader)
                    method, path, headers = self._parse_head(head)
                except EOFError:
                    return
                except _BadRequest as exc:
                    await self._respond(
                        writer, exc.status, [("Content-Length", "0")], b"",
                        keep_alive=False)
                    self._count("?", exc.status, 0)
                    return
                keep_alive = headers.get("connection", "").lower() != "close"
                try:
                    status, out_headers, body = self._build_response(
                        method, path, headers)
                except OSError:               # file vanished mid-request
                    status, out_headers, body = 500, [
                        ("Content-Length", "0")], b""
                sent = await self._respond(
                    writer, status, out_headers, body,
                    head_only=(method == "HEAD"), keep_alive=keep_alive)
                self._count(method, status, sent)
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass                              # client went away mid-write
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
