"""Asyncio HTTP client transport that plugs in where ``SimulatedNetwork``
does.

:class:`HttpTransport` is the production-shaped half of the network seam:
the same duck-typed surface the whole client stack is written against —
``download(kind, key, n_bytes) -> seconds``, a ``clock``, ``stats``,
``config``, ``obs``/``session`` attributes, and the private ``_count``
hook :func:`repro.core.network.download_with_retry` uses — backed by real
TCP sockets instead of a simulated schedule.  ``DcsrClient``, the model
caches, retry/backoff, and the fleet simulator's playback mode therefore
run unmodified over either transport; the dual-transport contract suite
(``tests/net/test_transport_contract.py``) holds them to identical
behavior.

Design notes:

- **Sync facade, async core.**  The client stack is synchronous, so each
  ``download`` drives a private asyncio event loop to completion
  (``run_until_complete``).  No threads are involved — when the loop is
  shared with an in-process :class:`~repro.net.DcsrOrigin` (the loopback
  test topology), the same ``run_until_complete`` call runs the server's
  handler coroutines too.
- **One connection per request.**  Requests carry ``Connection: close``,
  so a fault-injection proxy can key its per-connection fault schedule
  one-to-one to download attempts, mirroring ``SimulatedNetwork``'s
  per-attempt failure schedule.
- **Time domains.**  Measured wall seconds of each transfer are returned
  to the caller *and* advanced onto :attr:`clock` (a
  :class:`~repro.obs.SimulatedClock`), so retry backoff — which the
  shared retry helper charges to ``clock`` — and transfer time accumulate
  in one domain, exactly as they do on the simulated network.  Backoff is
  never slept.
- **Typed errors.**  Every transport failure maps onto a
  :class:`~repro.core.network.DownloadError` subclass
  (:class:`OriginUnreachable`, :class:`TruncatedBody`,
  :class:`StalledRead`, :class:`HttpStatusError`), so the client's
  existing retry / concealment / fallback paths engage with no changes.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

from ..core.network import DownloadError, DownloadStats, NetworkConfig
from ..obs import Observability, SimulatedClock, wall_clock

__all__ = [
    "TransportError",
    "OriginUnreachable",
    "TruncatedBody",
    "StalledRead",
    "HttpStatusError",
    "HttpTransport",
    "segment_path",
    "model_path",
    "mirror_package",
]


class TransportError(DownloadError):
    """A real-socket download failed (maps onto the simulated taxonomy)."""


class OriginUnreachable(TransportError):
    """Connect failure or connection reset mid-transfer."""


class TruncatedBody(TransportError):
    """The peer closed before ``Content-Length`` bytes arrived."""


class StalledRead(TransportError):
    """No bytes arrived within the transport's timeout."""


class HttpStatusError(TransportError):
    """The origin answered with a non-success status."""

    def __init__(self, message: str, status: int, **kwargs):
        super().__init__(message, **kwargs)
        self.status = int(status)


def segment_path(index: int) -> str:
    """URL path of one segment bitstream (mirrors the on-disk layout)."""
    return f"segments/segment-{int(index):04d}.bin"


def model_path(key: int | str) -> str:
    """URL path of one micro-model checkpoint.

    ``key`` is a bare label (base model) or the client's tier key
    ``"label:tier:precision"`` — the tier checkpoint file is shared
    across precisions (quantized kernels derive deterministically from
    the fp32 weights, so no separate artifact exists to ship).
    """
    if isinstance(key, str) and ":" in key:
        label, tier, _precision = key.split(":", 2)
        return f"models/model-{int(label):02d}-{tier}.npz"
    return f"models/model-{int(key):02d}.npz"


class HttpTransport:
    """Real-socket drop-in for :class:`~repro.core.network.SimulatedNetwork`.

    Parameters
    ----------
    base_url:
        Origin root, e.g. ``http://127.0.0.1:8123``.  Only ``http`` is
        supported (the origin is stdlib-only too).
    config:
        Optional :class:`~repro.core.network.NetworkConfig` carried for
        duck-type parity — consumers read ``config.bandwidth_bps`` as a
        throughput hint (``None`` = unknown).  Failure injection fields
        are ignored: real faults come from the wire (or the chaos proxy).
    obs / session:
        Same contract as the simulated network: per-attempt counters
        land in ``obs`` under the identical metric names, labelled with
        ``session`` when set.
    timeout_s:
        Per-read (and connect) stall budget; an attempt that stays
        silent this long raises :class:`StalledRead`.
    loop:
        Optional event loop to drive.  Tests share one loop between the
        transport and an in-process origin; by default the transport
        owns a private loop and closes it on :meth:`close`.
    """

    def __init__(self, base_url: str, *, config: NetworkConfig | None = None,
                 obs: Observability | None = None, session: str | None = None,
                 timeout_s: float = 5.0,
                 loop: asyncio.AbstractEventLoop | None = None):
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        self.base_url = base_url.rstrip("/")
        if not self.base_url.startswith("http://"):
            raise ValueError(f"only http:// origins are supported, "
                             f"got {base_url!r}")
        authority = self.base_url[len("http://"):].split("/", 1)[0]
        host, _, port = authority.partition(":")
        if not host:
            raise ValueError(f"no host in {base_url!r}")
        self.host = host
        self.port = int(port) if port else 80
        self.config = config or NetworkConfig()
        self.stats = DownloadStats()
        self.clock = SimulatedClock()
        self.obs = obs
        self.session = session
        self.timeout_s = float(timeout_s)
        self._wall = wall_clock()
        self._loop = loop
        self._owns_loop = loop is None
        #: path -> (etag, body): If-None-Match revalidation cache.  A 304
        #: replays the cached body without a second transfer.
        self._validators: dict[str, tuple[str, bytes]] = {}
        #: Body of the most recent successful download (contract tests
        #: compare it bitwise against the on-disk artifact).
        self.last_payload: bytes | None = None
        #: 304-revalidation hits across the transport's lifetime.
        self.revalidated = 0

    # ----------------------------------------------------------- event loop

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.new_event_loop()
        return self._loop

    def _run(self, coro):
        return self.loop.run_until_complete(coro)

    def close(self) -> None:
        """Release the private event loop (no-op on a shared loop)."""
        if self._owns_loop and self._loop is not None:
            self._loop.close()
            self._loop = None

    def __enter__(self) -> "HttpTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------- SimulatedNetwork duck type

    def _count(self, name: str, value: float, help: str, **labels) -> None:
        if self.obs is not None:
            if self.session is not None:
                labels = {"session": self.session, **labels}
            self.obs.metrics.counter(name, help).inc(value, **labels)

    def path_for(self, kind: str, key: int | str) -> str:
        """Map the client's ``(kind, key)`` naming onto origin URL paths."""
        if kind == "segment":
            return segment_path(key)
        if kind == "model":
            return model_path(key)
        if kind == "manifest":
            return "manifest.json"
        raise ValueError(f"unknown payload kind {kind!r}")

    def download(self, kind: str, key: int | str, n_bytes: int) -> float:
        """Fetch one payload over TCP; return measured wall seconds.

        ``n_bytes`` is the manifest's accounting size; the wire transfers
        the actual artifact (they differ for quantized checkpoints, whose
        reduced size is an accounting convention — the shipped ``.npz``
        is the fp32 one the kernels derive from).  Counter names, the
        error taxonomy, and the ``(seconds, raise)`` contract match
        :meth:`SimulatedNetwork.download` exactly.
        """
        self.stats.attempts += 1
        self._count("dcsr_download_attempts_total", 1,
                    "Download attempts by payload kind", kind=kind)
        path = self.path_for(kind, key)
        t0 = self._wall.now()
        try:
            body = self._run(self._fetch(path))
        except DownloadError as exc:
            seconds = self._wall.now() - t0
            self.stats.failures += 1
            self.clock.advance(seconds)
            self._count("dcsr_download_failures_total", 1,
                        "Injected download failures by payload kind",
                        kind=kind)
            exc.seconds = seconds
            raise
        seconds = self._wall.now() - t0
        self.clock.advance(seconds)
        self.stats.bytes_delivered += len(body)
        self._count("dcsr_download_bytes_total", len(body),
                    "Bytes delivered by payload kind", kind=kind)
        self.last_payload = body
        return seconds

    # ------------------------------------------------------------ HTTP core

    def fetch(self, kind: str, key: int | str) -> bytes:
        """Synchronous raw fetch (no attempt accounting): the payload
        bytes of one artifact.  Package mirroring and tests use this;
        playback accounting goes through :meth:`download`."""
        return self._run(self._fetch(self.path_for(kind, key)))

    def get(self, path: str, headers: dict[str, str] | None = None):
        """Synchronous single request: ``(status, headers, body)``."""
        return self._run(self.request("GET", path, headers))

    async def _fetch(self, path: str) -> bytes:
        headers = {}
        cached = self._validators.get(path)
        if cached is not None:
            headers["If-None-Match"] = cached[0]
        status, response_headers, body = await self.request(
            "GET", path, headers)
        if status == 304 and cached is not None:
            self.revalidated += 1
            return cached[1]
        if status != 200:
            raise HttpStatusError(
                f"origin answered {status} for /{path}", status=status)
        etag = response_headers.get("etag")
        if etag:
            self._validators[path] = (etag, body)
        return body

    async def request(self, method: str, path: str,
                      headers: dict[str, str] | None = None):
        """One HTTP/1.1 request over a fresh connection.

        Returns ``(status, lowercase-header dict, body)``; maps every
        socket-level failure onto the typed transport errors.
        """
        path = path.lstrip("/")
        request_lines = [
            f"{method} /{path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "User-Agent: dcsr-transport/1",
            "Connection: close",
        ]
        request_lines += [f"{k}: {v}" for k, v in (headers or {}).items()]
        payload = "\r\n".join(request_lines).encode("latin-1") + b"\r\n\r\n"

        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                self.timeout_s)
        except asyncio.TimeoutError:
            raise StalledRead(
                f"connect to {self.host}:{self.port} timed out") from None
        except OSError as exc:
            raise OriginUnreachable(
                f"cannot reach {self.host}:{self.port}: {exc}") from exc
        try:
            writer.write(payload)
            await asyncio.wait_for(writer.drain(), self.timeout_s)
            status, response_headers = await self._read_head(reader, path)
            body = await self._read_body(reader, response_headers, path,
                                         head_only=(method == "HEAD"
                                                    or status == 304))
        except asyncio.TimeoutError:
            raise StalledRead(f"read of /{path} stalled past "
                              f"{self.timeout_s:g}s") from None
        except asyncio.IncompleteReadError as exc:
            raise TruncatedBody(
                f"/{path} truncated: got {len(exc.partial)} bytes of a "
                f"promised body") from exc
        except ConnectionResetError as exc:
            raise OriginUnreachable(
                f"connection reset reading /{path}") from exc
        except OSError as exc:
            raise OriginUnreachable(f"I/O error reading /{path}: "
                                    f"{exc}") from exc
        finally:
            writer.close()
            # wait_closed can itself surface the peer's RST; the response
            # (or typed error) is already decided by then.
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        return status, response_headers, body

    async def _read_head(self, reader: asyncio.StreamReader, path: str):
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), self.timeout_s)
        except asyncio.IncompleteReadError:
            raise TruncatedBody(
                f"/{path} closed before response head") from None
        lines = head[:-4].decode("latin-1").split("\r\n")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise OriginUnreachable(f"/{path}: malformed status line "
                                    f"{lines[0]!r}")
        status = int(parts[1])
        response_headers: dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            response_headers[name.strip().lower()] = value.strip()
        return status, response_headers

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: dict[str, str], path: str,
                         head_only: bool) -> bytes:
        if head_only:
            return b""
        length = headers.get("content-length")
        if length is not None:
            return await asyncio.wait_for(
                reader.readexactly(int(length)), self.timeout_s)
        body = b""
        while True:
            chunk = await asyncio.wait_for(reader.read(65536), self.timeout_s)
            if not chunk:
                return body
            body += chunk


def mirror_package(transport: HttpTransport, dest: str | Path) -> Path:
    """Download a whole package from an origin into ``dest``.

    Fetches the manifest, then every segment bitstream and model
    checkpoint it references (tier checkpoints included), reproducing
    the exact on-disk layout :func:`repro.core.persist.load_package`
    reads.  The transferred bytes are the package — a client playing the
    mirror is playing what the socket delivered, bit for bit.
    """
    dest = Path(dest)
    (dest / "segments").mkdir(parents=True, exist_ok=True)
    (dest / "models").mkdir(parents=True, exist_ok=True)
    manifest_bytes = transport.fetch("manifest", "")
    (dest / "manifest.json").write_bytes(manifest_bytes)
    meta = json.loads(manifest_bytes)
    for record in meta["segments"]:
        path = segment_path(record["index"])
        (dest / path).write_bytes(transport.fetch("segment", record["index"]))
    for label in meta["model_configs"]:
        path = model_path(int(label))
        (dest / path).write_bytes(transport.fetch("model", int(label)))
    for tier, configs in meta.get("tier_model_configs", {}).items():
        for label in configs:
            key = f"{int(label)}:{tier}:fp32"
            (dest / model_path(key)).write_bytes(
                transport.fetch("model", key))
    return dest
