"""Real network boundary: asyncio origin server + HTTP client transport.

Everything else in the repo crosses a function call; this package is the
production-shaped seam.  :class:`DcsrOrigin` serves a saved package
directory over stdlib-asyncio HTTP/1.1 (Range, ETag/If-None-Match,
Content-Length, keep-alive); :class:`HttpTransport` is a drop-in for
:class:`~repro.core.network.SimulatedNetwork` — same duck-typed
``download`` surface, same retry/backoff helper, same telemetry counter
names — so the whole client/cache/fleet stack runs unmodified over real
sockets.  :class:`ChaosProxy` injects deterministic TCP faults (reset,
truncation, stalls, latency) between them, mirroring the simulated
network's schedule semantics.

Layering: ``repro.net`` imports ``repro.core`` and ``repro.obs`` only,
and is asyncio-only — no ``threading`` (AST-guarded by
``tests/net/test_no_threads_net.py``).
"""

from .chaos import FAULTS, ChaosConfig, ChaosProxy
from .origin import DcsrOrigin, OriginConfig
from .transport import (
    HttpStatusError,
    HttpTransport,
    OriginUnreachable,
    StalledRead,
    TransportError,
    TruncatedBody,
    mirror_package,
    model_path,
    segment_path,
)

__all__ = [
    "OriginConfig",
    "DcsrOrigin",
    "HttpTransport",
    "TransportError",
    "OriginUnreachable",
    "TruncatedBody",
    "StalledRead",
    "HttpStatusError",
    "mirror_package",
    "model_path",
    "segment_path",
    "FAULTS",
    "ChaosConfig",
    "ChaosProxy",
]
