"""Deterministic fault-injection TCP proxy for the real transport.

:class:`ChaosProxy` sits between an :class:`~repro.net.HttpTransport` and
a :class:`~repro.net.DcsrOrigin` and breaks connections on purpose, so
the client's retry / concealment / fallback paths — exercised for years
against :class:`~repro.core.network.SimulatedNetwork`'s injected failures
— are proven over actual TCP.

Fault selection mirrors the simulated network's schedule semantics, one
*connection* standing in for one download attempt (the transport opens a
fresh connection per request precisely to make this mapping exact):

1. an explicit ``schedule`` (one fault name per accepted connection, in
   accept order) for exact-scenario tests;
2. a seeded RNG once the schedule is exhausted, drawing faults with the
   configured rates.

Faults (applied to the upstream *response*, after forwarding the request
verbatim — the request always reaches the origin, as a mid-transfer CDN
failure would):

- ``"reset"``     — forward half the body, then hard-reset the client
  connection (``SO_LINGER 0`` ⇒ TCP RST), surfacing as
  :class:`~repro.net.OriginUnreachable`;
- ``"truncate"``  — forward the head and half the body, then close
  cleanly: the promised ``Content-Length`` never completes, surfacing as
  :class:`~repro.net.TruncatedBody`;
- ``"stall"``     — forward half the body, then go silent (connection
  held open) until the client's read timeout fires, surfacing as
  :class:`~repro.net.StalledRead`;
- ``"ok"``        — pass through untouched (plus ``latency_s``, like
  every other connection).

Same seed ⇒ same per-connection fault assignment ⇒ — because the client
downloads serially — the same segments concealed and the same models
fallen back on, end to end over real sockets.
"""

from __future__ import annotations

import asyncio
import random
import socket
import struct
from dataclasses import dataclass
from typing import Sequence

from ..obs import Observability

__all__ = ["FAULTS", "ChaosConfig", "ChaosProxy"]

#: Fault names a schedule entry (or the RNG) may select.
FAULTS = ("ok", "reset", "truncate", "stall")


@dataclass(frozen=True)
class ChaosConfig:
    """Fault mix and shaping of one proxy.

    Rates are per-connection probabilities once the explicit schedule is
    exhausted; they must sum to at most 1 (the remainder passes clean).
    ``latency_s`` is real asyncio sleep before the response head is
    forwarded — keep it tiny in tests.  ``stall_hold_s`` bounds how long
    a stalled connection is parked; it must exceed the client's read
    timeout for the stall to register, and the held task is cut short
    when the client hangs up.
    """

    reset_rate: float = 0.0
    truncate_rate: float = 0.0
    stall_rate: float = 0.0
    latency_s: float = 0.0
    stall_hold_s: float = 30.0
    seed: int = 0

    def __post_init__(self):
        for name in ("reset_rate", "truncate_rate", "stall_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.reset_rate + self.truncate_rate + self.stall_rate > 1.0:
            raise ValueError("fault rates must sum to <= 1")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if self.stall_hold_s <= 0:
            raise ValueError("stall_hold_s must be positive")


class ChaosProxy:
    """Seeded TCP fault injector in front of one origin.

    Parameters
    ----------
    upstream_host / upstream_port:
        Where the clean origin listens.
    config:
        Fault rates, latency, and the RNG seed.
    schedule:
        Optional explicit per-connection fault plan (names from
        :data:`FAULTS`), consumed in accept order before the RNG takes
        over — the exact analogue of ``SimulatedNetwork``'s
        ``failure_schedule``.
    host / port:
        Listener address; port 0 binds ephemeral.
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 config: ChaosConfig | None = None,
                 schedule: Sequence[str] | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 obs: Observability | None = None):
        self.upstream_host = upstream_host
        self.upstream_port = int(upstream_port)
        self.config = config or ChaosConfig()
        self._schedule = list(schedule or [])
        for entry in self._schedule:
            if entry not in FAULTS:
                raise ValueError(f"unknown fault {entry!r} in schedule "
                                 f"(expected one of {FAULTS})")
        self._rng = random.Random(self.config.seed)
        self.obs = obs
        self.host = host
        self.port = int(port)
        self._server: asyncio.AbstractServer | None = None
        #: Connections accepted so far (== schedule position).
        self.connections = 0
        #: fault name -> count, for assertions and telemetry.
        self.faults_injected: dict[str, int] = {name: 0 for name in FAULTS}

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> "ChaosProxy":
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "ChaosProxy":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------- fault schedule

    def _next_fault(self) -> str:
        """The fault for the next connection: schedule first, then RNG —
        exactly the simulated network's two-source semantics."""
        if self.connections < len(self._schedule):
            return self._schedule[self.connections]
        cfg = self.config
        if cfg.reset_rate or cfg.truncate_rate or cfg.stall_rate:
            draw = self._rng.random()
            if draw < cfg.reset_rate:
                return "reset"
            if draw < cfg.reset_rate + cfg.truncate_rate:
                return "truncate"
            if draw < cfg.reset_rate + cfg.truncate_rate + cfg.stall_rate:
                return "stall"
        return "ok"

    def _note(self, fault: str) -> None:
        self.faults_injected[fault] += 1
        if self.obs is not None:
            self.obs.metrics.counter(
                "dcsr_chaos_connections_total",
                "Proxied connections by injected fault",
            ).inc(fault=fault)

    # ------------------------------------------------------------- handling

    @staticmethod
    def _force_reset(writer: asyncio.StreamWriter) -> None:
        """Make close() send an RST instead of a FIN (SO_LINGER 0), so
        the client observes ``ConnectionResetError``, not a short read."""
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
        writer.transport.abort()

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader) -> bytes:
        """One GET/HEAD request head (these carry no body)."""
        try:
            return await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return b""

    @staticmethod
    async def _read_response(reader: asyncio.StreamReader):
        """The upstream response, split into (head, body) so faults can
        cut inside the body.  The transport forces ``Connection: close``,
        so body-until-EOF is exact."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            return bytes(exc.partial), b""
        body = b""
        while True:
            chunk = await reader.read(65536)
            if not chunk:
                return head, body
            body += chunk

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        fault = self._next_fault()
        self.connections += 1
        self._note(fault)
        upstream_writer = None
        try:
            request = await self._read_request(reader)
            if not request:
                return
            upstream_reader, upstream_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port)
            upstream_writer.write(request)
            await upstream_writer.drain()
            head, body = await self._read_response(upstream_reader)

            if self.config.latency_s:
                await asyncio.sleep(self.config.latency_s)

            if fault == "ok":
                writer.write(head + body)
                await writer.drain()
                return
            partial = body[:len(body) // 2]
            if fault == "truncate":
                writer.write(head + partial)
                await writer.drain()
                return                        # clean FIN, short body
            if fault == "reset":
                writer.write(head + partial)
                await writer.drain()
                self._force_reset(writer)
                return
            # stall: deliver a prefix, then go silent until the client
            # gives up (its read timeout) or the hold budget expires.
            writer.write(head + partial)
            await writer.drain()
            try:
                await asyncio.wait_for(reader.read(1),
                                       self.config.stall_hold_s)
            except asyncio.TimeoutError:
                pass
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass                              # either side went away
        finally:
            for w in (upstream_writer, writer):
                if w is None:
                    continue
                try:
                    w.close()
                    await w.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass
