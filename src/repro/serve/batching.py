"""Cross-session SR batching: many sessions, one GEMM call.

Concurrent sessions playing the same video enhance I frames with the same
per-cluster micro model.  The tap-decomposed NHWC forward
(:class:`~repro.sr.engine.InferenceEngine`) is batch-transparent: each 3x3
conv is nine ``(W, Cin) @ (Cin, Cout)`` GEMMs applied per row of each
frame, so an ``(N, H, W, C)`` batch runs the *same* per-row GEMMs as N
single-frame calls — only with better kernel amortization and cache
behaviour.  That makes batched output **bitwise identical** per frame to
the per-session engine (asserted by ``tests/serve/test_fleet.py`` and the
fleet benchmark), which is what lets the fleet simulator batch across
session boundaries without changing what any viewer sees.

:class:`BatchingInferenceEngine` implements leader–follower batching:

- Sessions submit frames through per-session adapter engines
  (:meth:`BatchingInferenceEngine.engine_for`), duck-typed to the
  ``enhance(rgb)`` / ``stats`` protocol the streaming client speaks.
- Requests group by ``(model, frame shape)``.  The first submitter of a
  group becomes the leader: it waits up to ``max_wait_s`` wall seconds
  (or until ``max_batch`` frames are pending) for co-arriving frames,
  stacks them, and runs one :meth:`InferenceEngine.enhance_batch` call.
- Followers block on the group's condition and wake with their slice of
  the batched output plus their per-frame share of the engine counters.

All waiting is :class:`threading.Condition` based with deadlines read
from the process wall clock — no raw ``time`` usage (the static
no-raw-timers guard covers this module too).

This module spawns no threads of its own (the serve-layer no-threads
guard applies); it only *synchronizes* whatever threads its callers
bring.  Under the single-threaded fleet :class:`~repro.serve.events.
EventLoop`, sessions execute one at a time, so every submitter is its
own leader: the ``max_wait_s`` door can only expire (costing bounded
wall time, never correctness) and batches hold one frame.  Cross-session
merging — and the bitwise-equality guarantee that makes it safe — is
exercised directly by multi-threaded callers in the test suite.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..obs import Observability, wall_clock
from ..sr.edsr import EDSR
from ..sr.engine import EngineStats, InferenceEngine

__all__ = ["BatchingInferenceEngine", "BatchingStats"]


@dataclass
class BatchingStats:
    """Aggregate accounting across every batch this engine dispatched."""

    n_batches: int = 0
    n_frames: int = 0
    max_batch_seen: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.n_frames / self.n_batches if self.n_batches else 0.0


class _Request:
    """One pending frame: filled in by the group leader."""

    __slots__ = ("frame", "out", "stats", "error")

    def __init__(self, frame: np.ndarray):
        self.frame = frame
        self.out: np.ndarray | None = None
        self.stats: EngineStats | None = None
        self.error: BaseException | None = None

    @property
    def done(self) -> bool:
        return self.out is not None or self.error is not None


class _Group:
    """Batching state for one ``(model, frame shape)`` combination."""

    __slots__ = ("engine", "engine_lock", "cond", "pending", "leader_active")

    def __init__(self, engine: InferenceEngine, engine_lock: threading.Lock):
        self.engine = engine
        #: Serializes engine use: ``engine.stats`` is per-call state, and
        #: groups of different frame shapes share one engine (and so one
        #: lock) per model.
        self.engine_lock = engine_lock
        self.cond = threading.Condition()
        self.pending: list[_Request] = []
        self.leader_active = False


class _SessionEngine:
    """One session's view of the shared batcher.

    Duck-typed to :class:`~repro.sr.engine.InferenceEngine`'s client
    contract: ``enhance(rgb)`` plus a ``stats`` attribute holding the most
    recent call's counters — here the per-frame share of the batched call
    this frame rode in (:meth:`EngineStats.per_frame`).
    """

    def __init__(self, batcher: "BatchingInferenceEngine", model: EDSR):
        self._batcher = batcher
        self._model = model
        self.stats = EngineStats()

    def enhance(self, rgb: np.ndarray) -> np.ndarray:
        out, stats = self._batcher.submit(self._model, rgb)
        self.stats = stats
        return out


class BatchingInferenceEngine:
    """Fleet-shared SR executor batching frames across sessions.

    Parameters
    ----------
    max_batch:
        Largest number of frames stacked into one engine call.
    max_wait_s:
        How long (wall seconds) a batch leader holds the door open for
        co-arriving frames before dispatching a partial batch.  0 disables
        waiting: every frame dispatches immediately (batching then only
        merges frames that were already pending).
    tile / threads / precision / skip_gate:
        Passed through to each underlying per-model
        :class:`~repro.sr.engine.InferenceEngine` (``precision`` selects
        the quantized GEMM kernels, ``skip_gate`` the low-detail tile
        gate; the defaults are bitwise-identical to the plain engine).
    obs:
        Optional :class:`~repro.obs.Observability`: batch sizes land in
        the ``dcsr_batch_size`` histogram, totals in
        ``dcsr_batches_total`` / ``dcsr_batched_frames_total``.
    """

    def __init__(self, max_batch: int = 8, max_wait_s: float = 0.002,
                 tile: int | None = None, threads: int = 1,
                 obs: Observability | None = None, precision: str = "fp32",
                 skip_gate=None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.tile = tile
        self.threads = int(threads)
        self.precision = precision
        self.skip_gate = skip_gate
        self.obs = obs
        self.stats = BatchingStats()
        self._clock = wall_clock()
        self._lock = threading.Lock()       # groups dict + self.stats
        self._engines: dict[int, tuple[InferenceEngine, threading.Lock]] = {}
        self._groups: dict[tuple, _Group] = {}

    def engine_for(self, model: EDSR) -> _SessionEngine:
        """A fresh per-session adapter (the client's ``engine_provider``)."""
        return _SessionEngine(self, model)

    # ------------------------------------------------------------- batching

    def submit(self, model: EDSR,
               rgb: np.ndarray) -> tuple[np.ndarray, EngineStats]:
        """Enhance one frame, possibly riding a cross-session batch.

        Blocks until the frame's batch has run; returns the enhanced frame
        and its per-frame share of the batched call's counters.
        """
        if rgb.ndim != 3 or rgb.shape[2] != 3:
            raise ValueError(f"expected (H, W, 3) RGB frame, got {rgb.shape}")
        frame = np.asarray(rgb, dtype=np.float32)
        group = self._group_for(model, frame.shape)
        request = _Request(frame)
        cond = group.cond
        cond.acquire()
        try:
            group.pending.append(request)
            if len(group.pending) >= self.max_batch:
                cond.notify_all()           # wake a leader waiting for more
            while not request.done:
                if group.leader_active:
                    cond.wait()
                    continue
                self._lead(group)           # serves request (or re-loops)
        finally:
            cond.release()
        if request.error is not None:
            raise request.error
        return request.out, request.stats

    def _lead(self, group: _Group) -> None:
        """Run one batch as the group leader (``group.cond`` held).

        Collects up to ``max_batch`` pending requests after holding the
        door open ``max_wait_s``, releases the condition for the engine
        call, then distributes results under it again.  The caller's own
        request is normally in the batch; when a backlog pushed it out,
        the caller's loop simply elects a leader again.
        """
        group.leader_active = True
        deadline = self._clock.now() + self.max_wait_s
        while len(group.pending) < self.max_batch:
            remaining = deadline - self._clock.now()
            if remaining <= 0:
                break
            group.cond.wait(remaining)
        batch = group.pending[:self.max_batch]
        del group.pending[:self.max_batch]
        group.cond.release()
        outputs = stats = error = None
        try:
            outputs, stats = self._run_batch(group, batch)
        except BaseException as exc:        # delivered to every rider
            error = exc
        finally:
            group.cond.acquire()
            for i, request in enumerate(batch):
                if error is not None:
                    request.error = error
                else:
                    request.out = outputs[i]
                    request.stats = stats[i]
            group.leader_active = False
            group.cond.notify_all()

    def _run_batch(self, group: _Group,
                   batch: list[_Request]
                   ) -> tuple[np.ndarray, list[EngineStats]]:
        frames = np.stack([request.frame for request in batch])
        with group.engine_lock:
            outputs = group.engine.enhance_batch(frames)
            # Per-rider shares are sum-consistent: summing them reproduces
            # the batched call's aggregate, so fleet rollups no longer
            # inflate tile counts N× per batch.
            per_frame = [group.engine.stats.per_frame(i)
                         for i in range(len(batch))]
        with self._lock:
            self.stats.n_batches += 1
            self.stats.n_frames += len(batch)
            self.stats.max_batch_seen = max(self.stats.max_batch_seen,
                                            len(batch))
        if self.obs is not None:
            metrics = self.obs.metrics
            metrics.histogram(
                "dcsr_batch_size", "Frames per cross-session SR batch",
                buckets=tuple(float(b) for b in range(1, self.max_batch + 1)),
            ).observe(len(batch))
            metrics.counter("dcsr_batches_total",
                            "Cross-session SR batches dispatched").inc()
            metrics.counter("dcsr_batched_frames_total",
                            "Frames enhanced through the batcher"
                            ).inc(len(batch))
        return outputs, per_frame

    # ------------------------------------------------------------ internals

    def _group_for(self, model: EDSR, shape: tuple) -> _Group:
        with self._lock:
            pair = self._engines.get(id(model))
            if pair is None:
                pair = self._engines[id(model)] = (
                    InferenceEngine(model, tile=self.tile,
                                    threads=self.threads,
                                    precision=self.precision,
                                    skip_gate=self.skip_gate),
                    threading.Lock())
            key = (id(model), shape)
            group = self._groups.get(key)
            if group is None:
                group = self._groups[key] = _Group(*pair)
            return group
