"""Fleet-scale model cache: Algorithm 1 shared across sessions.

The paper's bandwidth numbers (§5, Fig. 10) assume each client caches its
own micro models; at fleet scale the same per-cluster models are requested
by *every* session playing the video, so one shared cache amortizes each
download across the fleet.  :class:`SharedModelCache` promotes the
single-owner :class:`~repro.core.cache.ModelCache` to that role:

- **Locked**: store and counter mutations happen under one lock, so the
  hit/miss/failure accounting is exact under arbitrary thread interleaving
  (``hits + downloads + failed_fetches == requests``, always).
- **Single-flight fetches**: concurrent misses on one label elect a single
  fetcher; the others wait on an event and then count a *hit* — they paid
  no bytes.  A failed fetch wakes the waiters, each of which retries (and
  may become the next fetcher), so one session's network failure is never
  charged to another.
- **Refcount pinning**: ``acquire`` pins the entry until ``release``.  LRU
  eviction only ever considers unpinned entries, so a model is never
  evicted while a session is mid-SR with it; when every entry is pinned
  the cache temporarily overflows its capacity rather than corrupt an
  in-use entry.

Each playing session holds a :class:`CacheSession` view: same
``acquire``/``release``/``stats`` protocol as :class:`ModelCache`, with a
per-session :class:`~repro.core.cache.CacheStats` (this session's hits,
downloads, downloaded labels) next to the fleet-wide aggregate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

from ..core.cache import CacheStats

__all__ = ["SharedModelCache", "CacheSession"]

M = TypeVar("M")


@dataclass
class _Entry(Generic[M]):
    model: M
    refcount: int = 0


class SharedModelCache(Generic[M]):
    """Thread-safe, LRU-evicting, refcount-pinning model cache.

    Parameters
    ----------
    fetch:
        Optional default ``label -> model`` used when a caller passes no
        per-call fetch.  Fleet sessions normally pass their own fetch (so
        the downloading session is the one charged simulated network time
        and bytes) via :meth:`session`.
    capacity:
        Maximum cached models; ``None`` is unbounded.  The bound applies
        to *unpinned* entries — pinned entries may push the cache over
        capacity until they are released.
    """

    def __init__(self, fetch: Callable[[int], M] | None = None,
                 capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self._fetch = fetch
        self._capacity = capacity
        self._lock = threading.Lock()
        self._store: "OrderedDict[int, _Entry[M]]" = OrderedDict()
        self._inflight: dict[int, threading.Event] = {}
        self.stats = CacheStats()
        #: Peak number of resident entries (pinned overflow shows up here).
        self.peak_entries = 0

    # ------------------------------------------------------------- protocol

    def session(self, fetch: Callable[[int], M]) -> "CacheSession[M]":
        """A per-session view bound to that session's fetch function."""
        return CacheSession(self, fetch)

    def acquire(self, label: int, fetch: Callable[[int], M] | None = None,
                stats: CacheStats | None = None) -> M:
        """Algorithm 1 against the shared store, pinning the entry.

        Exactly one of hit / download / failed fetch is counted per call,
        into both the aggregate :attr:`stats` and the caller's per-session
        ``stats``.  The returned model stays pinned (refcount held) until
        the caller's matching :meth:`release`.
        """
        return self._get(label, fetch, stats, pin=True)

    def release(self, label: int) -> None:
        """Drop one pin; a fully released entry is evictable again."""
        with self._lock:
            entry = self._store.get(label)
            if entry is None or entry.refcount <= 0:
                raise ValueError(f"release of unpinned cache entry {label}")
            entry.refcount -= 1
            self._evict_over_capacity()

    def get(self, label: int, fetch: Callable[[int], M] | None = None,
            stats: CacheStats | None = None) -> M:
        """Unpinned read: :meth:`acquire` immediately followed by release."""
        model = self._get(label, fetch, stats, pin=True)
        self.release(label)
        return model

    def refcount(self, label: int) -> int:
        with self._lock:
            entry = self._store.get(label)
            return entry.refcount if entry is not None else 0

    def __contains__(self, label: int) -> bool:
        with self._lock:
            return label in self._store

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def clear(self) -> None:
        """Drop every *unpinned* entry (pinned entries stay resident)."""
        with self._lock:
            for label in [lb for lb, e in self._store.items()
                          if e.refcount == 0]:
                del self._store[label]

    # ------------------------------------------------------------ internals

    def _get(self, label: int, fetch: Callable[[int], M] | None,
             stats: CacheStats | None, pin: bool) -> M:
        fetch = fetch or self._fetch
        if fetch is None:
            raise ValueError("no fetch function (constructor or per-call)")
        while True:
            leader = False
            with self._lock:
                entry = self._store.get(label)
                if entry is not None:
                    if pin:
                        entry.refcount += 1
                    self._store.move_to_end(label)
                    self._note_hit(stats)
                    return entry.model
                event = self._inflight.get(label)
                if event is None:
                    # This caller is the single fetcher for the label.
                    event = self._inflight[label] = threading.Event()
                    leader = True
            if not leader:
                # Another caller is fetching: wait, then re-check the store
                # (a hit if the fetch landed, a fresh election if it failed).
                event.wait()
                continue
            return self._fetch_as_leader(label, fetch, stats, pin, event)

    def _fetch_as_leader(self, label: int, fetch, stats, pin: bool,
                         event: threading.Event) -> M:
        try:
            model = fetch(label)
        except Exception:
            with self._lock:
                self.stats.failed_fetches += 1
                if stats is not None:
                    stats.failed_fetches += 1
                self._inflight.pop(label, None)
            event.set()
            raise
        with self._lock:
            entry = self._store.get(label)
            if entry is None:
                entry = self._store[label] = _Entry(model)
            if pin:
                entry.refcount += 1
            self._store.move_to_end(label)
            self.stats.downloads += 1
            self.stats.downloaded_labels.append(label)
            if stats is not None:
                stats.downloads += 1
                stats.downloaded_labels.append(label)
            self._inflight.pop(label, None)
            self._evict_over_capacity()
        event.set()
        return entry.model

    def _note_hit(self, stats: CacheStats | None) -> None:
        self.stats.hits += 1
        if stats is not None:
            stats.hits += 1

    def _evict_over_capacity(self) -> None:
        """LRU-evict unpinned entries down to capacity (lock held).

        Pinned entries are skipped, never evicted: if everything resident
        is pinned the store stays over capacity until a release.
        """
        self.peak_entries = max(self.peak_entries, len(self._store))
        if self._capacity is None:
            return
        while len(self._store) > self._capacity:
            victim = next((lb for lb, e in self._store.items()
                           if e.refcount == 0), None)
            if victim is None:
                return
            del self._store[victim]
            self.stats.evictions += 1


class CacheSession(Generic[M]):
    """One session's view of a :class:`SharedModelCache`.

    Duck-typed to the single-owner :class:`~repro.core.cache.ModelCache`
    protocol the streaming client speaks (``acquire``/``release``/``get``/
    ``stats``), with per-session accounting: this session's ``stats``
    count its own hits and the downloads *it* performed — a model another
    session fetched is a hit here, which is exactly the cross-session
    amortization the fleet benchmark measures.
    """

    def __init__(self, shared: SharedModelCache[M],
                 fetch: Callable[[int], M]):
        self.shared = shared
        self._fetch = fetch
        self.stats = CacheStats()

    def acquire(self, label: int) -> M:
        return self.shared.acquire(label, fetch=self._fetch,
                                   stats=self.stats)

    def release(self, label: int) -> None:
        self.shared.release(label)

    def get(self, label: int) -> M:
        return self.shared.get(label, fetch=self._fetch, stats=self.stats)

    def __contains__(self, label: int) -> bool:
        return label in self.shared
