"""Fleet-scale model cache: Algorithm 1 shared across sessions.

The paper's bandwidth numbers (§5, Fig. 10) assume each client caches its
own micro models; at fleet scale the same per-cluster models are requested
by *every* session playing the video, so one shared cache amortizes each
download across the fleet.  :class:`SharedModelCache` promotes the
single-owner :class:`~repro.core.cache.ModelCache` to that role:

- **Locked**: store and counter mutations happen under one lock, so the
  hit/miss/failure accounting is exact under arbitrary thread interleaving
  (``hits + downloads + failed_fetches == requests``, always).
- **Single-flight fetches**: concurrent misses on one label elect a single
  fetcher; the others wait on an event and then count a *hit* — they paid
  no bytes.  A failed fetch wakes the waiters, each of which retries (and
  may become the next fetcher), so one session's network failure is never
  charged to another.
- **Refcount pinning**: ``acquire`` pins the entry until ``release``.  LRU
  eviction only ever considers unpinned entries, so a model is never
  evicted while a session is mid-SR with it; when every entry is pinned
  the cache temporarily overflows its capacity rather than corrupt an
  in-use entry.

Each playing session holds a :class:`CacheSession` view: same
``acquire``/``release``/``stats`` protocol as :class:`ModelCache`, with a
per-session :class:`~repro.core.cache.CacheStats` (this session's hits,
downloads, downloaded labels) next to the fleet-wide aggregate.

:class:`CacheHierarchy` composes these stores into a two-tier CDN shape
for the discrete-event fleet: per-edge :class:`SharedModelCache`
instances (sessions shard across them by id) in front of one unbounded
origin shield, with configurable edge admission
(:data:`ADMISSION_POLICIES`) and an origin-offload metric.  Sessions
bind to an edge through :class:`EdgeBinding`/:class:`HierarchySession`,
which speak the same duck-typed protocol as :class:`CacheSession` — the
client never learns the hierarchy exists.  Unlike the flat shared cache,
the hierarchy's composite hit-then-fetch path assumes the fleet's
single-threaded event loop (individual tier operations stay locked, but
cross-tier sequences are not atomic).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

from ..core.cache import CacheStats

__all__ = [
    "SharedModelCache",
    "CacheSession",
    "ADMISSION_POLICIES",
    "HierarchyStats",
    "CacheHierarchy",
    "EdgeBinding",
    "HierarchySession",
]

M = TypeVar("M")


@dataclass
class _Entry(Generic[M]):
    model: M
    refcount: int = 0


class SharedModelCache(Generic[M]):
    """Thread-safe, LRU-evicting, refcount-pinning model cache.

    Parameters
    ----------
    fetch:
        Optional default ``label -> model`` used when a caller passes no
        per-call fetch.  Fleet sessions normally pass their own fetch (so
        the downloading session is the one charged simulated network time
        and bytes) via :meth:`session`.
    capacity:
        Maximum cached models; ``None`` is unbounded.  The bound applies
        to *unpinned* entries — pinned entries may push the cache over
        capacity until they are released.
    """

    def __init__(self, fetch: Callable[[int], M] | None = None,
                 capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self._fetch = fetch
        self._capacity = capacity
        self._lock = threading.Lock()
        self._store: "OrderedDict[int, _Entry[M]]" = OrderedDict()
        self._inflight: dict[int, threading.Event] = {}
        self.stats = CacheStats()
        #: Peak number of resident entries (pinned overflow shows up here).
        self.peak_entries = 0

    # ------------------------------------------------------------- protocol

    def session(self, fetch: Callable[[int], M]) -> "CacheSession[M]":
        """A per-session view bound to that session's fetch function."""
        return CacheSession(self, fetch)

    def acquire(self, label: int, fetch: Callable[[int], M] | None = None,
                stats: CacheStats | None = None) -> M:
        """Algorithm 1 against the shared store, pinning the entry.

        Exactly one of hit / download / failed fetch is counted per call,
        into both the aggregate :attr:`stats` and the caller's per-session
        ``stats``.  The returned model stays pinned (refcount held) until
        the caller's matching :meth:`release`.
        """
        return self._get(label, fetch, stats, pin=True)

    def release(self, label: int) -> None:
        """Drop one pin; a fully released entry is evictable again."""
        with self._lock:
            entry = self._store.get(label)
            if entry is None or entry.refcount <= 0:
                raise ValueError(f"release of unpinned cache entry {label}")
            entry.refcount -= 1
            self._evict_over_capacity()

    def get(self, label: int, fetch: Callable[[int], M] | None = None,
            stats: CacheStats | None = None) -> M:
        """Unpinned read: :meth:`acquire` immediately followed by release."""
        model = self._get(label, fetch, stats, pin=True)
        self.release(label)
        return model

    def put(self, label: int, model: M, pin: bool = False) -> None:
        """Insert an externally fetched model (no hit/download counted).

        The CDN hierarchy uses this to admit a model at an edge after the
        requesting session already paid for the fetch — accounting for
        that download belongs to the caller, not to this store.  With
        ``pin=True`` the entry is refcount-pinned exactly as by
        :meth:`acquire` and must be balanced by :meth:`release`.
        """
        with self._lock:
            entry = self._store.get(label)
            if entry is None:
                entry = self._store[label] = _Entry(model)
            if pin:
                entry.refcount += 1
            self._store.move_to_end(label)
            self._evict_over_capacity()

    def refcount(self, label: int) -> int:
        with self._lock:
            entry = self._store.get(label)
            return entry.refcount if entry is not None else 0

    def __contains__(self, label: int) -> bool:
        with self._lock:
            return label in self._store

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def clear(self) -> None:
        """Drop every *unpinned* entry (pinned entries stay resident)."""
        with self._lock:
            for label in [lb for lb, e in self._store.items()
                          if e.refcount == 0]:
                del self._store[label]

    # ------------------------------------------------------------ internals

    def _get(self, label: int, fetch: Callable[[int], M] | None,
             stats: CacheStats | None, pin: bool) -> M:
        fetch = fetch or self._fetch
        if fetch is None:
            raise ValueError("no fetch function (constructor or per-call)")
        while True:
            leader = False
            with self._lock:
                entry = self._store.get(label)
                if entry is not None:
                    if pin:
                        entry.refcount += 1
                    self._store.move_to_end(label)
                    self._note_hit(stats)
                    return entry.model
                event = self._inflight.get(label)
                if event is None:
                    # This caller is the single fetcher for the label.
                    event = self._inflight[label] = threading.Event()
                    leader = True
            if not leader:
                # Another caller is fetching: wait, then re-check the store
                # (a hit if the fetch landed, a fresh election if it failed).
                event.wait()
                continue
            return self._fetch_as_leader(label, fetch, stats, pin, event)

    def _fetch_as_leader(self, label: int, fetch, stats, pin: bool,
                         event: threading.Event) -> M:
        try:
            model = fetch(label)
        except Exception:
            with self._lock:
                self.stats.failed_fetches += 1
                if stats is not None:
                    stats.failed_fetches += 1
                self._inflight.pop(label, None)
            event.set()
            raise
        with self._lock:
            entry = self._store.get(label)
            if entry is None:
                entry = self._store[label] = _Entry(model)
            if pin:
                entry.refcount += 1
            self._store.move_to_end(label)
            self.stats.downloads += 1
            self.stats.downloaded_labels.append(label)
            if stats is not None:
                stats.downloads += 1
                stats.downloaded_labels.append(label)
            self._inflight.pop(label, None)
            self._evict_over_capacity()
        event.set()
        return entry.model

    def _note_hit(self, stats: CacheStats | None) -> None:
        self.stats.hits += 1
        if stats is not None:
            stats.hits += 1

    def _evict_over_capacity(self) -> None:
        """LRU-evict unpinned entries down to capacity (lock held).

        Pinned entries are skipped, never evicted: if everything resident
        is pinned the store stays over capacity until a release.
        """
        self.peak_entries = max(self.peak_entries, len(self._store))
        if self._capacity is None:
            return
        while len(self._store) > self._capacity:
            victim = next((lb for lb, e in self._store.items()
                           if e.refcount == 0), None)
            if victim is None:
                return
            del self._store[victim]
            self.stats.evictions += 1


class CacheSession(Generic[M]):
    """One session's view of a :class:`SharedModelCache`.

    Duck-typed to the single-owner :class:`~repro.core.cache.ModelCache`
    protocol the streaming client speaks (``acquire``/``release``/``get``/
    ``stats``), with per-session accounting: this session's ``stats``
    count its own hits and the downloads *it* performed — a model another
    session fetched is a hit here, which is exactly the cross-session
    amortization the fleet benchmark measures.
    """

    def __init__(self, shared: SharedModelCache[M],
                 fetch: Callable[[int], M]):
        self.shared = shared
        self._fetch = fetch
        self.stats = CacheStats()

    def acquire(self, label: int) -> M:
        return self.shared.acquire(label, fetch=self._fetch,
                                   stats=self.stats)

    def release(self, label: int) -> None:
        self.shared.release(label)

    def get(self, label: int) -> M:
        return self.shared.get(label, fetch=self._fetch, stats=self.stats)

    def __contains__(self, label: int) -> bool:
        return label in self.shared


# --------------------------------------------------------------------------
# Two-tier CDN hierarchy: per-edge caches in front of one origin tier.

#: Accepted values of :attr:`CacheHierarchy` ``admission``.
ADMISSION_POLICIES = ("always", "second-hit", "size-aware")


@dataclass
class HierarchyStats:
    """Fleet-wide request accounting across the cache hierarchy.

    Every session request is exactly one of: an **edge hit** (served from
    the session's edge cache, zero bytes for the session), a **download**
    (edge miss — the session pays the fetch over its own link), or a
    **failed fetch**.  Downloads are further split by what the *origin*
    saw: an ``origin_hit`` means the origin's shield cache already held
    the label (another edge pulled it earlier — no origin-storage read),
    an ``origin_fetch`` is a cold read from origin storage.
    """

    requests: int = 0
    edge_hits: int = 0
    origin_hits: int = 0
    origin_fetches: int = 0
    admitted: int = 0           # edge-miss models stored at the edge
    denied: int = 0             # edge-miss models the policy kept out
    failed_fetches: int = 0

    @property
    def downloads(self) -> int:
        return self.origin_hits + self.origin_fetches

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from an edge (session paid nothing)."""
        return self.edge_hits / self.requests if self.requests else 0.0

    @property
    def origin_offload(self) -> float:
        """Fraction of requests that never read origin storage.

        The CDN health metric: edge hits plus shield hits over all
        requests.  Rises with fleet size as edges and the shield warm up.
        """
        if not self.requests:
            return 0.0
        return 1.0 - self.origin_fetches / self.requests


class CacheHierarchy(Generic[M]):
    """Per-edge :class:`SharedModelCache` tier in front of an origin tier.

    Sessions are sharded across ``edges`` edge caches by
    ``session_id % edges``; sessions on the same edge amortize each
    other's model downloads exactly as with the flat
    :class:`SharedModelCache` (an edge hit costs the session nothing).
    An edge *miss* makes the requesting session download the model over
    its own simulated link, and the origin tier — an unbounded shield
    cache shared by every edge — records whether origin storage was read
    (cold fetch) or the label was already shielded by another edge's
    earlier pull.

    ``admission`` controls whether an edge-missed model is *stored* at
    the edge afterwards:

    - ``"always"`` — classic insert-on-miss (the flat-cache behaviour);
    - ``"second-hit"`` — store only on a label's second request at that
      edge, keeping one-hit wonders from evicting popular models;
    - ``"size-aware"`` — store only models no larger than
      ``admit_bytes`` (default: the mean model size), keeping a few
      oversized models from flushing a small edge.

    With ``edges=1`` and ``admission="always"`` the hierarchy reduces to
    the flat shared cache: same hits, same downloads, same bytes.

    Parameters
    ----------
    edges:
        Number of edge caches.
    edge_capacity:
        LRU bound per edge (``None`` = unbounded).
    admission:
        One of :data:`ADMISSION_POLICIES`.
    model_sizes:
        ``label -> bytes`` map (the manifest's); required semantics only
        for ``size-aware``.
    admit_bytes:
        Size-aware threshold; defaults to the mean of ``model_sizes``.
    """

    def __init__(self, edges: int = 1, edge_capacity: int | None = None,
                 admission: str = "always",
                 model_sizes: dict[int, int] | None = None,
                 admit_bytes: float | None = None):
        if edges < 1:
            raise ValueError(f"edges must be >= 1, got {edges}")
        if admission not in ADMISSION_POLICIES:
            raise ValueError(f"admission must be one of "
                             f"{ADMISSION_POLICIES}, got {admission!r}")
        if admission == "size-aware" and not model_sizes \
                and admit_bytes is None:
            raise ValueError("size-aware admission needs model_sizes "
                             "or an explicit admit_bytes")
        self.admission = admission
        self.edges: list[SharedModelCache[M]] = [
            SharedModelCache(capacity=edge_capacity) for _ in range(edges)]
        self.origin: SharedModelCache[M] = SharedModelCache()
        self.model_sizes = dict(model_sizes or {})
        if admit_bytes is None and self.model_sizes:
            admit_bytes = (sum(self.model_sizes.values())
                           / len(self.model_sizes))
        self.admit_bytes = admit_bytes
        self._edge_requests: list[dict[int, int]] = [
            {} for _ in range(edges)]
        self._lock = threading.Lock()
        self.stats = HierarchyStats()

    def edge_for(self, session_id: int) -> "EdgeBinding[M]":
        """The edge serving ``session_id`` (sharded by id modulo edges)."""
        return EdgeBinding(self, session_id % len(self.edges))

    @property
    def evictions(self) -> int:
        return sum(edge.stats.evictions for edge in self.edges)

    def _admit(self, edge_index: int, label: int) -> bool:
        """Should an edge-missed ``label`` be stored at this edge?
        (Lock held; the per-edge request count is already bumped.)"""
        if self.admission == "always":
            return True
        if self.admission == "second-hit":
            return self._edge_requests[edge_index].get(label, 0) >= 2
        size = self.model_sizes.get(label)
        return size is None or self.admit_bytes is None \
            or size <= self.admit_bytes


class EdgeBinding(Generic[M]):
    """One edge of a :class:`CacheHierarchy`, bound for a session group.

    Duck-typed to the ``model_cache`` argument of
    :class:`~repro.core.client.DcsrClient` (exposes ``session(fetch)``),
    so the fleet can hand a client its edge without the client knowing
    the hierarchy exists.
    """

    def __init__(self, hierarchy: CacheHierarchy[M], edge_index: int):
        self.hierarchy = hierarchy
        self.edge_index = edge_index

    def session(self, fetch: Callable[[int], M]) -> "HierarchySession[M]":
        return HierarchySession(self.hierarchy, self.edge_index, fetch)


class HierarchySession(Generic[M]):
    """One session's view of a :class:`CacheHierarchy` edge.

    Same ``acquire``/``release``/``get``/``stats`` protocol as
    :class:`CacheSession`: per-session stats count this session's edge
    hits and the downloads *it* paid for.  Pins are tracked per label so
    ``release`` unpins the edge entry only when the model was actually
    admitted there.
    """

    def __init__(self, hierarchy: CacheHierarchy[M], edge_index: int,
                 fetch: Callable[[int], M]):
        self.hierarchy = hierarchy
        self.edge_index = edge_index
        self._fetch = fetch
        self.stats = CacheStats()
        #: label -> stack of True (edge-pinned) / False (unpinned) flags,
        #: one per outstanding acquire.
        self._pins: dict[int, list[bool]] = {}

    def acquire(self, label: int) -> M:
        h = self.hierarchy
        edge = h.edges[self.edge_index]
        with h._lock:
            h.stats.requests += 1
            counts = h._edge_requests[self.edge_index]
            counts[label] = counts.get(label, 0) + 1
        if label in edge:
            model = edge.acquire(label, fetch=_hit_only, stats=self.stats)
            with h._lock:
                h.stats.edge_hits += 1
            self._pins.setdefault(label, []).append(True)
            return model
        # Edge miss: this session downloads over its own link (the fetch
        # charges its simulated network and byte counters).  The origin
        # tier only *accounts* for what the backbone saw — shield hit or
        # cold storage read — it never spares the session the transfer.
        try:
            model = self._fetch(label)
        except Exception:
            with h._lock:
                h.stats.failed_fetches += 1
            self.stats.failed_fetches += 1
            raise
        with h._lock:
            shielded = label in h.origin
            if shielded:
                h.stats.origin_hits += 1
            else:
                h.stats.origin_fetches += 1
            admitted = h._admit(self.edge_index, label)
            if admitted:
                h.stats.admitted += 1
            else:
                h.stats.denied += 1
        h.origin.put(label, model)
        if admitted:
            edge.put(label, model, pin=True)
        self.stats.downloads += 1
        self.stats.downloaded_labels.append(label)
        self._pins.setdefault(label, []).append(admitted)
        return model

    def release(self, label: int) -> None:
        stack = self._pins.get(label)
        if not stack:
            raise ValueError(f"release of unpinned cache entry {label}")
        pinned_at_edge = stack.pop()
        if not stack:
            del self._pins[label]
        if pinned_at_edge:
            self.hierarchy.edges[self.edge_index].release(label)

    def get(self, label: int) -> M:
        model = self.acquire(label)
        self.release(label)
        return model

    def __contains__(self, label: int) -> bool:
        return label in self.hierarchy.edges[self.edge_index]


def _hit_only(label: int):
    raise AssertionError(
        f"edge cache fetch for {label} on a hit path — the hierarchy "
        "performs all fetches itself")
