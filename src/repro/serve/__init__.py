"""Multi-session serving layer: the fleet around the dcSR client.

Everything in this package scales the single-viewer pieces of
:mod:`repro.core` to N concurrent sessions sharing one serving substrate:

- :class:`EventLoop` / :class:`Process` — the deterministic
  discrete-event scheduler every fleet runs on (one thread, one event
  heap, ``(time, seq)`` ordering);
- :class:`SharedModelCache` / :class:`CacheSession` — one fleet-wide
  micro-model cache (locked, LRU, refcount-pinned, single-flight
  fetches);
- :class:`CacheHierarchy` / :class:`EdgeBinding` /
  :class:`HierarchySession` — per-edge caches in front of an origin
  shield, with configurable admission (:data:`ADMISSION_POLICIES`);
- :class:`SharedNetworkPool` / :class:`PooledNetwork` — one simulated
  uplink split fairly among active transfers, optionally behind
  per-session :class:`TokenBucket` rate limits;
- :class:`BatchingInferenceEngine` — cross-session SR batching with
  bit-identical per-frame output;
- :class:`FleetSimulator` — N sessions (full
  :class:`~repro.core.client.DcsrClient` playback, or byte-trace
  replicas for thousand-session runs) over all of the above, with
  seeded arrivals, admission control, and fleet telemetry.

Dependencies run one way: ``repro.serve`` imports ``repro.core`` /
``repro.sr`` / ``repro.obs``; nothing below imports ``repro.serve``
(clients accept the shared pieces duck-typed).
"""

from .batching import BatchingInferenceEngine, BatchingStats
from .events import EventLoop, Process, Timeout, TokenBucket, Until
from .netpool import PooledNetwork, SharedNetworkPool
from .scheduler import (
    FLEET_MODES,
    FleetConfig,
    FleetResult,
    FleetSimulator,
    FleetTelemetry,
    SessionResult,
    arrival_times,
)
from .shared_cache import (
    ADMISSION_POLICIES,
    CacheHierarchy,
    CacheSession,
    EdgeBinding,
    HierarchySession,
    HierarchyStats,
    SharedModelCache,
)

__all__ = [
    "EventLoop",
    "Process",
    "Timeout",
    "Until",
    "TokenBucket",
    "SharedModelCache",
    "CacheSession",
    "ADMISSION_POLICIES",
    "CacheHierarchy",
    "EdgeBinding",
    "HierarchySession",
    "HierarchyStats",
    "SharedNetworkPool",
    "PooledNetwork",
    "BatchingInferenceEngine",
    "BatchingStats",
    "FLEET_MODES",
    "FleetConfig",
    "FleetResult",
    "FleetSimulator",
    "FleetTelemetry",
    "SessionResult",
    "arrival_times",
]
