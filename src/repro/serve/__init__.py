"""Multi-session serving layer: the fleet around the dcSR client.

Everything in this package scales the single-viewer pieces of
:mod:`repro.core` to N concurrent sessions sharing one serving substrate:

- :class:`SharedModelCache` / :class:`CacheSession` — one fleet-wide
  micro-model cache (locked, LRU, refcount-pinned, single-flight
  fetches);
- :class:`SharedNetworkPool` / :class:`PooledNetwork` — one simulated
  uplink split fairly among active transfers;
- :class:`BatchingInferenceEngine` — cross-session SR batching with
  bit-identical per-frame output;
- :class:`FleetSimulator` — N :class:`~repro.core.client.DcsrClient`
  sessions over all of the above, with seeded arrivals, admission
  control, and fleet telemetry.

Dependencies run one way: ``repro.serve`` imports ``repro.core`` /
``repro.sr`` / ``repro.obs``; nothing below imports ``repro.serve``
(clients accept the shared pieces duck-typed).
"""

from .batching import BatchingInferenceEngine, BatchingStats
from .netpool import PooledNetwork, SharedNetworkPool
from .scheduler import (
    FleetConfig,
    FleetResult,
    FleetSimulator,
    FleetTelemetry,
    SessionResult,
    arrival_times,
)
from .shared_cache import CacheSession, SharedModelCache

__all__ = [
    "SharedModelCache",
    "CacheSession",
    "SharedNetworkPool",
    "PooledNetwork",
    "BatchingInferenceEngine",
    "BatchingStats",
    "FleetConfig",
    "FleetResult",
    "FleetSimulator",
    "FleetTelemetry",
    "SessionResult",
    "arrival_times",
]
