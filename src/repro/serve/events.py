"""Deterministic discrete-event core for the fleet simulator.

Everything a fleet result depends on is already *simulated* seconds
(arrival schedules, fair-share transfer times, playout stalls), so
nothing about a fleet run needs OS threads: sessions are generators
driven by one event heap.  :class:`EventLoop` replaces the old
thread-per-session executor with a single-threaded scheduler:

- **Event heap.**  Scheduled callbacks are ``(time, seq, action)``
  entries on a binary heap.  ``seq`` is a monotonically increasing
  schedule counter, so two events at the same simulated instant always
  fire in the order they were scheduled — ties are deterministic by
  construction, never by thread timing or hash order.
- **Processes.**  A session is a plain generator.  Yielding
  :class:`Timeout` suspends it for a simulated duration, :class:`Until`
  suspends it to an absolute simulated instant, and yielding another
  :class:`Process` joins it (resume when it finishes).  Each resume
  sends the loop's current ``now`` back into the generator.
- **No wall clock.**  The loop never sleeps; it jumps ``now`` from event
  to event.  A 10,000-session day of simulated traffic runs in however
  long the Python work itself takes.

:class:`TokenBucket` lives here too: the per-session rate limiter is
pure simulated-time mechanics (the classic refill-and-drain throttler
shape), consumed by :class:`~repro.serve.netpool.PooledNetwork`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import count
from typing import Callable, Generator

__all__ = ["Timeout", "Until", "Process", "EventLoop", "TokenBucket"]


@dataclass(frozen=True)
class Timeout:
    """Yield value: resume this process after ``seconds`` of sim time."""

    seconds: float

    def __post_init__(self):
        if self.seconds < 0:
            raise ValueError(f"Timeout must be >= 0, got {self.seconds}")


@dataclass(frozen=True)
class Until:
    """Yield value: resume this process at absolute sim instant ``at``.

    An instant already in the past resumes at the current ``now`` (the
    loop never travels backwards), still in deterministic seq order.
    """

    at: float


class Process:
    """One generator driven by an :class:`EventLoop`.

    ``result`` carries the generator's return value once ``done``;
    other processes may ``yield`` this object to join it.
    """

    def __init__(self, gen: Generator, name: str = ""):
        self.gen = gen
        self.name = name
        self.done = False
        self.result = None
        self._started = False
        self._waiters: list[Process] = []

    def __repr__(self):
        state = "done" if self.done else "running"
        return f"Process({self.name or 'anonymous'}, {state})"


class EventLoop:
    """Single-threaded discrete-event scheduler with a deterministic heap.

    Parameters
    ----------
    trace:
        When ``True``, every processed event is appended to
        :attr:`history` as ``(time, seq, label)`` — the determinism
        tests compare two runs' histories for bitwise equality.
    """

    def __init__(self, trace: bool = False):
        self._heap: list[tuple[float, int, Callable[[], None], str]] = []
        self._seq = count()
        self.now = 0.0
        self.events_processed = 0
        self.history: list[tuple[float, int, str]] | None = \
            [] if trace else None

    # ----------------------------------------------------------- scheduling

    def call_at(self, when: float, action: Callable[[], None],
                label: str = "") -> None:
        """Run ``action()`` at sim instant ``when`` (clamped to now)."""
        heapq.heappush(self._heap,
                       (max(float(when), self.now), next(self._seq),
                        action, label))

    def call_later(self, delay: float, action: Callable[[], None],
                   label: str = "") -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.call_at(self.now + delay, action, label)

    def spawn(self, gen: Generator, at: float | None = None,
              name: str = "") -> Process:
        """Register a generator as a process; first resumed at ``at``."""
        proc = Process(gen, name=name)
        self.call_at(self.now if at is None else at,
                     lambda: self._resume(proc), label=name)
        return proc

    # ------------------------------------------------------------ execution

    def run(self, until: float | None = None) -> float:
        """Drain the heap in (time, seq) order; returns the final ``now``.

        ``until`` stops the loop *before* processing any event scheduled
        later than that instant (the event stays queued).
        """
        while self._heap:
            when, seq, action, label = self._heap[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._heap)
            self.now = when
            self.events_processed += 1
            if self.history is not None:
                self.history.append((when, seq, label))
            action()
        return self.now

    def _resume(self, proc: Process) -> None:
        try:
            if proc._started:
                command = proc.gen.send(self.now)
            else:
                proc._started = True
                command = next(proc.gen)
        except StopIteration as stop:
            proc.done = True
            proc.result = stop.value
            for waiter in proc._waiters:
                self.call_at(self.now, lambda w=waiter: self._resume(w),
                             label=waiter.name)
            proc._waiters.clear()
            return
        self._dispatch(proc, command)

    def _dispatch(self, proc: Process, command) -> None:
        label = proc.name
        if command is None:
            self.call_at(self.now, lambda: self._resume(proc), label)
        elif isinstance(command, Timeout):
            self.call_at(self.now + command.seconds,
                         lambda: self._resume(proc), label)
        elif isinstance(command, Until):
            self.call_at(command.at, lambda: self._resume(proc), label)
        elif isinstance(command, Process):
            if command.done:
                self.call_at(self.now, lambda: self._resume(proc), label)
            else:
                command._waiters.append(proc)
        else:
            raise TypeError(
                f"process {proc.name!r} yielded {command!r}; expected "
                "Timeout, Until, Process, or None")


class TokenBucket:
    """Per-session rate limiter in pure simulated time.

    The classic throttler shape: a bucket holding up to ``burst_bits``
    refills at ``rate_bps`` and every transfer drains its payload from
    it.  A transfer finding the bucket short waits exactly the deficit
    divided by the refill rate — :meth:`consume` returns that wait so
    the caller can delay the transfer's start on the sim timeline.

    All arithmetic is deterministic (no wall clock, no RNG): the same
    request sequence at the same instants always produces the same
    waits.

    Parameters
    ----------
    rate_bps:
        Sustained drain rate in bits per simulated second.
    burst_bits:
        Bucket depth — how many bits may go through instantly after an
        idle period.  Defaults to one second's worth (``rate_bps``).
    """

    def __init__(self, rate_bps: float, burst_bits: float | None = None):
        if rate_bps <= 0:
            raise ValueError(f"rate_bps must be > 0, got {rate_bps}")
        if burst_bits is not None and burst_bits <= 0:
            raise ValueError(f"burst_bits must be > 0, got {burst_bits}")
        self.rate_bps = float(rate_bps)
        self.burst_bits = float(burst_bits if burst_bits is not None
                                else rate_bps)
        self._tokens = self.burst_bits
        self._updated = 0.0
        #: Total simulated seconds transfers spent waiting on this bucket.
        self.waited_s = 0.0

    def _refill(self, now: float) -> None:
        if now > self._updated:
            self._tokens = min(
                self.burst_bits,
                self._tokens + (now - self._updated) * self.rate_bps)
            self._updated = now

    def available_bits(self, now: float) -> float:
        """Bits the bucket would grant instantly at sim instant ``now``."""
        self._refill(now)
        return self._tokens

    def consume(self, bits: float, now: float) -> float:
        """Drain ``bits`` at instant ``now``; return the wait in seconds.

        Zero when the bucket holds enough; otherwise the transfer must
        idle ``(bits - tokens) / rate`` seconds while the bucket refills
        (payloads larger than the burst are allowed — they just wait
        proportionally longer).
        """
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        self._refill(now)
        if self._tokens >= bits:
            self._tokens -= bits
            return 0.0
        wait = (bits - self._tokens) / self.rate_bps
        self._tokens = 0.0
        self._updated = now + wait
        self.waited_s += wait
        return wait
