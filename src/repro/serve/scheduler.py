"""Multi-session serving simulator: the fleet around the dcSR client.

The paper evaluates one client; the deployment question (ROADMAP north
star) is what happens when thousands of viewers hit the same package.
:class:`FleetSimulator` runs N concurrent sessions against the shared
serving substrate:

- one :class:`~repro.serve.shared_cache.CacheHierarchy` — per-edge model
  caches in front of an origin shield, with configurable admission, so a
  micro model any session downloaded is an edge hit for its neighbours
  and the origin-offload curve is measurable;
- one :class:`~repro.serve.netpool.SharedNetworkPool` — sessions split a
  single simulated uplink fairly instead of each getting a private link,
  optionally behind per-session token-bucket rate limits;
- optionally one :class:`~repro.serve.batching.BatchingInferenceEngine` —
  I-frame tiles from co-playing sessions ride one GEMM call.

**Everything runs on one thread.**  All time a result depends on is
simulated seconds, so sessions are processes on a deterministic
:class:`~repro.serve.events.EventLoop` (an event heap with ``(time,
seq)`` ordering) rather than OS threads: no GIL contention, no
scheduler nondeterminism, and fleet sizes are bounded by memory, not by
thread count.  Two session engines share that loop:

- ``mode="playback"`` (default) — each session is a full
  :class:`~repro.core.client.DcsrClient` playing real media (decode, SR,
  per-frame quality).  Sessions execute at their admitted start instants
  in deterministic order; a fleet of one is bitwise-equal to a plain
  client on a dedicated link.
- ``mode="trace"`` — each session is a lightweight generator that
  replays the package's *byte trace* (manifest model sizes + encoded
  segment sizes) through the same cache hierarchy, network pool, retry,
  and playout-clock math, but performs no decode or SR.  Sessions
  interleave per segment in sim-time order, which is what makes
  5,000–10,000-session runs practical and gives the fair-share pool a
  causally ordered charge sequence.

Admission control is pure simulated time.  Each session plays for
``n_frames / fps`` simulated seconds; with ``max_sessions = c`` the
fleet behaves as a c-server queue over the arrival schedule — the
``queue`` policy delays a session's start until a slot frees (M/D/c
style), while ``reject`` turns it away when all ``c`` slots are busy at
its arrival instant.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field

import numpy as np

from ..control import (
    CONTROLLER_NAMES,
    ControlContext,
    JointController,
    build_controller,
    segment_energy,
    tier_options,
)
from ..core.client import (
    DcsrClient,
    FastPathConfig,
    PlaybackResult,
    PlaybackTelemetry,
    PlayoutClock,
    SegmentPlayback,
)
from ..core.network import DownloadError, RetryPolicy, download_with_retry
from ..core.server import DcsrPackage
from ..core.streaming import session_goodput_bps, stall_ratio
from ..devices import DEVICES, get_device
from ..obs import Observability
from .batching import BatchingInferenceEngine
from .events import EventLoop, Until
from .netpool import SharedNetworkPool
from .shared_cache import ADMISSION_POLICIES, CacheHierarchy

__all__ = [
    "FLEET_MODES",
    "FleetConfig",
    "SessionResult",
    "FleetTelemetry",
    "FleetResult",
    "FleetSimulator",
    "arrival_times",
]

#: Accepted values of :attr:`FleetConfig.mode`.
FLEET_MODES = ("playback", "trace")


@dataclass(frozen=True)
class FleetConfig:
    """Shape of one fleet run (``cli serve`` mirrors these knobs).

    Parameters
    ----------
    sessions:
        Number of viewer sessions to simulate.
    mode:
        ``"playback"`` runs full :class:`~repro.core.client.DcsrClient`
        sessions (real decode + SR); ``"trace"`` replays the package's
        byte trace through the same serving substrate without media
        compute — the engine for thousand-session runs.
    arrival:
        Arrival schedule: ``"all"`` (everyone at t=0), ``"poisson:<rate>"``
        (seeded exponential inter-arrivals at ``rate`` sessions/s), or
        ``"uniform:<gap>"`` (one session every ``gap`` seconds).
    bandwidth_bps / latency_s / fail_rate / retries:
        The shared uplink: one pool of ``bandwidth_bps`` split fairly
        among active transfers; latency, failure injection, and the retry
        budget apply per session exactly as on a dedicated link.
    rate_limit_bps:
        Optional per-session token-bucket cap in bit/s (burst = one
        second's worth): each session's transfers wait out their token
        deficit before joining the pool.  ``None`` disables the limiter.
    edges:
        Number of edge caches in the CDN hierarchy; sessions shard
        across them by ``session_id % edges``.
    cache_admission:
        Edge admission policy, one of
        :data:`~repro.serve.shared_cache.ADMISSION_POLICIES`
        (``always`` / ``second-hit`` / ``size-aware``).
    cache_capacity:
        LRU bound per edge cache (``None`` = unbounded).
    max_sessions / admission:
        Session admission control: at most ``max_sessions`` sessions
        play concurrently (in simulated time); an arrival beyond that is
        queued until a slot frees (``"queue"``) or turned away
        (``"reject"``).  ``max_sessions=None`` admits everyone at their
        arrival instant.
    batching / max_batch / max_wait_s:
        Cross-session SR batching, playback mode only (off by default:
        every session runs the reference per-frame SR path, which keeps
        fleet frames bit-equal to a solo client).  On the single-threaded
        scheduler the ``max_wait_s`` door only costs wall-clock — it can
        never change a simulated number.
    fallback:
        Per-session model-fetch fallback (play unenhanced instead of
        raising), as in :class:`~repro.core.client.DcsrClient`.
    fast_path:
        Optional :class:`~repro.core.client.FastPathConfig` every
        playback-mode session plays with (tiling, quantized kernels, the
        skip gate, temporal reuse).  ``None`` keeps the reference SR
        path.  Ignored in trace mode — see ``sr_demand_factor``.
    sr_demand_factor:
        Trace mode's model of the client fast path: the fraction of a
        session's *nominal* per-I-frame SR FLOPs it would actually
        execute (1.0 = ungated reference compute; a gated + reusing
        client measured at, say, 60% skipped and 30% reused demands
        0.1).  Trace sessions do no media compute, but they report the
        modeled demand per segment (``SegmentPlayback.sr_flops``) and
        the fleet aggregates it — so ``cli serve`` capacity numbers
        reflect what reuse/gating save across thousands of sessions.
    devices:
        Per-session device classes (keys of
        :data:`repro.devices.DEVICES`): session ``i`` plays on
        ``devices[i % len(devices)]``.  A fleet with devices models each
        session's rail energy with that device's power curve — in both
        modes — and feeds it to the session's joint controller when one
        is configured.  Empty (the default) disables energy modeling.
    controller:
        Per-session joint (rung, tier, SR-mode) controller, one of
        :data:`repro.control.CONTROLLER_NAMES`.  ``"off"`` (default)
        keeps the pre-controller session paths bit-for-bit.  Anything
        else requires ``devices``; each session gets a private
        controller instance (budget state is per viewer, never shared).
    power_budget_w:
        Session-average power budget handed to each controller (watts);
        ``None`` = unconstrained.
    controller_tier / controller_precision:
        The pinned SR configuration of ``controller="fixed"`` (ignored
        by ``"greedy"``).
    seed:
        Fleet seed: drives the arrival schedule and derives each
        session's private failure-RNG stream.
    """

    sessions: int = 4
    mode: str = "playback"
    arrival: str = "all"
    bandwidth_bps: float | None = None
    latency_s: float = 0.0
    fail_rate: float = 0.0
    retries: int = 3
    rate_limit_bps: float | None = None
    edges: int = 1
    cache_admission: str = "always"
    cache_capacity: int | None = None
    max_sessions: int | None = None
    admission: str = "queue"
    batching: bool = False
    max_batch: int = 8
    max_wait_s: float = 0.002
    fallback: bool = False
    fast_path: FastPathConfig | None = None
    sr_demand_factor: float = 1.0
    devices: tuple[str, ...] = ()
    controller: str = "off"
    power_budget_w: float | None = None
    controller_tier: str | None = None
    controller_precision: str = "fp32"
    seed: int = 0

    def device_name_for(self, session_id: int) -> str | None:
        """The device class session ``session_id`` plays on (or ``None``)."""
        if not self.devices:
            return None
        return self.devices[session_id % len(self.devices)]

    def __post_init__(self):
        if self.fast_path is not None \
                and not isinstance(self.fast_path, FastPathConfig):
            raise TypeError("fast_path must be a FastPathConfig or None")
        if not 0.0 <= self.sr_demand_factor <= 1.0:
            raise ValueError(f"sr_demand_factor must be in [0, 1], "
                             f"got {self.sr_demand_factor}")
        if self.sessions < 1:
            raise ValueError(f"sessions must be >= 1, got {self.sessions}")
        if self.mode not in FLEET_MODES:
            raise ValueError(
                f"mode must be one of {FLEET_MODES}, got {self.mode!r}")
        if self.admission not in ("queue", "reject"):
            raise ValueError(
                f"admission must be 'queue' or 'reject', got {self.admission!r}")
        if self.cache_admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"cache_admission must be one of {ADMISSION_POLICIES}, "
                f"got {self.cache_admission!r}")
        if self.edges < 1:
            raise ValueError(f"edges must be >= 1, got {self.edges}")
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1 (or None)")
        if self.rate_limit_bps is not None and self.rate_limit_bps <= 0:
            raise ValueError("rate_limit_bps must be > 0 (or None)")
        for name in self.devices:
            if name.lower() not in DEVICES:
                raise ValueError(f"unknown device {name!r}; "
                                 f"choose from {sorted(DEVICES)}")
        if self.controller not in CONTROLLER_NAMES + ("none",):
            raise ValueError(
                f"controller must be one of {CONTROLLER_NAMES}, "
                f"got {self.controller!r}")
        if self.controller not in ("off", "none") and not self.devices:
            raise ValueError("a joint controller needs --device classes "
                             "(energy has no meaning without a power model)")
        if self.power_budget_w is not None and self.power_budget_w <= 0:
            raise ValueError("power_budget_w must be > 0 (or None)")
        arrival_times(self)     # validates the arrival spec eagerly


def arrival_times(config: FleetConfig) -> list[float]:
    """The seeded simulated arrival instant of every session.

    Session 0 always arrives at t=0; ``poisson:<rate>`` draws exponential
    inter-arrival gaps from ``random.Random(config.seed)`` (bit-identical
    across runs), ``uniform:<gap>`` spaces arrivals evenly.
    """
    spec = config.arrival
    n = config.sessions
    if spec == "all":
        return [0.0] * n
    kind, _, value = spec.partition(":")
    if kind == "poisson":
        try:
            rate = float(value)
        except ValueError:
            rate = -1.0
        if rate <= 0:
            raise ValueError(f"poisson arrival needs a positive rate, "
                             f"got {spec!r}")
        rng = random.Random(config.seed)
        times, t = [], 0.0
        for _ in range(n):
            times.append(t)
            t += rng.expovariate(rate)
        return times
    if kind == "uniform":
        try:
            gap = float(value)
        except ValueError:
            gap = -1.0
        if gap < 0:
            raise ValueError(f"uniform arrival needs a non-negative gap, "
                             f"got {spec!r}")
        return [i * gap for i in range(n)]
    raise ValueError(f"unknown arrival spec {spec!r} "
                     "(expected 'all', 'poisson:<rate>', or 'uniform:<gap>')")


@dataclass
class SessionResult:
    """One session's outcome within a fleet run."""

    session_id: int
    arrival_s: float
    start_s: float              # == arrival_s unless queued by admission
    status: str                 # completed | rejected
    result: PlaybackResult | None = None

    @property
    def queue_wait_s(self) -> float:
        return self.start_s - self.arrival_s


@dataclass
class FleetTelemetry:
    """Fleet-level aggregates over every completed session."""

    sessions: int = 0
    completed: int = 0
    rejected: int = 0
    queue_wait_s: float = 0.0           # summed across queued sessions
    aggregate_goodput_bps: float = 0.0  # delivered bits / summed download s
    mean_session_goodput_bps: float = 0.0
    cache_hit_rate: float = 0.0         # edge-hit fraction, cross-session
    cache_downloads: int = 0
    cache_evictions: int = 0
    #: Fraction of model requests that never read origin storage
    #: (edge hits + origin-shield hits).
    origin_offload: float = 0.0
    edge_hits: int = 0
    origin_fetches: int = 0
    cache_admission_denied: int = 0
    total_model_bytes: int = 0
    total_video_bytes: int = 0
    #: (stall_seconds, cumulative fraction) quantiles across sessions.
    stall_cdf: list[tuple[float, float]] = field(default_factory=list)
    mean_stall_ratio: float = 0.0
    n_batches: int = 0
    mean_batch_size: float = 0.0
    peak_network_concurrency: int = 0
    #: Simulated seconds sessions idled in their token buckets.
    rate_limit_wait_s: float = 0.0
    #: SR FLOPs across sessions: executed (playback mode, where gates and
    #: reuse reduce it directly) or modeled nominal demand scaled by
    #: :attr:`FleetConfig.sr_demand_factor` (trace mode).
    total_sr_flops: float = 0.0
    #: Simulated rail energy summed across sessions (device classes
    #: configured), and mean session quality per joule when measurable.
    total_energy_joules: float = 0.0
    mean_quality_per_joule: float = 0.0
    #: Discrete events the loop processed, and the sim instant it ended.
    events_processed: int = 0
    sim_duration_s: float = 0.0

    def summary_lines(self) -> list[str]:
        """Printable fleet summary (CLI ``serve``), via the shared
        :func:`~repro.bench.runner.format_table` renderer."""
        from ..bench.runner import format_table

        rows = [
            ["sessions", f"{self.completed}/{self.sessions} completed"
             + (f", {self.rejected} rejected" if self.rejected else "")],
            ["goodput", f"{self.aggregate_goodput_bps / 1e6:.2f} Mbit/s "
             f"aggregate, {self.mean_session_goodput_bps / 1e6:.2f} mean"],
            ["cache", f"{self.cache_hit_rate:.0%} edge hit rate, "
             f"{self.cache_downloads} downloads, "
             f"{self.total_model_bytes} model bytes"],
            ["origin", f"{self.origin_offload:.0%} offload, "
             f"{self.origin_fetches} storage fetches"],
            ["network", f"peak {self.peak_network_concurrency} concurrent "
             f"transfers, {self.total_video_bytes} video bytes"],
            ["stalls", f"{self.mean_stall_ratio:.1%} mean stall ratio"],
            ["events", f"{self.events_processed} processed, "
             f"sim ended at {self.sim_duration_s:.2f}s"],
        ]
        if self.rate_limit_wait_s:
            rows.append(["ratelimit",
                         f"{self.rate_limit_wait_s:.2f}s total bucket wait"])
        if self.total_sr_flops:
            rows.append(["sr demand",
                         f"{self.total_sr_flops / 1e9:.2f} GFLOP "
                         f"across sessions"])
        if self.total_energy_joules:
            line = f"{self.total_energy_joules:.1f} J across sessions"
            if self.mean_quality_per_joule:
                line += f", {self.mean_quality_per_joule:.3f} dB/J mean"
            rows.append(["energy", line])
        if self.cache_admission_denied:
            rows.append(["admission(edge)",
                         f"{self.cache_admission_denied} models not stored"])
        if self.queue_wait_s:
            rows.append(["admission",
                         f"{self.queue_wait_s:.2f}s total queue wait"])
        if self.n_batches:
            rows.append(["batching", f"{self.n_batches} batches, "
                         f"{self.mean_batch_size:.2f} frames/batch"])
        lines = [f"fleet of {self.sessions} sessions:"]
        lines += ["  " + line
                  for line in format_table("", ["metric", "value"],
                                           rows).splitlines()]
        return lines


@dataclass
class FleetResult:
    """Outcome of one :meth:`FleetSimulator.run`."""

    config: FleetConfig
    sessions: list[SessionResult] = field(default_factory=list)
    telemetry: FleetTelemetry = field(default_factory=FleetTelemetry)
    obs: Observability = field(default_factory=Observability,
                               repr=False, compare=False)

    def completed(self) -> list[SessionResult]:
        return [s for s in self.sessions if s.status == "completed"]


class FleetSimulator:
    """Run one package through a fleet of concurrent streaming sessions.

    All sessions share this simulator's :class:`CacheHierarchy`,
    :class:`SharedNetworkPool`, optional
    :class:`BatchingInferenceEngine`, and :class:`~repro.obs.Observability`
    session (per-session subtrees are tagged ``session=<id>`` on their
    ``play``/``session`` spans and network counters).  Execution is a
    single-threaded :class:`~repro.serve.events.EventLoop`; after
    :meth:`run`, :attr:`loop` exposes the drained loop (event count,
    final sim instant, optional history).
    """

    def __init__(self, package: DcsrPackage, config: FleetConfig,
                 obs: Observability | None = None,
                 network_factory=None):
        if network_factory is not None and config.mode != "playback":
            raise ValueError(
                "network_factory is a playback-mode seam (trace mode "
                "replays bytes through the shared pool, not a transport)")
        self.package = package
        self.config = config
        self.obs = obs or Observability(root_name="fleet")
        #: Optional ``(session_id, arrival_s) -> network`` override: when
        #: set, playback sessions download through the returned transport
        #: (e.g. :class:`repro.net.HttpTransport` against a real origin)
        #: instead of a :class:`SharedNetworkPool` session.  The serve
        #: layer never imports ``repro.net`` — callers inject it.
        self.network_factory = network_factory
        manifest = getattr(package, "manifest", None)
        self.cache: CacheHierarchy = CacheHierarchy(
            edges=config.edges,
            edge_capacity=config.cache_capacity,
            admission=config.cache_admission,
            model_sizes=(dict(manifest.model_sizes)
                         if manifest is not None else None))
        self.pool = SharedNetworkPool(
            bandwidth_bps=config.bandwidth_bps, latency_s=config.latency_s,
            fail_rate=config.fail_rate, seed=config.seed, obs=self.obs,
            rate_limit_bps=config.rate_limit_bps)
        self.batcher = (BatchingInferenceEngine(
            max_batch=config.max_batch, max_wait_s=config.max_wait_s,
            obs=self.obs) if config.batching else None)
        self.loop: EventLoop | None = None
        self._fpp_cache: dict[int, float] = {}

    def _i_frames_in(self, encoded_segment) -> int:
        """I-frame count of a segment: from its per-frame metadata when
        present, else re-derived from the GOP plan (packages saved
        before frame info was persisted load with empty ``frames``)."""
        if encoded_segment.frames:
            return sum(1 for fr in encoded_segment.frames
                       if fr.ftype == "I")
        from ..video.codec.gop import plan_segment
        codec = self.package.encoded.config
        plans = plan_segment(encoded_segment.start,
                             encoded_segment.n_frames,
                             codec.n_b_frames, codec.extra_i_interval)
        return sum(1 for plan in plans if plan.ftype == "I")

    def _controller_for(self, session_id: int) -> JointController | None:
        """A fresh private controller for one session (or ``None``).

        Budget state (joules spent, seconds played) is per viewer, so
        controllers are never shared between sessions.
        """
        device_name = self.config.device_name_for(session_id)
        if device_name is None or self.config.controller in ("off", "none"):
            return None
        return build_controller(
            self.config.controller, get_device(device_name),
            power_budget_w=self.config.power_budget_w,
            tier=self.config.controller_tier,
            precision=self.config.controller_precision)

    def _flops_per_pixel(self, label: int) -> float:
        """Nominal forward FLOPs/input-pixel of one model label (trace
        mode's SR-demand model; cached per label)."""
        fpp = self._fpp_cache.get(label)
        if fpp is None:
            models = getattr(self.package, "models", None)
            model = models.get(label) if models is not None else None
            if model is None:
                fpp = 0.0
            else:
                from ..sr.engine import InferenceEngine
                fpp = InferenceEngine(model).flops_per_pixel()
            self._fpp_cache[label] = fpp
        return fpp

    # -------------------------------------------------------------- admission

    def session_duration_s(self) -> float:
        """Simulated seconds one session occupies an admission slot."""
        encoded = self.package.encoded
        n_frames = sum(seg.n_frames for seg in encoded.segments)
        return n_frames / encoded.fps

    def admit(self, arrivals: list[float]) -> list[SessionResult]:
        """Admission control over the arrival schedule (pure sim time).

        Returns one :class:`SessionResult` shell per session, in session
        order: rejected sessions are final, admitted ones carry their
        effective ``start_s`` and are run by :meth:`run`.
        """
        c = self.config.max_sessions
        duration = self.session_duration_s()
        out = []
        if c is None:
            return [SessionResult(i, a, a, "completed")
                    for i, a in enumerate(arrivals)]
        # c servers, each holding the sim time it next comes free.
        servers = [0.0] * c
        heapq.heapify(servers)
        for i, a in enumerate(arrivals):
            free = servers[0]
            if self.config.admission == "reject" and free > a:
                out.append(SessionResult(i, a, a, "rejected"))
                continue
            start = max(a, heapq.heappop(servers))
            heapq.heappush(servers, start + duration)
            out.append(SessionResult(i, a, start, "completed"))
        return out

    # -------------------------------------------------------------- execution

    def run(self, reference: np.ndarray | None = None,
            trace_events: bool = False) -> FleetResult:
        """Drive every admitted session on one event loop; return
        fleet-wide results.

        ``reference`` (the pristine frames) enables per-frame quality
        scoring in each playback-mode session, exactly as in
        :meth:`~repro.core.client.DcsrClient.play`.  ``trace_events``
        records the loop's processed-event history (determinism tests
        compare two histories for bitwise equality).
        """
        config = self.config
        shells = self.admit(arrival_times(config))
        admitted = [s for s in shells if s.status == "completed"]
        for shell in shells:
            if shell.status == "rejected":
                self.obs.metrics.counter(
                    "dcsr_fleet_rejected_total",
                    "Sessions turned away by admission control").inc()

        loop = self.loop = EventLoop(trace=trace_events)
        for shell in admitted:
            if config.mode == "trace":
                loop.spawn(self._trace_session(shell), at=shell.start_s,
                           name=f"session-{shell.session_id}")
            else:
                loop.call_at(shell.start_s,
                             self._playback_action(shell, reference),
                             label=f"session-{shell.session_id}")
        loop.run()

        result = FleetResult(config=config, sessions=shells, obs=self.obs)
        self._finalize(result)
        return result

    # ------------------------------------------------------ playback sessions

    def _playback_action(self, shell: SessionResult, reference):
        """One playback session as a single event at its start instant.

        A full client session runs inline when the loop reaches
        ``start_s``: sessions execute in deterministic (start, session)
        order, and every simulated quantity each one records is anchored
        at its own arrival offset on the pool timeline — exactly the
        causal model the threaded scheduler computed, minus the
        nondeterministic charge interleaving.
        """
        def action() -> None:
            self.pool.advance_watermark(shell.start_s)
            shell.result = self._run_session(shell, reference)
        return action

    def _run_session(self, shell: SessionResult,
                     reference) -> PlaybackResult:
        if self.network_factory is not None:
            network = self.network_factory(shell.session_id, shell.start_s)
        else:
            network = self.pool.session(shell.session_id,
                                        arrival_s=shell.start_s)
        controller = self._controller_for(shell.session_id)
        client = DcsrClient(
            self.package,
            network=network,
            retry=RetryPolicy(retries=self.config.retries),
            fallback=self.config.fallback,
            obs=self.obs,
            fast_path=self.config.fast_path,
            model_cache=self.cache.edge_for(shell.session_id),
            engine_provider=(self.batcher.engine_for
                             if self.batcher is not None else None),
            span_attrs={"session": shell.session_id},
            controller=controller,
        )
        result = client.play(reference)
        device_name = self.config.device_name_for(shell.session_id)
        if controller is None and device_name is not None:
            # Device class without a controller: the client modeled no
            # energy itself, so cost the realized playback (one nominal
            # forward per executed inference) on the session's device.
            self._model_session_energy(result.telemetry, device_name)
        return result

    def _model_session_energy(self, telemetry: PlaybackTelemetry,
                              device_name: str) -> None:
        device = get_device(device_name)
        encoded = self.package.encoded
        pixels = encoded.width * encoded.height
        manifest = self.package.manifest
        for seg_t in telemetry.segments:
            label = manifest.model_label_for(seg_t.index)
            telemetry.energy_joules += segment_energy(
                device, seg_t.n_frames / encoded.fps,
                self._flops_per_pixel(label) * pixels,
                seg_t.sr_inferences).energy_j

    # --------------------------------------------------------- trace sessions

    def _trace_session(self, shell: SessionResult):
        """One byte-trace session as an event-loop process.

        Replays the package's manifest through the real serving
        substrate — hierarchy admission, single-flightless edge sharing,
        fair-share pool charges, token buckets, retry/backoff, playout
        recurrence — while skipping decode/SR compute entirely.  Yields
        back to the loop before each segment so sessions interleave in
        sim-time order (the pool's charges arrive causally sorted, and
        the watermark can prune dead intervals).
        """
        package = self.package
        manifest = package.manifest
        config = self.config
        network = self.pool.session(shell.session_id,
                                    arrival_s=shell.start_s)
        retry = RetryPolicy(retries=config.retries)
        pending = {"seconds": 0.0, "attempts": 0, "bytes": 0}

        def fetch(label: int):
            size = manifest.model_sizes[label]
            seconds, attempts = download_with_retry(
                network, retry, "model", label, size)
            pending["seconds"] += seconds
            pending["attempts"] += attempts
            pending["bytes"] += size
            return ("model", label)     # byte-trace stand-in for the model

        cache = self.cache.edge_for(shell.session_id).session(fetch)
        fps = package.encoded.fps
        telemetry = PlaybackTelemetry(native_fps=fps, obs=self.obs)
        result = PlaybackResult(telemetry=telemetry)
        playout = PlayoutClock(fps)
        controller = self._controller_for(shell.session_id)
        device_name = config.device_name_for(shell.session_id)
        device = get_device(device_name) if device_name is not None else None
        tier_downloaded: set[tuple[int, str, str]] = set()

        for segment, encoded_segment in zip(package.segments,
                                            package.encoded.segments):
            # Wake exactly when this session's link is next free: charges
            # hit the pool in global sim-time order across all sessions.
            now = yield Until(shell.start_s + network.clock.now())
            self.pool.advance_watermark(now)

            seg_t = SegmentPlayback(index=segment.index,
                                    n_frames=segment.n_frames)
            telemetry.segments.append(seg_t)
            label = manifest.model_label_for(segment.index)
            n_i = self._i_frames_in(encoded_segment)
            decision = None
            acquired = False
            if controller is not None:
                # Joint path mirrors the client: the controller owns the
                # SR decision, tier checkpoints are charged once per
                # (label, tier, precision) outside the edge cache, and
                # the base label model is never fetched.
                decision = controller.decide(ControlContext(
                    segment=segment.index,
                    segment_seconds=segment.n_frames / fps,
                    throughput_bps=(float(config.bandwidth_bps)
                                    if config.bandwidth_bps
                                    else float("inf")),
                    buffer_s=float("inf"),
                    rung_bits=(encoded_segment.n_bytes * 8.0,),
                    rung_quality_db=(0.0,),
                    sr_options=tier_options(manifest, label, cached=frozenset(
                        (t, p) for (lab, t, p) in tier_downloaded
                        if lab == label)),
                    n_inferences=n_i,
                ))
                key = (label, decision.tier, decision.precision)
                if decision.sr_enabled and key not in tier_downloaded:
                    size = manifest.tier_size_for(
                        label, decision.tier, decision.precision)
                    try:
                        seconds, attempts = download_with_retry(
                            network, retry, "model",
                            f"{label}:{decision.tier}:{decision.precision}",
                            size)
                        seg_t.download_s += seconds
                        seg_t.download_attempts += attempts
                        result.model_bytes += size
                        tier_downloaded.add(key)
                    except DownloadError as exc:
                        seg_t.download_s += exc.seconds
                        seg_t.download_attempts += exc.attempts
                        if not config.fallback:
                            raise
                        seg_t.status = "fallback"
                        result.fallback_segments.append(segment.index)
                        decision = None     # SR cannot run this segment
            else:
                pending.update(seconds=0.0, attempts=0, bytes=0)
                try:
                    cache.acquire(label)
                    acquired = True
                except (KeyError, DownloadError) as exc:
                    if isinstance(exc, DownloadError):
                        pending["seconds"] += exc.seconds
                        pending["attempts"] += exc.attempts
                    if not config.fallback:
                        raise
                    seg_t.status = "fallback"
                    result.fallback_segments.append(segment.index)
                seg_t.download_s += pending["seconds"]
                seg_t.download_attempts += pending["attempts"]
                result.model_bytes += pending["bytes"]

            try:
                try:
                    seconds, attempts = download_with_retry(
                        network, retry, "segment", encoded_segment.index,
                        encoded_segment.n_bytes)
                    seg_t.download_s += seconds
                    seg_t.download_attempts += attempts
                    result.video_bytes += encoded_segment.n_bytes
                except DownloadError as exc:
                    seg_t.download_s += exc.seconds
                    seg_t.download_attempts += exc.attempts
                    if seg_t.status == "fallback":
                        result.fallback_segments.remove(segment.index)
                    seg_t.status = "concealed"
                    result.skipped_segments.append(segment.index)
            finally:
                if acquired:
                    cache.release(label)

            if seg_t.status == "ok":
                # Trace mode skips decode/SR, so model the segment's SR
                # demand instead: one forward per I-frame (dcSR enhances
                # I-frames only), scaled by sr_demand_factor — the fleet
                # knob for fast-path savings (skip gate + temporal reuse)
                # measured in playback mode or via calibrate_reuse.
                # Under a controller the tier's own FLOPs replace the
                # base model's, and an SR-off decision demands nothing.
                if controller is not None:
                    if decision is not None and decision.sr_enabled:
                        seg_t.sr_inferences = n_i
                        seg_t.sr_flops = (
                            decision.option.flops_per_inference * n_i
                            * config.sr_demand_factor)
                else:
                    fpp = self._flops_per_pixel(label)
                    seg_t.sr_inferences = n_i
                    seg_t.sr_flops = (fpp * package.encoded.width
                                      * package.encoded.height * n_i
                                      * config.sr_demand_factor)

            if device is not None:
                seconds = segment.n_frames / fps
                fpi = (seg_t.sr_flops / seg_t.sr_inferences
                       if seg_t.sr_inferences else 0.0)
                energy = segment_energy(device, seconds, fpi,
                                        seg_t.sr_inferences)
                telemetry.energy_joules += energy.energy_j
                if controller is not None:
                    controller.feedback(energy.energy_j, seconds)

            playout.segment_ready(seg_t.download_s, segment.n_frames)

        telemetry.startup_seconds = playout.startup_s
        telemetry.stall_seconds = playout.stall_s
        telemetry.stage_seconds = {
            "download": sum(s.download_s for s in telemetry.segments),
            "decode": 0.0,      # trace mode performs no media compute
        }
        telemetry.download_attempts = sum(s.download_attempts
                                          for s in telemetry.segments)
        telemetry.cache_hit_rate = cache.stats.hit_rate
        result.model_downloads = list(cache.stats.downloaded_labels)
        result.cache_stats = cache.stats
        # One span per session (per-download spans would dominate memory
        # at 5k sessions); stamped against the session's simulated clock
        # so it carries clock="simulated" like client download spans.
        self.obs.tracer.record(
            "session", playout.position_s, clock=network.clock,
            session=shell.session_id, mode="trace",
            segments=len(telemetry.segments))
        shell.result = result

    # ------------------------------------------------------------ aggregation

    def _finalize(self, fleet: FleetResult) -> None:
        t = fleet.telemetry
        config = fleet.config
        completed = fleet.completed()
        t.sessions = config.sessions
        t.completed = len(completed)
        t.rejected = sum(1 for s in fleet.sessions if s.status == "rejected")
        t.queue_wait_s = sum(s.queue_wait_s for s in completed)
        t.cache_hit_rate = self.cache.stats.hit_rate
        t.cache_downloads = self.cache.stats.downloads
        t.cache_evictions = self.cache.evictions
        t.origin_offload = self.cache.stats.origin_offload
        t.edge_hits = self.cache.stats.edge_hits
        t.origin_fetches = self.cache.stats.origin_fetches
        t.cache_admission_denied = self.cache.stats.denied
        t.peak_network_concurrency = self.pool.peak_concurrency
        t.rate_limit_wait_s = self.pool.rate_limit_wait_s
        if self.loop is not None:
            t.events_processed = self.loop.events_processed
            t.sim_duration_s = self.loop.now
        if self.batcher is not None:
            t.n_batches = self.batcher.stats.n_batches
            t.mean_batch_size = self.batcher.stats.mean_batch_size

        goodputs, stall_ratios, stalls, dbs_per_joule = [], [], [], []
        download_s = 0.0
        for shell in completed:
            result = shell.result
            t.total_model_bytes += result.model_bytes
            t.total_video_bytes += result.video_bytes
            t.total_sr_flops += sum(s.sr_flops
                                    for s in result.telemetry.segments)
            t.total_energy_joules += result.telemetry.energy_joules
            if result.telemetry.energy_joules > 0 and result.psnr_per_frame:
                dbs_per_joule.append(float(np.mean(result.psnr_per_frame))
                                     / result.telemetry.energy_joules)
            goodputs.append(session_goodput_bps(result))
            stall_ratios.append(stall_ratio(result.telemetry))
            stalls.append(result.telemetry.stall_seconds)
            download_s += result.telemetry.stage_seconds.get("download", 0.0)
        if dbs_per_joule:
            t.mean_quality_per_joule = float(np.mean(dbs_per_joule))
        if goodputs:
            t.mean_session_goodput_bps = float(np.mean(goodputs))
            t.mean_stall_ratio = float(np.mean(stall_ratios))
        if download_s > 0:
            t.aggregate_goodput_bps = (
                8.0 * (t.total_model_bytes + t.total_video_bytes)
                / download_s)
        from ..bench.runner import cdf_points
        t.stall_cdf = cdf_points(stalls)

        metrics = self.obs.metrics
        metrics.gauge("dcsr_fleet_sessions",
                      "Sessions in the most recent fleet run"
                      ).set(t.sessions)
        metrics.gauge("dcsr_fleet_cache_hit_rate",
                      "Cross-session edge cache hit rate"
                      ).set(t.cache_hit_rate)
        metrics.gauge("dcsr_fleet_origin_offload",
                      "Fraction of model requests kept off origin storage"
                      ).set(t.origin_offload)
        metrics.gauge("dcsr_fleet_goodput_bps",
                      "Aggregate delivered bits per download second"
                      ).set(t.aggregate_goodput_bps)
        metrics.counter("dcsr_fleet_events_total",
                        "Discrete events processed by the fleet loop"
                        ).inc(t.events_processed)
        if t.total_sr_flops:
            metrics.counter("dcsr_fleet_sr_flops_total",
                            "SR FLOPs demanded across fleet sessions"
                            ).inc(t.total_sr_flops)
        if t.total_energy_joules:
            metrics.counter("dcsr_fleet_energy_joules_total",
                            "Simulated rail energy across fleet sessions"
                            ).inc(t.total_energy_joules)
        for seconds in stalls:
            metrics.histogram("dcsr_fleet_stall_seconds",
                              "Per-session simulated stall seconds"
                              ).observe(seconds)
