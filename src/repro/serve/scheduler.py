"""Multi-session serving simulator: the fleet around the dcSR client.

The paper evaluates one client; the deployment question (ROADMAP north
star) is what happens when thousands of viewers hit the same package.
:class:`FleetSimulator` runs N concurrent :class:`~repro.core.client.
DcsrClient` sessions against the shared serving substrate:

- one :class:`~repro.serve.shared_cache.SharedModelCache` — a micro model
  any session downloaded is a cache hit for every other session;
- one :class:`~repro.serve.netpool.SharedNetworkPool` — sessions split a
  single simulated uplink fairly instead of each getting a private link;
- optionally one :class:`~repro.serve.batching.BatchingInferenceEngine` —
  I-frame tiles from co-playing sessions ride one GEMM call.

Time has two independent axes, kept deliberately separate:

- **Simulated time** drives everything a result depends on: arrival
  schedules, admission control, fair-share transfer seconds, stalls.  It
  is derived only from seeded RNGs and the package, so a fleet run's
  numbers are reproducible regardless of machine load.
- **Wall time** is only an execution detail: admitted sessions run on a
  thread pool whose width bounds real concurrency but never changes any
  simulated quantity.

Admission control is likewise pure simulated time.  Each session plays
for ``n_frames / fps`` simulated seconds; with ``max_sessions = c`` the
fleet behaves as a c-server queue over the arrival schedule — the
``queue`` policy delays a session's start until a slot frees (M/D/c
style), while ``reject`` turns it away when all ``c`` slots are busy at
its arrival instant.
"""

from __future__ import annotations

import heapq
import random
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..core.client import DcsrClient, PlaybackResult
from ..core.network import RetryPolicy
from ..core.server import DcsrPackage
from ..core.streaming import session_goodput_bps, stall_ratio
from ..obs import Observability
from .batching import BatchingInferenceEngine
from .netpool import SharedNetworkPool
from .shared_cache import SharedModelCache

__all__ = [
    "FleetConfig",
    "SessionResult",
    "FleetTelemetry",
    "FleetResult",
    "FleetSimulator",
    "arrival_times",
]


@dataclass(frozen=True)
class FleetConfig:
    """Shape of one fleet run (``cli serve`` mirrors these knobs).

    Parameters
    ----------
    sessions:
        Number of viewer sessions to simulate.
    arrival:
        Arrival schedule: ``"all"`` (everyone at t=0), ``"poisson:<rate>"``
        (seeded exponential inter-arrivals at ``rate`` sessions/s), or
        ``"uniform:<gap>"`` (one session every ``gap`` seconds).
    bandwidth_bps / latency_s / fail_rate / retries:
        The shared uplink: one pool of ``bandwidth_bps`` split fairly
        among active transfers; latency, failure injection, and the retry
        budget apply per session exactly as on a dedicated link.
    cache_capacity:
        Bound on the shared model cache (``None`` = unbounded).
    max_sessions / admission:
        Admission control: at most ``max_sessions`` sessions play
        concurrently (in simulated time); an arrival beyond that is
        queued until a slot frees (``"queue"``) or turned away
        (``"reject"``).  ``max_sessions=None`` admits everyone at their
        arrival instant.
    batching / max_batch / max_wait_s:
        Cross-session SR batching (off by default: every session runs the
        reference per-frame SR path, which keeps fleet frames bit-equal
        to a solo client).
    fallback:
        Per-session model-fetch fallback (play unenhanced instead of
        raising), as in :class:`~repro.core.client.DcsrClient`.
    seed:
        Fleet seed: drives the arrival schedule and derives each
        session's private failure-RNG stream.
    workers:
        Wall-clock thread-pool width (execution only — simulated numbers
        are identical for any value).  ``None`` sizes it to the admitted
        session count.
    """

    sessions: int = 4
    arrival: str = "all"
    bandwidth_bps: float | None = None
    latency_s: float = 0.0
    fail_rate: float = 0.0
    retries: int = 3
    cache_capacity: int | None = None
    max_sessions: int | None = None
    admission: str = "queue"
    batching: bool = False
    max_batch: int = 8
    max_wait_s: float = 0.002
    fallback: bool = False
    seed: int = 0
    workers: int | None = None

    def __post_init__(self):
        if self.sessions < 1:
            raise ValueError(f"sessions must be >= 1, got {self.sessions}")
        if self.admission not in ("queue", "reject"):
            raise ValueError(
                f"admission must be 'queue' or 'reject', got {self.admission!r}")
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1 (or None)")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None)")
        arrival_times(self)     # validates the arrival spec eagerly


def arrival_times(config: FleetConfig) -> list[float]:
    """The seeded simulated arrival instant of every session.

    Session 0 always arrives at t=0; ``poisson:<rate>`` draws exponential
    inter-arrival gaps from ``random.Random(config.seed)`` (bit-identical
    across runs), ``uniform:<gap>`` spaces arrivals evenly.
    """
    spec = config.arrival
    n = config.sessions
    if spec == "all":
        return [0.0] * n
    kind, _, value = spec.partition(":")
    if kind == "poisson":
        try:
            rate = float(value)
        except ValueError:
            rate = -1.0
        if rate <= 0:
            raise ValueError(f"poisson arrival needs a positive rate, "
                             f"got {spec!r}")
        rng = random.Random(config.seed)
        times, t = [], 0.0
        for _ in range(n):
            times.append(t)
            t += rng.expovariate(rate)
        return times
    if kind == "uniform":
        try:
            gap = float(value)
        except ValueError:
            gap = -1.0
        if gap < 0:
            raise ValueError(f"uniform arrival needs a non-negative gap, "
                             f"got {spec!r}")
        return [i * gap for i in range(n)]
    raise ValueError(f"unknown arrival spec {spec!r} "
                     "(expected 'all', 'poisson:<rate>', or 'uniform:<gap>')")


@dataclass
class SessionResult:
    """One session's outcome within a fleet run."""

    session_id: int
    arrival_s: float
    start_s: float              # == arrival_s unless queued by admission
    status: str                 # completed | rejected
    result: PlaybackResult | None = None

    @property
    def queue_wait_s(self) -> float:
        return self.start_s - self.arrival_s


@dataclass
class FleetTelemetry:
    """Fleet-level aggregates over every completed session."""

    sessions: int = 0
    completed: int = 0
    rejected: int = 0
    queue_wait_s: float = 0.0           # summed across queued sessions
    aggregate_goodput_bps: float = 0.0  # delivered bits / summed download s
    mean_session_goodput_bps: float = 0.0
    cache_hit_rate: float = 0.0         # fleet-wide, cross-session
    cache_downloads: int = 0
    cache_evictions: int = 0
    total_model_bytes: int = 0
    total_video_bytes: int = 0
    #: (stall_seconds, cumulative fraction) quantiles across sessions.
    stall_cdf: list[tuple[float, float]] = field(default_factory=list)
    mean_stall_ratio: float = 0.0
    n_batches: int = 0
    mean_batch_size: float = 0.0
    peak_network_concurrency: int = 0

    def summary_lines(self) -> list[str]:
        """Printable fleet summary (CLI ``serve``), via the shared
        :func:`~repro.bench.runner.format_table` renderer."""
        from ..bench.runner import format_table

        rows = [
            ["sessions", f"{self.completed}/{self.sessions} completed"
             + (f", {self.rejected} rejected" if self.rejected else "")],
            ["goodput", f"{self.aggregate_goodput_bps / 1e6:.2f} Mbit/s "
             f"aggregate, {self.mean_session_goodput_bps / 1e6:.2f} mean"],
            ["cache", f"{self.cache_hit_rate:.0%} hit rate, "
             f"{self.cache_downloads} downloads, "
             f"{self.total_model_bytes} model bytes"],
            ["network", f"peak {self.peak_network_concurrency} concurrent "
             f"transfers, {self.total_video_bytes} video bytes"],
            ["stalls", f"{self.mean_stall_ratio:.1%} mean stall ratio"],
        ]
        if self.queue_wait_s:
            rows.append(["admission",
                         f"{self.queue_wait_s:.2f}s total queue wait"])
        if self.n_batches:
            rows.append(["batching", f"{self.n_batches} batches, "
                         f"{self.mean_batch_size:.2f} frames/batch"])
        lines = [f"fleet of {self.sessions} sessions:"]
        lines += ["  " + line
                  for line in format_table("", ["metric", "value"],
                                           rows).splitlines()]
        return lines


@dataclass
class FleetResult:
    """Outcome of one :meth:`FleetSimulator.run`."""

    config: FleetConfig
    sessions: list[SessionResult] = field(default_factory=list)
    telemetry: FleetTelemetry = field(default_factory=FleetTelemetry)
    obs: Observability = field(default_factory=Observability,
                               repr=False, compare=False)

    def completed(self) -> list[SessionResult]:
        return [s for s in self.sessions if s.status == "completed"]


class FleetSimulator:
    """Run one package through a fleet of concurrent streaming sessions.

    All sessions share this simulator's :class:`SharedModelCache`,
    :class:`SharedNetworkPool`, optional
    :class:`BatchingInferenceEngine`, and :class:`~repro.obs.Observability`
    session (per-session subtrees are tagged ``session=<id>`` on their
    ``play`` spans and network counters).
    """

    def __init__(self, package: DcsrPackage, config: FleetConfig,
                 obs: Observability | None = None):
        self.package = package
        self.config = config
        self.obs = obs or Observability(root_name="fleet")
        self.cache: SharedModelCache = SharedModelCache(
            capacity=config.cache_capacity)
        self.pool = SharedNetworkPool(
            bandwidth_bps=config.bandwidth_bps, latency_s=config.latency_s,
            fail_rate=config.fail_rate, seed=config.seed, obs=self.obs)
        self.batcher = (BatchingInferenceEngine(
            max_batch=config.max_batch, max_wait_s=config.max_wait_s,
            obs=self.obs) if config.batching else None)

    # -------------------------------------------------------------- admission

    def session_duration_s(self) -> float:
        """Simulated seconds one session occupies an admission slot."""
        encoded = self.package.encoded
        n_frames = sum(seg.n_frames for seg in encoded.segments)
        return n_frames / encoded.fps

    def admit(self, arrivals: list[float]) -> list[SessionResult]:
        """Admission control over the arrival schedule (pure sim time).

        Returns one :class:`SessionResult` shell per session, in session
        order: rejected sessions are final, admitted ones carry their
        effective ``start_s`` and are run by :meth:`run`.
        """
        c = self.config.max_sessions
        duration = self.session_duration_s()
        out = []
        if c is None:
            return [SessionResult(i, a, a, "completed")
                    for i, a in enumerate(arrivals)]
        # c servers, each holding the sim time it next comes free.
        servers = [0.0] * c
        heapq.heapify(servers)
        for i, a in enumerate(arrivals):
            free = servers[0]
            if self.config.admission == "reject" and free > a:
                out.append(SessionResult(i, a, a, "rejected"))
                continue
            start = max(a, heapq.heappop(servers))
            heapq.heappush(servers, start + duration)
            out.append(SessionResult(i, a, start, "completed"))
        return out

    # -------------------------------------------------------------- execution

    def run(self, reference: np.ndarray | None = None) -> FleetResult:
        """Play every admitted session; return fleet-wide results.

        ``reference`` (the pristine frames) enables per-frame quality
        scoring in each session, exactly as in
        :meth:`~repro.core.client.DcsrClient.play`.
        """
        config = self.config
        shells = self.admit(arrival_times(config))
        admitted = [s for s in shells if s.status == "completed"]
        for shell in shells:
            if shell.status == "rejected":
                self.obs.metrics.counter(
                    "dcsr_fleet_rejected_total",
                    "Sessions turned away by admission control").inc()

        workers = config.workers or max(1, len(admitted))
        if admitted:
            with ThreadPoolExecutor(max_workers=workers,
                                    thread_name_prefix="dcsr-fleet") as pool:
                futures = [pool.submit(self._run_session, shell, reference)
                           for shell in admitted]
                for shell, future in zip(admitted, futures):
                    shell.result = future.result()

        result = FleetResult(config=config, sessions=shells, obs=self.obs)
        self._finalize(result)
        return result

    def _run_session(self, shell: SessionResult,
                     reference) -> PlaybackResult:
        network = self.pool.session(shell.session_id,
                                    arrival_s=shell.start_s)
        client = DcsrClient(
            self.package,
            network=network,
            retry=RetryPolicy(retries=self.config.retries),
            fallback=self.config.fallback,
            obs=self.obs,
            model_cache=self.cache,
            engine_provider=(self.batcher.engine_for
                             if self.batcher is not None else None),
            span_attrs={"session": shell.session_id},
        )
        return client.play(reference)

    def _finalize(self, fleet: FleetResult) -> None:
        t = fleet.telemetry
        config = fleet.config
        completed = fleet.completed()
        t.sessions = config.sessions
        t.completed = len(completed)
        t.rejected = sum(1 for s in fleet.sessions if s.status == "rejected")
        t.queue_wait_s = sum(s.queue_wait_s for s in completed)
        t.cache_hit_rate = self.cache.stats.hit_rate
        t.cache_downloads = self.cache.stats.downloads
        t.cache_evictions = self.cache.stats.evictions
        t.peak_network_concurrency = self.pool.peak_concurrency
        if self.batcher is not None:
            t.n_batches = self.batcher.stats.n_batches
            t.mean_batch_size = self.batcher.stats.mean_batch_size

        goodputs, stall_ratios, stalls = [], [], []
        download_s = 0.0
        for shell in completed:
            result = shell.result
            t.total_model_bytes += result.model_bytes
            t.total_video_bytes += result.video_bytes
            goodputs.append(session_goodput_bps(result))
            stall_ratios.append(stall_ratio(result.telemetry))
            stalls.append(result.telemetry.stall_seconds)
            download_s += result.telemetry.stage_seconds.get("download", 0.0)
        if goodputs:
            t.mean_session_goodput_bps = float(np.mean(goodputs))
            t.mean_stall_ratio = float(np.mean(stall_ratios))
        if download_s > 0:
            t.aggregate_goodput_bps = (
                8.0 * (t.total_model_bytes + t.total_video_bytes)
                / download_s)
        from ..bench.runner import cdf_points
        t.stall_cdf = cdf_points(stalls)

        metrics = self.obs.metrics
        metrics.gauge("dcsr_fleet_sessions",
                      "Sessions in the most recent fleet run"
                      ).set(t.sessions)
        metrics.gauge("dcsr_fleet_cache_hit_rate",
                      "Cross-session model cache hit rate"
                      ).set(t.cache_hit_rate)
        metrics.gauge("dcsr_fleet_goodput_bps",
                      "Aggregate delivered bits per download second"
                      ).set(t.aggregate_goodput_bps)
        for seconds in stalls:
            metrics.histogram("dcsr_fleet_stall_seconds",
                              "Per-session simulated stall seconds"
                              ).observe(seconds)
