"""Fair-share bandwidth pool: one simulated uplink shared by a fleet.

A single :class:`~repro.core.network.SimulatedNetwork` models a dedicated
link per client; a fleet does not get N dedicated links.
:class:`SharedNetworkPool` models one pool of ``bandwidth_bps`` split
fairly among whatever transfers are in flight: a transfer entering the
pool is charged piecewise — while ``k`` transfers overlap it in simulated
time, each progresses at ``bandwidth / k`` — with the share recomputed at
every overlap boundary (a concurrent transfer joining or leaving changes
``k`` from that instant on).

The model is *causal*: a new transfer is slowed by transfers already in
flight, but cannot retroactively slow transfers that already completed in
simulated time (a synchronous ``download()`` must return its duration
immediately).  With a single session the pool degenerates exactly to the
dedicated link — transfers never overlap, every share is the full
bandwidth — which is what the determinism regression tests pin down.

Each session draws a :class:`PooledNetwork` from the pool: a
:class:`SimulatedNetwork` subclass with

- its **own failure RNG stream**, seeded from ``(pool seed, session id)``,
  so the injected failure/latency schedule of a session is bit-identical
  across runs regardless of how the OS interleaves session threads;
- its **own simulated clock** (per-session time domain), offset by the
  session's arrival time when mapped onto the pool timeline;
- per-session metric labels (``session="3"``) on every download counter;
- optionally its **own token bucket** (``rate_limit_bps``): a per-session
  cap below the pool's fair share, modelled as the classic
  refill-and-drain throttler — a transfer finding the bucket short waits
  out the deficit before joining the pool.

For event-driven fleets the pool also supports **watermark pruning**:
:meth:`SharedNetworkPool.advance_watermark` declares that every future
charge starts at or after a given sim instant, letting the pool drop
transfer intervals that can no longer overlap anything.  This keeps the
per-charge interval scan bounded by the number of *concurrently active*
transfers instead of the total transfer history, which is what makes
5,000-session runs linear-time.  Pruning never changes any computed
duration — dropped intervals are exactly those with zero future overlap.
"""

from __future__ import annotations

import threading

from ..core.network import NetworkConfig, SimulatedNetwork
from ..obs import Observability
from .events import TokenBucket

__all__ = ["SharedNetworkPool", "PooledNetwork"]

#: Multiplier folding a session id into the pool seed; any odd constant
#: large enough to keep per-session RNG streams disjoint works.
_SESSION_SEED_STRIDE = 1000003


class SharedNetworkPool:
    """One bandwidth pool shared by every session of a fleet.

    Parameters
    ----------
    bandwidth_bps:
        Total pool bandwidth in bit/s (``None`` = infinite: transfers are
        instantaneous and the pool only injects latency/failures).
    latency_s / fail_rate / seed:
        Per-session link shape, as in
        :class:`~repro.core.network.NetworkConfig`.  ``seed`` is the fleet
        seed; each session derives its own disjoint RNG stream from it.
    obs:
        Shared :class:`~repro.obs.Observability` the per-session download
        counters land in (labelled per session).
    rate_limit_bps:
        Optional per-session token-bucket rate cap in bit/s: each
        session's transfers drain a private
        :class:`~repro.serve.events.TokenBucket` refilling at this rate
        (burst = ``rate_limit_burst_bits``, default one second's worth)
        before joining the fair-share pool.  ``None`` disables the
        limiter entirely — the pre-limiter arithmetic is untouched, so
        existing single-link reductions stay bit-identical.
    """

    def __init__(self, bandwidth_bps: float | None = None,
                 latency_s: float = 0.0, fail_rate: float = 0.0,
                 seed: int = 0, obs: Observability | None = None,
                 rate_limit_bps: float | None = None,
                 rate_limit_burst_bits: float | None = None):
        # Validation is delegated to NetworkConfig (same error messages).
        NetworkConfig(fail_rate=fail_rate, bandwidth_bps=bandwidth_bps,
                      latency_s=latency_s, seed=seed)
        if rate_limit_bps is not None and rate_limit_bps <= 0:
            raise ValueError(
                f"rate_limit_bps must be > 0 (or None), got {rate_limit_bps}")
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self.fail_rate = fail_rate
        self.seed = seed
        self.obs = obs
        self.rate_limit_bps = rate_limit_bps
        self.rate_limit_burst_bits = rate_limit_burst_bits
        self._lock = threading.Lock()
        #: Finalized transfer intervals ``(start, end)`` on the pool
        #: timeline, used to compute overlap for new transfers.
        self._intervals: list[tuple[float, float]] = []
        self._watermark = float("-inf")
        self.peak_concurrency = 0
        self.total_transfers = 0
        #: Total simulated seconds sessions idled in their token buckets.
        self.rate_limit_wait_s = 0.0

    @staticmethod
    def session_seed(seed: int, session_id: int) -> int:
        """The failure-RNG seed of one session (deterministic, disjoint)."""
        return seed * _SESSION_SEED_STRIDE + session_id

    def session(self, session_id: int,
                arrival_s: float = 0.0) -> "PooledNetwork":
        """A per-session network drawing from this pool."""
        config = NetworkConfig(
            fail_rate=self.fail_rate, bandwidth_bps=self.bandwidth_bps,
            latency_s=self.latency_s,
            seed=self.session_seed(self.seed, session_id))
        bucket = (TokenBucket(self.rate_limit_bps,
                              burst_bits=self.rate_limit_burst_bits)
                  if self.rate_limit_bps is not None else None)
        return PooledNetwork(self, session_id, arrival_s, config,
                             obs=self.obs, bucket=bucket)

    # ------------------------------------------------------------- charging

    def advance_watermark(self, now_s: float) -> None:
        """Promise that every future :meth:`charge` starts at or after
        ``now_s``; prune intervals that ended before it.

        The event-driven fleet calls this as its loop advances (charges
        happen at the loop's ``now`` or later), bounding the interval
        list by the active transfer count.  Callers issuing charges out
        of sim-time order must simply not advance the watermark past
        their earliest future start.
        """
        with self._lock:
            if now_s <= self._watermark:
                return
            self._watermark = now_s
            self._intervals = [iv for iv in self._intervals
                               if iv[1] > now_s]

    def charge(self, start_s: float, n_bytes: int) -> float:
        """Fair-share transfer seconds for ``n_bytes`` starting at
        ``start_s`` on the pool timeline.

        Drains the payload piecewise: between overlap boundaries of the
        transfers already in flight, progress runs at
        ``bandwidth / (1 + overlapping)``; the share is recomputed at each
        boundary (join or leave).  The finalized interval is recorded so
        later transfers see this one.
        """
        with self._lock:
            self.total_transfers += 1
            if self.bandwidth_bps is None or n_bytes <= 0:
                end = start_s
                self._intervals.append((start_s, end))
                return 0.0
            remaining_bits = 8.0 * n_bytes
            # Time is tracked as an offset from start_s, not absolutely:
            # with no overlap the duration is then computed as exactly
            # ``8 * n_bytes / bandwidth`` with zero float drift, so a
            # single-session pool is bit-identical to a dedicated link.
            elapsed = 0.0
            # Every instant an already-known transfer joins or leaves the
            # pool after our start is a point where our share changes.
            boundaries = sorted(
                {p - start_s for (s, e) in self._intervals
                 for p in (s, e) if p > start_s})
            for boundary in boundaries + [None]:
                t = start_s + elapsed
                active = sum(1 for (s, e) in self._intervals if s <= t < e)
                self.peak_concurrency = max(self.peak_concurrency, active + 1)
                share = self.bandwidth_bps / (1 + active)
                needed = remaining_bits / share
                if boundary is None or elapsed + needed <= boundary:
                    elapsed += needed
                    break
                remaining_bits -= share * (boundary - elapsed)
                elapsed = boundary
            self._intervals.append((start_s, start_s + elapsed))
            return elapsed


class PooledNetwork(SimulatedNetwork):
    """One session's view of a :class:`SharedNetworkPool`.

    Behaves exactly like a private :class:`SimulatedNetwork` (same retry /
    failure / latency semantics, same per-session simulated clock) except
    that transfer time comes from the pool's fair-share model.  The
    session's position on the shared pool timeline is its arrival offset
    plus its own simulated clock.

    With a ``bucket`` (per-session token-bucket rate limit), a transfer
    first waits out any token deficit, then joins the pool — the
    reported duration is bucket wait plus fair-share drain time.
    """

    def __init__(self, pool: SharedNetworkPool, session_id: int,
                 arrival_s: float, config: NetworkConfig,
                 obs: Observability | None = None,
                 bucket: TokenBucket | None = None):
        super().__init__(config=config, obs=obs, session=str(session_id))
        self.pool = pool
        self.session_id = session_id
        self.arrival_s = float(arrival_s)
        self.bucket = bucket

    def pool_time(self) -> float:
        """This session's current position on the pool timeline."""
        return self.arrival_s + self.clock.now()

    def _transfer_seconds(self, n_bytes: int) -> float:
        # The request's latency has already elapsed by the time bytes
        # start flowing, so the transfer joins the pool after it.
        start = self.pool_time() + self.config.latency_s
        wait = 0.0
        if self.bucket is not None:
            wait = self.bucket.consume(8.0 * n_bytes, start)
            if wait:
                with self.pool._lock:
                    self.pool.rate_limit_wait_s += wait
        return wait + self.pool.charge(start + wait, n_bytes)
