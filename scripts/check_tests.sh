#!/usr/bin/env bash
# Tiered test gate, as documented in docs/testing.md.
#
#   tier 1  fast correctness suite — the merge gate; excludes anything
#           marked tier2 or timing
#   tier 2  slower, benchmark-adjacent tests plus wall-clock timing
#           guards; run before release or after touching hot paths
#
# --strict-markers turns any unregistered @pytest.mark.<name> into a
# collection error, so a typo'd tier mark cannot silently drop a test
# out of the gate.
#
# Usage: scripts/check_tests.sh [tier1|tier2|all]   (default: all)

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

tier="${1:-all}"

run_tier1() {
    echo "== tier 1: fast correctness gate =="
    python -m pytest -x -q --strict-markers -m "not tier2 and not timing"
}

run_tier2() {
    echo "== tier 2: slow / timing-sensitive =="
    python -m pytest -q --strict-markers -m "tier2 or timing"
}

case "$tier" in
    tier1) run_tier1 ;;
    tier2) run_tier2 ;;
    all)   run_tier1; run_tier2 ;;
    *) echo "usage: $0 [tier1|tier2|all]" >&2; exit 2 ;;
esac
