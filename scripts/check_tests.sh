#!/usr/bin/env bash
# Tiered test gate, as documented in docs/testing.md.
#
#   tier 1  fast correctness suite — the merge gate; excludes anything
#           marked tier2 or timing.  Also runs the static source guards
#           (below) and the executable-docs suite explicitly, so a
#           broken fenced example or a thread sneaking into the serve
#           layer fails the merge gate even if someone narrows the
#           pytest selection.
#   tier 2  slower, benchmark-adjacent tests plus wall-clock timing
#           guards; run before release or after touching hot paths
#   net     real-socket tests (loopback asyncio origin, chaos proxy,
#           dual-transport contract suite); marked `net`, run on
#           ephemeral ports with a leaked-task guard
#
# Static guards (cheap, run first so violations fail in seconds):
#   - no thread spawning inside src/repro/serve/ — the fleet's
#     determinism contract requires every session to run on the
#     discrete-event loop (tests/serve/test_no_threads.py is the
#     authoritative AST-level check; the grep here is a fast first line
#     that also catches files pytest cannot import).
#   - no quantized kernels in the training path (optimizer, SR trainer,
#     gradient checker, losses) — quantization is inference-only; the
#     AST-level check is tests/nn/test_no_quant_in_training.py.
#   - no unbounded temporal reuse cache in library code — every
#     TileReuseCache must carry an explicit entry budget (an unbounded
#     cache is a per-session memory leak); the AST-level check is
#     tests/sr/test_no_unbounded_reuse.py.
#   - no threading in src/repro/net/ — the real transport's loopback
#     topology (client + origin on one event loop) and the chaos
#     proxy's connection↔attempt mapping require a single thread of
#     control; the AST-level check is tests/net/test_no_threads_net.py.
#   - no upward imports from src/repro/control/ — the control plane is
#     consumed by both the client and the fleet scheduler, so importing
#     repro.serve or repro.cli from it would cycle the layer graph; the
#     AST-level check is tests/control/test_no_upward_imports.py.
#
# --strict-markers turns any unregistered @pytest.mark.<name> into a
# collection error, so a typo'd tier mark cannot silently drop a test
# out of the gate.
#
# Usage: scripts/check_tests.sh [tier1|tier2|net|all]   (default: all)

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

tier="${1:-all}"

run_guards() {
    echo "== static guards =="
    if grep -rnE 'threading\.Thread\(|ThreadPoolExecutor|ProcessPoolExecutor' \
            src/repro/serve/ --include='*.py'; then
        echo "error: thread-based execution found in src/repro/serve/" >&2
        echo "       (fleet sessions must run on the EventLoop;" >&2
        echo "       see tests/serve/test_no_threads.py)" >&2
        exit 1
    fi
    echo "ok: no thread spawning in src/repro/serve/"
    if grep -nE 'quantize_conv_weight|QuantizedConvWeight|conv2d_(gemm|shift_nhwc)_quant' \
            src/repro/nn/optim.py src/repro/nn/gradcheck.py \
            src/repro/nn/losses.py src/repro/sr/trainer.py; then
        echo "error: quantized kernels referenced from the training path" >&2
        echo "       (quantization is inference-only;" >&2
        echo "       see tests/nn/test_no_quant_in_training.py)" >&2
        exit 1
    fi
    echo "ok: no quantized kernels in the training path"
    if grep -rnE 'TileReuseCache\(\)|TileReuseCache\(None\)|max_tiles\s*=\s*None' \
            src/repro/ --include='*.py'; then
        echo "error: unbounded TileReuseCache construction in src/repro/" >&2
        echo "       (the reuse cache must carry an explicit entry budget;" >&2
        echo "       see tests/sr/test_no_unbounded_reuse.py)" >&2
        exit 1
    fi
    echo "ok: no unbounded reuse cache in library code"
    if grep -rnE '^\s*(import threading|from threading import|from concurrent\.futures)' \
            src/repro/net/ --include='*.py'; then
        echo "error: threading found in src/repro/net/" >&2
        echo "       (the net package is asyncio-only;" >&2
        echo "       see tests/net/test_no_threads_net.py)" >&2
        exit 1
    fi
    echo "ok: no threading in src/repro/net/"
    if grep -rnE 'from \.\.(serve|cli)|from repro\.(serve|cli)|import repro\.(serve|cli)' \
            src/repro/control/ --include='*.py'; then
        echo "error: upward import in src/repro/control/" >&2
        echo "       (the control plane must not import repro.serve or" >&2
        echo "       repro.cli; see tests/control/test_no_upward_imports.py)" >&2
        exit 1
    fi
    echo "ok: no upward imports in src/repro/control/"
}

run_tier1() {
    run_guards
    echo "== tier 1: fast correctness gate =="
    python -m pytest -x -q --strict-markers -m "not tier2 and not timing"
    echo "== tier 1: executable docs =="
    python -m pytest -x -q --strict-markers tests/test_docs.py \
        tests/serve/test_no_threads.py tests/nn/test_no_quant_in_training.py \
        tests/sr/test_no_unbounded_reuse.py \
        tests/control/test_no_upward_imports.py \
        tests/net/test_no_threads_net.py
}

run_tier2() {
    echo "== tier 2: slow / timing-sensitive =="
    python -m pytest -q --strict-markers -m "tier2 or timing"
}

run_net() {
    echo "== net: real-socket tier (loopback, ephemeral ports) =="
    python -m pytest -q --strict-markers tests/net
}

case "$tier" in
    tier1) run_tier1 ;;
    tier2) run_tier2 ;;
    net)   run_net ;;
    all)   run_tier1; run_tier2; run_net ;;
    *) echo "usage: $0 [tier1|tier2|net|all]" >&2; exit 2 ;;
esac
