"""Determinism contracts of the joint controller.

Two invariants, both load-bearing:

1. **Seeded replay** — the same seed and controller configuration yields
   a bit-identical decision sequence and energy total, through both call
   sites (the ABR session simulator and the full client).
2. **Disabled = absent** — ``controller=None`` plays bit-for-bit like
   the pre-controller client, and a tiered build leaves the base models
   (and therefore plain playback) untouched.
"""

from dataclasses import replace

import numpy as np

from repro.abr import QualityLevel, BitrateLadder, random_walk_trace, \
    simulate_session
from repro.control import GreedyKnapsackController, LadderControllerPolicy
from repro.core import build_package
from repro.core.client import DcsrClient
from repro.core.manifest import ModelTierRecord
from repro.core.network import NetworkConfig, SimulatedNetwork
from repro.devices import get_device


class _FakeManifest:
    width = 64
    height = 48

    def __init__(self, labels, tiers):
        self._labels = list(labels)
        self.tiers = tiers

    def label_sequence(self):
        return list(self._labels)


def _record(tier, precision, size, gain):
    return ModelTierRecord(precision=precision, size_bytes=size,
                           delta_db=0.0, tier=tier, n_resblocks=1,
                           n_filters=6, gain_db=gain)


def _ladder(n_segments=8):
    levels = []
    for i, (mbit, quality) in enumerate(
            [(4.0, 40.0), (2.0, 34.0), (1.0, 28.0)]):
        levels.append(QualityLevel(
            level=i, crf=20 + i * 10,
            segment_bits=[int(mbit * 1e6)] * n_segments,
            segment_quality=[quality] * n_segments))
    return BitrateLadder(levels=levels,
                         segment_seconds=[2.0] * n_segments)


def _manifest(n_segments=8):
    return _FakeManifest(
        labels=[i % 2 for i in range(n_segments)],
        tiers={label: {
            "dcSR-1": {"fp32": _record("dcSR-1", "fp32", 6000, 0.8)},
            "dcSR-2": {"fp32": _record("dcSR-2", "fp32", 15000, 1.5)},
        } for label in (0, 1)})


def _run_abr():
    policy = LadderControllerPolicy(
        GreedyKnapsackController(get_device("laptop"), power_budget_w=30.0),
        _manifest())
    result = simulate_session(_ladder(), policy,
                              random_walk_trace(3e6, 30.0, seed=11))
    return policy, result


class TestSeededReplay:
    def test_abr_decision_sequence_bit_identical(self):
        policy_a, result_a = _run_abr()
        policy_b, result_b = _run_abr()
        keys_a = [d.key() for d in policy_a.controller.decisions]
        keys_b = [d.key() for d in policy_b.controller.decisions]
        assert keys_a == keys_b
        assert result_a.levels == result_b.levels
        assert result_a.tiers == result_b.tiers
        assert result_a.energy_joules == result_b.energy_joules
        assert result_a.extra_bits == result_b.extra_bits

    def test_policy_reset_replays_identically(self):
        policy, first = _run_abr()
        keys_first = [d.key() for d in policy.controller.decisions]
        policy.reset()
        second = simulate_session(_ladder(), policy,
                                  random_walk_trace(3e6, 30.0, seed=11))
        assert [d.key() for d in policy.controller.decisions] == keys_first
        assert second.energy_joules == first.energy_joules

    def test_client_decisions_and_energy_bit_identical(self, tiered_package,
                                                       control_clip):
        def run():
            controller = GreedyKnapsackController(get_device("jetson"),
                                                  power_budget_w=5.0)
            network = SimulatedNetwork(NetworkConfig(bandwidth_bps=4e6,
                                                     seed=3))
            result = DcsrClient(tiered_package, network=network,
                                controller=controller).play(
                                    control_clip.frames)
            return controller, result

        ctrl_a, res_a = run()
        ctrl_b, res_b = run()
        assert [d.key() for d in ctrl_a.decisions] \
            == [d.key() for d in ctrl_b.decisions]
        assert res_a.telemetry.energy_joules == res_b.telemetry.energy_joules
        assert len(res_a.frames) == len(res_b.frames)
        for frame_a, frame_b in zip(res_a.frames, res_b.frames):
            np.testing.assert_array_equal(frame_a, frame_b)


class TestDisabledIsAbsent:
    def test_controller_none_plays_bitwise_like_default_client(
            self, tiered_package, control_clip):
        def network():
            return SimulatedNetwork(NetworkConfig(bandwidth_bps=4e6, seed=1))

        default = DcsrClient(tiered_package,
                             network=network()).play(control_clip.frames)
        disabled = DcsrClient(tiered_package, network=network(),
                              controller=None).play(control_clip.frames)
        assert len(default.frames) == len(disabled.frames)
        for frame_a, frame_b in zip(default.frames, disabled.frames):
            np.testing.assert_array_equal(frame_a, frame_b)
        assert default.model_bytes == disabled.model_bytes
        assert disabled.telemetry.energy_joules == 0.0

    def test_tiered_build_leaves_base_models_untouched(
            self, control_clip, control_config, tiered_package):
        untiered = build_package(control_clip,
                                 replace(control_config, model_tiers=()))
        assert sorted(untiered.models) == sorted(tiered_package.models)
        for label, model in untiered.models.items():
            tiered_model = tiered_package.models[label]
            for p_a, p_b in zip(model.parameters(),
                                tiered_model.parameters()):
                np.testing.assert_array_equal(p_a.data, p_b.data)
        plain = DcsrClient(untiered).play(control_clip.frames)
        tiered = DcsrClient(tiered_package,
                            controller=None).play(control_clip.frames)
        for frame_a, frame_b in zip(plain.frames, tiered.frames):
            np.testing.assert_array_equal(frame_a, frame_b)
