"""Regression: `LadderControllerPolicy` prices real per-segment I-frame
counts (ROADMAP bug — it used to assume one inference per segment, while
the client and fleet paths already used real counts)."""

from repro.abr import BitrateLadder, QualityLevel
from repro.control import FixedController, LadderControllerPolicy, iframe_counts
from repro.core.manifest import ModelTierRecord
from repro.devices import get_device
from repro.video.codec.gop import plan_segment


def _ladder(n_segments):
    levels = []
    for i, (mbit, quality) in enumerate(
            [(4.0, 40.0), (2.0, 34.0), (1.0, 28.0)]):
        levels.append(QualityLevel(
            level=i, crf=20 + i * 10,
            segment_bits=[int(mbit * 1e6)] * n_segments,
            segment_quality=[quality] * n_segments))
    return BitrateLadder(levels=levels,
                         segment_seconds=[2.0] * n_segments)


class _Frame:
    def __init__(self, ftype):
        self.ftype = ftype


class _Segment:
    def __init__(self, start, n_frames, ftypes=()):
        self.start = start
        self.n_frames = n_frames
        self.frames = [_Frame(t) for t in ftypes]


class _Codec:
    def __init__(self, n_b_frames=2, extra_i_interval=None):
        self.n_b_frames = n_b_frames
        self.extra_i_interval = extra_i_interval


class _Encoded:
    def __init__(self, segments, codec=None):
        self.segments = segments
        self.config = codec or _Codec()


class _FakeManifest:
    width = 64
    height = 48

    def __init__(self, labels):
        self._labels = list(labels)
        record = ModelTierRecord(precision="fp32", size_bytes=6000,
                                 delta_db=0.0, tier="dcSR-1",
                                 n_resblocks=1, n_filters=6, gain_db=1.0)
        self.tiers = {label: {"dcSR-1": {"fp32": record}}
                      for label in set(labels)}

    def label_sequence(self):
        return list(self._labels)


class _CapturingController(FixedController):
    """Records the inference count every decision was priced with."""

    def __init__(self, device, tier=None):
        super().__init__(device, tier=tier)
        self.seen_inferences = []

    def decide(self, ctx):
        self.seen_inferences.append(ctx.n_inferences)
        return super().decide(ctx)


class TestIframeCounts:
    def test_counts_from_frame_metadata(self):
        encoded = _Encoded([
            _Segment(0, 4, ftypes=["I", "P", "B", "I"]),
            _Segment(4, 3, ftypes=["I", "B", "P"]),
            _Segment(7, 5, ftypes=["I", "I", "I", "P", "B"]),
        ])
        assert iframe_counts(encoded) == [2, 1, 3]

    def test_gop_fallback_matches_plan(self):
        # Pre-frame-metadata packages load with empty ``frames``; counts
        # come from the GOP plan instead.
        codec = _Codec(n_b_frames=0, extra_i_interval=3)
        encoded = _Encoded([_Segment(0, 9), _Segment(9, 4)], codec=codec)
        expected = [
            sum(1 for plan in plan_segment(seg.start, seg.n_frames,
                                           codec.n_b_frames,
                                           codec.extra_i_interval)
                if plan.ftype == "I")
            for seg in encoded.segments
        ]
        assert iframe_counts(encoded) == expected
        assert expected[0] > 1        # the fallback must exercise >1 I


class TestPolicyPricing:
    def _run(self, policy, n_segments):
        ladder = _ladder(n_segments)
        for segment in range(n_segments):
            policy.choose_joint(ladder, segment, 8e6, 5.0)

    def test_encoded_supplies_real_counts(self):
        encoded = _Encoded([
            _Segment(0, 4, ftypes=["I", "P", "I", "I"]),
            _Segment(4, 3, ftypes=["I", "B", "P"]),
            _Segment(7, 4, ftypes=["I", "I", "P", "B"]),
        ])
        controller = _CapturingController(get_device("desktop"),
                                          tier="dcSR-1")
        policy = LadderControllerPolicy(controller,
                                        _FakeManifest([0, 1, 0]),
                                        encoded=encoded)
        self._run(policy, 3)
        assert controller.seen_inferences == [3, 1, 2]

    def test_explicit_counts_override_encoded(self):
        encoded = _Encoded([_Segment(0, 2, ftypes=["I", "I"]),
                            _Segment(2, 2, ftypes=["I", "P"])])
        controller = _CapturingController(get_device("desktop"),
                                          tier="dcSR-1")
        policy = LadderControllerPolicy(controller, _FakeManifest([0, 0]),
                                        n_inferences_by_segment=[7, 9],
                                        encoded=encoded)
        self._run(policy, 2)
        assert controller.seen_inferences == [7, 9]

    def test_without_encoded_defaults_to_one(self):
        controller = _CapturingController(get_device("desktop"),
                                          tier="dcSR-1")
        policy = LadderControllerPolicy(controller, _FakeManifest([0, 0]))
        self._run(policy, 2)
        assert controller.seen_inferences == [1, 1]

    def test_extra_iframes_raise_priced_energy(self):
        # The bug's observable effect: a segment with three I frames must
        # cost more energy than a one-I segment at the same tier.  Use a
        # 1080p-sized manifest so each inference burst is long enough to
        # register on the sampled power timeline.
        manifest = _FakeManifest([0, 0])
        manifest.width, manifest.height = 1920, 1080
        record = ModelTierRecord(precision="fp32", size_bytes=6000,
                                 delta_db=0.0, tier="dcSR-1",
                                 n_resblocks=8, n_filters=32, gain_db=1.0)
        manifest.tiers = {0: {"dcSR-1": {"fp32": record}}}
        one = _Encoded([_Segment(0, 3, ftypes=["I", "P", "B"]),
                        _Segment(3, 3, ftypes=["I", "P", "B"])])
        three = _Encoded([_Segment(0, 3, ftypes=["I", "I", "I"]),
                          _Segment(3, 3, ftypes=["I", "I", "I"])])
        energies = {}
        for name, encoded in (("one", one), ("three", three)):
            controller = FixedController(get_device("jetson"),
                                         tier="dcSR-1")
            policy = LadderControllerPolicy(controller, manifest,
                                            encoded=encoded)
            choice = policy.choose_joint(_ladder(2), 0, 8e6, 5.0)
            energies[name] = choice.energy_j
        assert energies["three"] > energies["one"]
