"""Layering guard: the control plane never imports upward.

``repro.control`` is consumed by both the solo client (``repro.core``)
and the fleet scheduler (``repro.serve``); if it ever imported either —
or the CLI — the dependency graph would cycle and the controller could
no longer be reused across call sites.  This test walks the package's
ASTs and fails on any import of ``repro.serve`` or ``repro.cli``
(absolute or relative).  ``scripts/check_tests.sh`` runs a grep version
of the same rule as a fast first line.
"""

import ast
from pathlib import Path

import repro.control

CONTROL_DIR = Path(repro.control.__file__).parent

#: Layers the control plane must never reach into.
BANNED_PREFIXES = ("repro.serve", "repro.cli")
#: The same layers as relative (``from .. import``) targets.
BANNED_RELATIVE = ("serve", "cli")


def _violations(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith(BANNED_PREFIXES):
                    out.append(f"{path.name}:{node.lineno}: "
                               f"import {alias.name}")
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and module.startswith(BANNED_PREFIXES):
                out.append(f"{path.name}:{node.lineno}: from {module}")
            elif node.level > 0:
                head = module.split(".", 1)[0] if module else ""
                targets = {head} | {alias.name for alias in node.names
                                    if not module}
                if targets & set(BANNED_RELATIVE):
                    out.append(f"{path.name}:{node.lineno}: "
                               f"from {'.' * node.level}{module} import "
                               f"{', '.join(a.name for a in node.names)}")
    return out


def test_control_never_imports_serve_or_cli():
    violations = []
    for path in sorted(CONTROL_DIR.rglob("*.py")):
        violations.extend(_violations(path))
    assert not violations, (
        "repro.control must not import repro.serve or repro.cli "
        "(layering: control is below both):\n" + "\n".join(violations))


def test_guard_sees_the_package():
    # The guard is only meaningful if it actually walks source files.
    assert list(CONTROL_DIR.rglob("*.py"))
