"""Unit tests for the joint (rung, tier, SR-mode) control plane.

Everything here runs on synthetic contexts and hand-built tier tables —
no package build, no training — so the whole module stays in the tier-1
fast gate.
"""

import pytest

from repro.control import (
    CONTROLLER_NAMES,
    SR_OFF,
    ControlContext,
    FixedController,
    GreedyKnapsackController,
    JointController,
    SrOption,
    build_controller,
    segment_energy,
    tier_options,
)
from repro.core.manifest import ModelTierRecord
from repro.devices import get_device

JETSON = get_device("jetson")
LAPTOP = get_device("laptop")


def ctx(throughput_bps=8e6, buffer_s=10.0, options=(SR_OFF,), segment=1,
        rung_bits=(4e6, 2e6, 1e6), rung_quality_db=(40.0, 36.0, 32.0),
        n_inferences=2, segment_seconds=2.0):
    return ControlContext(
        segment=segment, segment_seconds=segment_seconds,
        throughput_bps=throughput_bps, buffer_s=buffer_s,
        rung_bits=rung_bits, rung_quality_db=rung_quality_db,
        sr_options=tuple(options), n_inferences=n_inferences)


def sr_option(tier="dcSR-2", precision="fp32", gain_db=1.5,
              model_bits=8e4, flops=2e8):
    return SrOption(tier=tier, precision=precision, gain_db=gain_db,
                    model_bits=model_bits, flops_per_inference=flops)


class TestValidation:
    def test_negative_model_bits_rejected(self):
        with pytest.raises(ValueError):
            SrOption(tier="t", model_bits=-1.0)

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            SrOption(tier="t", flops_per_inference=-1.0)

    def test_zero_segment_seconds_rejected(self):
        with pytest.raises(ValueError):
            ctx(segment_seconds=0.0)

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            ctx(rung_bits=(), rung_quality_db=())

    def test_misaligned_rungs_rejected(self):
        with pytest.raises(ValueError):
            ctx(rung_bits=(1e6,), rung_quality_db=(30.0, 20.0))

    def test_nonpositive_power_budget_rejected(self):
        with pytest.raises(ValueError):
            JointController(JETSON, power_budget_w=0.0)

    def test_negative_feedback_rejected(self):
        controller = JointController(JETSON)
        with pytest.raises(ValueError):
            controller.feedback(-1.0, 2.0)

    def test_bad_safety_rejected(self):
        with pytest.raises(ValueError):
            GreedyKnapsackController(JETSON, safety=0.0)
        with pytest.raises(ValueError):
            FixedController(JETSON, safety=1.5)


class TestSegmentEnergy:
    def test_zero_length_segment_raises(self):
        with pytest.raises(ValueError):
            segment_energy(JETSON, 0.0)

    def test_negative_inferences_raise(self):
        with pytest.raises(ValueError):
            segment_energy(JETSON, 2.0, 1e8, -1)

    def test_off_energy_is_baseline(self):
        e = segment_energy(JETSON, 2.0)
        assert e.energy_j == pytest.approx(
            (JETSON.power_idle_w + JETSON.power_decode_w) * 2.0)
        assert e.sr_j == 0.0

    def test_sr_adds_energy(self):
        off = segment_energy(JETSON, 2.0)
        on = segment_energy(JETSON, 2.0, 2e8, 2)
        assert on.energy_j > off.energy_j
        assert on.sr_j > 0.0

    def test_deterministic(self):
        a = segment_energy(LAPTOP, 2.0, 3e8, 4)
        b = segment_energy(LAPTOP, 2.0, 3e8, 4)
        assert a.energy_j == b.energy_j


class TestGreedy:
    def test_unconstrained_takes_best_rung_sr_off(self):
        decision = GreedyKnapsackController(JETSON).decide(ctx())
        assert decision.level == 0 and not decision.sr_enabled

    def test_positive_gain_turns_sr_on(self):
        option = sr_option(gain_db=2.0)
        decision = GreedyKnapsackController(JETSON).decide(
            ctx(options=(SR_OFF, option)))
        assert decision.sr_enabled and decision.tier == "dcSR-2"
        assert decision.quality_db == pytest.approx(42.0)

    def test_negative_gain_keeps_sr_off(self):
        option = sr_option(gain_db=-0.5)
        decision = GreedyKnapsackController(JETSON).decide(
            ctx(options=(SR_OFF, option)))
        assert not decision.sr_enabled

    def test_bandwidth_budget_excludes_big_models(self):
        # 1.2 Mbit/s * 0.85 * 2 s barely fits the 2 Mbit rung; the model
        # bits push the (rung 1, SR) pair over budget, so SR rides the
        # cheapest rung instead.
        option = sr_option(gain_db=2.0, model_bits=5e5)
        decision = GreedyKnapsackController(JETSON).decide(
            ctx(throughput_bps=1.2e6, options=(SR_OFF, option)))
        assert decision.download_bits <= 0.85 * 1.2e6 * 2.0

    def test_power_budget_excludes_sr(self):
        # Budget just above the idle+decode floor: any SR joules break it.
        floor_w = JETSON.power_idle_w + JETSON.power_decode_w
        controller = GreedyKnapsackController(
            JETSON, power_budget_w=floor_w + 0.01)
        decision = controller.decide(
            ctx(options=(SR_OFF, sr_option(gain_db=3.0, flops=8e11))))
        assert not decision.sr_enabled

    def test_panic_buffer_forces_worst_rung_sr_off(self):
        decision = GreedyKnapsackController(JETSON).decide(
            ctx(buffer_s=0.5, options=(SR_OFF, sr_option(gain_db=3.0))))
        assert decision.level == 2 and not decision.sr_enabled

    def test_first_segment_never_panics(self):
        decision = GreedyKnapsackController(JETSON).decide(
            ctx(segment=0, buffer_s=0.0))
        assert decision.level == 0

    def test_nothing_affordable_falls_back_to_worst_rung(self):
        decision = GreedyKnapsackController(JETSON).decide(
            ctx(throughput_bps=1e3))
        assert decision.level == 2 and not decision.sr_enabled

    def test_densest_upgrade_wins(self):
        cheap = sr_option(tier="dcSR-1", gain_db=1.0, flops=1e8)
        dear = sr_option(tier="dcSR-3", gain_db=1.2, flops=8e11)
        decision = GreedyKnapsackController(JETSON).decide(
            ctx(options=(SR_OFF, cheap, dear)))
        assert decision.tier == "dcSR-1"     # ~same gain, far fewer joules

    def test_feedback_tracks_mean_power(self):
        controller = GreedyKnapsackController(JETSON)
        controller.feedback(10.0, 2.0)
        controller.feedback(6.0, 2.0)
        assert controller.mean_power_w == pytest.approx(4.0)
        controller.reset()
        assert controller.mean_power_w == 0.0 and not controller.decisions


class TestFixed:
    def test_off_matches_throughput_abr(self):
        decision = FixedController(JETSON).decide(ctx(throughput_bps=1.5e6))
        assert decision.level == 1 and not decision.sr_enabled

    def test_pinned_tier_always_on(self):
        option = sr_option(gain_db=-2.0)      # even a harmful tier stays on
        decision = FixedController(JETSON, tier="dcSR-2").decide(
            ctx(options=(SR_OFF, option)))
        assert decision.sr_enabled
        assert decision.quality_db == pytest.approx(38.0)

    def test_unpublished_tier_falls_back_to_off(self):
        decision = FixedController(JETSON, tier="dcSR-9").decide(
            ctx(options=(SR_OFF, sr_option())))
        assert not decision.sr_enabled


class TestFactory:
    def test_names(self):
        assert CONTROLLER_NAMES == ("greedy", "fixed", "off")

    def test_build(self):
        assert isinstance(build_controller("greedy", JETSON),
                          GreedyKnapsackController)
        fixed = build_controller("fixed", JETSON, tier="dcSR-1")
        assert isinstance(fixed, FixedController) and fixed.tier == "dcSR-1"
        assert build_controller("off", JETSON) is None
        assert build_controller("none", JETSON) is None
        with pytest.raises(ValueError):
            build_controller("mpc", JETSON)


class _FakeManifest:
    """Duck-typed manifest: just the attributes tier_options reads."""

    width = 64
    height = 48

    def __init__(self, tiers):
        self.tiers = tiers


def _record(tier, precision, size, gain=1.0, delta=0.0):
    return ModelTierRecord(precision=precision, size_bytes=size,
                           delta_db=delta, tier=tier, n_resblocks=1,
                           n_filters=6, gain_db=gain)


class TestTierOptions:
    def _manifest(self):
        return _FakeManifest({0: {
            "dcSR-2": {"fp32": _record("dcSR-2", "fp32", 15000),
                       "int8": _record("dcSR-2", "int8", 5000, delta=0.1)},
            "dcSR-1": {"fp32": _record("dcSR-1", "fp32", 6000)},
        }})

    def test_off_first_then_ascending_size(self):
        options = tier_options(self._manifest(), 0)
        assert options[0] is SR_OFF
        assert [(o.tier, o.precision) for o in options[1:]] == [
            ("dcSR-1", "fp32"), ("dcSR-2", "fp32"), ("dcSR-2", "int8")]

    def test_bits_and_net_gain(self):
        options = tier_options(self._manifest(), 0)
        by_key = {(o.tier, o.precision): o for o in options[1:]}
        assert by_key[("dcSR-1", "fp32")].model_bits == 6000 * 8
        # int8's gain is net of its quantization delta.
        assert by_key[("dcSR-2", "int8")].gain_db == pytest.approx(0.9)

    def test_cached_checkpoints_owe_nothing(self):
        options = tier_options(self._manifest(), 0,
                               cached={("dcSR-2", "int8")})
        by_key = {(o.tier, o.precision): o for o in options[1:]}
        assert by_key[("dcSR-2", "int8")].model_bits == 0.0
        assert by_key[("dcSR-2", "fp32")].model_bits == 15000 * 8

    def test_unpublished_label_is_off_only(self):
        assert tier_options(self._manifest(), 7) == (SR_OFF,)

    def test_flops_positive_and_memoized(self):
        a = tier_options(self._manifest(), 0)
        b = tier_options(self._manifest(), 0)
        assert a[1].flops_per_inference > 0
        assert a[1].flops_per_inference == b[1].flops_per_inference
