"""The joint controller inside the client and the fleet scheduler."""

import numpy as np
import pytest

from repro.control import FixedController, GreedyKnapsackController
from repro.core.client import DcsrClient, FastPathConfig
from repro.core.network import NetworkConfig, SimulatedNetwork
from repro.devices import get_device
from repro.serve import FleetConfig, FleetSimulator


def _network(seed=1):
    return SimulatedNetwork(NetworkConfig(bandwidth_bps=4e6, seed=seed))


class TestClientController:
    def test_one_decision_per_segment(self, tiered_package, control_clip):
        controller = GreedyKnapsackController(get_device("laptop"))
        result = DcsrClient(tiered_package, network=_network(),
                            controller=controller).play(control_clip.frames)
        assert len(controller.decisions) == len(tiered_package.segments)
        assert result.telemetry.energy_joules > 0.0
        assert controller.played_seconds == pytest.approx(
            sum(s.n_frames for s in tiered_package.segments)
            / tiered_package.encoded.fps)

    def test_fixed_tier_downloads_each_label_once(self, tiered_package,
                                                  control_clip):
        controller = FixedController(get_device("desktop"), tier="dcSR-1")
        result = DcsrClient(tiered_package, network=_network(),
                            controller=controller).play(control_clip.frames)
        manifest = tiered_package.manifest
        labels = set(manifest.label_sequence())
        expected = sum(manifest.tier_size_for(label, "dcSR-1")
                       for label in labels)
        assert result.model_bytes == expected
        assert result.telemetry.sr_segments == len(tiered_package.segments)
        assert result.sr_inferences > 0

    def test_quantized_tier_downloads_quantized_bytes(self, tiered_package,
                                                      control_clip):
        controller = FixedController(get_device("desktop"), tier="dcSR-1",
                                     precision="int8")
        result = DcsrClient(tiered_package, network=_network(),
                            controller=controller).play(control_clip.frames)
        manifest = tiered_package.manifest
        labels = set(manifest.label_sequence())
        expected = sum(manifest.tier_size_for(label, "dcSR-1", "int8")
                       for label in labels)
        assert result.model_bytes == expected

    def test_controller_metrics_emitted(self, tiered_package, control_clip):
        controller = FixedController(get_device("jetson"), tier="dcSR-1")
        client = DcsrClient(tiered_package, network=_network(),
                            controller=controller)
        client.play(control_clip.frames)
        names = {m.name for m in client.obs.metrics.metrics()}
        assert "dcsr_controller_decisions_total" in names
        assert "dcsr_controller_energy_joules_total" in names

    def test_controller_rejects_pipelined_fast_path(self, tiered_package):
        controller = GreedyKnapsackController(get_device("jetson"))
        with pytest.raises(ValueError):
            DcsrClient(tiered_package, controller=controller,
                       fast_path=FastPathConfig(prefetch=2))

    def test_sr_off_plays_passthrough(self, tiered_package, control_clip):
        # An unconstrained greedy on a package whose calibrated gains are
        # non-positive keeps SR off; playback must still complete cleanly.
        controller = GreedyKnapsackController(get_device("jetson"),
                                              power_budget_w=1.0)
        result = DcsrClient(tiered_package, network=_network(),
                            controller=controller).play(control_clip.frames)
        assert len(result.frames) == control_clip.n_frames
        assert not result.skipped_segments


class TestTierPersistence:
    def test_tier_table_and_checkpoints_round_trip(self, tiered_package,
                                                   control_clip, tmp_path):
        from repro.core.persist import load_package, save_package

        save_package(tiered_package, tmp_path)
        loaded = load_package(tmp_path)
        assert loaded.manifest.has_tiers
        assert loaded.manifest.tiers.keys() \
            == tiered_package.manifest.tiers.keys()
        for label, by_tier in tiered_package.manifest.tiers.items():
            for tier, by_precision in by_tier.items():
                for precision, record in by_precision.items():
                    back = loaded.manifest.tiers[label][tier][precision]
                    assert back.size_bytes == record.size_bytes
                    assert back.gain_db == record.gain_db
                    assert back.delta_db == record.delta_db
        assert set(loaded.tier_models) == set(tiered_package.tier_models)
        # A controller session over the from-disk package still works and
        # downloads the persisted checkpoint sizes.
        controller = FixedController(get_device("jetson"), tier="dcSR-1")
        result = DcsrClient(loaded, network=_network(),
                            controller=controller).play(control_clip.frames)
        labels = set(loaded.manifest.label_sequence())
        assert result.model_bytes == sum(
            loaded.manifest.tier_size_for(label, "dcSR-1")
            for label in labels)


class TestFleetController:
    def test_controller_requires_devices(self):
        with pytest.raises(ValueError):
            FleetConfig(sessions=2, controller="greedy")

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(sessions=2, devices=("toaster",))

    def test_device_cycle(self):
        config = FleetConfig(sessions=5, devices=("jetson", "laptop"))
        assert [config.device_name_for(i) for i in range(4)] \
            == ["jetson", "laptop", "jetson", "laptop"]
        assert FleetConfig(sessions=2).device_name_for(0) is None

    def test_trace_fleet_energy_deterministic(self, tiered_package):
        def run():
            config = FleetConfig(
                sessions=4, mode="trace", arrival="uniform:0.5",
                bandwidth_bps=8e6, devices=("jetson", "laptop"),
                controller="greedy", power_budget_w=30.0, seed=2)
            return FleetSimulator(tiered_package, config).run()

        a, b = run(), run()
        assert a.telemetry.total_energy_joules \
            == b.telemetry.total_energy_joules
        assert a.telemetry.total_energy_joules > 0.0
        assert a.telemetry.total_model_bytes == b.telemetry.total_model_bytes

    def test_trace_fleet_without_devices_unchanged(self, tiered_package):
        config = FleetConfig(sessions=2, mode="trace")
        fleet = FleetSimulator(tiered_package, config).run()
        assert fleet.telemetry.total_energy_joules == 0.0
        assert fleet.telemetry.completed == 2

    def test_playback_fleet_with_devices_models_energy(self, tiered_package,
                                                       control_clip):
        config = FleetConfig(sessions=2, devices=("jetson",))
        fleet = FleetSimulator(tiered_package, config).run(
            control_clip.frames)
        assert fleet.telemetry.total_energy_joules > 0.0
        assert fleet.telemetry.mean_quality_per_joule > 0.0

    def test_playback_fleet_controller_sessions_complete(self,
                                                         tiered_package):
        config = FleetConfig(sessions=2, devices=("laptop",),
                             controller="fixed", controller_tier="dcSR-1")
        fleet = FleetSimulator(tiered_package, config).run()
        assert fleet.telemetry.completed == 2
        total = sum(s.result.model_bytes for s in fleet.completed())
        assert total > 0      # tier checkpoints were downloaded
