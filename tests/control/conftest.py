"""One tiny tiered package, shared by the control-plane tests.

Training quality is irrelevant here (controllers treat calibrated gains
honestly, whatever their sign); what matters is that the package carries
a real per-tier size/gain table and tier checkpoints, so settings are
the smallest that exercise the full path.
"""

import pytest

from repro.core import ServerConfig, build_package
from repro.features import VaeTrainConfig
from repro.sr import EdsrConfig, SrTrainConfig
from repro.video import make_video
from repro.video.codec import CodecConfig


@pytest.fixture(scope="session")
def control_clip():
    return make_video("control", "music", seed=7, size=(48, 64),
                      duration_seconds=5.0, fps=10, n_distinct_scenes=2)


@pytest.fixture(scope="session")
def control_config():
    return ServerConfig(
        codec=CodecConfig(crf=48),
        vae_train=VaeTrainConfig(epochs=4, batch_size=4),
        sr_train=SrTrainConfig(epochs=3, steps_per_epoch=4, batch_size=8,
                               patch_size=16, learning_rate=5e-3,
                               lr_decay_epochs=2),
        micro_config=EdsrConfig(n_resblocks=2, n_filters=8),
        seed=0,
        model_tiers=("dcSR-1", "dcSR-2"),
    )


@pytest.fixture(scope="session")
def tiered_package(control_clip, control_config):
    return build_package(control_clip, control_config)
