"""JointPolicy plumbing through the ABR simulator, and the
tier/precision-aware ``extra_bits`` fix in :class:`DcsrAwareAbr`."""

import numpy as np
import pytest

from repro.abr import (
    BitrateLadder,
    DcsrAwareAbr,
    JointChoice,
    JointPolicy,
    QualityLevel,
    constant_trace,
    simulate_session,
)
from repro.control import FixedController, LadderControllerPolicy
from repro.core.manifest import ModelTierRecord
from repro.devices import get_device


def _ladder(n_segments=6):
    levels = []
    for i, (mbit, quality) in enumerate(
            [(4.0, 40.0), (2.0, 34.0), (1.0, 28.0)]):
        levels.append(QualityLevel(
            level=i, crf=20 + i * 10,
            segment_bits=[int(mbit * 1e6)] * n_segments,
            segment_quality=[quality] * n_segments))
    return BitrateLadder(levels=levels,
                         segment_seconds=[2.0] * n_segments)


class _FakeManifest:
    width = 64
    height = 48

    def __init__(self, labels, tiers=None, sizes=None, quantization=None):
        self._labels = list(labels)
        self.tiers = tiers or {}
        self._sizes = sizes or {}
        self._quantization = quantization or {}

    def label_sequence(self):
        return list(self._labels)

    def model_size_for(self, label, precision="fp32"):
        record = self._quantization.get(label, {}).get(precision)
        return record if record is not None else self._sizes[label]


def _record(tier, size, gain):
    return ModelTierRecord(precision="fp32", size_bytes=size, delta_db=0.0,
                           tier=tier, n_resblocks=1, n_filters=6,
                           gain_db=gain)


class _AlwaysJoint(JointPolicy):
    """Minimal joint policy: rung 1, fixed bonus/energy, tier on segment 0."""

    def __init__(self):
        self.feedback_log = []

    def choose_joint(self, ladder, segment, throughput_estimate_bps,
                     buffer_s):
        return JointChoice(level=1, extra_bits=100.0 if segment == 0 else 0.0,
                           quality_bonus_db=0.5, energy_j=2.0,
                           tier="dcSR-1")

    def feedback(self, energy_j, seconds):
        self.feedback_log.append((energy_j, seconds))


class TestJointSimulate:
    def test_joint_choice_drives_session(self):
        policy = _AlwaysJoint()
        result = simulate_session(_ladder(), policy, constant_trace(4e6))
        assert result.levels == [1] * 6
        assert result.tiers == ["dcSR-1"] * 6
        assert result.extra_bits == 100.0
        assert result.energy_joules == pytest.approx(12.0)
        # Every segment credits the SR bonus on top of rung quality.
        assert result.qualities == [34.5] * 6
        # Realized energy flows back once per segment.
        assert policy.feedback_log == [(2.0, 2.0)] * 6

    def test_choose_interop_returns_joint_level(self):
        ladder = _ladder()
        assert _AlwaysJoint().choose(ladder, 0, 4e6, 5.0) == 1

    def test_stall_ratio_and_quality_per_joule(self):
        policy = _AlwaysJoint()
        result = simulate_session(_ladder(), policy, constant_trace(4e6))
        assert result.played_seconds == pytest.approx(12.0)
        assert result.stall_ratio == pytest.approx(
            result.rebuffer_seconds / 12.0)
        assert result.quality_per_joule == pytest.approx(
            result.mean_quality / result.energy_joules)

    def test_rung_only_policy_reports_zero_energy(self):
        from repro.abr import ThroughputAbr
        result = simulate_session(_ladder(), ThroughputAbr(),
                                  constant_trace(4e6))
        assert result.energy_joules == 0.0
        assert result.tiers == []
        assert result.played_seconds == pytest.approx(12.0)


class TestLadderControllerPolicy:
    def _manifest(self):
        return _FakeManifest(
            labels=[0, 0, 1, 1, 0, 1],
            tiers={label: {"dcSR-1": {"fp32": _record("dcSR-1", 6000, 1.0)}}
                   for label in (0, 1)})

    def test_model_bits_charged_once_per_label(self):
        policy = LadderControllerPolicy(
            FixedController(get_device("desktop"), tier="dcSR-1"),
            self._manifest())
        result = simulate_session(_ladder(), policy, constant_trace(8e6))
        assert result.tiers == ["dcSR-1"] * 6
        # Two labels, one checkpoint each, bits charged exactly once.
        assert result.extra_bits == pytest.approx(2 * 6000 * 8)

    def test_energy_accumulates_via_feedback(self):
        controller = FixedController(get_device("desktop"), tier="dcSR-1")
        policy = LadderControllerPolicy(controller, self._manifest())
        result = simulate_session(_ladder(), policy, constant_trace(8e6))
        assert result.energy_joules > 0.0
        assert controller.energy_spent_j == pytest.approx(
            result.energy_joules)


class TestDcsrAwareExtraBits:
    def test_exactly_one_source_required(self):
        quality = np.full((2, 4), 30.0)
        with pytest.raises(ValueError):
            DcsrAwareAbr(quality)
        with pytest.raises(ValueError):
            DcsrAwareAbr(quality, model_bits_by_segment=[0.0] * 4,
                         manifest=_FakeManifest([0] * 4, sizes={0: 1000}))

    def test_manifest_charges_actual_size_at_first_segment(self):
        manifest = _FakeManifest([0, 0, 1, 0], sizes={0: 1000, 1: 2000})
        policy = DcsrAwareAbr(np.full((2, 4), 30.0), manifest=manifest,
                              enhanced_level=1)
        assert policy.model_bits_by_segment == [8000.0, 0.0, 16000.0, 0.0]
        assert policy.extra_bits(0, 1) == 8000.0
        assert policy.extra_bits(0, 0) == 0.0   # only the enhanced level

    def test_manifest_precision_shrinks_budget(self):
        manifest = _FakeManifest(
            [0, 1], sizes={0: 1000, 1: 2000},
            quantization={0: {"int8": 300}, 1: {"int8": 500}})
        policy = DcsrAwareAbr(np.full((2, 2), 30.0), manifest=manifest,
                              precision="int8")
        assert policy.model_bits_by_segment == [2400.0, 4000.0]
