"""Tests for the ABR extension: traces, ladders, policies, simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr import (
    BitrateLadder,
    BufferAbr,
    DcsrAwareAbr,
    QualityLevel,
    ThroughputAbr,
    constant_trace,
    qoe_score,
    random_walk_trace,
    simulate_session,
    step_trace,
)


def _ladder(n_segments=6, seconds=2.0):
    """Three-rung synthetic ladder: 4 / 2 / 1 Mbit segments."""
    levels = []
    for i, (mbit, quality) in enumerate([(4.0, 40.0), (2.0, 34.0), (1.0, 28.0)]):
        levels.append(QualityLevel(
            level=i, crf=20 + i * 10,
            segment_bits=[int(mbit * 1e6)] * n_segments,
            segment_quality=[quality] * n_segments))
    return BitrateLadder(levels=levels,
                         segment_seconds=[seconds] * n_segments)


class TestTrace:
    def test_constant(self):
        trace = constant_trace(1e6)
        assert trace.bandwidth_at(0) == 1e6
        assert trace.bandwidth_at(100) == 1e6

    def test_download_time_constant(self):
        trace = constant_trace(1e6)
        assert np.isclose(trace.download_time(2e6, 0.0), 2.0)

    def test_download_time_across_step(self):
        trace = step_trace([(0.0, 1e6), (1.0, 2e6)])
        # 1 Mbit in the first second, remaining 2 Mbit at 2 Mbit/s -> 2 s.
        assert np.isclose(trace.download_time(3e6, 0.0), 2.0)

    def test_bandwidth_at_steps(self):
        trace = step_trace([(0.0, 1e6), (5.0, 4e6)])
        assert trace.bandwidth_at(4.9) == 1e6
        assert trace.bandwidth_at(5.0) == 4e6

    def test_zero_bits(self):
        assert constant_trace(1e6).download_time(0, 3.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            step_trace([])
        with pytest.raises(ValueError):
            step_trace([(1.0, 1e6)])  # must start at 0
        with pytest.raises(ValueError):
            step_trace([(0.0, -5.0)])

    def test_random_walk_properties(self):
        trace = random_walk_trace(2e6, 60.0, seed=1)
        assert np.all(trace.bandwidth_bps > 0)
        # Log-centred around the mean: geometric mean within 2x.
        geo = np.exp(np.mean(np.log(trace.bandwidth_bps)))
        assert 1e6 < geo < 4e6

    def test_random_walk_deterministic(self):
        a = random_walk_trace(1e6, 30.0, seed=5)
        b = random_walk_trace(1e6, 30.0, seed=5)
        np.testing.assert_array_equal(a.bandwidth_bps, b.bandwidth_bps)

    @given(st.floats(1e5, 1e8), st.floats(0.1, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_property_download_time_linear(self, rate, mbits):
        trace = constant_trace(rate)
        t = trace.download_time(mbits * 1e6, 0.0)
        assert np.isclose(t, mbits * 1e6 / rate, rtol=1e-6)


class TestLadder:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BitrateLadder(levels=[], segment_seconds=[2.0])
        bad = QualityLevel(level=0, crf=20, segment_bits=[1], segment_quality=[30.0])
        with pytest.raises(ValueError):
            BitrateLadder(levels=[bad], segment_seconds=[2.0, 2.0])

    def test_order_validation(self):
        low = QualityLevel(0, 40, [100], [20.0])
        high = QualityLevel(1, 10, [400], [40.0])
        with pytest.raises(ValueError):
            BitrateLadder(levels=[low, high], segment_seconds=[2.0])

    def test_bitrate(self):
        ladder = _ladder(seconds=2.0)
        assert np.isclose(ladder.bitrate_bps(0, 0), 2e6)  # 4 Mbit / 2 s

    def test_built_from_codec(self):
        """build_ladder measures real sizes: better CRF = bigger + better."""
        from repro.abr import build_ladder
        from repro.video import detect_segments, make_video
        clip = make_video("abr", "news", seed=2, size=(32, 48),
                          duration_seconds=3.0, fps=10)
        segments = detect_segments(clip.frames)
        ladder = build_ladder(clip, segments, crfs=[20, 40, 51])
        assert ladder.n_levels == 3
        assert ladder.levels[0].total_bits > ladder.levels[1].total_bits
        assert ladder.levels[0].mean_quality > ladder.levels[2].mean_quality


class TestPolicies:
    def test_throughput_picks_best_affordable(self):
        ladder = _ladder()
        policy = ThroughputAbr(safety=1.0)
        # 2.5 Mbit/s affordable: level 1 (2 Mbit / 2 s = 1 Mbit/s)... level 0
        # needs 2 Mbit/s -> affordable too.
        assert policy.choose(ladder, 0, 2.1e6, 0.0) == 0
        assert policy.choose(ladder, 0, 1.2e6, 0.0) == 1
        assert policy.choose(ladder, 0, 0.1e6, 0.0) == 2

    def test_throughput_safety(self):
        ladder = _ladder()
        tight = ThroughputAbr(safety=0.5)
        loose = ThroughputAbr(safety=1.0)
        assert tight.choose(ladder, 0, 2.1e6, 0.0) >= loose.choose(
            ladder, 0, 2.1e6, 0.0)

    def test_throughput_validation(self):
        with pytest.raises(ValueError):
            ThroughputAbr(safety=0.0)

    def test_buffer_policy_thresholds(self):
        ladder = _ladder()
        policy = BufferAbr(reservoir_s=4.0, cushion_s=12.0)
        assert policy.choose(ladder, 0, 0, 1.0) == 2   # low buffer -> worst
        assert policy.choose(ladder, 0, 0, 20.0) == 0  # deep buffer -> best
        mid = policy.choose(ladder, 0, 0, 8.0)
        assert 0 <= mid <= 2

    def test_buffer_validation(self):
        with pytest.raises(ValueError):
            BufferAbr(reservoir_s=5.0, cushion_s=4.0)

    def test_dcsr_aware_prefers_cheaper_rung_at_target(self):
        ladder = _ladder()
        # dcSR lifts the lowest rung from 28 dB to 35 dB.
        enhanced = np.array([[40.0] * 6, [36.0] * 6, [35.0] * 6])
        policy = DcsrAwareAbr(enhanced_quality=enhanced,
                              model_bits_by_segment=[0.0] * 6,
                              target_quality_db=34.0, safety=1.0)
        # Plenty of throughput: plain ABR would take level 0; dcSR-aware
        # takes the cheapest rung that clears the target after enhancement.
        assert policy.choose(ladder, 0, 10e6, 0.0) == 2

    def test_dcsr_aware_budgets_model_bits(self):
        ladder = _ladder()
        # Bottom rung enhanced to 35 dB, but its micro model is huge at
        # segment 0, making that rung unaffordable there.
        enhanced = np.array([[40.0] * 6, [36.0] * 6, [35.0] * 6])
        policy = DcsrAwareAbr(enhanced_quality=enhanced,
                              model_bits_by_segment=[8e6] + [0.0] * 5,
                              target_quality_db=34.0, safety=1.0)
        # Segment 0: the enhanced rung costs model + video > budget, so the
        # policy falls back to the cheapest un-enhanced rung meeting the
        # target (level 1).  Segment 1: model already cached -> bottom rung.
        assert policy.choose(ladder, 0, 2.1e6, 0.0) == 1
        assert policy.choose(ladder, 1, 2.1e6, 0.0) == 2

    def test_dcsr_aware_charges_model_only_on_enhanced_rung(self):
        enhanced = np.array([[40.0] * 6, [36.0] * 6, [35.0] * 6])
        policy = DcsrAwareAbr(enhanced_quality=enhanced,
                              model_bits_by_segment=[1e6] * 6,
                              target_quality_db=34.0)
        assert policy.extra_bits(0, 2) == 1e6
        assert policy.extra_bits(0, 0) == 0.0
        assert policy.extra_bits(0, 1) == 0.0


class TestSimulation:
    def test_fast_link_picks_top_quality(self):
        ladder = _ladder()
        result = simulate_session(ladder, ThroughputAbr(), constant_trace(20e6))
        assert all(lvl == 0 for lvl in result.levels[1:])
        assert result.rebuffer_seconds == 0.0

    def test_slow_link_picks_bottom_and_may_stall(self):
        ladder = _ladder()
        result = simulate_session(ladder, ThroughputAbr(),
                                  constant_trace(0.3e6))
        assert all(lvl == 2 for lvl in result.levels[1:])

    def test_rebuffering_on_bandwidth_drop(self):
        ladder = _ladder(n_segments=10)
        trace = step_trace([(0.0, 10e6), (6.0, 0.2e6)])
        result = simulate_session(ladder, ThroughputAbr(), trace)
        assert result.rebuffer_seconds > 0.0

    def test_bits_accounted(self):
        ladder = _ladder()
        result = simulate_session(ladder, ThroughputAbr(), constant_trace(20e6))
        expected = sum(ladder.levels[lvl].segment_bits[i]
                       for i, lvl in enumerate(result.levels))
        assert np.isclose(result.video_bits, expected)

    def test_quality_table_override(self):
        ladder = _ladder()
        table = np.full((3, 6), 33.0)
        result = simulate_session(ladder, ThroughputAbr(),
                                  constant_trace(20e6), quality_table=table)
        assert np.isclose(result.mean_quality, 33.0)

    def test_switch_counting(self):
        ladder = _ladder(n_segments=16)
        trace = step_trace([(0.0, 20e6), (4.0, 0.2e6)])
        result = simulate_session(ladder, ThroughputAbr(), trace)
        assert result.switches >= 1
        # After the estimate converges the policy must have shifted down.
        assert result.levels[-1] > result.levels[0]

    def test_oversized_segment_clamps_drain_and_books_rebuffer(self):
        """Regression: a segment longer than ``max_buffer_s`` used to drive
        the buffer negative in the buffer-full wait and feed that negative
        value to the policy.  The drain must clamp to the buffered amount,
        the remainder must surface as rebuffering, and the policy must
        never see a negative buffer."""
        seen_buffers = []

        class SpyAbr(ThroughputAbr):
            def choose(self, ladder, segment, estimate, buffer_s):
                seen_buffers.append(buffer_s)
                return super().choose(ladder, segment, estimate, buffer_s)

        seg_s, max_buffer = 10.0, 8.0
        ladder = _ladder(n_segments=4, seconds=seg_s)
        result = simulate_session(ladder, SpyAbr(), constant_trace(50e6),
                                  startup_buffer_s=2.0,
                                  max_buffer_s=max_buffer)
        assert all(b >= 0.0 for b in seen_buffers)
        # Every steady-state segment forces at least (seg_s - max_buffer)
        # of stall: even a full drain cannot make room for an oversized
        # segment, so the wait always outlives the buffer.
        n_steady = ladder.n_segments - 1
        assert result.rebuffer_seconds >= n_steady * (seg_s - max_buffer)

    def test_qoe_penalises_rebuffering(self):
        good = simulate_session(_ladder(), ThroughputAbr(), constant_trace(20e6))
        bad = simulate_session(_ladder(), ThroughputAbr(), constant_trace(0.3e6))
        assert qoe_score(good) > qoe_score(bad)

    def test_invalid_ema(self):
        with pytest.raises(ValueError):
            simulate_session(_ladder(), ThroughputAbr(), constant_trace(1e6),
                             throughput_ema=0.0)

    def test_dcsr_aware_same_quality_less_bits(self):
        """The paper's pitch: with enhancement credited, dcSR-aware ABR
        delivers the target quality with fewer bits."""
        ladder = _ladder(n_segments=10)
        enhanced = np.array([
            [40.0] * 10,   # level 0 enhanced
            [37.0] * 10,
            [34.5] * 10,   # bottom rung enhanced to near-top quality
        ])
        trace = constant_trace(3e6)
        plain = simulate_session(ladder, ThroughputAbr(safety=1.0), trace)
        aware = simulate_session(
            ladder,
            DcsrAwareAbr(enhanced_quality=enhanced,
                         model_bits_by_segment=[2e5] + [0.0] * 9,
                         target_quality_db=34.0, safety=1.0),
            trace, quality_table=enhanced)
        assert aware.total_bits < plain.total_bits
        assert aware.mean_quality >= 34.0
