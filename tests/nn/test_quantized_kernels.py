"""Quantized convolution kernels: fp16/int8 GEMM and shift variants.

Two layers of contract:

- **Kernel parity** — the im2col GEMM and the tap-decomposed NHWC
  shift kernel compute the same quantized function: *exactly* for int8
  (integer-valued float32 operands make the accumulation order
  irrelevant below the exact-accumulate bound), and to fp32
  reassociation noise for fp16 (operands are rounded once up front, but
  the two kernels sum partial products in different orders).
- **Quantization semantics** — per-output-channel symmetric scales,
  round-to-nearest clipping at ±127, deterministic reconstruction from
  the fp32 weights (scales never ship), and the ``2^24`` exact-
  accumulation depth guard.
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import Conv2d


def _rand_case(seed, n=2, h=6, w=7, cin=3, cout=4, k=3):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, cin, h, w)).astype(np.float32)
    weight = rng.normal(scale=0.3, size=(cout, cin, k, k)).astype(np.float32)
    bias = rng.normal(size=(cout,)).astype(np.float32)
    return x, weight, bias


def _to_nhwc(x):
    return np.ascontiguousarray(np.transpose(x, (0, 2, 3, 1)))


class TestQuantizeConvWeight:
    def test_fp16_rounds_to_half_grid(self):
        _, weight, bias = _rand_case(0)
        qw = F.quantize_conv_weight(weight, bias, "fp16")
        assert qw.precision == "fp16"
        assert qw.scales is None
        for arr in (qw.taps, qw.mat_t):
            assert np.array_equal(arr,
                                  arr.astype(np.float16).astype(np.float32))

    def test_int8_per_channel_symmetric(self):
        _, weight, bias = _rand_case(1)
        qw = F.quantize_conv_weight(weight, bias, "int8")
        assert qw.scales.shape == (weight.shape[0],)
        # Stored codes are integers in [-127, 127] …
        assert np.array_equal(qw.mat_t, np.rint(qw.mat_t))
        assert np.abs(qw.mat_t).max() <= 127.0
        # … and dequantization reproduces the fp32 weights to within
        # half a step of each channel's scale (mat_t is (Cin*KH*KW, Cout)).
        cout = weight.shape[0]
        dq = qw.mat_t.T * qw.scales[:, None]
        flat = weight.reshape(cout, -1)
        assert np.all(np.abs(dq - flat) <= 0.5 * qw.scales[:, None] + 1e-7)

    def test_int8_zero_channel_safe(self):
        _, weight, bias = _rand_case(2)
        weight[1] = 0.0
        qw = F.quantize_conv_weight(weight, bias, "int8")
        assert qw.scales[1] == 1.0
        assert np.all(qw.mat_t.T[1] == 0.0)

    def test_depth_guard_raises(self):
        # Cin*KH*KW*127*127 >= 2^24 would overflow exact fp32 accumulation.
        cin = F.INT8_EXACT_ACC_BOUND // (127 * 127 * 9) + 1
        weight = np.ones((1, cin, 3, 3), dtype=np.float32)
        with pytest.raises(ValueError, match="overflows exact"):
            F.quantize_conv_weight(weight, None, "int8")

    def test_unknown_precision_raises(self):
        _, weight, bias = _rand_case(3)
        with pytest.raises(ValueError):
            F.quantize_conv_weight(weight, bias, "int4")

    def test_reconstruction_is_deterministic(self):
        """Clients rebuild scales from fp32 weights: same input, same
        quantized kernel, bit for bit."""
        _, weight, bias = _rand_case(4)
        a = F.quantize_conv_weight(weight, bias, "int8")
        b = F.quantize_conv_weight(weight.copy(), bias.copy(), "int8")
        assert np.array_equal(a.taps, b.taps)
        assert np.array_equal(a.scales, b.scales)
        assert np.array_equal(a.mat_t, b.mat_t)


class TestKernelParity:
    """GEMM and shift kernels agree exactly for every precision."""

    @pytest.mark.parametrize("precision", ["fp16", "int8"])
    @pytest.mark.parametrize("relu", [False, True])
    def test_gemm_matches_shift(self, precision, relu):
        x, weight, bias = _rand_case(10)
        qw = F.quantize_conv_weight(weight, bias, precision)
        gemm = F.conv2d_gemm_quant(x, qw, padding=1, relu=relu)
        shift = F.conv2d_shift_nhwc_quant(_to_nhwc(x), qw, relu=relu)
        if precision == "int8":
            assert np.array_equal(gemm, shift.transpose(0, 3, 1, 2))
        else:
            np.testing.assert_allclose(gemm, shift.transpose(0, 3, 1, 2),
                                       atol=1e-5, rtol=1e-5)

    @pytest.mark.parametrize("precision", ["fp16", "int8"])
    def test_residual_epilogue_matches(self, precision):
        x, weight, bias = _rand_case(11)
        res = np.random.default_rng(12).normal(
            size=(2, 4, 6, 7)).astype(np.float32)
        qw = F.quantize_conv_weight(weight, bias, precision)
        gemm = F.conv2d_gemm_quant(x, qw, padding=1, residual=res,
                                   res_scale=0.5)
        shift = F.conv2d_shift_nhwc_quant(
            _to_nhwc(x), qw, residual=_to_nhwc(res), res_scale=0.5)
        if precision == "int8":
            assert np.array_equal(gemm, shift.transpose(0, 3, 1, 2))
        else:
            np.testing.assert_allclose(gemm, shift.transpose(0, 3, 1, 2),
                                       atol=1e-5, rtol=1e-5)

    def test_fp16_close_to_fp32(self):
        x, weight, bias = _rand_case(13)
        ref = F.conv2d_gemm(x, F.pack_conv_weight(weight, bias), padding=1)
        qw = F.quantize_conv_weight(weight, bias, "fp16")
        out = F.conv2d_gemm_quant(x, qw, padding=1)
        # Operand rounding only: error bounded by a few half-precision ulps
        # through a depth-27 accumulation.
        assert np.max(np.abs(out - ref)) < 2e-2

    def test_int8_error_bounded_by_scales(self):
        x, weight, bias = _rand_case(14)
        ref = F.conv2d_gemm(x, F.pack_conv_weight(weight, bias), padding=1)
        qw = F.quantize_conv_weight(weight, bias, "int8")
        out = F.conv2d_gemm_quant(x, qw, padding=1)
        rel = np.max(np.abs(out - ref)) / max(np.max(np.abs(ref)), 1e-6)
        assert rel < 0.05


class TestPackedPrecisionCache:
    def test_versions_keyed_per_precision(self):
        conv = Conv2d(3, 4, 3, rng=np.random.default_rng(0))
        p32 = conv.packed()
        p8 = conv.packed("int8")
        p16 = conv.packed("fp16")
        assert conv.packed() is p32
        assert conv.packed("int8") is p8
        assert conv.packed("fp16") is p16
        assert isinstance(p8, F.QuantizedConvWeight)
        assert isinstance(p16, F.QuantizedConvWeight)

    def test_weight_update_invalidates_all_precisions(self):
        conv = Conv2d(3, 4, 3, rng=np.random.default_rng(0))
        stale8 = conv.packed("int8")
        conv.weight.data = conv.weight.data * 0.5
        fresh8 = conv.packed("int8")
        assert fresh8 is not stale8
        assert not np.array_equal(fresh8.scales, stale8.scales)

    def test_invalid_precision_raises(self):
        conv = Conv2d(3, 4, 3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            conv.packed("bf16")
