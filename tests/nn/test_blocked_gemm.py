"""Cache-blocked im2col GEMM: equality to the unblocked path and to the
shift kernel, across block sizes, epilogues, and precisions.

The blocking is a pure scheduling change — each row block is an
independent ``np.matmul`` over the same K extent — but BLAS picks fp32
sgemm kernels *by M*, so blocked fp32/fp16 output matches unblocked
within reassociation tolerance (<= 1e-5 here), not bitwise.  int8 output
accumulates integer-exactly below 2^24, which IS order-independent, so
int8 blocked output is asserted bitwise-equal at every block size.  The
scratch sizing helper is checked against its budget arithmetic.
"""

import numpy as np
import pytest

from repro.nn import functional as F


def _case(rng, cin, cout, k, h, w, n=1):
    x = rng.standard_normal((n, h, w, cin)).astype(np.float32)
    weight = (rng.standard_normal((cout, cin, k, k)) * 0.3).astype(np.float32)
    bias = rng.standard_normal(cout).astype(np.float32)
    return x, weight, bias


class TestBlockedEqualsUnblocked:
    @pytest.mark.parametrize("cin,cout,k,h,w", [
        (3, 8, 3, 17, 23),
        (8, 8, 3, 16, 16),
        (4, 6, 1, 9, 31),
        (3, 5, 5, 20, 12),
    ])
    def test_tolerance_across_block_sizes(self, cin, cout, k, h, w):
        rng = np.random.default_rng(0)
        x, weight, bias = _case(rng, cin, cout, k, h, w)
        packed = F.pack_conv_weight(weight, bias)
        whole = F.conv2d_im2col_nhwc(x, packed, block_rows=0)
        for block_rows in (1, 2, 3, 7, h, h + 5, None):
            blocked = F.conv2d_im2col_nhwc(x, packed, block_rows=block_rows)
            assert blocked.dtype == np.float32
            # BLAS sgemm output is M-dependent (kernel selection), so
            # bitwise equality across block sizes is not guaranteed.
            assert np.abs(blocked - whole).max() <= 1e-5, block_rows

    def test_bitwise_equals_shift_kernel(self):
        """Same packed weights, same fp32 accumulation order per output
        element: the blocked GEMM and the tap-decomposed shift kernel
        may differ by reassociation, but both must match the reference
        forward; blocked must match its own unblocked run bitwise."""
        rng = np.random.default_rng(1)
        x, weight, bias = _case(rng, 8, 8, 3, 24, 24, n=2)
        packed = F.pack_conv_weight(weight, bias)
        blocked = F.conv2d_im2col_nhwc(x, packed, block_rows=5)
        ref = F.conv2d_gemm(x.transpose(0, 3, 1, 2), packed,
                            padding=1).transpose(0, 2, 3, 1)
        assert np.abs(blocked - ref).max() <= 1e-5

    def test_fused_epilogues_match_shift_kernel(self):
        rng = np.random.default_rng(2)
        x, weight, bias = _case(rng, 6, 6, 3, 15, 19)
        packed = F.pack_conv_weight(weight, bias)
        res = rng.standard_normal(x.shape[:3] + (6,)).astype(np.float32)
        for kwargs in ({"relu": True},
                       {"residual": res, "res_scale": 0.1},
                       {"relu": True, "residual": res}):
            blocked = F.conv2d_im2col_nhwc(x, packed, block_rows=4, **kwargs)
            shift = F.conv2d_shift_nhwc(x, packed, **kwargs)
            assert np.abs(blocked - shift).max() <= 1e-5, kwargs
            unblocked = F.conv2d_im2col_nhwc(x, packed, block_rows=0,
                                             **kwargs)
            assert np.abs(blocked - unblocked).max() <= 1e-5, kwargs


class TestQuantizedBlocked:
    def test_int8_blocked_is_bitwise_equal_to_int8_shift(self):
        """int8 accumulates exactly in int32 — no reassociation slack, so
        the blocked and shift int8 kernels agree bit for bit."""
        rng = np.random.default_rng(3)
        x, weight, bias = _case(rng, 8, 8, 3, 18, 22)
        x = np.abs(x) % 1.0
        qw = F.quantize_conv_weight(weight, bias, "int8")
        blocked = F.conv2d_im2col_nhwc_quant(x, qw, block_rows=3)
        shift = F.conv2d_shift_nhwc_quant(x, qw)
        assert np.array_equal(blocked, shift)

    @pytest.mark.parametrize("precision", ["fp16", "int8"])
    def test_blocked_equals_unblocked_per_precision(self, precision):
        rng = np.random.default_rng(4)
        x, weight, bias = _case(rng, 4, 8, 3, 14, 26)
        qw = F.quantize_conv_weight(weight, bias, precision)
        whole = F.conv2d_im2col_nhwc_quant(x, qw, block_rows=0)
        for block_rows in (1, 4, 9, None):
            blocked = F.conv2d_im2col_nhwc_quant(x, qw,
                                                 block_rows=block_rows)
            if precision == "int8":        # exact integer accumulation
                assert np.array_equal(blocked, whole), block_rows
            else:                          # fp16 accumulates general fp32
                assert np.abs(blocked - whole).max() <= 1e-5, block_rows

    def test_int8_bitwise_at_full_frame_scale(self):
        """The bitwise guarantee must hold where it matters — at a
        352x640 activation whose budget-derived block is a single row,
        deep inside the BLAS small-M regime where fp32 already drifts."""
        rng = np.random.default_rng(7)
        x = rng.random((1, 352, 640, 8), dtype=np.float32)
        weight = (rng.standard_normal((8, 8, 3, 3)) * 0.3).astype(np.float32)
        qw = F.quantize_conv_weight(weight, None, "int8")
        whole = F.conv2d_im2col_nhwc_quant(x, qw, block_rows=0)
        for block_rows in (1, 64, None):
            blocked = F.conv2d_im2col_nhwc_quant(x, qw,
                                                 block_rows=block_rows)
            assert np.array_equal(blocked, whole), block_rows

    def test_quant_epilogues(self):
        rng = np.random.default_rng(5)
        x, weight, bias = _case(rng, 6, 6, 3, 12, 16)
        qw = F.quantize_conv_weight(weight, bias, "int8")
        res = rng.standard_normal(x.shape[:3] + (6,)).astype(np.float32)
        blocked = F.conv2d_im2col_nhwc_quant(x, qw, block_rows=2, relu=True,
                                             residual=res, res_scale=0.5)
        shift = F.conv2d_shift_nhwc_quant(x, qw, relu=True, residual=res,
                                          res_scale=0.5)
        assert np.array_equal(blocked, shift)


class TestScratchSizing:
    def test_block_rows_fit_the_budget(self):
        """block_rows * row_bytes <= budget wherever a single row fits."""
        for (w, cin, kh, kw) in [(64, 8, 3, 3), (640, 8, 3, 3),
                                 (1920, 16, 5, 5), (8, 3, 1, 1)]:
            rows = F.im2col_block_rows(w, cin, kh, kw)
            assert rows >= 1
            row_bytes = w * cin * kh * kw * 4
            if row_bytes <= F.IM2COL_SCRATCH_BYTES:
                assert rows * row_bytes <= F.IM2COL_SCRATCH_BYTES
                assert (rows + 1) * row_bytes > F.IM2COL_SCRATCH_BYTES
            else:
                assert rows == 1           # floor: always make progress

    def test_custom_budget(self):
        # 16 float32s per im2col row -> 64 bytes; 256-byte budget -> 4.
        assert F.im2col_block_rows(16, 1, 1, 1, scratch_bytes=256) == 4

    def test_rejects_negative_block_rows(self):
        rng = np.random.default_rng(6)
        x, weight, bias = _case(rng, 3, 4, 3, 8, 8)
        packed = F.pack_conv_weight(weight, bias)
        with pytest.raises(ValueError, match="block_rows"):
            F.conv2d_im2col_nhwc(x, packed, block_rows=-1)


class TestEngineKernelSelection:
    def test_blocked_engine_matches_reference_forward(self):
        from repro.sr import EDSR, EdsrConfig, InferenceEngine

        model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=9)
        frame = np.random.default_rng(10).random((30, 40, 3),
                                                 dtype=np.float32)
        ref = model.enhance(frame)
        out = InferenceEngine(model, kernel="blocked").enhance(frame)
        assert np.abs(out - ref).max() <= 2e-5

    def test_blocked_engine_composes_with_quant_gate_and_reuse(self):
        from repro.sr import (EDSR, EdsrConfig, InferenceEngine,
                              SkipGateConfig)

        model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=11)
        frame = np.random.default_rng(12).random((48, 64, 3),
                                                 dtype=np.float32)
        engine = InferenceEngine(model, tile=16, kernel="blocked",
                                 precision="int8", reuse=True,
                                 skip_gate=SkipGateConfig(1e-6))
        first = engine.enhance(frame)
        second = engine.enhance(frame)
        assert engine.stats.reused_tiles == 12
        assert np.array_equal(first, second)
