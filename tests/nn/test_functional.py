"""Unit tests for repro.nn.functional primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


class TestConvOutputSize:
    def test_same_padding_stride1(self):
        assert F.conv_output_size(16, 3, 1, 1) == 16

    def test_no_padding(self):
        assert F.conv_output_size(16, 3, 1, 0) == 14

    def test_stride2(self):
        assert F.conv_output_size(16, 3, 2, 1) == 8

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestPad:
    def test_pad_unpad_roundtrip(self):
        x = np.arange(24, dtype=np.float32).reshape(1, 2, 3, 4)
        assert np.array_equal(F.unpad2d(F.pad2d(x, 2), 2), x)

    def test_pad_zero_is_identity(self):
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        assert F.pad2d(x, 0) is x

    def test_pad_shape(self):
        x = np.ones((2, 3, 4, 5), dtype=np.float32)
        assert F.pad2d(x, 1).shape == (2, 3, 6, 7)


class TestConvForward:
    def test_identity_kernel(self):
        """A centred delta kernel reproduces the input."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 1, 6, 6)).astype(np.float32)
        w = np.zeros((1, 1, 3, 3), dtype=np.float32)
        w[0, 0, 1, 1] = 1.0
        y = F.conv2d_forward(x, w, None, stride=1, padding=1)
        np.testing.assert_allclose(y, x, atol=1e-6)

    def test_averaging_kernel(self):
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        w = np.full((1, 1, 3, 3), 1.0 / 9.0, dtype=np.float32)
        y = F.conv2d_forward(x, w, None, stride=1, padding=0)
        np.testing.assert_allclose(y, np.ones((1, 1, 2, 2)), atol=1e-6)

    def test_bias_added(self):
        x = np.zeros((1, 2, 4, 4), dtype=np.float32)
        w = np.zeros((3, 2, 1, 1), dtype=np.float32)
        b = np.array([1.0, -2.0, 0.5], dtype=np.float32)
        y = F.conv2d_forward(x, w, b, stride=1, padding=0)
        for c, val in enumerate(b):
            np.testing.assert_allclose(y[:, c], val)

    def test_stride_downsamples(self):
        x = np.ones((1, 1, 8, 8), dtype=np.float32)
        w = np.ones((1, 1, 3, 3), dtype=np.float32)
        y = F.conv2d_forward(x, w, None, stride=2, padding=1)
        assert y.shape == (1, 1, 4, 4)

    def test_channel_mismatch_raises(self):
        x = np.ones((1, 2, 4, 4), dtype=np.float32)
        w = np.ones((1, 3, 3, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            F.conv2d_forward(x, w, None)

    def test_matches_naive_conv(self):
        """Cross-check against a direct nested-loop implementation."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 7, 6)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        b = rng.normal(size=(4,)).astype(np.float32)
        for stride, padding in [(1, 0), (1, 1), (2, 1), (2, 0)]:
            y = F.conv2d_forward(x, w, b, stride=stride, padding=padding)
            ref = _naive_conv(x, w, b, stride, padding)
            np.testing.assert_allclose(y, ref, atol=1e-4)


def _naive_conv(x, w, b, stride, padding):
    xp = F.pad2d(x, padding)
    n, cin, h, wd = xp.shape
    cout, _, kh, kw = w.shape
    oh = (h - kh) // stride + 1
    ow = (wd - kw) // stride + 1
    out = np.zeros((n, cout, oh, ow), dtype=np.float64)
    for ni in range(n):
        for co in range(cout):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[ni, :, i * stride:i * stride + kh,
                               j * stride:j * stride + kw]
                    out[ni, co, i, j] = np.sum(patch * w[co]) + b[co]
    return out.astype(np.float32)


class TestConvBackward:
    def test_grad_shapes(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        w = rng.normal(size=(5, 3, 3, 3)).astype(np.float32)
        y = F.conv2d_forward(x, w, np.zeros(5, np.float32), stride=2, padding=1)
        gx, gw, gb = F.conv2d_backward(x, w, np.ones_like(y), stride=2, padding=1)
        assert gx.shape == x.shape
        assert gw.shape == w.shape
        assert gb.shape == (5,)

    def test_no_input_grad(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 1, 4, 4)).astype(np.float32)
        w = rng.normal(size=(1, 1, 3, 3)).astype(np.float32)
        y = F.conv2d_forward(x, w, None, padding=1)
        gx, _, _ = F.conv2d_backward(x, w, np.ones_like(y), padding=1,
                                     need_input_grad=False)
        assert gx is None

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0), (3, 1)])
    def test_input_grad_numerical(self, stride, padding):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(1, 2, 7, 7)).astype(np.float32)
        w = rng.normal(size=(3, 2, 3, 3)).astype(np.float32)
        gout = rng.normal(
            size=F.conv2d_forward(x, w, None, stride=stride, padding=padding).shape
        ).astype(np.float32)
        gx, _, _ = F.conv2d_backward(x, w, gout, stride=stride, padding=padding)

        def f(xv):
            return float(np.sum(F.conv2d_forward(xv, w, None, stride=stride,
                                                 padding=padding) * gout))

        num = _numgrad(f, x)
        np.testing.assert_allclose(gx, num, atol=2e-2, rtol=2e-2)

    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1)])
    def test_weight_grad_numerical(self, stride, padding):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(2, 2, 6, 6)).astype(np.float32)
        w = rng.normal(size=(2, 2, 3, 3)).astype(np.float32)
        gout = rng.normal(
            size=F.conv2d_forward(x, w, None, stride=stride, padding=padding).shape
        ).astype(np.float32)
        _, gw, _ = F.conv2d_backward(x, w, gout, stride=stride, padding=padding)

        def f(wv):
            return float(np.sum(F.conv2d_forward(x, wv, None, stride=stride,
                                                 padding=padding) * gout))

        num = _numgrad(f, w)
        np.testing.assert_allclose(gw, num, atol=2e-2, rtol=2e-2)


def _numgrad(f, x, eps=1e-3):
    g = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gf = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        p = f(x)
        flat[i] = orig - eps
        m = f(x)
        flat[i] = orig
        gf[i] = (p - m) / (2 * eps)
    return g


class TestPixelShuffle:
    def test_shape(self):
        x = np.zeros((2, 8, 3, 4), dtype=np.float32)
        assert F.pixel_shuffle(x, 2).shape == (2, 2, 6, 8)

    def test_roundtrip(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(1, 12, 5, 7)).astype(np.float32)
        y = F.pixel_unshuffle(F.pixel_shuffle(x, 2), 2)
        np.testing.assert_array_equal(x, y)

    def test_reverse_roundtrip(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(1, 3, 6, 8)).astype(np.float32)
        y = F.pixel_shuffle(F.pixel_unshuffle(x, 2), 2)
        np.testing.assert_array_equal(x, y)

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            F.pixel_shuffle(np.zeros((1, 3, 2, 2), np.float32), 2)

    def test_invalid_spatial(self):
        with pytest.raises(ValueError):
            F.pixel_unshuffle(np.zeros((1, 1, 3, 4), np.float32), 2)

    def test_energy_preserved(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(2, 16, 4, 4)).astype(np.float32)
        y = F.pixel_shuffle(x, 4)
        assert np.isclose(np.sum(x * x), np.sum(y * y))

    @given(st.integers(1, 3), st.integers(1, 3), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_property_roundtrip(self, c, r, hw):
        rng = np.random.default_rng(42)
        x = rng.normal(size=(1, c * r * r, hw, hw)).astype(np.float32)
        y = F.pixel_unshuffle(F.pixel_shuffle(x, r), r)
        np.testing.assert_array_equal(x, y)


class TestPooling:
    def test_avg_pool_constant(self):
        x = np.full((1, 2, 4, 4), 3.0, dtype=np.float32)
        y = F.avg_pool2d_forward(x, 2)
        np.testing.assert_allclose(y, 3.0)
        assert y.shape == (1, 2, 2, 2)

    def test_avg_pool_grad_spreads(self):
        g = np.ones((1, 1, 2, 2), dtype=np.float32)
        gx = F.avg_pool2d_backward(g, 2)
        np.testing.assert_allclose(gx, 0.25)
        assert gx.shape == (1, 1, 4, 4)

    def test_avg_pool_indivisible_raises(self):
        with pytest.raises(ValueError):
            F.avg_pool2d_forward(np.zeros((1, 1, 5, 4), np.float32), 2)


class TestUpsample:
    def test_nearest_upsample_values(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32)
        y = F.nearest_upsample(x, 2)
        assert y.shape == (1, 1, 4, 4)
        np.testing.assert_array_equal(y[0, 0, :2, :2], 1.0)
        np.testing.assert_array_equal(y[0, 0, 2:, 2:], 4.0)

    def test_upsample_grad_adjoint(self):
        """<up(x), g> == <x, down_grad(g)> (adjoint property)."""
        rng = np.random.default_rng(9)
        x = rng.normal(size=(1, 2, 3, 3)).astype(np.float32)
        g = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        lhs = float(np.sum(F.nearest_upsample(x, 2) * g))
        rhs = float(np.sum(x * F.nearest_downsample_grad(g, 2)))
        assert np.isclose(lhs, rhs, rtol=1e-5)
