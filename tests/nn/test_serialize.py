"""Tests for model serialization and size accounting."""

import numpy as np
import pytest

from repro import nn
from repro.nn.serialize import PER_TENSOR_OVERHEAD_BYTES


def _make_net(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, rng=rng, name="head"),
        nn.ReLU(),
        nn.ResidualBlock(8, rng=rng, name="rb0"),
        nn.Conv2d(8, 3, 3, rng=rng, name="tail"),
    )


class TestStateDict:
    def test_roundtrip_in_memory(self):
        net = _make_net(0)
        other = _make_net(99)
        nn.load_state_dict(other, nn.state_dict(net))
        x = np.random.default_rng(1).normal(size=(1, 3, 6, 6)).astype(np.float32)
        np.testing.assert_array_equal(net.forward(x), other.forward(x))

    def test_keys_unique(self):
        state = nn.state_dict(_make_net())
        assert len(state) == len(set(state))

    def test_wrong_count_raises(self):
        net = _make_net()
        state = nn.state_dict(net)
        state.pop(next(iter(state)))
        with pytest.raises(ValueError):
            nn.load_state_dict(net, state)

    def test_wrong_shape_raises(self):
        net = _make_net()
        state = nn.state_dict(net)
        key = next(iter(state))
        state[key] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            nn.load_state_dict(net, state)

    def test_state_is_copy(self):
        net = _make_net()
        state = nn.state_dict(net)
        key = next(iter(state))
        state[key][...] = 123.0
        assert not np.any(next(net.parameters()).data == 123.0)


class TestFileRoundtrip:
    def test_save_load_file(self, tmp_path):
        net = _make_net(0)
        other = _make_net(50)
        path = tmp_path / "model.npz"
        written = nn.save_model(net, path)
        assert written > 0
        nn.load_model(other, path)
        x = np.random.default_rng(2).normal(size=(1, 3, 5, 5)).astype(np.float32)
        np.testing.assert_array_equal(net.forward(x), other.forward(x))

    def test_bytes_roundtrip(self):
        net = _make_net(0)
        other = _make_net(7)
        blob = nn.serialize_to_bytes(net)
        nn.deserialize_from_bytes(other, blob)
        x = np.random.default_rng(3).normal(size=(1, 3, 5, 5)).astype(np.float32)
        np.testing.assert_array_equal(net.forward(x), other.forward(x))


class TestSizeAccounting:
    def test_size_formula(self):
        net = _make_net()
        n_params = sum(p.size for p in net.parameters())
        n_tensors = len(list(net.parameters()))
        expected = n_params * 4 + n_tensors * PER_TENSOR_OVERHEAD_BYTES
        assert nn.model_size_bytes(net) == expected

    def test_size_mb_consistent(self):
        net = _make_net()
        assert np.isclose(nn.model_size_mb(net),
                          nn.model_size_bytes(net) / 2**20)

    def test_bigger_net_bigger_size(self):
        small = nn.Conv2d(3, 4, 3)
        big = nn.Conv2d(3, 64, 3)
        assert nn.model_size_bytes(big) > nn.model_size_bytes(small)

    def test_download_size_close_to_serialized(self):
        """The analytic download size tracks the real npz payload."""
        net = _make_net()
        blob = nn.serialize_to_bytes(net)
        analytic = nn.model_size_bytes(net)
        # npz is uncompressed here; sizes agree within 20%.
        assert abs(len(blob) - analytic) / analytic < 0.2
