"""Gradient-check every layer and verify layer semantics."""

import numpy as np
import pytest

from repro import nn
from repro.nn.gradcheck import check_layer_gradients


RNG = np.random.default_rng(1234)


def _x(shape):
    return RNG.normal(size=shape).astype(np.float32)


class TestGradients:
    """Analytic vs numerical gradients for each layer type."""

    def test_conv_same(self):
        layer = nn.Conv2d(2, 3, 3, rng=np.random.default_rng(0))
        check_layer_gradients(layer, _x((2, 2, 5, 5)), RNG)

    def test_conv_stride2(self):
        layer = nn.Conv2d(2, 2, 3, stride=2, padding=1, rng=np.random.default_rng(1))
        check_layer_gradients(layer, _x((1, 2, 6, 6)), RNG)

    def test_conv_no_bias(self):
        layer = nn.Conv2d(1, 2, 3, bias=False, rng=np.random.default_rng(2))
        check_layer_gradients(layer, _x((1, 1, 5, 5)), RNG)

    def test_dense(self):
        layer = nn.Dense(6, 4, rng=np.random.default_rng(3))
        check_layer_gradients(layer, _x((3, 6)), RNG)

    def test_relu(self):
        check_layer_gradients(nn.ReLU(), _x((2, 3, 4, 4)) + 0.05, RNG)

    def test_leaky_relu(self):
        check_layer_gradients(nn.LeakyReLU(0.1), _x((2, 8)) + 0.05, RNG)

    def test_sigmoid(self):
        check_layer_gradients(nn.Sigmoid(), _x((2, 5)), RNG)

    def test_tanh(self):
        check_layer_gradients(nn.Tanh(), _x((2, 5)), RNG)

    def test_flatten(self):
        check_layer_gradients(nn.Flatten(), _x((2, 2, 3, 3)), RNG)

    def test_reshape(self):
        check_layer_gradients(nn.Reshape((2, 2, 2)), _x((3, 8)), RNG)

    def test_pixel_shuffle(self):
        check_layer_gradients(nn.PixelShuffle(2), _x((1, 8, 3, 3)), RNG)

    def test_nearest_upsample(self):
        check_layer_gradients(nn.NearestUpsample(2), _x((1, 2, 3, 3)), RNG)

    def test_avg_pool(self):
        check_layer_gradients(nn.AvgPool2d(2), _x((1, 2, 4, 4)), RNG)

    def test_scale(self):
        check_layer_gradients(nn.Scale(0.3), _x((2, 4)), RNG)

    def test_sequential(self):
        layer = nn.Sequential(
            nn.Conv2d(1, 2, 3, rng=np.random.default_rng(4)),
            nn.ReLU(),
            nn.Conv2d(2, 1, 3, rng=np.random.default_rng(5)),
        )
        check_layer_gradients(layer, _x((1, 1, 5, 5)), RNG)

    def test_residual_block(self):
        layer = nn.ResidualBlock(2, res_scale=0.5, rng=np.random.default_rng(6))
        check_layer_gradients(layer, _x((1, 2, 5, 5)), RNG)

    def test_upsampler_x2(self):
        layer = nn.Upsampler(2, 2, rng=np.random.default_rng(7))
        check_layer_gradients(layer, _x((1, 2, 3, 3)), RNG)

    def test_global_skip(self):
        layer = nn.GlobalSkip(nn.Conv2d(2, 2, 3, rng=np.random.default_rng(8)))
        check_layer_gradients(layer, _x((1, 2, 4, 4)), RNG)


class TestSemantics:
    def test_identity(self):
        x = _x((2, 3))
        layer = nn.Identity()
        assert layer.forward(x) is x
        assert layer.backward(x) is x

    def test_relu_clamps_negative(self):
        y = nn.ReLU().forward(np.array([[-1.0, 2.0]], dtype=np.float32))
        np.testing.assert_array_equal(y, [[0.0, 2.0]])

    def test_sigmoid_range(self):
        y = nn.Sigmoid().forward(np.array([[-100.0, 0.0, 100.0]], dtype=np.float32))
        assert np.all(y >= 0) and np.all(y <= 1)
        assert np.isclose(y[0, 1], 0.5)

    def test_conv_same_preserves_shape(self):
        layer = nn.Conv2d(3, 8, 3)
        assert layer.forward(_x((2, 3, 9, 11))).shape == (2, 8, 9, 11)

    def test_conv_even_kernel_same_raises(self):
        with pytest.raises(ValueError):
            nn.Conv2d(1, 1, 4, padding="same")

    def test_conv_backward_before_forward_raises(self):
        layer = nn.Conv2d(1, 1, 3)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1, 3, 3), np.float32))

    def test_dense_shapes(self):
        layer = nn.Dense(4, 7)
        assert layer.forward(_x((5, 4))).shape == (5, 7)

    def test_sequential_iteration(self):
        seq = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert len(seq) == 2
        assert isinstance(list(seq)[0], nn.ReLU)

    def test_sequential_append(self):
        seq = nn.Sequential()
        seq.append(nn.ReLU())
        assert len(seq) == 1

    def test_num_parameters(self):
        layer = nn.Conv2d(2, 3, 3)  # 3*2*3*3 + 3 = 57
        assert layer.num_parameters() == 57

    def test_zero_grad(self):
        layer = nn.Dense(3, 3)
        layer.forward(_x((2, 3)))
        layer.backward(_x((2, 3)))
        assert np.any(layer.weight.grad != 0)
        layer.zero_grad()
        assert np.all(layer.weight.grad == 0)

    def test_residual_block_zero_body_is_identity(self):
        block = nn.ResidualBlock(2, rng=np.random.default_rng(9))
        for p in block.parameters():
            p.data[...] = 0.0
        x = _x((1, 2, 4, 4))
        np.testing.assert_array_equal(block.forward(x), x)

    def test_upsampler_scale1_is_noop(self):
        up = nn.Upsampler(4, 1)
        x = _x((1, 4, 3, 3))
        np.testing.assert_array_equal(up.forward(x), x)

    def test_upsampler_x4_shape(self):
        up = nn.Upsampler(2, 4, rng=np.random.default_rng(10))
        assert up.forward(_x((1, 2, 3, 3))).shape == (1, 2, 12, 12)

    def test_upsampler_x3_shape(self):
        up = nn.Upsampler(2, 3, rng=np.random.default_rng(11))
        assert up.forward(_x((1, 2, 3, 3))).shape == (1, 2, 9, 9)

    def test_upsampler_bad_scale(self):
        with pytest.raises(ValueError):
            nn.Upsampler(2, 5)

    def test_parameter_shape_check(self):
        p = nn.Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            p.accumulate(np.zeros((3, 3), dtype=np.float32))

    def test_deterministic_init(self):
        a = nn.Conv2d(2, 2, 3, rng=np.random.default_rng(7))
        b = nn.Conv2d(2, 2, 3, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
