"""Tests for losses, optimizers, and LR schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn


FLOATS = st.floats(-10, 10, allow_nan=False, width=32)


class TestMSE:
    def test_zero_at_target(self):
        x = np.ones((3, 3), dtype=np.float32)
        value, grad = nn.mse_loss(x, x)
        assert value == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_known_value(self):
        pred = np.array([2.0, 0.0], dtype=np.float32)
        target = np.array([0.0, 0.0], dtype=np.float32)
        value, grad = nn.mse_loss(pred, target)
        assert np.isclose(value, 2.0)
        np.testing.assert_allclose(grad, [2.0, 0.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            nn.mse_loss(np.zeros(2, np.float32), np.zeros(3, np.float32))

    @given(hnp.arrays(np.float32, (4,), elements=FLOATS),
           hnp.arrays(np.float32, (4,), elements=FLOATS))
    @settings(max_examples=30, deadline=None)
    def test_property_nonnegative_and_symmetric(self, a, b):
        va, _ = nn.mse_loss(a, b)
        vb, _ = nn.mse_loss(b, a)
        assert va >= 0
        assert np.isclose(va, vb, rtol=1e-5, atol=1e-6)

    def test_gradient_is_derivative(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=(5,)).astype(np.float32)
        target = rng.normal(size=(5,)).astype(np.float32)
        _, grad = nn.mse_loss(pred, target)
        eps = 1e-3
        for i in range(5):
            p = pred.copy()
            p[i] += eps
            up, _ = nn.mse_loss(p, target)
            p[i] -= 2 * eps
            down, _ = nn.mse_loss(p, target)
            assert np.isclose(grad[i], (up - down) / (2 * eps), atol=1e-3)


class TestL1:
    def test_known_value(self):
        value, grad = nn.l1_loss(np.array([1.0, -1.0], np.float32),
                                 np.zeros(2, np.float32))
        assert np.isclose(value, 1.0)
        np.testing.assert_allclose(grad, [0.5, -0.5])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            nn.l1_loss(np.zeros(2, np.float32), np.zeros((2, 1), np.float32))


class TestKL:
    def test_zero_at_standard_normal(self):
        mu = np.zeros((2, 4), dtype=np.float32)
        logvar = np.zeros((2, 4), dtype=np.float32)
        value, gmu, glv = nn.kl_standard_normal(mu, logvar)
        assert np.isclose(value, 0.0)
        np.testing.assert_allclose(gmu, 0.0)
        np.testing.assert_allclose(glv, 0.0)

    def test_positive_away_from_prior(self):
        mu = np.full((1, 3), 2.0, dtype=np.float32)
        logvar = np.full((1, 3), 1.0, dtype=np.float32)
        value, _, _ = nn.kl_standard_normal(mu, logvar)
        assert value > 0

    @given(hnp.arrays(np.float32, (2, 3), elements=st.floats(-3, 3, width=32)),
           hnp.arrays(np.float32, (2, 3), elements=st.floats(-3, 3, width=32)))
    @settings(max_examples=30, deadline=None)
    def test_property_nonnegative(self, mu, logvar):
        value, _, _ = nn.kl_standard_normal(mu, logvar)
        assert value >= -1e-5

    def test_gradients_numerical(self):
        rng = np.random.default_rng(1)
        mu = rng.normal(size=(2, 3)).astype(np.float32)
        logvar = rng.normal(size=(2, 3)).astype(np.float32)
        _, gmu, glv = nn.kl_standard_normal(mu, logvar)
        eps = 1e-3
        for arr, grad in [(mu, gmu), (logvar, glv)]:
            flat = arr.reshape(-1)
            gflat = grad.reshape(-1)
            for i in range(flat.size):
                orig = flat[i]
                flat[i] = orig + eps
                up, _, _ = nn.kl_standard_normal(mu, logvar)
                flat[i] = orig - eps
                down, _, _ = nn.kl_standard_normal(mu, logvar)
                flat[i] = orig
                assert np.isclose(gflat[i], (up - down) / (2 * eps), atol=1e-2)


class TestVAELoss:
    def test_perfect_reconstruction_leaves_kl(self):
        x = np.ones((2, 3), dtype=np.float32)
        mu = np.zeros((2, 4), dtype=np.float32)
        logvar = np.zeros((2, 4), dtype=np.float32)
        value, gx, gmu, glv = nn.vae_loss(x, x, mu, logvar)
        assert np.isclose(value, 0.0)
        np.testing.assert_allclose(gx, 0.0)

    def test_recon_weight_scales(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3)).astype(np.float32)
        xh = rng.normal(size=(2, 3)).astype(np.float32)
        mu = np.zeros((2, 2), dtype=np.float32)
        lv = np.zeros((2, 2), dtype=np.float32)
        v1, g1, _, _ = nn.vae_loss(x, xh, mu, lv, recon_weight=1.0)
        v2, g2, _, _ = nn.vae_loss(x, xh, mu, lv, recon_weight=2.0)
        assert np.isclose(v2, 2 * v1)
        np.testing.assert_allclose(g2, 2 * g1)


class TestOptimizers:
    def _quadratic_param(self):
        return nn.Parameter(np.array([5.0, -3.0], dtype=np.float32))

    def test_sgd_descends_quadratic(self):
        p = self._quadratic_param()
        opt = nn.SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            p.accumulate(2 * p.data)  # d/dx x^2
            opt.step()
        assert np.all(np.abs(p.data) < 1e-3)

    def test_sgd_momentum_descends(self):
        p = self._quadratic_param()
        opt = nn.SGD([p], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            p.accumulate(2 * p.data)
            opt.step()
        assert np.all(np.abs(p.data) < 1e-2)

    def test_adam_descends(self):
        p = self._quadratic_param()
        opt = nn.Adam([p], lr=0.3)
        for _ in range(300):
            opt.zero_grad()
            p.accumulate(2 * p.data)
            opt.step()
        assert np.all(np.abs(p.data) < 1e-2)

    def test_weight_decay_shrinks(self):
        p = nn.Parameter(np.array([1.0], dtype=np.float32))
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        opt.step()  # gradient zero, only decay acts
        assert p.data[0] < 1.0

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_clip_grad_norm(self):
        p = nn.Parameter(np.zeros(4, dtype=np.float32))
        p.grad[...] = 10.0
        pre = nn.clip_grad_norm([p], max_norm=1.0)
        assert pre > 1.0
        assert np.isclose(np.linalg.norm(p.grad), 1.0, rtol=1e-5)

    def test_clip_noop_when_small(self):
        p = nn.Parameter(np.zeros(2, dtype=np.float32))
        p.grad[...] = 0.1
        nn.clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, 0.1)


class TestSchedules:
    def test_step_lr(self):
        p = nn.Parameter(np.zeros(1, dtype=np.float32))
        opt = nn.SGD([p], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.5)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == [1.0, 0.5, 0.5, 0.25]

    def test_cosine_lr_endpoints(self):
        p = nn.Parameter(np.zeros(1, dtype=np.float32))
        opt = nn.SGD([p], lr=1.0)
        sched = nn.CosineLR(opt, total_epochs=10, min_lr=0.1)
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.lr, 0.1)

    def test_cosine_monotone_decreasing(self):
        p = nn.Parameter(np.zeros(1, dtype=np.float32))
        opt = nn.SGD([p], lr=1.0)
        sched = nn.CosineLR(opt, total_epochs=8)
        prev = opt.lr
        for _ in range(8):
            sched.step()
            assert opt.lr <= prev + 1e-9
            prev = opt.lr

    def test_invalid_schedule_args(self):
        p = nn.Parameter(np.zeros(1, dtype=np.float32))
        opt = nn.SGD([p], lr=1.0)
        with pytest.raises(ValueError):
            nn.StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            nn.CosineLR(opt, total_epochs=0)


class TestEndToEndTraining:
    def test_small_net_fits_linear_map(self):
        """A tiny dense net trained with Adam fits y = Ax."""
        rng = np.random.default_rng(3)
        a_true = rng.normal(size=(4, 2)).astype(np.float32)
        x = rng.normal(size=(64, 4)).astype(np.float32)
        y = x @ a_true

        net = nn.Sequential(
            nn.Dense(4, 16, rng=np.random.default_rng(4), init="he"),
            nn.Tanh(),
            nn.Dense(16, 2, rng=np.random.default_rng(5)),
        )
        opt = nn.Adam(net.parameters(), lr=1e-2)
        losses = []
        for _ in range(300):
            opt.zero_grad()
            pred = net.forward(x)
            loss, grad = nn.mse_loss(pred, y)
            net.backward(grad)
            opt.step()
            losses.append(loss)
        assert losses[-1] < 0.02 * losses[0]

    def test_conv_net_fits_blur_inverse(self):
        """A conv net reduces loss when learning a 3x3 filter mapping."""
        rng = np.random.default_rng(6)
        x = rng.normal(size=(8, 1, 8, 8)).astype(np.float32)
        kernel = np.zeros((1, 1, 3, 3), dtype=np.float32)
        kernel[0, 0] = np.array([[0, 1, 0], [1, 2, 1], [0, 1, 0]]) / 6.0
        from repro.nn import functional as F
        y = F.conv2d_forward(x, kernel, None, padding=1)

        net = nn.Conv2d(1, 1, 3, rng=np.random.default_rng(7))
        opt = nn.Adam(net.parameters(), lr=1e-2)
        first = None
        for _ in range(200):
            opt.zero_grad()
            loss, grad = nn.mse_loss(net.forward(x), y)
            if first is None:
                first = loss
            net.backward(grad)
            opt.step()
        assert loss < 0.01 * first


class TestAdamDetails:
    def test_bias_correction_first_step(self):
        """After one step with constant gradient g, Adam moves by ~lr."""
        p = nn.Parameter(np.array([0.0], dtype=np.float32))
        opt = nn.Adam([p], lr=0.1)
        opt.zero_grad()
        p.accumulate(np.array([3.0], dtype=np.float32))
        opt.step()
        # Bias-corrected m_hat/sqrt(v_hat) == g/|g| on step 1.
        assert np.isclose(p.data[0], -0.1, atol=1e-6)

    def test_adam_weight_decay(self):
        p = nn.Parameter(np.array([10.0], dtype=np.float32))
        opt = nn.Adam([p], lr=0.01, weight_decay=0.1)
        opt.zero_grad()
        opt.step()  # zero gradient: only decay drives the update
        assert p.data[0] < 10.0

    def test_sgd_matches_closed_form(self):
        p = nn.Parameter(np.array([2.0], dtype=np.float32))
        opt = nn.SGD([p], lr=0.5)
        opt.zero_grad()
        p.accumulate(np.array([4.0], dtype=np.float32))
        opt.step()
        assert np.isclose(p.data[0], 0.0)
