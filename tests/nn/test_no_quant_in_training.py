"""Static guard: the training path never touches quantized kernels.

Quantized weights are an *inference-only* artifact: gradients flow
through the fp32 parameters, and the per-channel scales are derived from
them at packaging/inference time.  If the optimizer, the SR trainer, or
the numerical gradient checker ever imported or invoked the quantized
kernel surface, training could silently optimize against a rounded
forward — a bug class this AST walk makes structurally impossible
(mirrors ``tests/serve/test_no_threads.py``).
"""

import ast
from pathlib import Path

import repro.nn
import repro.sr

#: The quantized inference surface, banned from the training path.
BANNED_NAMES = {
    "quantize_conv_weight",
    "QuantizedConvWeight",
    "conv2d_gemm_quant",
    "conv2d_shift_nhwc_quant",
    "quantized_size_bytes",
}

#: Modules that constitute the training path.
TRAINING_SOURCES = [
    Path(repro.nn.__file__).parent / "optim.py",
    Path(repro.nn.__file__).parent / "gradcheck.py",
    Path(repro.nn.__file__).parent / "losses.py",
    Path(repro.sr.__file__).parent / "trainer.py",
]


def _violations(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in BANNED_NAMES:
                    out.append(f"{path.name}:{node.lineno} imports "
                               f"{alias.name}")
        if isinstance(node, ast.Attribute) and node.attr in BANNED_NAMES:
            out.append(f"{path.name}:{node.lineno} uses .{node.attr}")
        if isinstance(node, ast.Name) and node.id in BANNED_NAMES:
            out.append(f"{path.name}:{node.lineno} references {node.id}")
    return out


def test_training_path_never_uses_quantized_kernels():
    for path in TRAINING_SOURCES:
        assert path.exists(), f"training-path module moved: {path}"
    problems = [v for src in TRAINING_SOURCES for v in _violations(src)]
    assert not problems, (
        "quantized kernels are inference-only; the training path must "
        "stay on the fp32 forward:\n  " + "\n  ".join(problems))


def test_guard_catches_an_import(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("from repro.nn.functional import conv2d_gemm_quant\n")
    assert _violations(bad)


def test_guard_catches_an_attribute_call(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import repro.nn.functional as F\n"
                   "w = F.quantize_conv_weight(None, None, 'int8')\n")
    assert _violations(bad)


def test_training_forward_passes_training_flag():
    """``Conv2d.forward(training=True)`` must route through the fp32
    packed weights regardless of what inference callers asked for."""
    import numpy as np

    from repro.nn.layers import Conv2d

    conv = Conv2d(3, 4, 3, rng=np.random.default_rng(0))
    conv.packed("int8")                 # warm an inference-only cache
    x = np.random.default_rng(1).normal(size=(1, 3, 5, 5)).astype(np.float32)
    out_train = conv.forward(x, training=True)
    ref = Conv2d(3, 4, 3, rng=np.random.default_rng(0)).forward(
        x, training=True)
    assert np.array_equal(out_train, ref)
