"""Inference fast path: GEMM kernels, packed-weight cache, zero retention.

The contract under test: ``conv2d_gemm`` is *bitwise* equal to the
reference ``conv2d_forward`` (it reproduces the same matmul operands in
the same order), the NHWC shift kernel matches within float32
reassociation, packed weights invalidate when a Parameter updates, and
``training=False`` retains nothing while leaving the training path
untouched.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.gradcheck import check_layer_gradients


def _conv_case(rng, cin, cout, k, h, w, n=2, bias=True):
    x = rng.standard_normal((n, cin, h, w)).astype(np.float32)
    weight = (rng.standard_normal((cout, cin, k, k)) * 0.3).astype(np.float32)
    b = rng.standard_normal(cout).astype(np.float32) if bias else None
    return x, weight, b


class TestConv2dGemm:
    @pytest.mark.parametrize("cin,cout,k,stride,padding", [
        (3, 8, 3, 1, 1),
        (8, 8, 3, 1, 0),
        (4, 6, 1, 1, 0),
        (3, 5, 5, 1, 2),
        (6, 4, 3, 2, 1),
        (3, 8, 3, 2, 0),
    ])
    def test_bitwise_equals_reference(self, cin, cout, k, stride, padding):
        rng = np.random.default_rng(0)
        x, weight, bias = _conv_case(rng, cin, cout, k, 9, 11)
        ref = F.conv2d_forward(x, weight, bias, stride=stride,
                               padding=padding)
        packed = F.pack_conv_weight(weight, bias)
        out = F.conv2d_gemm(x, packed, stride=stride, padding=padding)
        assert out.dtype == np.float32
        assert np.array_equal(ref, out)           # bitwise, not approximate

    def test_no_bias(self):
        rng = np.random.default_rng(1)
        x, weight, _ = _conv_case(rng, 4, 4, 3, 8, 8, bias=False)
        ref = F.conv2d_forward(x, weight, None, padding=1)
        out = F.conv2d_gemm(x, F.pack_conv_weight(weight, None), padding=1)
        assert np.array_equal(ref, out)

    def test_fused_relu_epilogue(self):
        rng = np.random.default_rng(2)
        x, weight, bias = _conv_case(rng, 4, 6, 3, 8, 8)
        packed = F.pack_conv_weight(weight, bias)
        ref = np.maximum(F.conv2d_forward(x, weight, bias, padding=1), 0.0)
        out = F.conv2d_gemm(x, packed, padding=1, relu=True)
        assert np.array_equal(ref, out)

    def test_fused_residual_epilogue(self):
        rng = np.random.default_rng(3)
        x, weight, bias = _conv_case(rng, 6, 6, 3, 8, 8)
        packed = F.pack_conv_weight(weight, bias)
        res = rng.standard_normal(x.shape).astype(np.float32)
        scale = np.float32(0.1)
        ref = res + F.conv2d_forward(x, weight, bias, padding=1) * scale
        out = F.conv2d_gemm(x, packed, padding=1, residual=res,
                            res_scale=scale)
        assert np.allclose(ref, out, atol=1e-7)

    def test_im2col_shapes(self):
        x = np.arange(2 * 3 * 5 * 6, dtype=np.float32).reshape(2, 3, 5, 6)
        col, oh, ow = F.im2col(x, 3, 3, stride=1, padding=1)
        assert (oh, ow) == (5, 6)
        assert col.shape == (2 * 5 * 6, 3 * 3 * 3)


class TestShiftNhwc:
    @pytest.mark.parametrize("cin,cout,k", [(3, 8, 3), (8, 8, 1), (4, 6, 5)])
    def test_matches_reference_within_reassociation(self, cin, cout, k):
        rng = np.random.default_rng(4)
        x, weight, bias = _conv_case(rng, cin, cout, k, 10, 12)
        ref = F.conv2d_forward(x, weight, bias, padding=k // 2)
        packed = F.pack_conv_weight(weight, bias)
        out = F.conv2d_shift_nhwc(x.transpose(0, 2, 3, 1), packed)
        assert np.abs(out.transpose(0, 3, 1, 2) - ref).max() < 1e-5

    def test_fused_epilogues(self):
        rng = np.random.default_rng(5)
        x, weight, bias = _conv_case(rng, 6, 6, 3, 9, 9)
        packed = F.pack_conv_weight(weight, bias)
        res = rng.standard_normal(x.shape).astype(np.float32)
        ref = res + np.maximum(
            F.conv2d_forward(x, weight, bias, padding=1), 0.0) * 0.2
        relu_only = F.conv2d_shift_nhwc(
            x.transpose(0, 2, 3, 1), packed, relu=True,
            residual=res.transpose(0, 2, 3, 1), res_scale=0.2)
        assert np.abs(relu_only.transpose(0, 3, 1, 2) - ref).max() < 1e-5

    def test_pixel_shuffle_nhwc_matches_nchw(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((2, 4, 5, 12)).astype(np.float32)
        ref = F.pixel_shuffle(x.transpose(0, 3, 1, 2), 2)
        out = F.pixel_shuffle_nhwc(x, 2)
        assert np.array_equal(out.transpose(0, 3, 1, 2), ref)


class TestPackedCacheInvalidation:
    def test_parameter_version_bumps_on_assignment(self):
        p = nn.Parameter(np.zeros((2, 2), dtype=np.float32), name="p")
        v0 = p.version
        p.data = np.ones((2, 2), dtype=np.float32)
        assert p.version == v0 + 1
        p.data -= 0.5                      # in-place op goes through setter
        assert p.version == v0 + 2

    def test_conv_repacks_after_update(self):
        conv = nn.Conv2d(3, 4, 3, rng=np.random.default_rng(7))
        p1 = conv.packed()
        assert conv.packed() is p1         # cached while weights unchanged
        conv.weight.data -= 0.1
        p2 = conv.packed()
        assert p2 is not p1
        assert not np.array_equal(p1.mat, p2.mat)

    def test_pack_does_not_alias_live_weight(self):
        conv = nn.Conv2d(3, 4, 3, rng=np.random.default_rng(8))
        p1 = conv.packed()
        before = p1.mat.copy()
        conv.weight.data -= 1.0
        assert np.array_equal(p1.mat, before)   # old pack frozen

    def test_optimizer_step_invalidates(self):
        conv = nn.Conv2d(3, 4, 3, rng=np.random.default_rng(9))
        x = np.random.default_rng(10).standard_normal(
            (1, 3, 6, 6)).astype(np.float32)
        p1 = conv.packed()
        out = conv.forward(x)
        conv.backward(np.ones_like(out))
        nn.SGD(conv.parameters(), lr=0.1).step()
        out_after = F.conv2d_gemm(x, conv.packed(), padding=conv.padding,
                                  stride=conv.stride)
        ref_after = F.conv2d_forward(x, conv.weight.data, conv.bias.data,
                                     stride=conv.stride,
                                     padding=conv.padding)
        assert np.array_equal(out_after, ref_after)


class TestZeroRetention:
    def test_conv_inference_caches_nothing(self):
        conv = nn.Conv2d(3, 4, 3, rng=np.random.default_rng(11))
        x = np.random.default_rng(12).standard_normal(
            (1, 3, 6, 6)).astype(np.float32)
        train_out = conv.forward(x)
        infer_out = conv.forward(x, training=False)
        assert np.array_equal(train_out, infer_out)
        conv._x = None
        conv.forward(x, training=False)
        assert conv._x is None             # inference retained no input

    @pytest.mark.parametrize("layer_fn", [
        lambda rng: nn.Dense(6, 4, rng=rng),
        lambda rng: nn.ReLU(),
        lambda rng: nn.LeakyReLU(0.1),
        lambda rng: nn.Tanh(),
        lambda rng: nn.Sigmoid(),
    ])
    def test_inference_matches_training_forward(self, layer_fn):
        rng = np.random.default_rng(13)
        layer = layer_fn(rng)
        x = rng.standard_normal((5, 6)).astype(np.float32)
        assert np.array_equal(layer.forward(x),
                              layer.forward(x, training=False))

    def test_infer_helper(self):
        relu = nn.ReLU()
        x = np.array([[-1.0, 2.0]], dtype=np.float32)
        assert np.array_equal(relu.infer(x), np.array([[0.0, 2.0]],
                                                      dtype=np.float32))

    def test_training_path_untouched_after_inference(self):
        """Gradcheck still passes after interleaved inference calls —
        the fast path must not perturb cached activations."""
        rng = np.random.default_rng(14)
        conv = nn.Conv2d(2, 3, 3, rng=rng)
        x = rng.standard_normal((2, 2, 5, 5)).astype(np.float32)
        conv.forward(rng.standard_normal((1, 2, 7, 7)).astype(np.float32),
                     training=False)
        check_layer_gradients(conv, x, rng)

    def test_sigmoid_single_exp_matches_reference(self):
        x = np.array([[-120.0, -60.0, -3.0, 0.0, 3.0, 60.0, 120.0]],
                     dtype=np.float32)
        # the pre-fix formulation, computed directly
        e = np.exp(np.clip(x, -60.0, 60.0))
        ref = (e / (1.0 + e)).astype(np.float32)
        out = nn.Sigmoid().forward(x, training=False)
        assert np.array_equal(out, ref)
        assert out.min() > 0.0               # never exactly 0 (no overflow)
