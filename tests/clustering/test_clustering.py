"""Tests for K-means, global K-means, silhouette, and K selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import (
    KMeansResult,
    assign_labels,
    global_kmeans,
    global_kmeans_path,
    inertia_of,
    kmeans,
    max_k_for_budget,
    select_k,
    silhouette_samples,
    silhouette_score,
)


def _blobs(n_per=20, k=3, spread=0.1, seed=0, dim=2):
    """Well-separated Gaussian blobs with ground-truth labels."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-5, 5, size=(k, dim))
    # Reject center pairs that are too close for a clean test.
    while True:
        dists = np.linalg.norm(centers[:, None] - centers[None, :], axis=2)
        np.fill_diagonal(dists, np.inf)
        if dists.min() > 2.0:
            break
        centers = rng.uniform(-5, 5, size=(k, dim))
    points = np.concatenate([
        c + rng.normal(0, spread, size=(n_per, dim)) for c in centers
    ])
    labels = np.repeat(np.arange(k), n_per)
    return points, labels


def _same_partition(a, b):
    """Two labelings describe the same partition (up to renaming)."""
    mapping = {}
    for x, y in zip(a, b):
        if x in mapping and mapping[x] != y:
            return False
        mapping[x] = y
    return len(set(mapping.values())) == len(mapping)


class TestKMeans:
    def test_recovers_blobs(self):
        points, truth = _blobs()
        result = kmeans(points, 3, seed=1)
        assert _same_partition(truth, result.labels)

    def test_k1_centroid_is_mean(self):
        points, _ = _blobs()
        result = kmeans(points, 1)
        np.testing.assert_allclose(result.centroids[0], points.mean(axis=0))

    def test_k_equals_n(self):
        points = np.array([[0.0], [1.0], [2.0]])
        result = kmeans(points, 3, seed=0)
        assert result.inertia < 1e-12

    def test_invalid_k(self):
        points, _ = _blobs(n_per=5)
        with pytest.raises(ValueError):
            kmeans(points, 0)
        with pytest.raises(ValueError):
            kmeans(points, len(points) + 1)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2)

    def test_deterministic_given_seed(self):
        points, _ = _blobs(seed=3)
        a = kmeans(points, 3, seed=9)
        b = kmeans(points, 3, seed=9)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_inertia_decreases_with_k(self):
        points, _ = _blobs(seed=4)
        inertias = [kmeans(points, k, seed=0).inertia for k in (1, 2, 3, 6)]
        assert all(a >= b - 1e-9 for a, b in zip(inertias[:-1], inertias[1:]))

    def test_assign_labels_nearest(self):
        centroids = np.array([[0.0, 0.0], [10.0, 10.0]])
        points = np.array([[1.0, 1.0], [9.0, 9.0]])
        np.testing.assert_array_equal(assign_labels(points, centroids), [0, 1])

    def test_inertia_of(self):
        points = np.array([[0.0], [2.0]])
        centroids = np.array([[1.0]])
        labels = np.array([0, 0])
        assert inertia_of(points, centroids, labels) == 2.0


class TestGlobalKMeans:
    def test_path_lengths(self):
        points, _ = _blobs(n_per=10)
        path = global_kmeans_path(points, 4)
        assert len(path) == 4
        assert [r.k for r in path] == [1, 2, 3, 4]

    def test_recovers_blobs(self):
        points, truth = _blobs(n_per=12, seed=5)
        result = global_kmeans(points, 3)
        assert _same_partition(truth, result.labels)

    def test_monotone_inertia(self):
        points, _ = _blobs(n_per=10, seed=6)
        path = global_kmeans_path(points, 5)
        inertias = [r.inertia for r in path]
        assert all(a >= b - 1e-9 for a, b in zip(inertias[:-1], inertias[1:]))

    def test_deterministic(self):
        points, _ = _blobs(n_per=8, seed=7)
        a = global_kmeans(points, 3)
        b = global_kmeans(points, 3)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_no_worse_than_lloyd(self):
        """Global K-means matches or beats randomly seeded Lloyd."""
        points, _ = _blobs(n_per=15, k=4, spread=0.8, seed=8)
        glob = global_kmeans(points, 4)
        lloyd = kmeans(points, 4, seed=0, n_init=1)
        assert glob.inertia <= lloyd.inertia + 1e-6

    def test_invalid_args(self):
        points, _ = _blobs(n_per=3)
        with pytest.raises(ValueError):
            global_kmeans_path(points, 0)
        with pytest.raises(ValueError):
            global_kmeans_path(np.zeros(5), 2)


class TestSilhouette:
    def test_perfect_separation_near_one(self):
        points, labels = _blobs(n_per=10, spread=0.01, seed=9)
        assert silhouette_score(points, labels) > 0.95

    def test_bad_labels_score_lower(self):
        points, labels = _blobs(n_per=10, seed=10)
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(labels)
        assert silhouette_score(points, labels) > silhouette_score(points, shuffled)

    def test_range(self):
        points, labels = _blobs(n_per=6, spread=2.0, seed=11)
        values = silhouette_samples(points, labels)
        assert np.all(values >= -1.0) and np.all(values <= 1.0)

    def test_single_cluster_raises(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((4, 2)), np.zeros(4, dtype=int))

    def test_singleton_cluster_scores_zero(self):
        points = np.array([[0.0], [0.1], [5.0]])
        labels = np.array([0, 0, 1])
        values = silhouette_samples(points, labels)
        assert values[2] == 0.0

    def test_label_shape_mismatch(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((4, 2)), np.zeros(3, dtype=int))

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_property_true_labels_beat_random(self, seed):
        points, labels = _blobs(n_per=8, spread=0.05, seed=seed)
        rng = np.random.default_rng(seed + 1)
        random_labels = rng.integers(0, 3, size=len(labels))
        if len(np.unique(random_labels)) < 2:
            return
        assert (silhouette_score(points, labels)
                >= silhouette_score(points, random_labels))


class TestSelection:
    def test_budget_formula(self):
        assert max_k_for_budget(1000, 100) == 10
        assert max_k_for_budget(1000, 999) == 1
        assert max_k_for_budget(100, 1000) == 1  # floor, at least 1

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            max_k_for_budget(0, 10)

    def test_selects_true_k(self):
        points, _ = _blobs(n_per=10, k=3, spread=0.05, seed=12)
        selection = select_k(points, k_max=8)
        assert selection.k == 3
        assert selection.result is not None
        assert selection.result.k == 3

    def test_constraint_caps_k(self):
        points, _ = _blobs(n_per=10, k=5, spread=0.05, seed=13)
        selection = select_k(points, k_max=3)
        assert selection.k <= 3

    def test_degenerate_single_point_cluster(self):
        points = np.zeros((1, 4))
        selection = select_k(points, k_max=5)
        assert selection.k == 1

    def test_k_max_one(self):
        points, _ = _blobs(n_per=5, seed=14)
        selection = select_k(points, k_max=1)
        assert selection.k == 1

    def test_scores_recorded(self):
        points, _ = _blobs(n_per=10, k=3, spread=0.05, seed=15)
        selection = select_k(points, k_max=5)
        assert set(selection.scores) == {2, 3, 4, 5}
        assert selection.best_score == max(selection.scores.values())

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            select_k(np.zeros(4), 2)
        with pytest.raises(ValueError):
            select_k(np.zeros((4, 2)), 0)
