"""Cross-module integration and property-based tests.

These tie several subsystems together: synthetic video through the codec
with randomized settings, server-pipeline determinism, and consistency
between the client and a hand-assembled decode path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video import (
    detect_segments,
    fixed_length_segments,
    make_video,
    psnr_yuv,
    rgb_to_yuv420,
)
from repro.video.codec import CodecConfig, Decoder, Encoder


class TestCodecPropertyRoundTrip:
    @given(
        crf=st.integers(5, 51),
        n_b=st.integers(0, 3),
        deblock=st.booleans(),
        genre=st.sampled_from(["news", "sports", "music"]),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=12, deadline=None)
    def test_any_configuration_round_trips(self, crf, n_b, deblock, genre, seed):
        """For any codec configuration and content, the decoder reproduces
        frame count, types, and positive quality monotone in CRF."""
        clip = make_video("prop", genre, seed=seed, size=(32, 32),
                          duration_seconds=1.0, fps=8)
        segments = fixed_length_segments(clip.n_frames, 4)
        encoded = Encoder(CodecConfig(crf=crf, n_b_frames=n_b,
                                      deblock=deblock)).encode(
            clip.frames, segments, fps=clip.fps)
        decoded = Decoder().decode_video(encoded)
        assert decoded.n_frames == clip.n_frames
        assert decoded.frame_types[0] == "I"
        assert len(decoded.i_frame_indices) >= len(segments)
        originals = [rgb_to_yuv420(f) for f in clip.frames]
        values = [psnr_yuv(a, b) for a, b in zip(originals, decoded.frames)]
        finite = [v for v in values if np.isfinite(v)]
        if finite:
            assert min(finite) > 15.0  # decodes to something resembling input

    @given(seed=st.integers(0, 30))
    @settings(max_examples=8, deadline=None)
    def test_segment_isolation_property(self, seed):
        """Decoding segments in any order yields the same frames as decoding
        the whole video (closed GOPs)."""
        clip = make_video("iso", "music", seed=seed, size=(32, 32),
                          duration_seconds=2.0, fps=8)
        segments = fixed_length_segments(clip.n_frames, 5)
        encoded = Encoder(CodecConfig(crf=35)).encode(clip.frames, segments,
                                                      fps=clip.fps)
        whole = Decoder().decode_video(encoded)
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(encoded.segments))
        pieces = {}
        for idx in order:
            seg = encoded.segments[idx]
            for item in Decoder().decode_segment(seg, encoded.width,
                                                 encoded.height):
                pieces[item.display] = item.frame
        for display, frame in pieces.items():
            assert frame == whole.frames[display]


class TestPipelineDeterminism:
    @pytest.mark.tier2
    def test_build_package_fully_deterministic(self, small_clip, small_config):
        from repro.core import build_package
        a = build_package(small_clip, small_config)
        b = build_package(small_clip, small_config)
        assert a.manifest.label_sequence() == b.manifest.label_sequence()
        assert a.manifest.enhance_in_loop == b.manifest.enhance_in_loop
        assert a.selection.k == b.selection.k
        x = np.random.default_rng(0).uniform(size=(1, 3, 16, 16)).astype(np.float32)
        for label in a.models:
            np.testing.assert_array_equal(a.models[label].forward(x),
                                          b.models[label].forward(x))
        for sa, sb in zip(a.encoded.segments, b.encoded.segments):
            assert sa.payload == sb.payload

    def test_client_matches_manual_decode(self, package, small_clip):
        """DcsrClient's output equals a hand-assembled decode with the same
        models applied through the raw decoder hook."""
        from repro.core import DcsrClient
        from repro.core.client import enhance_yuv_frame
        from repro.video import yuv420_to_rgb

        client_frames = DcsrClient(package).play().frames

        manual = {}
        display_only = not package.manifest.enhance_in_loop
        for seg, enc_seg in zip(package.segments, package.encoded.segments):
            label = package.manifest.model_label_for(seg.index)
            model = package.models[label]
            decoder = Decoder(
                i_frame_hook=lambda f, d, m=model: enhance_yuv_frame(m, f),
                hook_display_only=display_only)
            for item in decoder.decode_segment(enc_seg, package.encoded.width,
                                               package.encoded.height):
                manual[item.display] = yuv420_to_rgb(item.frame)

        for display in sorted(manual):
            np.testing.assert_array_equal(client_frames[display],
                                          manual[display])


class TestSegmentationCodecAgreement:
    def test_detected_segments_encode_decode(self):
        """Shot detection output feeds the encoder without adjustment."""
        clip = make_video("agree", "music", seed=3, size=(32, 48),
                          duration_seconds=8.0, fps=10, n_distinct_scenes=3)
        segments = detect_segments(clip.frames, max_length=25)
        encoded = Encoder(CodecConfig(crf=40)).encode(clip.frames, segments,
                                                      fps=clip.fps)
        decoded = Decoder().decode_video(encoded)
        # Every segment boundary is an I frame.
        for seg in segments:
            assert decoded.frame_types[seg.start] == "I"
        assert decoded.n_frames == clip.n_frames
