"""Tests for the VAE feature extractor."""

import numpy as np
import pytest

from repro.features import (
    ConvVAE,
    VaeTrainConfig,
    extract_features,
    frames_to_batch,
    train_vae,
)


def _images(n=8, size=16, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, 1, size=(n, 3, size, size)).astype(np.float32)


class TestConvVAEStructure:
    def test_encode_shapes(self):
        vae = ConvVAE(latent_dim=4, input_size=16)
        mu, logvar = vae.encode(_images(5, 16))
        assert mu.shape == (5, 4)
        assert logvar.shape == (5, 4)

    def test_decode_shape(self):
        vae = ConvVAE(latent_dim=4, input_size=16)
        z = np.zeros((3, 4), dtype=np.float32)
        assert vae.decode(z).shape == (3, 3, 16, 16)

    def test_forward_shapes(self):
        vae = ConvVAE(latent_dim=4, input_size=16)
        x = _images(2, 16)
        x_hat, mu, logvar = vae.forward(x, np.random.default_rng(0))
        assert x_hat.shape == x.shape
        assert mu.shape == (2, 4)

    def test_output_in_unit_range(self):
        vae = ConvVAE(latent_dim=4, input_size=16)
        x_hat, _, _ = vae.forward(_images(2, 16), np.random.default_rng(0))
        assert x_hat.min() >= 0.0 and x_hat.max() <= 1.0

    def test_bad_input_size(self):
        with pytest.raises(ValueError):
            ConvVAE(latent_dim=4, input_size=20)

    def test_bad_input_shape(self):
        vae = ConvVAE(latent_dim=4, input_size=16)
        with pytest.raises(ValueError):
            vae.encode(np.zeros((2, 3, 8, 8), np.float32))

    def test_embed_is_deterministic(self):
        vae = ConvVAE(latent_dim=4, input_size=16)
        x = _images(3, 16)
        np.testing.assert_array_equal(vae.embed(x), vae.embed(x))

    def test_backward_before_forward_raises(self):
        vae = ConvVAE(latent_dim=4, input_size=16)
        with pytest.raises(RuntimeError):
            vae.backward(np.zeros((1, 3, 16, 16), np.float32),
                         np.zeros((1, 4), np.float32),
                         np.zeros((1, 4), np.float32))

    def test_parameter_count_positive(self):
        assert ConvVAE(latent_dim=4, input_size=16).num_parameters() > 0

    def test_deterministic_construction(self):
        a = ConvVAE(latent_dim=4, input_size=16, seed=3)
        b = ConvVAE(latent_dim=4, input_size=16, seed=3)
        x = _images(2, 16)
        np.testing.assert_array_equal(a.embed(x), b.embed(x))


class TestVAETraining:
    def test_loss_decreases(self):
        vae = ConvVAE(latent_dim=4, input_size=16, base_channels=4)
        images = _images(12, 16)
        history = train_vae(vae, images, VaeTrainConfig(epochs=15, batch_size=6,
                                                        seed=1))
        assert history.total[-1] < history.total[0]

    def test_history_lengths(self):
        vae = ConvVAE(latent_dim=4, input_size=16, base_channels=4)
        history = train_vae(vae, _images(6, 16),
                            VaeTrainConfig(epochs=5, batch_size=3))
        assert len(history.total) == 5
        assert len(history.reconstruction) == 5
        assert len(history.kl) == 5

    def test_deterministic_training(self):
        cfg = VaeTrainConfig(epochs=3, batch_size=4, seed=7)
        a = ConvVAE(latent_dim=4, input_size=16, seed=0)
        b = ConvVAE(latent_dim=4, input_size=16, seed=0)
        images = _images(8, 16)
        ha = train_vae(a, images, cfg)
        hb = train_vae(b, images, cfg)
        np.testing.assert_allclose(ha.total, hb.total)

    def test_empty_input_raises(self):
        vae = ConvVAE(latent_dim=4, input_size=16)
        with pytest.raises(ValueError):
            train_vae(vae, np.zeros((0, 3, 16, 16), np.float32))

    def test_bad_config(self):
        with pytest.raises(ValueError):
            VaeTrainConfig(epochs=0)

    def test_latent_space_separates_distinct_content(self):
        """Two visually distinct image groups embed far apart relative to
        within-group spread — the property clustering relies on."""
        rng = np.random.default_rng(5)
        smooth = np.tile(
            np.linspace(0.2, 0.6, 16, dtype=np.float32)[None, None, :, None],
            (8, 3, 1, 16))
        smooth += rng.normal(0, 0.01, smooth.shape).astype(np.float32)
        noisy = rng.uniform(0.4, 1.0, size=(8, 3, 16, 16)).astype(np.float32)
        images = np.clip(np.concatenate([smooth, noisy]), 0, 1)

        vae = ConvVAE(latent_dim=4, input_size=16, base_channels=4, seed=2)
        train_vae(vae, images, VaeTrainConfig(epochs=25, batch_size=8, seed=2))
        z = vae.embed(images)
        mu_a, mu_b = z[:8].mean(axis=0), z[8:].mean(axis=0)
        between = float(np.linalg.norm(mu_a - mu_b))
        within = float(np.mean([z[:8].std(), z[8:].std()]))
        assert between > within


class TestHelpers:
    def test_frames_to_batch_shape(self):
        frames = np.random.default_rng(0).uniform(
            size=(4, 24, 36, 3)).astype(np.float32)
        batch = frames_to_batch(frames, 16)
        assert batch.shape == (4, 3, 16, 16)

    def test_frames_to_batch_bad_shape(self):
        with pytest.raises(ValueError):
            frames_to_batch(np.zeros((4, 24, 36), np.float32), 16)

    def test_extract_features_shape(self):
        vae = ConvVAE(latent_dim=6, input_size=16)
        frames = np.random.default_rng(1).uniform(
            size=(5, 32, 48, 3)).astype(np.float32)
        feats = extract_features(vae, frames)
        assert feats.shape == (5, 6)
