"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def video_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "video.npz"
    rc = main(["generate", "--genre", "news", "--seconds", "3",
               "--seed", "5", "--out", str(path)])
    assert rc == 0
    return path


@pytest.fixture(scope="module")
def package_dir(video_file, tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "pkg"
    rc = main(["prepare", str(video_file), "--out", str(out),
               "--epochs", "4"])
    assert rc == 0
    return out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--out", "x.npz", "--genre", "sports"])
        assert args.command == "generate"
        assert args.genre == "sports"

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.device == "jetson"
        assert args.resolution == "1080p"

    def test_prepare_parallel_defaults(self):
        args = build_parser().parse_args(
            ["prepare", "v.npz", "--out", "pkg"])
        assert args.workers == 1
        assert args.backend is None
        assert args.train_cache is None

    def test_prepare_parallel_flags(self):
        args = build_parser().parse_args(
            ["prepare", "v.npz", "--out", "pkg", "--workers", "4",
             "--backend", "thread", "--train-cache", "cache/"])
        assert args.workers == 4
        assert args.backend == "thread"
        assert args.train_cache == "cache/"


class TestGenerate:
    def test_output_contents(self, video_file):
        with np.load(video_file) as data:
            assert data["frames"].shape[0] == 30  # 3 s at 10 fps
            assert data["frames"].shape[3] == 3
            assert float(data["fps"]) == 10.0


class TestPrepareInfoPlay:
    def test_package_layout(self, package_dir):
        assert (package_dir / "manifest.json").exists()
        assert list((package_dir / "models").glob("*.npz"))

    def test_info(self, package_dir, capsys):
        assert main(["info", str(package_dir)]) == 0
        out = capsys.readouterr().out
        assert "segments" in out
        assert "caching" in out

    def test_play_with_reference(self, package_dir, video_file, capsys):
        assert main(["play", str(package_dir),
                     "--reference", str(video_file)]) == 0
        out = capsys.readouterr().out
        assert "PSNR" in out

    def test_play_without_reference(self, package_dir, capsys):
        assert main(["play", str(package_dir)]) == 0
        assert "quality" not in capsys.readouterr().out


class TestPrepareParallel:
    def test_parallel_prepare_with_cache(self, video_file, tmp_path, capsys):
        out = tmp_path / "pkg"
        cache = tmp_path / "cache"
        rc = main(["prepare", str(video_file), "--out", str(out),
                   "--epochs", "2", "--workers", "2",
                   "--train-cache", str(cache)])
        assert rc == 0
        first = capsys.readouterr().out
        assert "build stages (process x2):" in first
        assert "train" in first
        assert "hits" in first
        assert list(cache.glob("*.npz"))

        rc = main(["prepare", str(video_file), "--out", str(tmp_path / "p2"),
                   "--epochs", "2", "--workers", "2",
                   "--train-cache", str(cache)])
        assert rc == 0
        second = capsys.readouterr().out
        assert "0 misses" in second  # full training-cache hit


class TestPlan:
    def test_plan_jetson_4k_shows_oom(self, capsys):
        assert main(["plan", "--device", "jetson", "--resolution", "4k"]) == 0
        out = capsys.readouterr().out
        assert "OOM" in out
        assert "dcSR-1" in out

    def test_plan_desktop_no_oom(self, capsys):
        assert main(["plan", "--device", "desktop", "--resolution", "4k"]) == 0
        assert "OOM" not in capsys.readouterr().out
