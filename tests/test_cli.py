"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def video_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "video.npz"
    rc = main(["generate", "--genre", "news", "--seconds", "3",
               "--seed", "5", "--out", str(path)])
    assert rc == 0
    return path


@pytest.fixture(scope="module")
def package_dir(video_file, tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "pkg"
    rc = main(["prepare", str(video_file), "--out", str(out),
               "--epochs", "4"])
    assert rc == 0
    return out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--out", "x.npz", "--genre", "sports"])
        assert args.command == "generate"
        assert args.genre == "sports"

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.device == "jetson"
        assert args.resolution == "1080p"

    def test_prepare_parallel_defaults(self):
        args = build_parser().parse_args(
            ["prepare", "v.npz", "--out", "pkg"])
        assert args.workers == 1
        assert args.backend is None
        assert args.train_cache is None

    def test_prepare_parallel_flags(self):
        args = build_parser().parse_args(
            ["prepare", "v.npz", "--out", "pkg", "--workers", "4",
             "--backend", "thread", "--train-cache", "cache/"])
        assert args.workers == 4
        assert args.backend == "thread"
        assert args.train_cache == "cache/"


class TestGenerate:
    def test_output_contents(self, video_file):
        with np.load(video_file) as data:
            assert data["frames"].shape[0] == 30  # 3 s at 10 fps
            assert data["frames"].shape[3] == 3
            assert float(data["fps"]) == 10.0


class TestPrepareInfoPlay:
    def test_package_layout(self, package_dir):
        assert (package_dir / "manifest.json").exists()
        assert list((package_dir / "models").glob("*.npz"))

    def test_info(self, package_dir, capsys):
        assert main(["info", str(package_dir)]) == 0
        out = capsys.readouterr().out
        assert "segments" in out
        assert "caching" in out

    def test_play_with_reference(self, package_dir, video_file, capsys):
        assert main(["play", str(package_dir),
                     "--reference", str(video_file)]) == 0
        out = capsys.readouterr().out
        assert "PSNR" in out

    def test_play_without_reference(self, package_dir, capsys):
        assert main(["play", str(package_dir)]) == 0
        assert "quality" not in capsys.readouterr().out


class TestPrepareParallel:
    def test_parallel_prepare_with_cache(self, video_file, tmp_path, capsys):
        out = tmp_path / "pkg"
        cache = tmp_path / "cache"
        rc = main(["prepare", str(video_file), "--out", str(out),
                   "--epochs", "2", "--workers", "2",
                   "--train-cache", str(cache)])
        assert rc == 0
        first = capsys.readouterr().out
        # The reported backend self-calibrates to the host: a pool is
        # requested, but a single-core machine runs (and reports) serial.
        from repro.core import ParallelConfig
        requested = ParallelConfig(workers=2, backend="process")
        assert (f"build stages ({requested.effective_backend()} "
                f"x{requested.resolve_workers()}):") in first
        assert "train" in first
        assert "hits" in first
        assert list(cache.glob("*.npz"))

        rc = main(["prepare", str(video_file), "--out", str(tmp_path / "p2"),
                   "--epochs", "2", "--workers", "2",
                   "--train-cache", str(cache)])
        assert rc == 0
        second = capsys.readouterr().out
        assert "0 misses" in second  # full training-cache hit


class TestObservabilityFlags:
    def test_play_trace_out(self, package_dir, tmp_path, capsys):
        import json

        from repro.obs import stage_totals

        trace_path = tmp_path / "trace.json"
        assert main(["play", str(package_dir),
                     "--trace-out", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert f"trace -> {trace_path}" in out

        data = json.loads(trace_path.read_text())
        assert data["name"] == "play"
        totals = stage_totals(data)
        assert "decode" in totals
        # Per-stage totals in the exported tree match the printed summary
        # (up to the 2-decimal rounding of the table formatter).
        compared = 0
        for line in out.splitlines():
            parts = line.split()
            if len(parts) == 2 and parts[0] in totals:
                assert float(parts[1]) == pytest.approx(
                    totals[parts[0]], abs=5.1e-3)
                compared += 1
        assert compared >= 2

    def test_play_metrics_out(self, package_dir, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.prom"
        assert main(["play", str(package_dir),
                     "--metrics-out", str(metrics_path)]) == 0
        assert f"metrics -> {metrics_path}" in capsys.readouterr().out
        text = metrics_path.read_text()
        assert "# TYPE dcsr_playback_frames_total counter" in text
        assert "dcsr_playback_stage_seconds_total" in text
        assert 'stage="decode"' in text

    def test_prepare_trace_and_metrics_out(self, video_file, tmp_path,
                                           capsys):
        import json

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        rc = main(["prepare", str(video_file), "--out", str(tmp_path / "pkg"),
                   "--epochs", "2", "--trace-out", str(trace_path),
                   "--metrics-out", str(metrics_path)])
        assert rc == 0
        capsys.readouterr()
        data = json.loads(trace_path.read_text())
        assert data["name"] == "prepare"
        assert [c["name"] for c in data["children"]] == ["build"]
        assert "dcsr_build_stage_seconds_total" in metrics_path.read_text()


class TestSummaryFormat:
    def test_playback_summary_renders_a_table(self, package_dir, capsys):
        """Pin the shared-format contract: the stage block of the playback
        summary is a ``format_table`` rendering (header + dashes), under
        the preserved ``playback stages`` headline."""
        assert main(["play", str(package_dir)]) == 0
        lines = capsys.readouterr().out.splitlines()
        (start,) = [i for i, line in enumerate(lines)
                    if line.startswith("playback stages")]
        header = lines[start + 1].split()
        assert header == ["stage", "seconds"]
        assert set(lines[start + 2].strip()) <= {"-", " "}
        stages = []
        for line in lines[start + 3:]:
            assert line.startswith("  ")      # table rows stay indented
            stages.append(line.split()[0])
            if stages[-1] == "total":
                break
        assert stages[0] == "download"
        assert stages[-1] == "total"


class TestPlan:
    def test_plan_jetson_4k_shows_oom(self, capsys):
        assert main(["plan", "--device", "jetson", "--resolution", "4k"]) == 0
        out = capsys.readouterr().out
        assert "OOM" in out
        assert "dcSR-1" in out

    def test_plan_desktop_no_oom(self, capsys):
        assert main(["plan", "--device", "desktop", "--resolution", "4k"]) == 0
        assert "OOM" not in capsys.readouterr().out
