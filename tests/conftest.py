"""Shared fixtures: one small dcSR package built once per test session.

Training is the expensive part, so pipeline tests share a single package
built with reduced (but functional) settings.
"""

import numpy as np
import pytest

from repro.core import ServerConfig, build_package
from repro.features import VaeTrainConfig
from repro.sr import EdsrConfig, SrTrainConfig
from repro.video import make_video
from repro.video.codec import CodecConfig


@pytest.fixture(scope="session")
def small_clip():
    return make_video("fixture", "music", seed=7, size=(48, 64),
                      duration_seconds=8.0, fps=10, n_distinct_scenes=3)


@pytest.fixture(scope="session")
def small_config():
    return ServerConfig(
        codec=CodecConfig(crf=48),
        vae_train=VaeTrainConfig(epochs=10, batch_size=4),
        sr_train=SrTrainConfig(epochs=25, steps_per_epoch=10, batch_size=8,
                               patch_size=16, learning_rate=5e-3,
                               lr_decay_epochs=10),
        micro_config=EdsrConfig(n_resblocks=2, n_filters=8),
        seed=0,
    )


@pytest.fixture(scope="session")
def package(small_clip, small_config):
    return build_package(small_clip, small_config)
