"""Tests for FLOPs tracing, the latency/memory model, and power simulation."""

import numpy as np
import pytest

from repro import nn
from repro.devices import (
    DEVICES,
    OutOfMemory,
    fits_in_memory,
    get_device,
    inference_seconds,
    model_forward_flops,
    playback_fps,
    playback_power_schedule,
    profile_at_resolution,
    simulate_power,
    sr_power_draw,
    trace_model,
)
from repro.sr import EDSR, EdsrConfig, big_model_config, dcsr_config


class TestFlopsTracing:
    def test_conv_flops_exact(self):
        """A single conv's FLOPs match the closed-form count."""
        conv = nn.Conv2d(3, 8, 3, bias=True)
        profile = trace_model(conv, (3, 10, 10))
        expected = 2 * 3 * 9 * 8 * 10 * 10 + 8 * 10 * 10
        assert profile.flops == expected

    def test_dense_flops(self):
        dense = nn.Dense(10, 5)
        profile = trace_model(dense, (10,))
        assert profile.flops == 2 * 10 * 5 + 5

    def test_stride_reduces_flops(self):
        c1 = nn.Conv2d(3, 8, 3, stride=1, padding=1)
        c2 = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        f1 = trace_model(c1, (3, 16, 16)).flops
        f2 = trace_model(c2, (3, 16, 16)).flops
        assert f2 < f1 / 3

    def test_output_shape_tracked(self):
        seq = nn.Sequential(nn.Conv2d(3, 8, 3, stride=2, padding=1),
                            nn.ReLU(), nn.Flatten())
        profile = trace_model(seq, (3, 16, 16))
        assert profile.output_shape == (8 * 8 * 8,)

    def test_edsr_traced_via_head_body_tail(self):
        model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8, scale=2))
        profile = trace_model(model, (3, 8, 8))
        assert profile.flops > 0
        assert profile.output_shape == (3, 16, 16)

    def test_flops_scale_with_input_area(self):
        model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8))
        small = model_forward_flops(model, 8, 8)
        large = model_forward_flops(model, 16, 16)
        assert 3.5 < large / small < 4.5

    def test_flops_scale_with_resblocks(self):
        f1 = model_forward_flops(EDSR(EdsrConfig(n_resblocks=4, n_filters=16)), 16, 16)
        f2 = model_forward_flops(EDSR(EdsrConfig(n_resblocks=16, n_filters=16)), 16, 16)
        assert f2 > 2.5 * f1

    def test_param_bytes_match_model(self):
        model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8))
        profile = trace_model(model, (3, 8, 8))
        assert profile.param_bytes == sum(p.nbytes for p in model.parameters())

    def test_untraceable_layer_raises(self):
        class Weird(nn.Layer):
            pass
        with pytest.raises(TypeError):
            trace_model(Weird(), (3, 8, 8))


class TestDeviceSpecs:
    def test_known_devices(self):
        for name in ("jetson", "laptop", "desktop"):
            spec = get_device(name)
            assert spec.effective_flops > 0

    def test_unknown_device(self):
        with pytest.raises(ValueError):
            get_device("phone")

    def test_device_ordering(self):
        """Desktop > laptop > jetson in compute."""
        j, l, d = (get_device(n).effective_flops
                   for n in ("jetson", "laptop", "desktop"))
        assert j < l < d

    def test_decode_rate_lookup(self):
        spec = get_device("jetson")
        assert spec.decode_rate("720p") > spec.decode_rate("4k")
        with pytest.raises(ValueError):
            spec.decode_rate("8k")


class TestLatencyModel:
    def test_inference_seconds_positive(self):
        model = EDSR(dcsr_config(1, scale=2))
        cost = inference_seconds(model, "720p", get_device("jetson"))
        assert cost.seconds > 0
        assert cost.memory_bytes > 0

    def test_bigger_model_slower(self):
        dev = get_device("jetson")
        t1 = inference_seconds(EDSR(dcsr_config(1, scale=2)), "720p", dev).seconds
        t3 = inference_seconds(EDSR(dcsr_config(3, scale=2)), "720p", dev).seconds
        assert t3 > t1

    def test_profile_uses_sr_input_size(self):
        model = EDSR(EdsrConfig(n_resblocks=1, n_filters=4, scale=2))
        profile = profile_at_resolution(model, "720p")
        assert profile.output_shape == (3, 720, 720 // 720 * 1280)

    def test_big_models_oom_on_jetson_at_4k(self):
        """The paper's key memory result (Figure 8)."""
        jetson = get_device("jetson")
        big = EDSR(big_model_config("4k"))
        assert not fits_in_memory(big, "4k", jetson)
        with pytest.raises(OutOfMemory):
            inference_seconds(big, "4k", jetson)

    def test_big_models_fit_on_desktop_at_4k(self):
        """Figure 12: discrete GPUs run the big model at 4K."""
        big = EDSR(big_model_config("4k"))
        assert fits_in_memory(big, "4k", get_device("desktop"))
        assert fits_in_memory(big, "4k", get_device("laptop"))

    def test_dcsr_fits_jetson_at_4k(self):
        model = EDSR(dcsr_config(1, scale=4))
        assert fits_in_memory(model, "4k", get_device("jetson"))

    def test_big_model_fits_jetson_at_1080p(self):
        """NAS runs (slowly) at 1080p on the Jetson — it must not OOM."""
        big = EDSR(big_model_config("1080p"))
        assert fits_in_memory(big, "1080p", get_device("jetson"))


class TestPlaybackFps:
    def test_dcsr1_realtime_on_jetson_everywhere(self):
        """Headline claim: dcSR-1 exceeds 30 FPS at one inference/segment."""
        jetson = get_device("jetson")
        for res in ("720p", "1080p", "4k"):
            from repro.sr import RESOLUTIONS
            model = EDSR(dcsr_config(1, scale=RESOLUTIONS[res].sr_scale))
            assert playback_fps(model, res, jetson, 30, 1) >= 30.0, res

    def test_nas_below_one_fps_at_1080p(self):
        jetson = get_device("jetson")
        big = EDSR(big_model_config("1080p"))
        assert playback_fps(big, "1080p", jetson, 30, 30) < 1.0

    def test_fps_decreases_with_inferences(self):
        jetson = get_device("jetson")
        model = EDSR(dcsr_config(2, scale=2))
        fps = [playback_fps(model, "1080p", jetson, 30, k) for k in (1, 3, 5)]
        assert fps[0] > fps[1] > fps[2]

    def test_zero_inferences_is_decode_bound(self):
        jetson = get_device("jetson")
        model = EDSR(dcsr_config(1, scale=2))
        fps = playback_fps(model, "720p", jetson, 30, 0)
        assert np.isclose(fps, jetson.decode_rate("720p"))

    def test_validation(self):
        jetson = get_device("jetson")
        model = EDSR(dcsr_config(1, scale=2))
        with pytest.raises(ValueError):
            playback_fps(model, "720p", jetson, 0, 0)
        with pytest.raises(ValueError):
            playback_fps(model, "720p", jetson, 10, 11)


class TestPowerModel:
    def test_sr_power_between_bounds(self):
        dev = get_device("jetson")
        watts = sr_power_draw(dev, 1e10, 0.05)
        assert dev.power_sr_min_w <= watts <= dev.power_sr_max_w

    def test_saturating_model_draws_max(self):
        dev = get_device("jetson")
        watts = sr_power_draw(dev, dev.effective_flops, 1.0)
        assert np.isclose(watts, dev.power_sr_max_w)

    def test_zero_duration_draws_nothing(self):
        assert sr_power_draw(get_device("jetson"), 1e9, 0.0) == 0.0

    def test_schedule_intervals(self):
        intervals = playback_power_schedule([5.0, 5.0, 5.0], 2, 0.1)
        assert len(intervals) == 3
        starts = [s for s, _ in intervals]
        assert starts == [0.0, 5.0, 10.0]
        assert all(np.isclose(d, 0.2) for _, d in intervals)

    def test_simulate_baseline_power(self):
        dev = get_device("jetson")
        timeline = simulate_power(dev, 10.0, [], 0.0)
        baseline = dev.power_idle_w + dev.power_decode_w
        np.testing.assert_allclose(timeline.watts, baseline)
        assert np.isclose(timeline.energy_joules, baseline * 10.0, rtol=0.01)

    def test_spikes_raise_energy(self):
        dev = get_device("jetson")
        quiet = simulate_power(dev, 10.0, [], 1.0)
        spiky = simulate_power(dev, 10.0, [(0.0, 1.0), (5.0, 1.0)], 1.0)
        assert spiky.energy_joules > quiet.energy_joules
        assert spiky.peak_watts > quiet.peak_watts

    def test_continuous_vs_periodic_ordering(self):
        """NAS-style continuous draw uses more energy than dcSR spikes."""
        dev = get_device("jetson")
        nas = simulate_power(dev, 60.0, [(0.0, 60.0)], 1.9)
        dcsr = simulate_power(dev, 60.0,
                              [(t, 0.1) for t in range(0, 60, 8)], 1.1)
        assert nas.energy_joules > 2.0 * dcsr.energy_joules

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            simulate_power(get_device("jetson"), 0.0, [], 1.0)
