"""Edge cases of the power-rail model the controller leans on.

``TestPowerModel`` in ``test_devices.py`` covers the happy paths; these
pin the boundary behaviour the joint controller depends on: zero-length
sessions fail loudly, utilisation saturates instead of extrapolating,
and schedules stay monotonic and clamped.
"""

import numpy as np
import pytest

from repro.devices import (
    get_device,
    playback_power_schedule,
    simulate_power,
    sr_power_draw,
)


class TestZeroLengthSession:
    def test_zero_seconds_raises(self):
        with pytest.raises(ValueError):
            simulate_power(get_device("jetson"), 0.0, [], 2.0)

    def test_negative_seconds_raises(self):
        with pytest.raises(ValueError):
            simulate_power(get_device("jetson"), -1.0, [], 2.0)

    def test_tiny_session_still_integrates(self):
        # Shorter than one dt sample: linspace degrades to two points,
        # not an empty/degenerate trace.
        timeline = simulate_power(get_device("jetson"), 0.01, [], 2.0)
        assert len(timeline.times) >= 2
        assert timeline.energy_joules > 0.0


class TestSaturationClamp:
    def test_draw_clamped_at_max(self):
        device = get_device("jetson")
        at_sat = sr_power_draw(device, device.power_saturation_flops, 0.01)
        beyond = sr_power_draw(device, device.power_saturation_flops * 100,
                               0.01)
        assert at_sat == pytest.approx(device.power_sr_max_w)
        assert beyond == pytest.approx(device.power_sr_max_w)

    def test_draw_monotonic_below_saturation(self):
        device = get_device("laptop")
        flops = np.linspace(0.0, device.power_saturation_flops, 8)
        draws = [sr_power_draw(device, f, 0.01) for f in flops]
        assert draws == sorted(draws)
        assert draws[0] == pytest.approx(device.power_sr_min_w)

    def test_zero_or_negative_inference_time_draws_nothing(self):
        device = get_device("desktop")
        assert sr_power_draw(device, 1e9, 0.0) == 0.0
        assert sr_power_draw(device, 1e9, -0.5) == 0.0


class TestScheduleShape:
    def test_interval_starts_strictly_monotonic(self):
        intervals = playback_power_schedule([2.0, 1.5, 2.0, 0.5], 2, 0.1)
        starts = [start for start, _ in intervals]
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)
        assert starts == [0.0, 2.0, 3.5, 5.5]

    def test_busy_clamped_to_segment_duration(self):
        # 4 inferences x 0.8 s = 3.2 s of work in a 2 s segment: the busy
        # window must not bleed into the next segment's interval.
        intervals = playback_power_schedule([2.0, 2.0], 4, 0.8)
        assert all(duration <= 2.0 for _, duration in intervals)
        (s0, d0), (s1, _) = intervals
        assert s0 + d0 <= s1

    def test_zero_inferences_yields_no_intervals(self):
        assert playback_power_schedule([2.0, 2.0], 0, 0.1) == []

    def test_empty_session_yields_no_intervals(self):
        assert playback_power_schedule([], 3, 0.1) == []

    def test_schedule_energy_scales_with_inferences(self):
        device = get_device("jetson")
        watts = sr_power_draw(device, 1e8, 0.1)

        def energy(n_inferences):
            intervals = playback_power_schedule([2.0] * 3, n_inferences, 0.1)
            return simulate_power(device, 6.0, intervals,
                                  watts).energy_joules

        assert energy(0) < energy(1) < energy(4)
