"""HTTP/1.1 semantics of the asyncio origin, property-tested over a
real loopback socket: Range (single, open-ended, suffix, 416), strong
ETags with If-None-Match revalidation and rotation on package rebuild,
HEAD, traversal protection, keep-alive, and concurrent interleaving on
one event loop."""

import asyncio
import random

import pytest

from repro.net import DcsrOrigin, HttpTransport

pytestmark = pytest.mark.net

SEGMENT = "segments/segment-0000.bin"


@pytest.fixture()
def transport(net_loop, origin):
    return HttpTransport(origin.base_url, loop=net_loop)


class TestRange:
    def test_seeded_range_sweep_matches_disk(self, transport, origin,
                                             package_dir):
        data = (package_dir / SEGMENT).read_bytes()
        size = len(data)
        rng = random.Random(0xD05F)
        for _ in range(25):
            start = rng.randrange(size)
            end = rng.randrange(start, size)
            status, headers, body = transport.get(
                SEGMENT, {"Range": f"bytes={start}-{end}"})
            assert status == 206
            assert body == data[start:end + 1]
            assert headers["content-range"] == f"bytes {start}-{end}/{size}"
            assert int(headers["content-length"]) == len(body)

    def test_open_ended_and_suffix_ranges(self, transport, package_dir):
        data = (package_dir / SEGMENT).read_bytes()
        status, headers, body = transport.get(SEGMENT, {"Range": "bytes=5-"})
        assert (status, body) == (206, data[5:])
        status, headers, body = transport.get(SEGMENT, {"Range": "bytes=-7"})
        assert (status, body) == (206, data[-7:])
        assert headers["content-range"] == \
            f"bytes {len(data) - 7}-{len(data) - 1}/{len(data)}"

    def test_range_beyond_size_is_416(self, transport, package_dir):
        size = len((package_dir / SEGMENT).read_bytes())
        status, headers, body = transport.get(
            SEGMENT, {"Range": f"bytes={size + 10}-"})
        assert status == 416
        assert headers["content-range"] == f"bytes */{size}"

    def test_malformed_range_is_ignored(self, transport, package_dir):
        data = (package_dir / SEGMENT).read_bytes()
        for bad in ("bytes=9-2", "frames=0-1", "bytes=a-b", "bytes="):
            status, headers, body = transport.get(SEGMENT, {"Range": bad})
            assert (status, body) == (200, data), bad


class TestETag:
    def test_revalidation_and_rebuild_rotation(self, net_loop, tmp_path):
        root = tmp_path / "scratch-origin"
        root.mkdir()
        artifact = root / "manifest.json"
        artifact.write_bytes(b'{"built": 1}')
        served = DcsrOrigin(root)
        net_loop.run_until_complete(served.start())
        try:
            client = HttpTransport(served.base_url, loop=net_loop)
            status, headers, body = client.get("manifest.json")
            assert status == 200 and body == b'{"built": 1}'
            etag = headers["etag"]

            status, _, body = client.get(
                "manifest.json", {"If-None-Match": etag})
            assert (status, body) == (304, b"")

            artifact.write_bytes(b'{"built": 2, "rotated": true}')
            status, headers, body = client.get(
                "manifest.json", {"If-None-Match": etag})
            assert status == 200
            assert body == b'{"built": 2, "rotated": true}'
            assert headers["etag"] != etag
        finally:
            net_loop.run_until_complete(served.stop())

    def test_transport_replays_cached_body_on_304(self, transport):
        first = transport.fetch("manifest", "")
        second = transport.fetch("manifest", "")
        assert first == second
        assert transport.revalidated == 1


class TestProtocol:
    def test_head_carries_length_but_no_body(self, transport, package_dir):
        size = len((package_dir / "manifest.json").read_bytes())
        status, headers, body = transport._run(
            transport.request("HEAD", "manifest.json"))
        assert status == 200
        assert int(headers["content-length"]) == size
        assert body == b""

    def test_missing_and_traversal_paths_are_404(self, transport):
        assert transport.get("no-such-file")[0] == 404
        assert transport.get("../../../etc/passwd")[0] == 404

    def test_request_counters(self, transport, origin):
        transport.get("manifest.json")
        transport.get("no-such-file")
        requests = origin.obs.metrics.counter("dcsr_origin_requests_total")
        assert requests.value(method="GET", status="200") >= 1
        assert requests.value(method="GET", status="404") >= 1

    def test_concurrent_interleaving_on_one_loop(self, net_loop, origin,
                                                 transport, package_dir):
        paths = ["manifest.json", SEGMENT, "models/model-00.npz"] * 3

        async def fan_out():
            return await asyncio.gather(
                *[transport.request("GET", path) for path in paths])

        results = net_loop.run_until_complete(fan_out())
        for path, (status, headers, body) in zip(paths, results):
            assert status == 200, path
            assert body == (package_dir / path).read_bytes()

    def test_keepalive_serves_two_requests_on_one_connection(
            self, net_loop, origin, package_dir):
        expected = (package_dir / "manifest.json").read_bytes()

        async def two_gets():
            reader, writer = await asyncio.open_connection(
                origin.host, origin.port)
            try:
                bodies = []
                for _ in range(2):
                    writer.write(b"GET /manifest.json HTTP/1.1\r\n"
                                 b"Host: test\r\n\r\n")
                    await writer.drain()
                    head = await reader.readuntil(b"\r\n\r\n")
                    assert b" 200 " in head.split(b"\r\n", 1)[0]
                    length = int(next(
                        line.split(b":")[1]
                        for line in head.lower().split(b"\r\n")
                        if line.startswith(b"content-length:")))
                    bodies.append(await reader.readexactly(length))
                return bodies
            finally:
                writer.close()
                await writer.wait_closed()

        bodies = net_loop.run_until_complete(two_gets())
        assert bodies == [expected, expected]
