"""One contract, two transports.

Every test in :class:`TestTransportContract` runs twice — once against
:class:`SimulatedNetwork`, once against a live :class:`HttpTransport`
talking to a loopback origin (through a chaos proxy when failures are
scheduled) — with byte-identical assertions.  This is the proof that the
sim and the real transport are interchangeable: same duck-typed
``download`` surface, same retry/backoff accounting, same typed errors,
same telemetry counter names.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    DcsrClient,
    NetworkConfig,
    RetryPolicy,
    SimulatedNetwork,
    load_package,
)
from repro.core.network import DownloadError, download_with_retry
from repro.net import (
    ChaosProxy,
    DcsrOrigin,
    HttpTransport,
    mirror_package,
    model_path,
    segment_path,
)
from repro.obs import Observability

pytestmark = pytest.mark.net

#: The complete download counter vocabulary both transports must emit.
DOWNLOAD_COUNTERS = {
    "dcsr_download_attempts_total",
    "dcsr_download_failures_total",
    "dcsr_download_bytes_total",
    "dcsr_download_retries_total",
    "dcsr_backoff_seconds_total",
}


class _SimCase:
    """The simulated transport: failures from a boolean schedule; the
    'payload' is the on-disk artifact by definition (no wire)."""

    name = "sim"

    def __init__(self, package_dir: Path):
        self.package_dir = Path(package_dir)

    def make(self, failures=(), obs=None):
        return SimulatedNetwork(NetworkConfig(), failure_schedule=failures,
                                obs=obs)

    def disk(self, kind, key) -> bytes:
        path = segment_path(key) if kind == "segment" else model_path(key)
        return (self.package_dir / path).read_bytes()

    def payload(self, network, kind, key) -> bytes:
        return self.disk(kind, key)

    def close(self):
        pass


class _HttpCase:
    """The real transport: failures become chaos-proxy connection resets,
    the payload is whatever the socket delivered."""

    name = "http"

    def __init__(self, loop, package_dir: Path):
        self.loop = loop
        self.package_dir = Path(package_dir)
        self.origin = DcsrOrigin(package_dir)
        loop.run_until_complete(self.origin.start())
        self._proxies = []

    def make(self, failures=(), obs=None):
        schedule = ["reset" if fails else "ok" for fails in failures]
        proxy = ChaosProxy(self.origin.host, self.origin.port,
                           schedule=schedule)
        self.loop.run_until_complete(proxy.start())
        self._proxies.append(proxy)
        return HttpTransport(proxy.base_url, obs=obs, loop=self.loop,
                             timeout_s=2.0)

    def disk(self, kind, key) -> bytes:
        path = segment_path(key) if kind == "segment" else model_path(key)
        return (self.package_dir / path).read_bytes()

    def payload(self, network, kind, key) -> bytes:
        return network.last_payload

    def close(self):
        for proxy in self._proxies:
            self.loop.run_until_complete(proxy.stop())
        self.loop.run_until_complete(self.origin.stop())


@pytest.fixture(params=["sim", "http"])
def case(request, net_loop, package_dir):
    built = (_SimCase(package_dir) if request.param == "sim"
             else _HttpCase(net_loop, package_dir))
    yield built
    built.close()


class TestTransportContract:
    def test_success_payload_is_ondisk_bytes(self, case):
        network = case.make()
        disk = case.disk("segment", 0)
        seconds = network.download("segment", 0, len(disk))
        assert seconds >= 0.0
        assert network.clock.now() == pytest.approx(seconds)
        assert network.stats.attempts == 1
        assert network.stats.failures == 0
        assert network.stats.bytes_delivered == len(disk)
        assert case.payload(network, "segment", 0) == disk

    def test_model_payload_matches_checkpoint(self, case, package):
        label = package.manifest.label_sequence()[0]
        network = case.make()
        disk = case.disk("model", label)
        network.download("model", label, len(disk))
        assert case.payload(network, "model", label) == disk

    def test_retry_counts_under_injected_failure(self, case):
        obs = Observability(root_name="contract")
        network = case.make(failures=[True, False], obs=obs)
        disk = case.disk("segment", 1)
        seconds, attempts = download_with_retry(
            network, RetryPolicy(retries=2), "segment", 1, len(disk))
        assert attempts == 2
        assert network.stats.attempts == 2
        assert network.stats.failures == 1
        assert seconds >= 0.0
        registry = obs.metrics
        assert registry.counter("dcsr_download_attempts_total").value(
            kind="segment") == 2
        assert registry.counter("dcsr_download_failures_total").value(
            kind="segment") == 1
        assert registry.counter("dcsr_download_retries_total").value(
            kind="segment") == 1
        assert registry.counter("dcsr_backoff_seconds_total").value(
            kind="segment") > 0
        assert case.payload(network, "segment", 1) == disk

    def test_exhausted_budget_raises_typed_error(self, case):
        network = case.make(failures=[True, True])
        with pytest.raises(DownloadError) as err:
            download_with_retry(network, RetryPolicy(retries=1),
                                "segment", 0, 64)
        assert err.value.attempts == 2
        assert err.value.seconds >= 0.0
        assert network.stats.failures == 2

    def test_failure_is_a_download_error(self, case):
        network = case.make(failures=[True])
        with pytest.raises(DownloadError) as err:
            network.download("segment", 0, 64)
        assert err.value.seconds >= 0.0
        assert network.stats.failures == 1

    def test_counter_vocabulary_is_identical(self, case):
        obs = Observability(root_name="contract")
        network = case.make(failures=[True, False], obs=obs)
        download_with_retry(network, RetryPolicy(retries=1), "segment", 0,
                            len(case.disk("segment", 0)))
        names = {metric.name for metric in obs.metrics.metrics()}
        assert names == DOWNLOAD_COUNTERS


def test_playback_bitwise_equal_across_transports(net_loop, package_dir,
                                                  tmp_path):
    """The acceptance loop: a package mirrored over HTTP and played
    through the real transport produces frames bitwise-equal to the same
    package played through the failure-free simulated network."""
    origin = DcsrOrigin(package_dir)
    net_loop.run_until_complete(origin.start())
    transport = HttpTransport(origin.base_url, loop=net_loop)
    mirrored = load_package(mirror_package(transport, tmp_path / "mirror"))
    http_result = DcsrClient(mirrored, network=transport,
                             retry=RetryPolicy(retries=0)).play()
    net_loop.run_until_complete(origin.stop())

    sim = SimulatedNetwork(NetworkConfig())
    sim_result = DcsrClient(load_package(package_dir), network=sim,
                            retry=RetryPolicy(retries=0)).play()

    assert len(http_result.frames) == len(sim_result.frames)
    assert np.array_equal(np.asarray(http_result.frames),
                          np.asarray(sim_result.frames))
    assert http_result.model_downloads == sim_result.model_downloads
    assert http_result.video_bytes == sim_result.video_bytes
    assert http_result.skipped_segments == sim_result.skipped_segments == []
    assert (http_result.fallback_segments
            == sim_result.fallback_segments == [])
