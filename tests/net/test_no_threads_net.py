"""Static guard: ``repro.net`` is asyncio-only — never ``threading``.

The real transport's loopback test topology (client and origin sharing
one event loop, chaos proxy in between) and the 1:1 mapping between
chaos-proxy connections and download attempts both require a single
thread of control.  Unlike the serve-layer guard (which tolerates
``threading.Lock``), this one bans *any* ``threading`` import: the net
package has no shared mutable state that isn't loop-confined, so a lock
showing up means the design drifted.
"""

import ast
from pathlib import Path

import repro.net

NET_DIR = Path(repro.net.__file__).parent


def _violations(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "threading":
                    out.append(f"{path.name}:{node.lineno} imports "
                               f"{alias.name}")
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module.split(".")[0] == "threading":
                out.append(f"{path.name}:{node.lineno} imports from "
                           f"{node.module}")
            if node.module.split(".")[0] == "concurrent":
                out.append(f"{path.name}:{node.lineno} imports from "
                           f"{node.module}")
    return out


def test_net_package_never_imports_threading():
    sources = sorted(NET_DIR.glob("*.py"))
    assert sources, f"no sources under {NET_DIR}"
    problems = [v for src in sources for v in _violations(src)]
    assert not problems, (
        "repro.net must be asyncio-only (no threading):\n  "
        + "\n  ".join(problems))


def test_net_package_uses_asyncio():
    # The inverse claim: the concurrency primitive actually present is
    # asyncio, in every runtime module of the package.
    for name in ("origin", "transport", "chaos"):
        source = (NET_DIR / f"{name}.py").read_text()
        tree = ast.parse(source)
        imports = {alias.name for node in ast.walk(tree)
                   if isinstance(node, ast.Import)
                   for alias in node.names}
        assert "asyncio" in imports, f"{name}.py does not import asyncio"


def test_guard_catches_threading(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import threading\n")
    assert _violations(bad)
    also_bad = tmp_path / "bad2.py"
    also_bad.write_text("from concurrent.futures import ThreadPoolExecutor\n")
    assert _violations(also_bad)
    fine = tmp_path / "fine.py"
    fine.write_text("import asyncio\n")
    assert not _violations(fine)
