"""Fixtures for the real-socket (``net``) test tier.

Every test drives a fresh asyncio event loop shared by the in-process
origin and the transport under test — one thread, real TCP over
loopback, ephemeral ports only (``port=0``).  The loop fixture asserts
at teardown that nothing leaked: no pending tasks, and the loop closes
cleanly.  A connection handler or chaos-proxy hold that outlives its
test fails the test that created it.
"""

import asyncio

import pytest

from repro.core import save_package


@pytest.fixture(scope="session")
def package_dir(package, tmp_path_factory):
    """The shared session package, saved once in on-disk layout."""
    root = tmp_path_factory.mktemp("net-package")
    save_package(package, root)
    return root


@pytest.fixture()
def net_loop():
    """A fresh event loop with a leaked-task/leaked-socket guard."""
    loop = asyncio.new_event_loop()
    yield loop
    # Let finishing handlers unwind (clients hanging up resolve any
    # parked reads), then judge what is still alive.
    for _ in range(20):
        pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
        if not pending:
            break
        loop.run_until_complete(asyncio.wait(pending, timeout=0.1))
    leaked = [t for t in asyncio.all_tasks(loop) if not t.done()]
    for task in leaked:
        task.cancel()
    if leaked:
        loop.run_until_complete(
            asyncio.gather(*leaked, return_exceptions=True))
    loop.close()
    assert not leaked, f"leaked asyncio tasks: {leaked}"


@pytest.fixture()
def origin(net_loop, package_dir):
    """A live origin on an ephemeral loopback port, stopped at teardown."""
    from repro.net import DcsrOrigin

    served = DcsrOrigin(package_dir)
    net_loop.run_until_complete(served.start())
    yield served
    net_loop.run_until_complete(served.stop())
