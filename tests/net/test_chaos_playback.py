"""End-to-end fault injection: full ``DcsrClient.play()`` sessions over
real TCP through the chaos proxy.

The proxy's per-connection fault schedule maps 1:1 onto the client's
serial download attempts (the transport opens one connection per
request), so these tests steer faults at exact attempts: a reset at the
first download exercises retry/backoff, a truncated model checkpoint
lands the segment in ``fallback_segments``, a stalled segment read hits
the client's timeout and is concealed (``skipped_segments``) — and a
seeded fault mix replays bit-identically."""

import numpy as np
import pytest

from repro.core import DcsrClient, RetryPolicy, load_package
from repro.core.network import DownloadError
from repro.net import (
    ChaosConfig,
    ChaosProxy,
    HttpTransport,
    OriginUnreachable,
    StalledRead,
    TruncatedBody,
)
from repro.obs import Observability

pytestmark = pytest.mark.net


@pytest.fixture()
def net_package(package_dir):
    return load_package(package_dir)


@pytest.fixture()
def chaos(net_loop, origin):
    """Factory for (proxy, transport) pairs in front of the live origin;
    everything built here is torn down through the leak-guarded loop."""
    built = []

    def build(schedule=None, config=None, obs=None, timeout_s=0.25):
        proxy = ChaosProxy(origin.host, origin.port, config=config,
                           schedule=schedule)
        net_loop.run_until_complete(proxy.start())
        built.append(proxy)
        transport = HttpTransport(proxy.base_url, obs=obs, loop=net_loop,
                                  timeout_s=timeout_s)
        return proxy, transport

    yield build
    for proxy in built:
        net_loop.run_until_complete(proxy.stop())


class TestTypedFaults:
    def test_each_fault_maps_to_its_error(self, chaos):
        proxy, transport = chaos(schedule=["truncate", "reset", "stall"])
        for expected in (TruncatedBody, OriginUnreachable, StalledRead):
            with pytest.raises(expected) as err:
                transport.download("segment", 0, 64)
            assert isinstance(err.value, DownloadError)
            assert err.value.seconds >= 0.0
        # Schedule exhausted, rates zero: the next connection is clean.
        assert transport.download("segment", 0, 64) >= 0.0
        assert proxy.faults_injected["ok"] == 1
        assert transport.stats.failures == 3

    def test_stall_burns_the_read_timeout(self, chaos):
        proxy, transport = chaos(schedule=["stall"], timeout_s=0.2)
        with pytest.raises(StalledRead) as err:
            transport.download("segment", 0, 64)
        assert err.value.seconds >= 0.2       # waited the full budget
        assert err.value.seconds < 5.0        # but not the proxy's hold


class TestPlaybackPaths:
    def test_reset_retries_then_plays_fully(self, chaos, net_package):
        obs = Observability(root_name="chaos")
        proxy, transport = chaos(schedule=["reset"], obs=obs)
        result = DcsrClient(net_package, network=transport,
                            retry=RetryPolicy(retries=2), obs=obs).play()
        assert result.skipped_segments == []
        assert result.fallback_segments == []
        assert proxy.faults_injected["reset"] == 1
        assert transport.stats.failures == 1
        registry = obs.metrics
        assert registry.counter("dcsr_download_retries_total").value(
            kind="model") == 1
        assert registry.counter("dcsr_backoff_seconds_total").value(
            kind="model") > 0

    def test_truncated_model_lands_in_fallback(self, chaos, net_package):
        # Connection 0 is the first model checkpoint (the client fetches
        # the model before its first segment); with no retry budget and
        # fallback on, its segment plays unenhanced.
        proxy, transport = chaos(schedule=["truncate"])
        result = DcsrClient(net_package, network=transport,
                            retry=RetryPolicy(retries=0),
                            fallback=True).play()
        assert 0 in result.fallback_segments
        assert result.skipped_segments == []
        assert len(result.frames) == sum(
            seg.n_frames for seg in net_package.encoded.segments)
        assert proxy.faults_injected["truncate"] == 1

    def test_stalled_segment_is_concealed(self, chaos, net_package):
        # Connection 0 = model, connection 1 = segment 0: the stalled
        # segment read times out and the client conceals it.
        proxy, transport = chaos(schedule=["ok", "stall"])
        result = DcsrClient(net_package, network=transport,
                            retry=RetryPolicy(retries=0)).play()
        assert result.skipped_segments == [0]
        assert result.fallback_segments == []
        assert len(result.frames) == sum(
            seg.n_frames for seg in net_package.encoded.segments)
        assert proxy.faults_injected["stall"] == 1


class TestDeterminism:
    def _run(self, chaos, net_package):
        proxy, transport = chaos(
            config=ChaosConfig(reset_rate=0.25, truncate_rate=0.2,
                               stall_rate=0.1, seed=11),
            timeout_s=0.2)
        result = DcsrClient(net_package, network=transport,
                            retry=RetryPolicy(retries=1),
                            fallback=True).play()
        return proxy, result

    def test_seeded_fault_mix_replays_identically(self, chaos, net_package):
        proxy_a, first = self._run(chaos, net_package)
        proxy_b, second = self._run(chaos, net_package)
        assert proxy_a.faults_injected == proxy_b.faults_injected
        assert proxy_a.connections == proxy_b.connections
        assert first.skipped_segments == second.skipped_segments
        assert first.fallback_segments == second.fallback_segments
        assert np.array_equal(np.asarray(first.frames),
                              np.asarray(second.frames))
        # The mix actually exercised a degraded path (else this test
        # proves nothing) — with seed 11 some fault fires early.
        assert sum(proxy_a.faults_injected[f]
                   for f in ("reset", "truncate", "stall")) > 0
