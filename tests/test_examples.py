"""Smoke tests for the runnable examples.

The fast, training-free examples run end to end in-process; the training
examples are only checked for importability and a valid ``main`` (their
full runs are exercised manually / in the benchmarks, which cover the same
code paths with shared fixtures).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestFastExamples:
    def test_device_planning_runs(self, capsys):
        module = _load("device_planning")
        module.main()
        out = capsys.readouterr().out
        assert "Jetson" in out
        assert "OOM" in out          # the 4K big-model case
        assert "real-time" in out

    def test_codec_playground_runs(self, capsys):
        module = _load("codec_playground")
        module.main()
        out = capsys.readouterr().out
        assert "CRF" in out
        assert "per-frame-type coding cost" in out
        assert "I-frame hook demo" in out


class TestTrainingExamplesImportable:
    @pytest.mark.parametrize("name", [
        "quickstart", "streaming_session", "abr_streaming",
        "baseline_comparison",
    ])
    def test_has_main(self, name):
        module = _load(name)
        assert callable(module.main)


def test_all_examples_accounted_for():
    """Every example on disk is either smoke-run or import-checked here."""
    on_disk = {p.stem for p in EXAMPLES.glob("*.py")}
    covered = {"device_planning", "codec_playground", "quickstart",
               "streaming_session", "abr_streaming", "baseline_comparison"}
    assert on_disk == covered
