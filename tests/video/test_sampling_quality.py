"""Tests for resampling and quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video import downscale, mse, psnr, resize, ssim, upscale
from repro.video.sampling import cubic_kernel, resize_multi


class TestCubicKernel:
    def test_value_at_zero(self):
        assert np.isclose(cubic_kernel(np.array([0.0]))[0], 1.0)

    def test_zero_at_integers(self):
        vals = cubic_kernel(np.array([1.0, 2.0, -1.0]))
        np.testing.assert_allclose(vals, 0.0, atol=1e-12)

    def test_support(self):
        assert cubic_kernel(np.array([2.5]))[0] == 0.0

    def test_symmetric(self):
        x = np.linspace(0, 2, 20)
        np.testing.assert_allclose(cubic_kernel(x), cubic_kernel(-x))


class TestResize:
    def test_identity(self):
        img = np.random.default_rng(0).uniform(size=(8, 10)).astype(np.float32)
        np.testing.assert_allclose(resize(img, (8, 10)), img, atol=1e-5)

    def test_constant_preserved(self):
        img = np.full((8, 8), 0.5, dtype=np.float32)
        out = resize(img, (16, 16))
        np.testing.assert_allclose(out, 0.5, atol=1e-5)

    def test_constant_preserved_downscale(self):
        img = np.full((16, 16), 0.25, dtype=np.float32)
        np.testing.assert_allclose(resize(img, (4, 4)), 0.25, atol=1e-5)

    def test_multichannel(self):
        img = np.random.default_rng(1).uniform(size=(8, 8, 3)).astype(np.float32)
        out = resize(img, (16, 12))
        assert out.shape == (16, 12, 3)

    def test_clip_bounds(self):
        img = np.zeros((8, 8), dtype=np.float32)
        img[4, 4] = 1.0
        out = resize(img, (16, 16))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_no_clip_option(self):
        img = np.zeros((8, 8), dtype=np.float32)
        img[4, 4] = 1.0
        out = resize(img, (16, 16), clip=None)
        assert out.min() < 0.0  # bicubic overshoot visible

    def test_linear_method(self):
        img = np.linspace(0, 1, 64, dtype=np.float32).reshape(8, 8)
        out = resize(img, (4, 4), method="linear")
        assert out.shape == (4, 4)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            resize(np.zeros((4, 4), np.float32), (2, 2), method="nearest5")

    def test_wrong_rank(self):
        with pytest.raises(ValueError):
            resize(np.zeros(4, np.float32), (2, 2))

    def test_gradient_preserved_on_upscale(self):
        """A linear ramp stays (approximately) linear under bicubic."""
        ramp = np.tile(np.linspace(0.1, 0.9, 16, dtype=np.float32), (8, 1))
        up = resize(ramp, (8, 32))
        row = up[4]
        diffs = np.diff(row[4:-4])
        assert np.all(diffs > 0)

    def test_downscale_upscale_recovers_smooth(self):
        yy, xx = np.mgrid[0:32, 0:32] / 31.0
        smooth = (0.5 + 0.3 * np.sin(2 * np.pi * yy) * np.cos(np.pi * xx)).astype(np.float32)
        rec = upscale(downscale(smooth, 2), 2)
        assert psnr(smooth, rec) > 30.0

    def test_downscale_indivisible_raises(self):
        with pytest.raises(ValueError):
            downscale(np.zeros((9, 8), np.float32), 2)

    def test_resize_multi(self):
        frames = np.zeros((3, 8, 8, 3), dtype=np.float32)
        out = resize_multi(frames, (4, 4))
        assert out.shape == (3, 4, 4, 3)


class TestPsnr:
    def test_identical_is_inf(self):
        a = np.random.default_rng(2).uniform(size=(8, 8))
        assert psnr(a, a) == float("inf")

    def test_known_value(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 0.1)
        assert np.isclose(psnr(a, b), 20.0)

    def test_data_range(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 25.5)
        assert np.isclose(psnr(a, b, data_range=255.0), 20.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros(3), np.zeros(4))

    @given(st.floats(0.01, 0.5))
    @settings(max_examples=20, deadline=None)
    def test_property_monotone_in_noise(self, amp):
        rng = np.random.default_rng(3)
        a = rng.uniform(0.3, 0.7, size=(16, 16))
        noise = rng.normal(0, 1, size=(16, 16))
        low = psnr(a, np.clip(a + amp * 0.5 * noise, 0, 1))
        high = psnr(a, np.clip(a + amp * noise, 0, 1))
        assert low >= high - 1e-9


class TestSsim:
    def test_identical_is_one(self):
        a = np.random.default_rng(4).uniform(size=(32, 32))
        assert np.isclose(ssim(a, a), 1.0)

    def test_range(self):
        rng = np.random.default_rng(5)
        a = rng.uniform(size=(32, 32))
        b = rng.uniform(size=(32, 32))
        val = ssim(a, b)
        assert -1.0 <= val <= 1.0

    def test_noise_lowers_ssim(self):
        rng = np.random.default_rng(6)
        a = rng.uniform(0.3, 0.7, size=(32, 32))
        b = np.clip(a + rng.normal(0, 0.2, size=(32, 32)), 0, 1)
        assert ssim(a, b) < 0.95

    def test_symmetric(self):
        rng = np.random.default_rng(7)
        a = rng.uniform(size=(32, 32))
        b = np.clip(a + rng.normal(0, 0.05, size=(32, 32)), 0, 1)
        assert np.isclose(ssim(a, b), ssim(b, a), atol=1e-10)

    def test_multichannel_averages(self):
        rng = np.random.default_rng(8)
        a = rng.uniform(size=(16, 16, 3))
        per_channel = np.mean([ssim(a[..., c], a[..., c]) for c in range(3)])
        assert np.isclose(ssim(a, a), per_channel)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((4, 5)))

    def test_blur_vs_noise_ordering(self):
        """SSIM penalises structural loss: strong noise scores below mild blur."""
        from scipy.ndimage import gaussian_filter
        rng = np.random.default_rng(9)
        yy, xx = np.mgrid[0:64, 0:64] / 63.0
        img = 0.5 + 0.25 * np.sin(8 * np.pi * xx) * np.sin(6 * np.pi * yy)
        blurred = gaussian_filter(img, 0.6)
        noisy = np.clip(img + rng.normal(0, 0.25, img.shape), 0, 1)
        assert ssim(img, blurred) > ssim(img, noisy)


class TestMse:
    def test_zero(self):
        assert mse(np.ones(4), np.ones(4)) == 0.0

    def test_value(self):
        assert np.isclose(mse(np.zeros(2), np.array([1.0, 1.0])), 1.0)


class TestMsSsim:
    def test_identical_is_one(self):
        from repro.video import ms_ssim
        a = np.random.default_rng(10).uniform(size=(64, 64))
        assert np.isclose(ms_ssim(a, a), 1.0)

    def test_noise_lowers_score(self):
        from repro.video import ms_ssim
        from scipy.ndimage import gaussian_filter
        rng = np.random.default_rng(11)
        a = gaussian_filter(rng.uniform(size=(64, 64)), 2)
        b = np.clip(a + rng.normal(0, 0.1, a.shape), 0, 1)
        assert ms_ssim(a, b) < 0.95

    def test_monotone_in_noise(self):
        from repro.video import ms_ssim
        from scipy.ndimage import gaussian_filter
        rng = np.random.default_rng(12)
        a = gaussian_filter(rng.uniform(size=(64, 64)), 2)
        n = rng.normal(0, 1, a.shape)
        mild = ms_ssim(a, np.clip(a + 0.03 * n, 0, 1))
        harsh = ms_ssim(a, np.clip(a + 0.15 * n, 0, 1))
        assert mild > harsh

    def test_small_images_adapt_scales(self):
        from repro.video import ms_ssim
        a = np.random.default_rng(13).uniform(size=(16, 16))
        value = ms_ssim(a, a)  # must not crash on tiny input
        assert np.isclose(value, 1.0)

    def test_multichannel(self):
        from repro.video import ms_ssim
        a = np.random.default_rng(14).uniform(size=(64, 64, 3))
        assert np.isclose(ms_ssim(a, a), 1.0)

    def test_shape_mismatch(self):
        from repro.video import ms_ssim
        with pytest.raises(ValueError):
            ms_ssim(np.zeros((32, 32)), np.zeros((32, 33)))

    def test_bad_scale_count(self):
        from repro.video import ms_ssim
        with pytest.raises(ValueError):
            ms_ssim(np.zeros((32, 32)), np.zeros((32, 32)), n_scales=0)

    def test_blur_vs_noise_ordering(self):
        """Like SSIM, MS-SSIM prefers mild blur over strong noise."""
        from repro.video import ms_ssim
        from scipy.ndimage import gaussian_filter
        rng = np.random.default_rng(15)
        yy, xx = np.mgrid[0:64, 0:64] / 63.0
        img = 0.5 + 0.25 * np.sin(8 * np.pi * xx) * np.sin(6 * np.pi * yy)
        blurred = gaussian_filter(img, 0.6)
        noisy = np.clip(img + rng.normal(0, 0.25, img.shape), 0, 1)
        assert ms_ssim(img, blurred) > ms_ssim(img, noisy)
