"""Tests for frame containers and color conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.video import (
    YuvFrame,
    downsample_chroma,
    rgb_float_to_uint8,
    rgb_to_yuv420,
    rgb_uint8_to_float,
    upsample_chroma,
    validate_rgb,
    yuv420_to_rgb,
)


class TestYuvFrame:
    def test_valid_construction(self):
        f = YuvFrame(np.zeros((4, 6)), np.zeros((2, 3)), np.zeros((2, 3)))
        assert f.height == 4 and f.width == 6
        assert f.size == (4, 6)

    def test_odd_luma_raises(self):
        with pytest.raises(ValueError):
            YuvFrame(np.zeros((5, 6)), np.zeros((2, 3)), np.zeros((2, 3)))

    def test_wrong_chroma_raises(self):
        with pytest.raises(ValueError):
            YuvFrame(np.zeros((4, 6)), np.zeros((2, 2)), np.zeros((2, 3)))

    def test_copy_is_deep(self):
        f = YuvFrame(np.zeros((2, 2)), np.zeros((1, 1)), np.zeros((1, 1)))
        g = f.copy()
        g.y[0, 0] = 255
        assert f.y[0, 0] == 0

    def test_equality(self):
        f = YuvFrame(np.zeros((2, 2)), np.zeros((1, 1)), np.zeros((1, 1)))
        assert f == f.copy()
        g = f.copy()
        g.y[0, 0] = 1
        assert f != g

    def test_nbytes(self):
        f = YuvFrame(np.zeros((4, 4)), np.zeros((2, 2)), np.zeros((2, 2)))
        assert f.nbytes() == 16 + 4 + 4

    def test_dtype_coerced(self):
        f = YuvFrame(np.zeros((2, 2), np.float64), np.zeros((1, 1)), np.zeros((1, 1)))
        assert f.y.dtype == np.uint8


class TestValidateRgb:
    def test_accepts_valid(self):
        rgb = np.random.default_rng(0).uniform(size=(4, 4, 3)).astype(np.float32)
        out = validate_rgb(rgb)
        assert out.dtype == np.float32

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            validate_rgb(np.zeros((4, 4)))

    def test_rejects_wrong_channels(self):
        with pytest.raises(ValueError):
            validate_rgb(np.zeros((4, 4, 4)))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_rgb(np.full((2, 2, 3), 2.0))

    def test_clips_epsilon_overshoot(self):
        out = validate_rgb(np.full((2, 2, 3), 1.0005))
        assert out.max() <= 1.0


class TestUint8Conversion:
    def test_roundtrip(self):
        rgb = np.random.default_rng(1).uniform(size=(4, 4, 3)).astype(np.float32)
        back = rgb_uint8_to_float(rgb_float_to_uint8(rgb))
        np.testing.assert_allclose(back, rgb, atol=1.0 / 255.0)

    def test_uint8_to_float_rejects_float(self):
        with pytest.raises(ValueError):
            rgb_uint8_to_float(np.zeros((2, 2, 3), np.float32))


class TestChroma:
    def test_downsample_constant(self):
        plane = np.full((4, 4), 7.0)
        np.testing.assert_allclose(downsample_chroma(plane), 7.0)

    def test_downsample_averages(self):
        plane = np.array([[0, 4], [8, 12]], dtype=np.float32)
        np.testing.assert_allclose(downsample_chroma(plane), [[6.0]])

    def test_downsample_odd_raises(self):
        with pytest.raises(ValueError):
            downsample_chroma(np.zeros((3, 4)))

    def test_upsample_shape(self):
        assert upsample_chroma(np.zeros((2, 3))).shape == (4, 6)

    def test_up_down_roundtrip(self):
        plane = np.random.default_rng(2).uniform(0, 255, size=(4, 5))
        np.testing.assert_allclose(downsample_chroma(upsample_chroma(plane)), plane)


class TestYuvRgbConversion:
    def test_gray_maps_to_neutral_chroma(self):
        rgb = np.full((4, 4, 3), 0.5, dtype=np.float32)
        yuv = rgb_to_yuv420(rgb)
        assert np.all(np.abs(yuv.u.astype(int) - 128) <= 1)
        assert np.all(np.abs(yuv.v.astype(int) - 128) <= 1)
        assert np.all(np.abs(yuv.y.astype(int) - 128) <= 1)

    def test_black_and_white(self):
        black = rgb_to_yuv420(np.zeros((2, 2, 3), dtype=np.float32))
        white = rgb_to_yuv420(np.ones((2, 2, 3), dtype=np.float32))
        assert np.all(black.y == 0)
        assert np.all(white.y == 255)

    def test_roundtrip_smooth_image(self):
        """Conversion round-trip error is small on chroma-smooth content."""
        rng = np.random.default_rng(3)
        base = rng.uniform(0.2, 0.8, size=(1, 1, 3)).astype(np.float32)
        grad = np.linspace(0, 0.2, 16, dtype=np.float32)[:, None, None]
        rgb = np.clip(base + grad + np.zeros((16, 16, 3), np.float32), 0, 1)
        back = yuv420_to_rgb(rgb_to_yuv420(rgb))
        assert np.max(np.abs(back - rgb)) < 0.03

    def test_luma_independent_of_chroma_subsampling(self):
        """Y plane carries full resolution: a luma-only pattern survives."""
        rgb = np.zeros((8, 8, 3), dtype=np.float32)
        rgb[::2] = 1.0  # horizontal stripes, gray-scale
        yuv = rgb_to_yuv420(rgb)
        assert np.all(yuv.y[0] == 255) and np.all(yuv.y[1] == 0)
        back = yuv420_to_rgb(yuv)
        assert abs(float(back[0].mean()) - 1.0) < 0.02
        assert float(back[1].mean()) < 0.02

    @given(hnp.arrays(np.float32, (4, 4, 3),
                      elements=st.floats(0, 1, width=32)))
    @settings(max_examples=25, deadline=None)
    def test_property_output_in_range(self, rgb):
        back = yuv420_to_rgb(rgb_to_yuv420(rgb))
        assert back.min() >= 0.0 and back.max() <= 1.0

    def test_primary_colors_recoverable(self):
        """Solid primaries survive the 4:2:0 round trip."""
        for color in ([1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 0]):
            rgb = np.tile(np.array(color, np.float32), (8, 8, 1))
            back = yuv420_to_rgb(rgb_to_yuv420(rgb))
            assert np.max(np.abs(back - rgb)) < 0.02, color
