"""Tests for the synthetic video generator and segmentation."""

import numpy as np
import pytest

from repro.video import (
    GENRES,
    detect_segments,
    fixed_length_segments,
    frame_difference,
    make_video,
    segment_lengths,
)
from repro.video.segment import Segment
from repro.video.synthetic import make_scene, render_frame, scene_schedule


class TestSceneRendering:
    def test_deterministic(self):
        a = render_frame(make_scene(0, 42, "sports"), 3, 32, 48)
        b = render_frame(make_scene(0, 42, "sports"), 3, 32, 48)
        np.testing.assert_array_equal(a, b)

    def test_different_scenes_differ(self):
        a = render_frame(make_scene(0, 42, "sports"), 0, 32, 48)
        b = render_frame(make_scene(1, 42, "sports"), 0, 32, 48)
        assert np.mean(np.abs(a - b)) > 0.02

    def test_output_range_and_shape(self):
        frame = render_frame(make_scene(2, 1, "news"), 5, 32, 48)
        assert frame.shape == (32, 48, 3)
        assert frame.min() >= 0.0 and frame.max() <= 1.0
        assert frame.dtype == np.float32

    def test_motion_between_frames(self):
        spec = make_scene(0, 3, "sports")
        a = render_frame(spec, 0, 32, 48)
        b = render_frame(spec, 5, 32, 48)
        assert np.mean(np.abs(a - b)) > 1e-4

    def test_news_less_motion_than_sports(self):
        def motion(genre):
            spec = make_scene(0, 11, genre)
            a = render_frame(spec, 0, 48, 64)
            b = render_frame(spec, 10, 48, 64)
            return float(np.mean(np.abs(a - b)))
        assert motion("news") < motion("sports")


class TestScheduleAndVideo:
    def test_schedule_covers_exactly(self):
        sched = scene_schedule(300, 30.0, "music", seed=5, n_distinct_scenes=4)
        assert sum(n for _, n in sched) == 300

    def test_schedule_no_adjacent_repeats(self):
        sched = scene_schedule(600, 30.0, "music", seed=5, n_distinct_scenes=3)
        for (a, _), (b, _) in zip(sched[:-1], sched[1:]):
            assert a != b

    def test_schedule_has_recurrence(self):
        sched = scene_schedule(2000, 30.0, "music", seed=5,
                               n_distinct_scenes=3, recurrence=0.5)
        ids = [s for s, _ in sched]
        assert len(ids) > len(set(ids))  # some scene appears twice

    def test_schedule_bad_args(self):
        with pytest.raises(ValueError):
            scene_schedule(10, 30.0, "music", 0, n_distinct_scenes=0)

    def test_make_video_shapes(self):
        clip = make_video("v", "news", seed=1, size=(32, 48),
                          duration_seconds=2.0, fps=10)
        assert clip.frames.shape == (20, 32, 48, 3)
        assert clip.scene_ids.shape == (20,)
        assert clip.n_frames == 20
        assert clip.height == 32 and clip.width == 48
        assert np.isclose(clip.duration_seconds, 2.0)

    def test_make_video_deterministic(self):
        a = make_video("v", "gaming", seed=9, size=(32, 48), duration_seconds=1.0, fps=10)
        b = make_video("v", "gaming", seed=9, size=(32, 48), duration_seconds=1.0, fps=10)
        np.testing.assert_array_equal(a.frames, b.frames)

    def test_make_video_seed_changes_content(self):
        a = make_video("v", "gaming", seed=1, size=(32, 48), duration_seconds=1.0, fps=10)
        b = make_video("v", "gaming", seed=2, size=(32, 48), duration_seconds=1.0, fps=10)
        assert np.mean(np.abs(a.frames - b.frames)) > 0.01

    def test_unknown_genre(self):
        with pytest.raises(ValueError):
            make_video("v", "nope", seed=1)

    def test_unaligned_size(self):
        with pytest.raises(ValueError):
            make_video("v", "news", seed=1, size=(30, 48))

    def test_all_genres_render(self):
        for genre in GENRES:
            clip = make_video("v", genre, seed=3, size=(32, 48),
                              duration_seconds=0.5, fps=10)
            assert clip.n_frames == 5

    def test_scene_changes_listed(self):
        clip = make_video("v", "music", seed=7, size=(32, 48),
                          duration_seconds=20.0, fps=10, n_distinct_scenes=4)
        changes = clip.scene_changes()
        assert changes  # a 20 s music video has several shots
        for c in changes:
            assert clip.scene_ids[c] != clip.scene_ids[c - 1]


class TestFrameDifference:
    def test_identical_frames_zero(self):
        frames = np.zeros((3, 8, 8, 3), dtype=np.float32)
        np.testing.assert_allclose(frame_difference(frames), 0.0)

    def test_single_frame(self):
        assert frame_difference(np.zeros((1, 8, 8, 3), np.float32)).size == 0

    def test_cut_has_large_difference(self):
        clip = make_video("v", "music", seed=7, size=(32, 48),
                          duration_seconds=10.0, fps=10, n_distinct_scenes=3)
        diffs = frame_difference(clip.frames)
        changes = clip.scene_changes()
        if changes:
            cut_diffs = diffs[[c - 1 for c in changes]]
            within = np.delete(diffs, [c - 1 for c in changes])
            assert cut_diffs.min() > within.mean()

    def test_wrong_shape(self):
        with pytest.raises(ValueError):
            frame_difference(np.zeros((3, 8, 8), np.float32))


class TestDetectSegments:
    def _clip(self):
        return make_video("v", "music", seed=7, size=(32, 48),
                          duration_seconds=15.0, fps=10, n_distinct_scenes=4)

    def test_segments_tile_video(self):
        clip = self._clip()
        segs = detect_segments(clip.frames)
        assert segs[0].start == 0
        assert segs[-1].end == clip.n_frames
        for a, b in zip(segs[:-1], segs[1:]):
            assert a.end == b.start

    def test_matches_ground_truth_cuts(self):
        clip = self._clip()
        segs = detect_segments(clip.frames)
        detected = {s.start for s in segs} - {0}
        truth = set(clip.scene_changes())
        # Detection should recover at least 80% of real cuts on synthetic content.
        assert len(detected & truth) >= 0.8 * len(truth)

    def test_min_length_respected(self):
        clip = self._clip()
        segs = detect_segments(clip.frames, min_length=5)
        assert all(s.n_frames >= 5 for s in segs[:-1])

    def test_max_length_respected(self):
        clip = self._clip()
        segs = detect_segments(clip.frames, max_length=10)
        assert all(s.n_frames <= 10 for s in segs)

    def test_high_threshold_one_segment(self):
        clip = self._clip()
        segs = detect_segments(clip.frames, threshold=10.0)
        assert len(segs) == 1
        assert segs[0].n_frames == clip.n_frames

    def test_segment_indices_sequential(self):
        segs = detect_segments(self._clip().frames)
        assert [s.index for s in segs] == list(range(len(segs)))


class TestFixedLength:
    def test_exact_division(self):
        segs = fixed_length_segments(20, 5)
        assert len(segs) == 4
        assert all(s.n_frames == 5 for s in segs)

    def test_remainder(self):
        segs = fixed_length_segments(22, 5)
        assert segs[-1].n_frames == 2

    def test_bad_args(self):
        with pytest.raises(ValueError):
            fixed_length_segments(10, 0)
        with pytest.raises(ValueError):
            fixed_length_segments(0, 5)

    def test_segment_lengths_helper(self):
        segs = fixed_length_segments(10, 4)
        np.testing.assert_array_equal(segment_lengths(segs), [4, 4, 2])


class TestSegmentDataclass:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Segment(index=0, start=5, end=5)

    def test_i_frame_is_start(self):
        assert Segment(index=0, start=3, end=9).i_frame == 3
