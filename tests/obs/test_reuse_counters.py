"""Reuse counters survive export: Prometheus text carries
``dcsr_sr_reused_tiles_total`` with the engine's exact count, and the
exported tile counters obey the three-way accounting invariant
(executed + skipped + reused == frames x grid) — so a dashboard reading
the scrape sees the same partition the engine computed.
"""

import numpy as np

from repro.obs import Observability, prometheus_text
from repro.sr import EDSR, EdsrConfig, InferenceEngine, SkipGateConfig


def _scrape_value(text: str, name: str) -> float:
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            return float(line.split()[-1])
    raise AssertionError(f"{name} not in scrape:\n{text}")


def _run_engine(obs):
    """Two passes over a half-flat frame: gate skips, reuse hits, and
    real execution all occur, so every counter is nonzero."""
    model = EDSR(EdsrConfig(n_resblocks=2, n_filters=8), seed=21)
    frame = np.zeros((48, 64, 3), dtype=np.float32)
    frame[:16, :32] = np.random.default_rng(22).random((16, 32, 3))
    engine = InferenceEngine(model, tile=16, reuse=True,
                             skip_gate=SkipGateConfig(1e-4), obs=obs)
    engine.enhance(frame)
    engine.enhance(frame)
    return engine


class TestReuseCounterExport:
    def test_prometheus_scrape_carries_the_reused_counter(self):
        obs = Observability(root_name="test")
        _run_engine(obs)
        text = prometheus_text(obs.metrics)
        assert "# TYPE dcsr_sr_reused_tiles_total counter" in text
        assert _scrape_value(text, "dcsr_sr_reused_tiles_total") == 12.0

    def test_exported_partition_matches_engine_accounting(self):
        obs = Observability(root_name="test")
        _run_engine(obs)
        text = prometheus_text(obs.metrics)
        executed = _scrape_value(text, "dcsr_sr_tiles_total")
        skipped = _scrape_value(text, "dcsr_sr_skipped_tiles_total")
        reused = _scrape_value(text, "dcsr_sr_reused_tiles_total")
        frames = _scrape_value(text, "dcsr_sr_frames_total")
        # 3x4 grid at tile=16 on 48x64, two frames.
        assert frames == 2.0
        assert executed + skipped + reused == frames * 12

    def test_counter_values_round_trip_through_registry(self):
        obs = Observability(root_name="test")
        engine = _run_engine(obs)
        reused = obs.metrics.counter("dcsr_sr_reused_tiles_total").value()
        executed = obs.metrics.counter("dcsr_sr_tiles_total").value()
        skipped = obs.metrics.counter("dcsr_sr_skipped_tiles_total").value()
        assert reused == 12.0
        assert executed + skipped + reused == 24.0
        # The per-call stats partition the same way.
        s = engine.stats
        assert s.tile_count + s.skipped_tiles + s.reused_tiles == 12
