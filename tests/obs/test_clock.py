"""Tests for the injectable clock layer."""

import threading

import pytest

from repro.obs import Clock, MonotonicClock, SimulatedClock, wall_clock


class TestClockBase:
    def test_base_now_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Clock().now()

    def test_labels(self):
        assert MonotonicClock().label == "wall"
        assert SimulatedClock().label == "simulated"


class TestMonotonicClock:
    def test_is_monotonic(self):
        clock = MonotonicClock()
        readings = [clock.now() for _ in range(100)]
        assert readings == sorted(readings)

    def test_wall_clock_is_a_process_singleton(self):
        assert wall_clock() is wall_clock()
        assert isinstance(wall_clock(), MonotonicClock)


class TestSimulatedClock:
    def test_starts_at_zero_and_never_moves_on_its_own(self):
        clock = SimulatedClock()
        assert clock.now() == 0.0
        assert clock.now() == 0.0

    def test_advance_returns_new_now(self):
        clock = SimulatedClock(start=1.0)
        assert clock.advance(0.5) == 1.5
        assert clock.now() == 1.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError, match="advance"):
            SimulatedClock().advance(-0.1)

    def test_zero_advance_is_allowed(self):
        clock = SimulatedClock()
        assert clock.advance(0.0) == 0.0

    def test_concurrent_advances_all_land(self):
        clock = SimulatedClock()

        def worker():
            for _ in range(1000):
                clock.advance(0.001)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert clock.now() == pytest.approx(4.0)
