"""Tests for the span tree / tracer layer."""

import threading

from repro.obs import SimulatedClock, Span, Tracer


def make_tracer(start=0.0):
    clock = SimulatedClock(start=start)
    return Tracer(clock, root_name="test"), clock


class TestSpan:
    def test_elapsed_is_zero_while_open(self):
        span = Span(name="open")
        assert span.duration_s is None
        assert span.elapsed == 0.0

    def test_walk_and_find(self):
        root = Span(name="root", children=[
            Span(name="a", children=[Span(name="leaf")]),
            Span(name="leaf"),
        ])
        assert [s.name for s in root.walk()] == ["root", "a", "leaf", "leaf"]
        assert len(root.find("leaf")) == 2
        assert root.find("missing") == []


class TestSpanContextManager:
    def test_nesting_follows_lexical_structure(self):
        tracer, clock = make_tracer()
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(0.25)
        assert tracer.root.children == [outer]
        assert outer.children == [inner]
        assert outer.elapsed == 1.25
        assert inner.elapsed == 0.25

    def test_attrs_are_stored(self):
        tracer, _clock = make_tracer()
        with tracer.span("decode", stage="decode", segment=3) as span:
            pass
        assert span.attrs == {"stage": "decode", "segment": 3}

    def test_current_reflects_the_open_block(self):
        tracer, _clock = make_tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_span_closes_on_exception(self):
        tracer, clock = make_tracer()
        try:
            with tracer.span("failing") as span:
                clock.advance(0.5)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert span.elapsed == 0.5
        assert tracer.current() is None


class TestBeginEnd:
    def test_begin_does_not_enter_thread_stack(self):
        """The playback session span shape: open across yields, children
        attach via an explicit parent."""
        tracer, clock = make_tracer()
        session = tracer.begin("play")
        assert tracer.current() is None          # not on the stack
        with tracer.span("decode", parent=session):
            clock.advance(1.0)
        tracer.end(session)
        assert tracer.root.children == [session]
        assert [c.name for c in session.children] == ["decode"]
        assert session.elapsed == 1.0

    def test_end_is_idempotent(self):
        tracer, clock = make_tracer()
        span = tracer.begin("once")
        clock.advance(1.0)
        tracer.end(span)
        clock.advance(5.0)
        tracer.end(span)
        assert span.elapsed == 1.0


class TestRecord:
    def test_wall_record_carries_no_clock_attr(self):
        from repro.obs import MonotonicClock
        tracer = Tracer(MonotonicClock(), root_name="test")
        span = tracer.record("step", 0.5)
        assert span.elapsed == 0.5
        assert "clock" not in span.attrs

    def test_simulated_record_is_tagged(self):
        tracer, _clock = make_tracer()
        sim = SimulatedClock()
        sim.advance(3.0)
        span = tracer.record("download", 2.0, clock=sim, kind="segment")
        assert span.attrs["clock"] == "simulated"
        assert span.attrs["kind"] == "segment"
        assert span.start_s == 1.0               # now - seconds
        assert span.elapsed == 2.0

    def test_record_nests_under_the_open_span(self):
        tracer, _clock = make_tracer()
        with tracer.span("decode") as decode:
            tracer.record("color", 0.1)
        assert [c.name for c in decode.children] == ["color"]


class TestThreads:
    def test_worker_thread_spans_attach_via_explicit_parent(self):
        tracer, clock = make_tracer()
        session = tracer.begin("play")

        def worker():
            with tracer.span("decode", parent=session, stage="decode"):
                clock.advance(1.0)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tracer.end(session)
        assert len(session.find("decode")) == 4

    def test_thread_stacks_are_independent(self):
        """A worker's span must not nest under another thread's open span."""
        tracer, _clock = make_tracer()
        done = threading.Event()

        def worker():
            with tracer.span("worker-span"):
                pass
            done.set()

        with tracer.span("main-span") as main_span:
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert done.is_set()
        assert main_span.children == []
        assert [c.name for c in tracer.root.children] == \
            ["main-span", "worker-span"]
