"""Tests for the counter / gauge / histogram registry."""

import threading

import pytest

from repro.obs import DEFAULT_BUCKETS, Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_accumulates_per_label_set(self):
        counter = MetricsRegistry().counter("dcsr_x_total")
        counter.inc(2, kind="segment")
        counter.inc(kind="segment")
        counter.inc(5, kind="model")
        assert counter.value(kind="segment") == 3.0
        assert counter.value(kind="model") == 5.0
        assert counter.value(kind="missing") == 0.0

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("dcsr_x_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_label_order_does_not_split_series(self):
        counter = MetricsRegistry().counter("dcsr_x_total")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(a="1", b="2") == 2.0

    def test_invalid_label_name_rejected(self):
        counter = MetricsRegistry().counter("dcsr_x_total")
        with pytest.raises(ValueError, match="label"):
            counter.inc(**{"bad-name": 1})


class TestGauge:
    def test_set_is_last_write_wins(self):
        gauge = MetricsRegistry().gauge("dcsr_fps")
        gauge.set(10.0)
        gauge.set(31.5)
        assert gauge.value() == 31.5

    def test_inc_accumulates(self):
        gauge = MetricsRegistry().gauge("dcsr_depth")
        gauge.inc()
        gauge.inc(2)
        assert gauge.value() == 3.0


class TestHistogram:
    def test_buckets_are_cumulative(self):
        hist = MetricsRegistry().histogram("dcsr_s", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 2.0):
            hist.observe(value)
        series = hist.series()[()]
        assert series[:3] == [1, 3, 3]           # <=0.01, <=0.1, <=1.0
        assert hist.count() == 4
        assert hist.sum() == pytest.approx(2.105)

    def test_default_buckets_ascend(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="ascending"):
            MetricsRegistry().histogram("dcsr_s", buckets=(1.0, 0.1))

    def test_empty_histogram_reads_zero(self):
        hist = MetricsRegistry().histogram("dcsr_s")
        assert hist.count() == 0
        assert hist.sum() == 0.0


class TestRegistry:
    def test_create_or_fetch_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("dcsr_x_total", "help text")
        b = registry.counter("dcsr_x_total")
        assert a is b
        assert isinstance(a, Counter)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("dcsr_x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("dcsr_x")

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError, match="metric name"):
            MetricsRegistry().counter("bad name")

    def test_metrics_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("dcsr_b_total")
        registry.gauge("dcsr_a")
        registry.histogram("dcsr_c_seconds")
        assert [m.name for m in registry.metrics()] == \
            ["dcsr_a", "dcsr_b_total", "dcsr_c_seconds"]

    def test_concurrent_increments_do_not_lose_updates(self):
        counter = MetricsRegistry().counter("dcsr_x_total")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == 4000.0

    def test_histogram_isinstance_check(self):
        registry = MetricsRegistry()
        hist = registry.histogram("dcsr_s")
        assert isinstance(hist, Histogram)
