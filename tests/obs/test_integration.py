"""The telemetry-as-view contract: spans, metrics, and the typed
telemetry fields all describe the same measurements.

The acceptance bar: for a fixed-seed run, ``stage_totals`` of the
exported span tree matches ``stage_seconds`` of the corresponding
telemetry within 1e-6 — build and playback alike.
"""

import json

import pytest

from repro.core import (
    DcsrClient,
    FastPathConfig,
    NetworkConfig,
    RetryPolicy,
    SimulatedNetwork,
)
from repro.obs import Observability, span_from_dict, stage_totals, trace_to_json


def assert_totals_match(telemetry):
    totals = stage_totals(telemetry.obs)
    for name, seconds in telemetry.stage_seconds.items():
        assert totals.get(name, 0.0) == pytest.approx(seconds, abs=1e-6), name


class TestBuildTrace:
    def test_stage_totals_match_build_telemetry(self, package):
        telemetry = package.telemetry
        assert set(telemetry.stage_seconds) <= set(stage_totals(telemetry.obs))
        assert_totals_match(telemetry)

    def test_build_counter_mirrors_stage_seconds(self, package):
        counter = package.telemetry.obs.metrics.counter(
            "dcsr_build_stage_seconds_total")
        for name, seconds in package.telemetry.stage_seconds.items():
            assert counter.value(stage=name) == pytest.approx(seconds)

    def test_training_spans_nest_inside_the_train_stage(self, package):
        root = package.telemetry.obs.tracer.root
        (train,) = [s for s in root.walk() if s.attrs.get("stage") == "train"]
        assert len(train.find("train_cluster")) == package.n_models
        (embed,) = [s for s in root.walk() if s.attrs.get("stage") == "embed"]
        assert len(embed.find("train_vae")) == 1


class TestPlaybackTrace:
    def test_stage_totals_match_playback_telemetry(self, package):
        client = DcsrClient(package)
        client.play()
        assert_totals_match(client.last_result.telemetry)

    def test_json_export_matches_telemetry(self, package):
        """The --trace-out contract: totals survive the JSON round trip."""
        client = DcsrClient(package)
        client.play()
        telemetry = client.last_result.telemetry
        tree = span_from_dict(json.loads(trace_to_json(client.obs)))
        totals = stage_totals(tree)
        for name, seconds in telemetry.stage_seconds.items():
            assert totals.get(name, 0.0) == pytest.approx(seconds, abs=1e-6)

    def test_simulated_download_spans_are_tagged(self, package):
        network = SimulatedNetwork(NetworkConfig(latency_s=0.05))
        client = DcsrClient(package, network=network,
                            retry=RetryPolicy(retries=1))
        client.play()
        downloads = client.obs.tracer.root.find("download")
        assert downloads
        assert all(s.attrs["clock"] == "simulated" for s in downloads)
        assert_totals_match(client.last_result.telemetry)

    def test_network_metrics_share_the_client_registry(self, package):
        network = SimulatedNetwork(NetworkConfig(latency_s=0.01))
        client = DcsrClient(package, network=network)
        assert network.obs is client.obs
        client.play()
        attempts = client.obs.metrics.counter("dcsr_download_attempts_total")
        assert (attempts.value(kind="segment") + attempts.value(kind="model")
                == network.stats.attempts)

    def test_prefetch_session_matches_too(self, package):
        client = DcsrClient(
            package, fast_path=FastPathConfig(tile=24, prefetch=2))
        client.play()
        telemetry = client.last_result.telemetry
        assert telemetry.tile_count > 0
        assert_totals_match(telemetry)
        tiles = client.obs.metrics.counter("dcsr_sr_tiles_total")
        assert tiles.value() == telemetry.tile_count

    def test_telemetry_fields_unchanged_between_runs(self, package):
        """Deterministic fields agree across two fresh sessions (the
        refactor must not perturb non-timing telemetry)."""
        results = [DcsrClient(package).play() for _ in range(2)]
        a, b = (r.telemetry for r in results)
        assert a.native_fps == b.native_fps
        assert a.download_attempts == b.download_attempts
        assert a.peak_resident_frames == b.peak_resident_frames
        assert a.cache_hit_rate == b.cache_hit_rate
        assert [s.status for s in a.segments] == [s.status for s in b.segments]

    def test_explicit_obs_is_used(self, package):
        obs = Observability(root_name="mine")
        client = DcsrClient(package, obs=obs)
        client.play()
        assert client.obs is obs
        assert obs.tracer.root.find("play")
