"""Tests for the exporters: JSON round trip, stage totals, Prometheus."""

import json
import threading
from pathlib import Path

import pytest

from repro.obs import (
    MetricsRegistry,
    Observability,
    SimulatedClock,
    Tracer,
    prometheus_text,
    render_trace_summary,
    span_from_dict,
    span_to_dict,
    stage_totals,
    trace_to_json,
    write_metrics,
    write_trace,
)

GOLDEN = Path(__file__).parent / "golden_metrics.txt"


def build_session():
    """A deterministic playback-shaped trace on a simulated clock."""
    obs = Observability(clock=SimulatedClock(), root_name="session")
    tracer = obs.tracer
    session = tracer.begin("play")
    tracer.record("download", 3.25, parent=session,
                  clock=SimulatedClock(start=3.25), stage="download",
                  kind="segment")
    with tracer.span("decode", parent=session, stage="decode") as decode:
        obs.clock.advance(0.3)
        with tracer.span("sr", stage="sr"):
            obs.clock.advance(0.5)
        tracer.record("color", 0.2, stage="color")
        obs.clock.advance(0.7)
    assert decode.elapsed == pytest.approx(1.5)
    tracer.end(session)
    return obs


class TestJsonRoundTrip:
    def test_round_trip_preserves_the_tree(self):
        obs = build_session()
        data = json.loads(trace_to_json(obs))
        rebuilt = span_to_dict(span_from_dict(data))
        assert rebuilt == data

    def test_round_trip_with_worker_thread_spans(self):
        obs = Observability(clock=SimulatedClock())
        session = obs.tracer.begin("play")

        def worker(i):
            with obs.tracer.span("decode", parent=session, stage="decode",
                                 segment=i):
                obs.clock.advance(0.25)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        obs.tracer.end(session)

        data = json.loads(trace_to_json(obs))
        rebuilt = span_from_dict(data)
        assert len(rebuilt.find("decode")) == 4
        assert span_to_dict(rebuilt) == data

    def test_open_span_serializes_null_duration(self):
        tracer = Tracer(SimulatedClock())
        tracer.begin("open")
        data = json.loads(trace_to_json(tracer))
        assert data["children"][0]["duration_s"] is None
        assert span_from_dict(data).children[0].duration_s is None

    def test_write_trace(self, tmp_path):
        obs = build_session()
        path = write_trace(tmp_path / "trace.json", obs)
        assert json.loads(path.read_text())["name"] == "session"

    def test_rejects_non_traces(self):
        with pytest.raises(TypeError, match="cannot export"):
            trace_to_json(42)


class TestStageTotals:
    def test_staged_descendants_are_excluded_from_parents(self):
        """decode's total is its self time: nested sr/color staged spans
        are charged to their own stages, exactly like
        ``PlaybackTelemetry.decode_s = wall - sr_s - color_s``."""
        obs = build_session()
        totals = stage_totals(obs)
        assert totals["download"] == pytest.approx(3.25)
        assert totals["sr"] == pytest.approx(0.5)
        assert totals["color"] == pytest.approx(0.2)
        assert totals["decode"] == pytest.approx(1.5 - 0.5 - 0.2)

    def test_unstaged_children_stay_inside_their_stage(self):
        """A train stage keeps its full duration: per-cluster child spans
        are unstaged detail, not separate stages."""
        obs = Observability(clock=SimulatedClock())
        with obs.tracer.span("train", stage="train"):
            with obs.tracer.span("train_cluster", cluster=0):
                obs.clock.advance(1.0)
            with obs.tracer.span("train_cluster", cluster=1):
                obs.clock.advance(2.0)
        assert stage_totals(obs) == {"train": pytest.approx(3.0)}

    def test_works_on_parsed_dicts_identically(self):
        obs = build_session()
        from_spans = stage_totals(obs)
        from_dict = stage_totals(json.loads(trace_to_json(obs)))
        assert from_dict == pytest.approx(from_spans)


class TestPrometheus:
    def make_registry(self):
        reg = MetricsRegistry()
        reg.counter("dcsr_download_attempts_total",
                    "Download attempts by payload kind").inc(3, kind="segment")
        reg.counter("dcsr_download_attempts_total").inc(1, kind="model")
        reg.gauge("dcsr_playback_achieved_fps",
                  "Frames per compute second of the most recent session"
                  ).set(31.5)
        hist = reg.histogram("dcsr_sr_epoch_seconds",
                             "Wall seconds per SR training epoch",
                             buckets=(0.01, 0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.05)
        hist.observe(2.0)
        return reg

    def test_matches_golden_file(self):
        assert prometheus_text(self.make_registry()) == GOLDEN.read_text()

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("dcsr_x_total").inc(1, name='with "quotes"')
        text = prometheus_text(reg)
        assert 'name="with \\"quotes\\""' in text

    def test_write_metrics(self, tmp_path):
        path = write_metrics(tmp_path / "metrics.prom", self.make_registry())
        assert path.read_text() == GOLDEN.read_text()


class TestRenderSummary:
    def test_one_screen_summary(self):
        obs = build_session()
        text = render_trace_summary(obs, title="playback trace")
        lines = text.splitlines()
        assert lines[0] == "== playback trace =="
        assert lines[1].split() == ["stage", "spans", "seconds", "share"]
        stages = {line.split()[0] for line in lines[3:]}
        assert stages == {"download", "decode", "sr", "color", "total"}
        assert lines[-1].startswith("total")
        assert lines[-1].rstrip().endswith("100%")
