"""Determinism regressions for the fleet substrate.

A fleet run's simulated numbers must be a pure function of (package,
config, seed): per-session failure schedules come from derived RNG
streams, transfer times from the fair-share pool's interval algebra, and
arrivals/admission from seeded sim-time math — never from thread timing.
These tests pin that down:

- same seed ⇒ bit-identical injected failure/latency schedule on a
  :class:`~repro.serve.PooledNetwork`, and an identical
  ``download_with_retry`` backoff sequence under the fair-share pool;
- a single-session pool degenerates exactly to the dedicated
  :class:`~repro.core.network.SimulatedNetwork` link;
- a fleet of one session produces frames bitwise equal to a plain
  :class:`~repro.core.client.DcsrClient` session on its own network.
"""

import numpy as np
import pytest

from repro.core.client import DcsrClient
from repro.core.network import (
    DownloadError,
    NetworkConfig,
    RetryPolicy,
    SimulatedNetwork,
    download_with_retry,
)
from repro.serve import (
    FleetConfig,
    FleetSimulator,
    SharedNetworkPool,
    arrival_times,
)


def _download_trace(network, n=40, n_bytes=5000):
    """(outcome, simulated seconds) of a fixed request sequence."""
    trace = []
    for i in range(n):
        try:
            seconds = network.download("model", i, n_bytes)
            trace.append(("ok", seconds))
        except DownloadError as exc:
            trace.append(("fail", exc.seconds))
    return trace


class TestSeededSchedules:
    def test_same_seed_same_failure_and_latency_schedule(self):
        def make():
            pool = SharedNetworkPool(bandwidth_bps=1e6, latency_s=0.02,
                                     fail_rate=0.3, seed=9)
            return pool.session(3, arrival_s=1.5)

        assert _download_trace(make()) == _download_trace(make())

    def test_different_sessions_draw_disjoint_streams(self):
        pool = SharedNetworkPool(fail_rate=0.5, seed=9)
        t0 = _download_trace(pool.session(0))
        pool2 = SharedNetworkPool(fail_rate=0.5, seed=9)
        t1 = _download_trace(pool2.session(1))
        assert t0 != t1     # astronomically unlikely to collide

    def test_backoff_sequence_identical_under_fair_share_pool(self):
        schedule = [True, True, False] * 10
        retry = RetryPolicy(retries=3, backoff_s=0.05)

        def run(network):
            out = []
            for i in range(10):
                out.append(download_with_retry(network, retry,
                                               "model", i, 4000))
            return out

        pool = SharedNetworkPool(bandwidth_bps=2e6, latency_s=0.01, seed=5)
        pooled = pool.session(0)
        pooled._schedule = list(schedule)
        plain = SimulatedNetwork(
            NetworkConfig(bandwidth_bps=2e6, latency_s=0.01,
                          seed=SharedNetworkPool.session_seed(5, 0)),
            failure_schedule=schedule)
        assert run(pooled) == run(plain)


class TestSingleSessionReduction:
    def test_pool_of_one_equals_dedicated_link(self):
        config = dict(bandwidth_bps=1.5e6, latency_s=0.03, fail_rate=0.25)
        pool = SharedNetworkPool(seed=11, **config)
        pooled = pool.session(0)
        plain = SimulatedNetwork(NetworkConfig(
            seed=SharedNetworkPool.session_seed(11, 0), **config))
        assert _download_trace(pooled) == _download_trace(plain)
        assert pooled.clock.now() == plain.clock.now()

    def test_overlapping_transfers_split_the_pool(self):
        pool = SharedNetworkPool(bandwidth_bps=8e6)
        a = pool.session(0)
        b = pool.session(1)
        # a transfers 1 MB alone: 1s at the full 8 Mbit/s.
        assert a.download("segment", 0, 10 ** 6) == pytest.approx(1.0)
        # b starts at its t=0 too, overlapping a's whole transfer: the
        # first second runs at half rate (4 Mbit/s -> 0.5 MB done), the
        # remaining 0.5 MB drains at full rate in 0.5s.
        assert b.download("segment", 0, 10 ** 6) == pytest.approx(1.5)
        assert pool.peak_concurrency == 2

    def test_sequential_transfers_never_share(self):
        pool = SharedNetworkPool(bandwidth_bps=8e6)
        a = pool.session(0)
        # Same session: its own clock advances between downloads, so the
        # second transfer starts after the first ends — full rate both.
        assert a.download("segment", 0, 10 ** 6) == pytest.approx(1.0)
        assert a.download("segment", 1, 10 ** 6) == pytest.approx(1.0)
        assert pool.peak_concurrency == 1


class TestFleetDeterminism:
    def test_arrival_times_are_seed_deterministic(self):
        config = FleetConfig(sessions=6, arrival="poisson:2.0", seed=3)
        assert arrival_times(config) == arrival_times(config)
        other = FleetConfig(sessions=6, arrival="poisson:2.0", seed=4)
        assert arrival_times(config) != arrival_times(other)
        uniform = FleetConfig(sessions=4, arrival="uniform:0.5")
        assert arrival_times(uniform) == [0.0, 0.5, 1.0, 1.5]

    def test_single_session_fleet_matches_plain_client(self, package):
        config = FleetConfig(sessions=1, bandwidth_bps=2e6, latency_s=0.01,
                             fail_rate=0.2, retries=3, seed=21)
        fleet = FleetSimulator(package, config).run()
        [session] = fleet.completed()

        plain_net = SimulatedNetwork(NetworkConfig(
            fail_rate=0.2, bandwidth_bps=2e6, latency_s=0.01,
            seed=SharedNetworkPool.session_seed(21, 0)))
        plain = DcsrClient(package, network=plain_net,
                           retry=RetryPolicy(retries=3)).play()

        result = session.result
        assert len(result.frames) == len(plain.frames)
        for ours, theirs in zip(result.frames, plain.frames):
            assert np.array_equal(ours, theirs)
        assert result.frame_types == plain.frame_types
        assert result.model_bytes == plain.model_bytes
        assert result.video_bytes == plain.video_bytes
        # Simulated download time (the only clock a result may depend on)
        # must match exactly; stall/decode numbers are wall time and are
        # deliberately not compared across separate runs.
        assert result.telemetry.stage_seconds["download"] == pytest.approx(
            plain.telemetry.stage_seconds["download"], abs=1e-12)

    def test_same_seed_same_fleet_numbers(self, package):
        # fail_rate stays 0 here: with failures, *which* session performs
        # a single-flight model fetch shifts that session's RNG stream, so
        # only failure-free multi-session runs promise identical bytes.
        config = FleetConfig(sessions=3, arrival="poisson:1.0",
                             bandwidth_bps=2e6, seed=13)

        def run():
            t = FleetSimulator(package, config).run().telemetry
            return (t.completed, t.cache_downloads, t.total_model_bytes,
                    t.total_video_bytes)

        assert run() == run()
