"""Determinism regressions for the fleet substrate.

A fleet run's simulated numbers must be a pure function of (package,
config, seed): per-session failure schedules come from derived RNG
streams, transfer times from the fair-share pool's interval algebra, and
arrivals/admission from seeded sim-time math — never from thread timing.
These tests pin that down:

- same seed ⇒ bit-identical injected failure/latency schedule on a
  :class:`~repro.serve.PooledNetwork`, and an identical
  ``download_with_retry`` backoff sequence under the fair-share pool;
- a single-session pool degenerates exactly to the dedicated
  :class:`~repro.core.network.SimulatedNetwork` link;
- a fleet of one session produces frames bitwise equal to a plain
  :class:`~repro.core.client.DcsrClient` session on its own network.
"""

import numpy as np
import pytest

from repro.core.client import DcsrClient
from repro.core.network import (
    DownloadError,
    NetworkConfig,
    RetryPolicy,
    SimulatedNetwork,
    download_with_retry,
)
from repro.serve import (
    FleetConfig,
    FleetSimulator,
    SharedNetworkPool,
    arrival_times,
)


def _download_trace(network, n=40, n_bytes=5000):
    """(outcome, simulated seconds) of a fixed request sequence."""
    trace = []
    for i in range(n):
        try:
            seconds = network.download("model", i, n_bytes)
            trace.append(("ok", seconds))
        except DownloadError as exc:
            trace.append(("fail", exc.seconds))
    return trace


class TestSeededSchedules:
    def test_same_seed_same_failure_and_latency_schedule(self):
        def make():
            pool = SharedNetworkPool(bandwidth_bps=1e6, latency_s=0.02,
                                     fail_rate=0.3, seed=9)
            return pool.session(3, arrival_s=1.5)

        assert _download_trace(make()) == _download_trace(make())

    def test_different_sessions_draw_disjoint_streams(self):
        pool = SharedNetworkPool(fail_rate=0.5, seed=9)
        t0 = _download_trace(pool.session(0))
        pool2 = SharedNetworkPool(fail_rate=0.5, seed=9)
        t1 = _download_trace(pool2.session(1))
        assert t0 != t1     # astronomically unlikely to collide

    def test_backoff_sequence_identical_under_fair_share_pool(self):
        schedule = [True, True, False] * 10
        retry = RetryPolicy(retries=3, backoff_s=0.05)

        def run(network):
            out = []
            for i in range(10):
                out.append(download_with_retry(network, retry,
                                               "model", i, 4000))
            return out

        pool = SharedNetworkPool(bandwidth_bps=2e6, latency_s=0.01, seed=5)
        pooled = pool.session(0)
        pooled._schedule = list(schedule)
        plain = SimulatedNetwork(
            NetworkConfig(bandwidth_bps=2e6, latency_s=0.01,
                          seed=SharedNetworkPool.session_seed(5, 0)),
            failure_schedule=schedule)
        assert run(pooled) == run(plain)


class TestSingleSessionReduction:
    def test_pool_of_one_equals_dedicated_link(self):
        config = dict(bandwidth_bps=1.5e6, latency_s=0.03, fail_rate=0.25)
        pool = SharedNetworkPool(seed=11, **config)
        pooled = pool.session(0)
        plain = SimulatedNetwork(NetworkConfig(
            seed=SharedNetworkPool.session_seed(11, 0), **config))
        assert _download_trace(pooled) == _download_trace(plain)
        assert pooled.clock.now() == plain.clock.now()

    def test_overlapping_transfers_split_the_pool(self):
        pool = SharedNetworkPool(bandwidth_bps=8e6)
        a = pool.session(0)
        b = pool.session(1)
        # a transfers 1 MB alone: 1s at the full 8 Mbit/s.
        assert a.download("segment", 0, 10 ** 6) == pytest.approx(1.0)
        # b starts at its t=0 too, overlapping a's whole transfer: the
        # first second runs at half rate (4 Mbit/s -> 0.5 MB done), the
        # remaining 0.5 MB drains at full rate in 0.5s.
        assert b.download("segment", 0, 10 ** 6) == pytest.approx(1.5)
        assert pool.peak_concurrency == 2

    def test_sequential_transfers_never_share(self):
        pool = SharedNetworkPool(bandwidth_bps=8e6)
        a = pool.session(0)
        # Same session: its own clock advances between downloads, so the
        # second transfer starts after the first ends — full rate both.
        assert a.download("segment", 0, 10 ** 6) == pytest.approx(1.0)
        assert a.download("segment", 1, 10 ** 6) == pytest.approx(1.0)
        assert pool.peak_concurrency == 1


class TestFleetDeterminism:
    def test_arrival_times_are_seed_deterministic(self):
        config = FleetConfig(sessions=6, arrival="poisson:2.0", seed=3)
        assert arrival_times(config) == arrival_times(config)
        other = FleetConfig(sessions=6, arrival="poisson:2.0", seed=4)
        assert arrival_times(config) != arrival_times(other)
        uniform = FleetConfig(sessions=4, arrival="uniform:0.5")
        assert arrival_times(uniform) == [0.0, 0.5, 1.0, 1.5]

    def test_single_session_fleet_matches_plain_client(self, package):
        config = FleetConfig(sessions=1, bandwidth_bps=2e6, latency_s=0.01,
                             fail_rate=0.2, retries=3, seed=21)
        fleet = FleetSimulator(package, config).run()
        [session] = fleet.completed()

        plain_net = SimulatedNetwork(NetworkConfig(
            fail_rate=0.2, bandwidth_bps=2e6, latency_s=0.01,
            seed=SharedNetworkPool.session_seed(21, 0)))
        plain = DcsrClient(package, network=plain_net,
                           retry=RetryPolicy(retries=3)).play()

        result = session.result
        assert len(result.frames) == len(plain.frames)
        for ours, theirs in zip(result.frames, plain.frames):
            assert np.array_equal(ours, theirs)
        assert result.frame_types == plain.frame_types
        assert result.model_bytes == plain.model_bytes
        assert result.video_bytes == plain.video_bytes
        # Simulated download time (the only clock a result may depend on)
        # must match exactly; stall/decode numbers are wall time and are
        # deliberately not compared across separate runs.
        assert result.telemetry.stage_seconds["download"] == pytest.approx(
            plain.telemetry.stage_seconds["download"], abs=1e-12)

    def test_same_seed_same_fleet_numbers(self, package):
        # fail_rate stays 0 here: with failures, *which* session performs
        # a single-flight model fetch shifts that session's RNG stream, so
        # only failure-free multi-session runs promise identical bytes.
        config = FleetConfig(sessions=3, arrival="poisson:1.0",
                             bandwidth_bps=2e6, seed=13)

        def run():
            t = FleetSimulator(package, config).run().telemetry
            return (t.completed, t.cache_downloads, t.total_model_bytes,
                    t.total_video_bytes)

        assert run() == run()


class TestEventDrivenDeterminism:
    """The discrete-event rewrite's promises: bit-identical event order
    and telemetry for a given (package, config, seed), in both modes."""

    def _trace_config(self, **overrides):
        base = dict(sessions=8, mode="trace", arrival="poisson:4.0",
                    bandwidth_bps=2e6, latency_s=0.01, fail_rate=0.1,
                    retries=3, edges=2, fallback=True, seed=5)
        base.update(overrides)
        return FleetConfig(**base)

    def test_same_seed_same_event_history(self, package):
        def history():
            sim = FleetSimulator(package, self._trace_config())
            sim.run(trace_events=True)
            return sim.loop.history

        first, second = history(), history()
        assert first == second                  # bitwise: (time, seq, label)
        assert len(first) > 8                   # sessions actually interleaved

    def test_different_seed_different_event_history(self, package):
        def history(seed):
            sim = FleetSimulator(package, self._trace_config(seed=seed))
            sim.run(trace_events=True)
            return sim.loop.history

        assert history(5) != history(6)

    def test_same_seed_same_trace_telemetry(self, package):
        def numbers():
            fleet = FleetSimulator(package, self._trace_config()).run()
            t = fleet.telemetry
            per_session = [
                (s.session_id, s.result.telemetry.stall_seconds,
                 s.result.telemetry.stage_seconds["download"],
                 s.result.model_bytes, s.result.video_bytes)
                for s in fleet.completed()]
            return (t.events_processed, t.sim_duration_s,
                    t.aggregate_goodput_bps, t.origin_offload,
                    t.rate_limit_wait_s, per_session)

        assert numbers() == numbers()

    def test_trace_mode_matches_playback_simulated_bytes(self, package):
        # Trace sessions replay the same manifest through the same cache
        # and pool, so fleet-level byte accounting must agree with full
        # playback exactly; only compute-derived numbers may differ.
        config = dict(sessions=3, arrival="uniform:1.0",
                      bandwidth_bps=4e6, seed=9)
        play = FleetSimulator(package,
                              FleetConfig(mode="playback", **config)).run()
        trace = FleetSimulator(package,
                               FleetConfig(mode="trace", **config)).run()
        assert trace.telemetry.total_model_bytes == \
            play.telemetry.total_model_bytes
        assert trace.telemetry.total_video_bytes == \
            play.telemetry.total_video_bytes
        assert trace.telemetry.cache_downloads == \
            play.telemetry.cache_downloads
        assert trace.telemetry.cache_hit_rate == \
            play.telemetry.cache_hit_rate

    def test_trace_sessions_carry_simulated_clock_spans(self, package):
        sim = FleetSimulator(package, self._trace_config(sessions=2))
        fleet = sim.run()
        spans = [s for s in fleet.obs.tracer.root.children
                 if s.name == "session"]
        assert sorted(s.attrs["session"] for s in spans) == [0, 1]
        assert all(s.attrs["clock"] == "simulated" for s in spans)

    def test_rate_limited_fleet_is_deterministic_and_slower(self, package):
        fast = FleetSimulator(
            package, self._trace_config(fail_rate=0.0)).run()
        # Rate + burst sized well below one segment's bits, so every
        # transfer genuinely waits on its bucket.
        limited_config = self._trace_config(fail_rate=0.0,
                                            rate_limit_bps=2e4)

        def stalls():
            fleet = FleetSimulator(package, limited_config).run()
            return ([s.result.telemetry.stall_seconds
                     for s in fleet.completed()],
                    fleet.telemetry.rate_limit_wait_s)

        first, second = stalls(), stalls()
        assert first == second
        assert first[1] > 0.0                   # buckets actually throttled
        assert sum(first[0]) > sum(
            s.result.telemetry.stall_seconds for s in fast.completed())


@pytest.mark.tier2
class TestFleetScale:
    def test_thousand_session_trace_fleet(self, package):
        config = FleetConfig(sessions=1000, mode="trace",
                             arrival="poisson:50.0", bandwidth_bps=1e8,
                             latency_s=0.005, fail_rate=0.02, retries=3,
                             edges=8, cache_admission="second-hit",
                             fallback=True, seed=42)
        fleet = FleetSimulator(package, config).run()
        t = fleet.telemetry
        assert t.completed == 1000
        assert t.events_processed >= 1000
        # A warm fleet this size keeps nearly every request off origin
        # storage; the exact value is seed-dependent, the floor is not.
        assert t.origin_offload > 0.9
        assert t.stall_cdf[-1][1] == 1.0
        assert all(s.result.telemetry.stage_seconds["download"] > 0
                   for s in fleet.completed())
